"""Access Map Pattern Matching prefetcher (Ishii et al., ICS'09) —
Table I: attached to the L2, queue size 32.

Memory is divided into zones; each zone keeps a bitmap of the cache lines
accessed in it.  On each access the prefetcher tests candidate strides
*s*: if lines ``-s`` and ``-2s`` relative to the current one were already
accessed, the pattern matches and line ``+s`` (up to a small degree per
stride) is prefetched.  Outstanding prefetches are bounded by the queue
size.
"""
from __future__ import annotations

from collections import OrderedDict
from typing import List

#: Candidate strides tested on each access (forward and backward).
_CANDIDATE_STRIDES = tuple(range(1, 9)) + tuple(range(-1, -9, -1))


class AmpmPrefetcher:
    """Zone-bitmap pattern-matching prefetcher."""

    def __init__(
        self,
        zones: int = 64,
        zone_bytes: int = 4096,
        queue_size: int = 32,
        degree: int = 2,
        line_bytes: int = 64,
    ) -> None:
        self.zone_bytes = zone_bytes
        self.lines_per_zone = zone_bytes // line_bytes
        self.line_bytes = line_bytes
        self.queue_size = queue_size
        self.degree = degree
        self._zones: "OrderedDict[int, int]" = OrderedDict()  # zone -> bitmap
        self._max_zones = zones
        self.issued = 0

    def _bitmap(self, zone: int) -> int:
        if zone in self._zones:
            self._zones.move_to_end(zone)
            return self._zones[zone]
        self._zones[zone] = 0
        if len(self._zones) > self._max_zones:
            self._zones.popitem(last=False)
        return 0

    def observe(self, pc: int, addr: int) -> List[int]:
        """Record a demand access; return line addresses to prefetch."""
        lpz = self.lines_per_zone
        line = addr // self.line_bytes
        zone, offset = divmod(line, lpz)
        zones = self._zones
        bitmap = zones.get(zone)
        if bitmap is None:
            bitmap = 0
            if len(zones) >= self._max_zones:
                zones.popitem(last=False)
        else:
            zones.move_to_end(zone)
        zones[zone] = bitmap | (1 << offset)
        out: List[int] = []
        degree = self.degree
        base = zone * lpz
        # Stride scan on the raw bitmap (a per-call closure here shows up
        # on the simulator's hot path — every L2 demand access).  The
        # inner candidate loop is unrolled into explicit dedup'd appends;
        # a matching stride yielding fewer than ``degree`` targets lets
        # the scan continue with the next stride, as before.
        for stride in _CANDIDATE_STRIDES:
            index = offset - stride
            if index < 0 or index >= lpz or not (bitmap >> index) & 1:
                continue
            index -= stride
            if index < 0 or index >= lpz or not (bitmap >> index) & 1:
                continue
            target = offset + stride
            for _ in range(degree):
                if 0 <= target < lpz:
                    candidate = base + target
                    if candidate not in out:
                        out.append(candidate)
                if len(out) >= degree:
                    break
                target += stride
            if len(out) >= degree:
                break
        self.issued += len(out)
        return out
