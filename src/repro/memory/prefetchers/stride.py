"""PC-indexed stride prefetcher (Table I: L1-D, depth 16).

The classic reference-prediction-table design: per-PC entries track the
last address and observed stride with a 2-bit confidence counter; once
confident, lines up to ``depth`` strides ahead are prefetched.
"""
from __future__ import annotations

from typing import List


class _Entry:
    __slots__ = ("last_addr", "stride", "confidence")

    def __init__(self) -> None:
        self.last_addr = -1
        self.stride = 0
        self.confidence = 0


class StridePrefetcher:
    """Returns candidate prefetch line addresses per observed access."""

    def __init__(
        self,
        depth: int = 16,
        degree: int = 2,
        table_entries: int = 64,
        line_bytes: int = 64,
    ) -> None:
        self.depth = depth
        self.degree = degree  # max prefetches issued per trigger access
        self.line_bytes = line_bytes
        self._table = [_Entry() for _ in range(table_entries)]
        self._mask = table_entries - 1
        self.trained = 0
        self.issued = 0

    def observe(self, pc: int, addr: int) -> List[int]:
        """Record a demand access; return line addresses to prefetch."""
        entry = self._table[pc & self._mask]
        out: List[int] = []
        if entry.last_addr >= 0:
            stride = addr - entry.last_addr
            if stride != 0 and stride == entry.stride:
                if entry.confidence < 3:
                    entry.confidence += 1
            else:
                entry.stride = stride
                entry.confidence = max(0, entry.confidence - 1)
        entry.last_addr = addr
        if entry.confidence >= 2 and entry.stride != 0:
            self.trained += 1
            line = self.line_bytes
            current = addr // line
            # Issue up to ``degree`` new lines per trigger, working outward
            # from the prefetch distance (the cache drops duplicates).
            for k in range(self.depth, 0, -1):
                target = (addr + k * entry.stride) // line
                if target >= 0 and target != current and target not in out:
                    out.append(target)
                if len(out) >= self.degree:
                    break
            self.issued += len(out)
        return out
