"""Hardware prefetchers of the baseline core (Table I)."""
from repro.memory.prefetchers.ampm import AmpmPrefetcher
from repro.memory.prefetchers.stride import StridePrefetcher

__all__ = ["AmpmPrefetcher", "StridePrefetcher"]
