"""DRAM timing model: dual-channel DDR3-1600 (Table I).

A reservation-based model: every line transfer reserves its channel for
``line_transfer_cycles``; accesses arriving while the channel is busy are
delayed.  The model tracks total bytes moved, which yields the paper's
Fig. 8.D metric, ``(ReadBW + WriteBW) / PeakBW``.
"""
from __future__ import annotations

from repro.cpu.config import DramConfig
from repro.memory.slots import SlotReservoir


class Dram:
    """Main memory with per-channel bandwidth reservation."""

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self._channels = [
            SlotReservoir(1, config.line_transfer_cycles)
            for _ in range(config.channels)
        ]
        # Statistics.
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_cycles = 0.0

    def channel_of(self, line_addr: int) -> int:
        """Line-interleaved channel mapping."""
        return line_addr % self.config.channels

    def access(self, line_addr: int, now: float, is_write: bool) -> float:
        """Reserve a line transfer; returns the completion cycle."""
        cfg = self.config
        channel = self.channel_of(line_addr)
        start = self._channels[channel].reserve(now)
        self.busy_cycles += cfg.line_transfer_cycles
        if is_write:
            self.writes += 1
            self.bytes_written += cfg.line_bytes
            # Writes complete once buffered at the controller.
            return start + cfg.line_transfer_cycles
        self.reads += 1
        self.bytes_read += cfg.line_bytes
        return start + cfg.access_latency + cfg.line_transfer_cycles

    # -- Statistics -----------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def bus_utilization(self, elapsed_cycles: float) -> float:
        """(ReadBW + WriteBW) / PeakBW over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        peak = self.config.peak_bytes_per_cycle * elapsed_cycles
        return self.total_bytes / peak

    def reset_stats(self) -> None:
        self.reads = self.writes = 0
        self.bytes_read = self.bytes_written = 0
        self.busy_cycles = 0.0
