"""Slot-based resource reservation for bandwidth-limited structures.

A :class:`SlotReservoir` models a resource that can start at most
``lanes`` operations per ``slot_cycles`` window (a cache port, a DRAM
channel).  Unlike a strictly serial next-free-time reservation, a
request takes the *first free slot at or after its own arrival time*, so
work scheduled in the future (posted writebacks, delayed fills) never
delays requests happening now — causality is preserved in the
reservation-based timing model.
"""
from __future__ import annotations


class SlotReservoir:
    def __init__(self, lanes: int, slot_cycles: float) -> None:
        if lanes < 1 or slot_cycles <= 0:
            raise ValueError("lanes >= 1 and slot_cycles > 0 required")
        self.lanes = lanes
        self.slot_cycles = slot_cycles
        self._unit = slot_cycles == 1.0  # cache ports: skip the division
        self._busy = {}  # slot index -> reservations
        self._prune_in = 8192  # reservations until the next prune sweep
        self._low_watermark = 0

    def reserve(self, t: float) -> float:
        """Claim the first free slot at or after ``t``; returns its start."""
        index = int(t) if self._unit else int(t / self.slot_cycles)
        busy = self._busy
        lanes = self.lanes
        count = busy.get(index, 0)
        while count >= lanes:
            index += 1
            count = busy.get(index, 0)
        busy[index] = count + 1
        self._prune_in -= 1
        if not self._prune_in:
            self._prune_in = 8192
            self._prune(index)
        start = index * self.slot_cycles
        return t if t >= start else start

    def _prune(self, current_index: int) -> None:
        """Drop bookkeeping for slots far in the past."""
        horizon = current_index - 100_000
        if horizon <= self._low_watermark:
            return
        self._busy = {k: v for k, v in self._busy.items() if k >= horizon}
        self._low_watermark = horizon

    def next_free(self, t: float) -> float:
        """Start time a reservation made at ``t`` would get, without
        claiming the slot (event-horizon introspection)."""
        index = int(t / self.slot_cycles)
        while self._busy.get(index, 0) >= self.lanes:
            index += 1
        return max(t, index * self.slot_cycles)

    def occupancy(self, t: float) -> int:
        """Reservations in the slot containing ``t`` (introspection)."""
        return self._busy.get(int(t / self.slot_cycles), 0)
