"""The complete memory hierarchy: L1D -> L2 -> DRAM, with stream bypass.

Demand (core) accesses walk the full hierarchy.  Stream accesses take the
paper's configurable path (§IV-A *Cache Access*): by default they are
issued as non-cacheable at the L1 and as normal loads at the L2; an
L1-configured stream behaves like a demand access; a memory-configured
stream bypasses both caches.  Output streams are always issued to the L1.
"""
from __future__ import annotations

from repro.cpu.config import MachineConfig
from repro.memory.cache import Cache
from repro.memory.dram import Dram
from repro.memory.prefetchers import AmpmPrefetcher, StridePrefetcher
from repro.memory.tlb import Tlb
from repro.streams.pattern import MemLevel


class MemoryHierarchy:
    """Timing-side memory system (functional data lives in
    :class:`repro.memory.backing.Memory`)."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.line_bytes = config.l1d.line_bytes
        self.dram = Dram(config.dram)
        pf = config.prefetch
        l2_prefetcher = (
            AmpmPrefetcher(zones=pf.l2_ampm_zones, queue_size=pf.l2_ampm_queue)
            if pf.l2_ampm_enabled
            else None
        )
        l1_prefetcher = (
            StridePrefetcher(
                depth=pf.l1_stride_depth, table_entries=pf.l1_stride_table_entries
            )
            if pf.l1_stride_enabled
            else None
        )
        self.l2 = Cache(config.l2, self.dram, prefetcher=l2_prefetcher)
        self.l1d = Cache(config.l1d, self.l2, prefetcher=l1_prefetcher)
        self.tlb = Tlb()

    # -- Address helpers -------------------------------------------------------

    def line_of(self, addr: int) -> int:
        return addr // self.line_bytes

    def lines_of(self, addrs) -> list:
        """Distinct cache lines touched by a list of byte addresses,
        preserving first-touch order."""
        seen = []
        last = -1
        for addr in addrs:
            line = addr // self.line_bytes
            if line != last and line not in seen:
                seen.append(line)
            last = line
        return seen

    # -- Demand (core pipeline) path ----------------------------------------------

    def demand_access(
        self, addr: int, now: float, is_write: bool, pc: int = 0
    ) -> float:
        now += self.tlb.translate(addr)
        return self.l1d.access(self.line_of(addr), now, is_write, pc=pc)

    # -- Streaming Engine path ------------------------------------------------------

    def stream_read(self, line: int, now: float, level: MemLevel) -> float:
        if level is MemLevel.L1:
            return self.l1d.access(line, now, False)
        if level is MemLevel.L2:
            # Non-cacheable at L1 (one port cycle), normal load at L2.
            return self.l1d.access(line, now, False, cacheable=False)
        # Direct memory access: non-cacheable at every level.
        return self.dram.access(line, now + 2, False)

    def stream_write(self, line: int, now: float, level: MemLevel) -> float:
        # The evaluated implementation forces stream stores to the L1.
        return self.l1d.access(line, now, True)

    # -- Event horizons ---------------------------------------------------------

    def l1_accept_horizon(self, now: float) -> float:
        """Earliest cycle a posted store blocked on ``l1d.can_accept``
        could be accepted (``inf`` when no in-flight fill will free an
        MSHR) — used by the pipeline's event-horizon fast-forward."""
        return self.l1d.next_mshr_free(now)

    # -- Warmup ---------------------------------------------------------------

    def warm(self, base: int, nbytes: int) -> None:
        """Pre-install an address range into the L2 (warm-cache runs, as
        in the paper's steady-state kernel measurements).  Ranges larger
        than the L2 overflow naturally through LRU replacement."""
        first = self.line_of(base)
        last = self.line_of(base + max(nbytes - 1, 0))
        for line in range(first, last + 1):
            self.l2.warm(line)

    # -- Statistics --------------------------------------------------------------

    def bus_utilization(self, elapsed_cycles: float) -> float:
        return self.dram.bus_utilization(elapsed_cycles)
