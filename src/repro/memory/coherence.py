"""MOESI cache-coherence state machine (Table I: snoop-based MOESI).

The evaluation runs a single core, so coherence traffic is minimal, but
the protocol is implemented in full so that cache line states (and the
stream/conventional interaction of §IV-A *Memory Coherence*) follow the
real transition rules.  The hierarchy uses it for line-state bookkeeping;
the unit tests exercise every legal transition.
"""
from __future__ import annotations

import enum

from repro.errors import ReproError


class CoherenceError(ReproError):
    """Illegal coherence transition."""


class LineState(enum.Enum):
    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def valid(self) -> bool:
        return self is not LineState.INVALID

    @property
    def dirty(self) -> bool:
        return self in (LineState.MODIFIED, LineState.OWNED)

    @property
    def writable(self) -> bool:
        return self in (LineState.MODIFIED, LineState.EXCLUSIVE)


class Event(enum.Enum):
    """Local processor and snooped bus events."""

    LOAD = "load"  # local read
    STORE = "store"  # local write
    EVICT = "evict"  # local replacement
    BUS_READ = "bus_read"  # another agent reads
    BUS_RDX = "bus_rdx"  # another agent reads-for-ownership
    BUS_UPGRADE = "bus_upgrade"  # another agent upgrades S->M


# (state, event) -> (next state, supplies data?, writes back?)
_TRANSITIONS = {
    (LineState.INVALID, Event.LOAD): (LineState.EXCLUSIVE, False, False),
    (LineState.INVALID, Event.STORE): (LineState.MODIFIED, False, False),
    (LineState.EXCLUSIVE, Event.LOAD): (LineState.EXCLUSIVE, False, False),
    (LineState.EXCLUSIVE, Event.STORE): (LineState.MODIFIED, False, False),
    (LineState.EXCLUSIVE, Event.EVICT): (LineState.INVALID, False, False),
    (LineState.EXCLUSIVE, Event.BUS_READ): (LineState.SHARED, True, False),
    (LineState.EXCLUSIVE, Event.BUS_RDX): (LineState.INVALID, True, False),
    (LineState.MODIFIED, Event.LOAD): (LineState.MODIFIED, False, False),
    (LineState.MODIFIED, Event.STORE): (LineState.MODIFIED, False, False),
    (LineState.MODIFIED, Event.EVICT): (LineState.INVALID, False, True),
    (LineState.MODIFIED, Event.BUS_READ): (LineState.OWNED, True, False),
    (LineState.MODIFIED, Event.BUS_RDX): (LineState.INVALID, True, False),
    (LineState.OWNED, Event.LOAD): (LineState.OWNED, False, False),
    (LineState.OWNED, Event.STORE): (LineState.MODIFIED, False, False),
    (LineState.OWNED, Event.EVICT): (LineState.INVALID, False, True),
    (LineState.OWNED, Event.BUS_READ): (LineState.OWNED, True, False),
    (LineState.OWNED, Event.BUS_RDX): (LineState.INVALID, True, False),
    (LineState.SHARED, Event.LOAD): (LineState.SHARED, False, False),
    (LineState.SHARED, Event.STORE): (LineState.MODIFIED, False, False),
    (LineState.SHARED, Event.EVICT): (LineState.INVALID, False, False),
    (LineState.SHARED, Event.BUS_READ): (LineState.SHARED, False, False),
    (LineState.SHARED, Event.BUS_RDX): (LineState.INVALID, False, False),
    (LineState.SHARED, Event.BUS_UPGRADE): (LineState.INVALID, False, False),
    (LineState.INVALID, Event.EVICT): (LineState.INVALID, False, False),
    (LineState.INVALID, Event.BUS_READ): (LineState.INVALID, False, False),
    (LineState.INVALID, Event.BUS_RDX): (LineState.INVALID, False, False),
    (LineState.INVALID, Event.BUS_UPGRADE): (LineState.INVALID, False, False),
}


def next_state(state: LineState, event: Event):
    """Apply ``event``; returns ``(next_state, supplies_data, writeback)``."""
    try:
        return _TRANSITIONS[(state, event)]
    except KeyError:
        raise CoherenceError(
            f"illegal transition: {state.value} on {event.value}"
        ) from None
