"""TLB model with page-fault machinery.

Streams perform their own translation through the Streaming Engine's
arbiter (paper §IV-B), which lets them prefetch safely across page
boundaries (feature A2); page faults flag the vector element and are
handled at commit (§IV-A *Exception Handling*).
"""
from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional

from repro.common.types import PAGE_BYTES
from repro.errors import PageFaultError


class Tlb:
    """Fully-associative LRU TLB with a fixed page-walk penalty."""

    def __init__(
        self,
        entries: int = 64,
        walk_latency: int = 20,
        page_bytes: int = PAGE_BYTES,
        is_mapped: Optional[Callable[[int], bool]] = None,
    ) -> None:
        self.entries = entries
        self.walk_latency = walk_latency
        self.page_bytes = page_bytes
        #: predicate deciding whether a page is mapped (default: all pages)
        self.is_mapped = is_mapped or (lambda page: True)
        self._cached: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.faults = 0

    def translate(self, addr: int) -> int:
        """Translation latency in cycles; raises on an unmapped page."""
        page = addr // self.page_bytes
        if page in self._cached:
            self._cached.move_to_end(page)
            self.hits += 1
            return 0
        self.misses += 1
        if not self.is_mapped(page):
            self.faults += 1
            raise PageFaultError(f"page fault at address {addr:#x}")
        self._cached[page] = True
        if len(self._cached) > self.entries:
            self._cached.popitem(last=False)
        return self.walk_latency

    def probe(self, addr: int) -> bool:
        """True if the page is mapped (no state change, no fault)."""
        return self.is_mapped(addr // self.page_bytes)

    def stream_translate(self, addr: int) -> "tuple[bool, int]":
        """Engine-side probe + translate fused into one page lookup:
        returns ``(mapped, delay)``.  Unlike :meth:`translate`, a fault
        is flagged rather than raised — the engine never traps (§IV-A);
        hit/miss/fault counters advance exactly as probe-then-translate
        would."""
        page = addr // self.page_bytes
        cached = self._cached
        mapped = self.is_mapped(page)
        if page in cached:
            cached.move_to_end(page)
            self.hits += 1
            return mapped, 0
        self.misses += 1
        if not mapped:
            self.faults += 1
            return mapped, self.walk_latency
        cached[page] = True
        if len(cached) > self.entries:
            cached.popitem(last=False)
        return mapped, self.walk_latency

    def flush(self) -> None:
        self._cached.clear()
