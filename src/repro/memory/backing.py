"""Flat byte-addressable backing memory with a bump allocator.

This is the *functional* memory shared by all simulators; timing is
modelled separately by :mod:`repro.memory.hierarchy`.  Arrays are placed
with :meth:`Memory.alloc_array` and can be viewed back zero-copy with
:meth:`Memory.ndarray` for result verification.
"""
from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.common.types import CACHE_LINE_BYTES, ElementType
from repro.errors import MemoryAccessError


class Memory:
    """A contiguous simulated physical memory."""

    def __init__(self, size: int = 64 * 1024 * 1024) -> None:
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)
        self._brk = CACHE_LINE_BYTES  # keep address 0 unused
        self._views = {}  # per-dtype full-memory views (aligned fast path)

    def _view(self, etype: ElementType) -> np.ndarray:
        view = self._views.get(etype)
        if view is None:
            usable = self.size - self.size % etype.width
            view = self.data[:usable].view(etype.dtype)
            self._views[etype] = view
        return view

    # -- Typed scalar access ------------------------------------------------

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or addr + nbytes > self.size:
            raise MemoryAccessError(
                f"access [{addr}, {addr + nbytes}) outside memory of size "
                f"{self.size}"
            )

    def read_scalar(self, addr: int, etype: ElementType):
        """Read one element; returns a Python int or float."""
        w = etype.width
        if addr % w == 0:  # aligned fast path through a typed view
            if addr < 0 or addr + w > self.size:
                self._check(addr, w)
            value = self._view(etype)[addr // w]
        else:
            self._check(addr, w)
            value = self.data[addr : addr + w].copy().view(etype.dtype)[0]
        return float(value) if etype.is_float else int(value)

    def write_scalar(self, addr: int, value, etype: ElementType) -> None:
        w = etype.width
        if addr % w == 0:
            if addr < 0 or addr + w > self.size:
                self._check(addr, w)
            self._view(etype)[addr // w] = value
            return
        self._check(addr, w)
        self.data[addr : addr + w] = np.asarray([value], dtype=etype.dtype).view(
            np.uint8
        )

    # -- Vector (gather/scatter) access ---------------------------------------

    def _check_vector(self, addrs: np.ndarray, width: int) -> None:
        """Bounds-check a whole address vector.

        Raises the same :class:`MemoryAccessError` a sequential scalar loop
        would raise — for the *first* offending address in vector order.
        """
        bad = (addrs < 0) | (addrs + width > self.size)
        if bad.any():
            addr = int(addrs[int(np.argmax(bad))])
            raise MemoryAccessError(
                f"access [{addr}, {addr + width}) outside memory of size "
                f"{self.size}"
            )

    def read_gather(self, addrs: np.ndarray, etype: ElementType) -> np.ndarray:
        """Read one element per address (fancy-indexed gather, copy)."""
        w = etype.width
        addrs = np.asarray(addrs, dtype=np.int64)
        self._check_vector(addrs, w)
        if not (addrs % w).any():  # aligned fast path through a typed view
            return self._view(etype)[addrs // w]
        # Unaligned fallback: gather a (n, w) byte matrix and reinterpret.
        rows = self.data[addrs[:, None] + np.arange(w)]
        return np.ascontiguousarray(rows).view(etype.dtype).reshape(-1)

    def write_scatter(self, addrs: np.ndarray, values: np.ndarray,
                      etype: ElementType) -> None:
        """Write one element per address (fancy-indexed scatter).

        Duplicate addresses resolve last-write-wins, matching a sequential
        scalar loop.  On an out-of-bounds address, the in-bounds *prefix*
        (in vector order) is written before the error is raised — again
        matching the partial effects of the sequential loop.
        """
        w = etype.width
        addrs = np.asarray(addrs, dtype=np.int64)
        values = np.asarray(values, dtype=etype.dtype)
        bad = (addrs < 0) | (addrs + w > self.size)
        if bad.any():
            k = int(np.argmax(bad))
            prefix = addrs[:k]
            if k:
                self.write_scatter(prefix, values[:k], etype)
            addr = int(addrs[k])
            raise MemoryAccessError(
                f"access [{addr}, {addr + w}) outside memory of size "
                f"{self.size}"
            )
        if not (addrs % w).any():
            self._view(etype)[addrs // w] = values
            return
        rows = values.reshape(-1, 1).view(np.uint8)
        self.data[addrs[:, None] + np.arange(w)] = rows

    # -- Block access ---------------------------------------------------------

    def read_block(self, addr: int, count: int, etype: ElementType) -> np.ndarray:
        """Read ``count`` contiguous elements as a typed array (copy)."""
        w = etype.width
        nbytes = count * w
        self._check(addr, nbytes)
        if addr % w == 0:
            base = addr // w
            return self._view(etype)[base : base + count].copy()
        return self.data[addr : addr + nbytes].copy().view(etype.dtype)

    def write_block(self, addr: int, values: np.ndarray) -> None:
        nbytes = values.nbytes
        self._check(addr, nbytes)
        flat = np.ascontiguousarray(values).reshape(-1)
        self.data[addr : addr + nbytes] = flat.view(np.uint8)

    # -- Allocation -------------------------------------------------------------

    def alloc(self, nbytes: int, align: int = CACHE_LINE_BYTES) -> int:
        """Reserve ``nbytes`` and return the base address."""
        addr = (self._brk + align - 1) // align * align
        if addr + nbytes > self.size:
            raise MemoryAccessError(
                f"out of simulated memory allocating {nbytes} bytes"
            )
        self._brk = addr + nbytes
        return addr

    def alloc_array(self, values: np.ndarray, align: int = CACHE_LINE_BYTES) -> int:
        """Copy ``values`` into memory and return the base address."""
        flat = np.ascontiguousarray(values)
        addr = self.alloc(flat.nbytes, align)
        self.write_block(addr, flat)
        return addr

    def ndarray(self, addr: int, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Zero-copy typed view of memory at ``addr`` (for verification)."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        self._check(addr, nbytes)
        return self.data[addr : addr + nbytes].view(dtype).reshape(shape)
