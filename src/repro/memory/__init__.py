"""Memory substrates: backing store, caches, prefetchers, TLB, DRAM."""
from repro.memory.backing import Memory

__all__ = ["Memory"]
