"""Set-associative cache timing model with MSHRs and prefetcher hooks.

Timing is reservation-based: an access computes its completion cycle from
the current cache state, MSHR availability, and the next level's own
reservations — preserving bandwidth saturation and prefetch-timeliness
effects without a discrete event queue.  Lines carry MOESI states through
:mod:`repro.memory.coherence` (single-core evaluation, so bus events stem
only from evictions and upgrades).
"""
from __future__ import annotations

import math
from collections import OrderedDict
from typing import List, Optional

from repro.cpu.config import CacheConfig
from repro.memory.coherence import Event, LineState, next_state
from repro.memory.slots import SlotReservoir

#: MOESI transitions pre-resolved for the two events the access path
#: applies (derived from the full table, so they can never drift from it):
#: a local STORE moves every state to MODIFIED; an EVICT writes back only
#: dirty (M/O) lines.  Looking these up inline avoids hashing a
#: ``(state, event)`` tuple on every hot access.
_STORE_NEXT = {s: next_state(s, Event.STORE)[0] for s in LineState}
_EVICT_WRITEBACK = {s: next_state(s, Event.EVICT)[2] for s in LineState}


class _Line:
    __slots__ = ("ready", "state", "prefetched")

    def __init__(self, ready: float, state: LineState, prefetched: bool) -> None:
        self.ready = ready
        self.state = state
        self.prefetched = prefetched


class CacheStats:
    __slots__ = (
        "accesses",
        "hits",
        "misses",
        "late_hits",
        "writebacks",
        "prefetch_fills",
        "prefetch_hits",
        "bypasses",
    )

    def __init__(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.late_hits = 0  # hit on a line whose fill was still in flight
        self.writebacks = 0
        self.prefetch_fills = 0
        self.prefetch_hits = 0
        self.bypasses = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One cache level; ``next_level`` provides ``access(line, now, is_write)``."""

    def __init__(
        self,
        config: CacheConfig,
        next_level,
        prefetcher=None,
    ) -> None:
        self.config = config
        self.next_level = next_level
        self.prefetcher = prefetcher
        self._sets: List["OrderedDict[int, _Line]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._num_sets = config.num_sets
        self._mshr_ready: List[float] = []  # in-flight fill completion times
        self._ports = SlotReservoir(config.ports, 1.0)
        self.stats = CacheStats()
        # Hot-path scalars hoisted out of the config dataclass.
        self._hit_latency = config.hit_latency
        self._assoc = config.assoc
        self._mshrs = config.mshrs
        self._port_lanes = config.ports

    def _reserve_port(self, now: float) -> float:
        """Occupy one access-port slot; returns the access start."""
        return self._ports.reserve(now)

    # -- Lookup helpers --------------------------------------------------------

    def _set_of(self, line: int) -> "OrderedDict[int, _Line]":
        return self._sets[line % self._num_sets]

    def contains(self, line: int) -> bool:
        return line in self._set_of(line)

    def line_state(self, line: int) -> LineState:
        entry = self._set_of(line).get(line)
        return entry.state if entry else LineState.INVALID

    # -- MSHR reservation -------------------------------------------------------

    def can_accept(self, now: float) -> bool:
        """True when a miss arriving now would get an MSHR immediately.

        Used for flow control by posted-store paths (the commit-side store
        queue and the Streaming Engine store drain), so reservations never
        run unboundedly ahead of simulated time."""
        live = 0
        for t in self._mshr_ready:
            if t > now:
                live += 1
        return live < self._mshrs

    def next_mshr_free(self, now: float) -> float:
        """Earliest future in-flight fill completion — the soonest cycle
        ``can_accept`` can change its answer (``inf`` when nothing is in
        flight).  Event-horizon introspection for the fast-forward path;
        claims nothing."""
        best = math.inf
        for t in self._mshr_ready:
            if now < t < best:
                best = t
        return best

    def _reserve_mshr(self, start: float, ready: float) -> float:
        """Returns the (possibly delayed) start once an MSHR frees up."""
        live = [t for t in self._mshr_ready if t > start]
        if len(live) >= self._mshrs:
            start = min(live)
            live = [t for t in live if t > start]
        self._mshr_ready = live
        self._mshr_ready.append(ready)
        return start

    # -- Main access path ---------------------------------------------------------

    def access(
        self,
        line: int,
        now: float,
        is_write: bool = False,
        pc: int = 0,
        cacheable: bool = True,
    ) -> float:
        """Access one cache line; returns the data-ready cycle."""
        stats = self.stats
        if not cacheable:
            stats.bypasses += 1
            # One cycle of port occupancy, then forward untouched.
            start = self._reserve_port(now)
            return self.next_level.access(line, start + 1, is_write)

        stats.accesses += 1
        # Port reservation, inlined from SlotReservoir.reserve (unit
        # slots); the reservoir object stays the canonical state so its
        # introspection helpers keep working.
        ports = self._ports
        busy = ports._busy
        lanes = self._port_lanes
        index = int(now)
        count = busy.get(index, 0)
        while count >= lanes:
            index += 1
            count = busy.get(index, 0)
        busy[index] = count + 1
        ports._prune_in -= 1
        if not ports._prune_in:
            ports._prune_in = 8192
            ports._prune(index)
        if index > now:
            now = float(index)
        cset = self._sets[line % self._num_sets]
        entry = cset.get(line)
        hit_latency = self._hit_latency
        if entry is not None:
            cset.move_to_end(line)
            stats.hits += 1
            if entry.prefetched:
                stats.prefetch_hits += 1
                entry.prefetched = False
            ready = entry.ready
            if ready > now:
                stats.late_hits += 1
                done = ready + hit_latency
            else:
                done = now + hit_latency
            if is_write:
                entry.state = _STORE_NEXT[entry.state]
        else:
            stats.misses += 1
            start = self._reserve_mshr(now + hit_latency, 0.0)
            fill_ready = self.next_level.access(line, start, False)
            self._mshr_ready[-1] = fill_ready
            state = LineState.MODIFIED if is_write else LineState.EXCLUSIVE
            self._insert(line, fill_ready, state, prefetched=False)
            done = fill_ready + 1  # fill-to-use forwarding
        if self.prefetcher is not None:
            self._run_prefetcher(pc, line, now)
        return done

    def _insert(
        self, line: int, ready: float, state: LineState, prefetched: bool
    ) -> None:
        cset = self._sets[line % self._num_sets]
        cset[line] = _Line(ready, state, prefetched)
        cset.move_to_end(line)
        if len(cset) > self._assoc:
            victim_line, victim = cset.popitem(last=False)
            if _EVICT_WRITEBACK[victim.state]:
                self.stats.writebacks += 1
                # Dirty eviction: charge next-level bandwidth, off the
                # critical path.
                self.next_level.access(victim_line, ready, True)

    def _run_prefetcher(self, pc: int, line: int, now: float) -> None:
        targets = self.prefetcher.observe(pc, line * self.config.line_bytes)
        if not targets:
            return
        # Prefetches may use at most half the MSHRs, so they can never
        # starve demand misses.
        budget = self._mshrs // 2 or 1
        sets = self._sets
        num_sets = self._num_sets
        next_access = self.next_level.access
        for target in targets:
            if target in sets[target % num_sets]:
                continue
            live = [t for t in self._mshr_ready if t > now]
            if len(live) >= budget:
                break  # no prefetch MSHR: drop it (never stall demand)
            ready = next_access(target, now + 1, False)
            live.append(ready)
            self._mshr_ready = live
            self.stats.prefetch_fills += 1
            self._insert(target, ready, LineState.EXCLUSIVE, prefetched=True)

    def warm(self, line: int) -> None:
        """Pre-install a line (warm-cache measurement), bypassing timing."""
        self._insert(line, 0.0, LineState.EXCLUSIVE, prefetched=False)

    def flush_stats(self) -> None:
        self.stats = CacheStats()
