"""Exception hierarchy for the UVE reproduction.

Every error raised by the package derives from :class:`ReproError`, so
callers can catch a single type at the public-API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class DescriptorError(ReproError):
    """Malformed or over-limit stream descriptor configuration."""


class StreamError(ReproError):
    """Illegal stream operation (e.g. reading a finished stream)."""


class IsaError(ReproError):
    """Malformed instruction, operand, or program."""


class AssemblerError(IsaError):
    """Syntax or semantic error in UVE assembly text."""


class EncodingError(IsaError):
    """Instruction cannot be encoded/decoded to/from its binary form."""


class ExecutionError(ReproError):
    """Functional simulator detected an illegal execution."""


class MemoryAccessError(ReproError):
    """Access outside the simulated physical memory."""


class PageFaultError(MemoryAccessError):
    """Virtual address touched an unmapped page."""


class ConfigError(ReproError):
    """Inconsistent simulator configuration."""


class IRError(ReproError):
    """Structurally invalid loop-nest IR (see ``repro.ir.validate``)."""


class LoweringError(ReproError):
    """A backend cannot express a (valid) IR nest on its ISA."""
