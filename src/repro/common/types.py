"""Elementary data types shared across the ISA, streams, and simulators.

UVE supports four elementary widths (byte, half-word, word, double-word),
each in integer, unsigned, and (for 32/64-bit) floating-point flavours.
The vector length is a run-time property of the machine configuration; the
minimum is one element and the maximum is only bounded by the configuration
(the paper evaluates 512-bit vectors).
"""
from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class ElementType(enum.Enum):
    """Element type of a vector register or stream."""

    I8 = ("b", 1, np.int8)
    I16 = ("h", 2, np.int16)
    I32 = ("w", 4, np.int32)
    I64 = ("d", 8, np.int64)
    U8 = ("bu", 1, np.uint8)
    U16 = ("hu", 2, np.uint16)
    U32 = ("wu", 4, np.uint32)
    U64 = ("du", 8, np.uint64)
    F32 = ("fw", 4, np.float32)
    F64 = ("fd", 8, np.float64)

    def __init__(self, suffix: str, width: int, dtype) -> None:
        self.suffix = suffix
        self.width = width
        self.dtype = np.dtype(dtype)

    @property
    def is_float(self) -> bool:
        return self in (ElementType.F32, ElementType.F64)

    @property
    def is_signed(self) -> bool:
        return self in (
            ElementType.I8,
            ElementType.I16,
            ElementType.I32,
            ElementType.I64,
            ElementType.F32,
            ElementType.F64,
        )

    @classmethod
    def from_suffix(cls, suffix: str) -> "ElementType":
        for member in cls:
            if member.suffix == suffix:
                return member
        raise ValueError(f"unknown element-type suffix {suffix!r}")


#: Width of a cache line in bytes; also one 512-bit vector register.
CACHE_LINE_BYTES = 64

#: Default vector length in bits (as evaluated in the paper).
DEFAULT_VECTOR_BITS = 512

#: Page size used by the TLB model.
PAGE_BYTES = 4096


@dataclass(frozen=True)
class VectorShape:
    """Vector geometry: register width in bits and the element type."""

    bits: int = DEFAULT_VECTOR_BITS
    etype: ElementType = ElementType.F32

    def __post_init__(self) -> None:
        if self.bits % (self.etype.width * 8) != 0:
            raise ValueError(
                f"vector width {self.bits} is not a multiple of the "
                f"{self.etype.name} element width"
            )

    @property
    def lanes(self) -> int:
        """Number of elements held by one register of this shape."""
        return self.bits // (self.etype.width * 8)

    @property
    def bytes(self) -> int:
        return self.bits // 8


def lanes_for(bits: int, etype: ElementType) -> int:
    """Number of lanes a ``bits``-wide register offers for ``etype``."""
    return bits // (etype.width * 8)
