"""Shared primitive types and helpers."""
from repro.common.types import (
    CACHE_LINE_BYTES,
    DEFAULT_VECTOR_BITS,
    PAGE_BYTES,
    ElementType,
    VectorShape,
    lanes_for,
)

__all__ = [
    "CACHE_LINE_BYTES",
    "DEFAULT_VECTOR_BITS",
    "PAGE_BYTES",
    "ElementType",
    "VectorShape",
    "lanes_for",
]
