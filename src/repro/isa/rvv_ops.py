"""RVV-like baseline ISA (RISC-V "V" extension, paper Fig. 1.C).

The third vector-length-agnostic comparator the paper discusses: instead
of SVE's predication, RVV strip-mines with ``vsetvli`` — each iteration
requests the remaining element count and receives a granted vector
length ``vl = min(avl, VLMAX)``; all vector instructions then operate on
exactly ``vl`` elements, which handles loop tails by shortening the last
iteration.  Address bumping is explicit scalar arithmetic, exactly as in
the paper's listing (the shaded overhead instructions of Fig. 1.C).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.common.types import ElementType
from repro.isa import semantics
from repro.isa.instructions import Instruction, Operand, operand_regs
from repro.isa.microop import OpClass
from repro.isa.registers import Reg, RegClass
from repro.isa.vector import VecValue


@dataclass(frozen=True)
class VSetVli(Instruction):
    """``vsetvli rd, rs_avl``: grant ``vl = min(avl, VLMAX)`` and make it
    the active vector length for subsequent vector instructions."""

    rd: Reg
    avl: Operand
    etype: ElementType = ElementType.F32
    opclass = OpClass.INT_ALU

    def execute(self, state) -> Optional[str]:
        request = state.value_int(self.avl)
        if request > 0:
            granted = state.set_vl(request, self.etype)
        else:
            state.set_vl(1, self.etype)  # keep a defined (minimal) VL
            granted = 0
        state.write_x(self.rd, granted)
        return None

    @property
    def dests(self):
        return (self.rd,)

    @property
    def srcs(self):
        return operand_regs(self.avl)

    def __str__(self):
        return f"vsetvli {self.rd}, {self.avl}, e{self.etype.width * 8}"


@dataclass(frozen=True)
class VlLoad(Instruction):
    """``vle.v vd, (rs)``: unit-stride load of ``vl`` elements."""

    vd: Reg
    base: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_LOAD

    def execute(self, state) -> Optional[str]:
        vl = state.lanes(self.etype)
        width = self.etype.width
        start = state.read_x(self.base)
        data = state.mem.read_block(start, vl, self.etype)
        full = np.zeros(max(vl, 1), dtype=self.etype.dtype)
        full[:vl] = data
        state.record_mem_read(range(start, start + vl * width, width), width)
        state.write_v(
            self.vd, VecValue(full, np.ones(max(vl, 1), dtype=bool)), self.etype
        )
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return (self.base,)

    def __str__(self):
        return f"vle.v {self.vd}, ({self.base})"


@dataclass(frozen=True)
class VlStore(Instruction):
    """``vse.v vs, (rs)``: unit-stride store of ``vl`` elements."""

    vs: Reg
    base: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_STORE

    def execute(self, state) -> Optional[str]:
        vl = state.lanes(self.etype)
        width = self.etype.width
        start = state.read_x(self.base)
        value = state.read_v(self.vs, self.etype)
        state.mem.write_block(start, value.data[:vl])
        state.record_mem_write(range(start, start + vl * width, width), width)
        return None

    @property
    def srcs(self):
        return (self.vs, self.base)

    def __str__(self):
        return f"vse.v {self.vs}, ({self.base})"


@dataclass(frozen=True)
class VlLoadStrided(Instruction):
    """``vlse.v vd, (rs), rs_stride``: constant-stride load (bytes)."""

    vd: Reg
    base: Reg
    stride: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.GATHER

    def execute(self, state) -> Optional[str]:
        vl = state.lanes(self.etype)
        start = state.read_x(self.base)
        stride = state.read_x(self.stride)
        data = np.zeros(max(vl, 1), dtype=self.etype.dtype)
        addrs = []
        for i in range(vl):
            addr = start + i * stride
            data[i] = state.mem.read_scalar(addr, self.etype)
            addrs.append(addr)
        state.record_mem_read(addrs, self.etype.width)
        state.write_v(
            self.vd, VecValue(data, np.ones(max(vl, 1), dtype=bool)), self.etype
        )
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return (self.base, self.stride)

    def __str__(self):
        return f"vlse.v {self.vd}, ({self.base}), {self.stride}"


@dataclass(frozen=True)
class VOpVV(Instruction):
    """Vector-vector element-wise op over the active ``vl``."""

    op: str
    vd: Reg
    vs1: Reg
    vs2: Reg
    etype: ElementType = ElementType.F32

    def __post_init__(self) -> None:
        semantics.binary(self.op)

    @property
    def opclass(self):  # type: ignore[override]
        return semantics.vector_opclass(self.op)

    def execute(self, state) -> Optional[str]:
        vl = state.lanes(self.etype)
        a = state.read_v(self.vs1, self.etype)
        b = state.read_v(self.vs2, self.etype)
        with np.errstate(divide="ignore", invalid="ignore"):
            result = semantics.binary(self.op)(a.data[:vl], b.data[:vl])
        state.write_v(
            self.vd,
            VecValue(result.astype(self.etype.dtype),
                     np.ones(max(vl, 1), dtype=bool)),
            self.etype,
        )
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return (self.vs1, self.vs2)

    def __str__(self):
        return f"v{self.op}.vv {self.vd}, {self.vs1}, {self.vs2}"


@dataclass(frozen=True)
class VOpVF(Instruction):
    """Vector-scalar element-wise op (``v<op>.vf``)."""

    op: str
    vd: Reg
    vs: Reg
    fs: Reg
    etype: ElementType = ElementType.F32

    def __post_init__(self) -> None:
        semantics.binary(self.op)

    @property
    def opclass(self):  # type: ignore[override]
        return semantics.vector_opclass(self.op)

    def execute(self, state) -> Optional[str]:
        vl = state.lanes(self.etype)
        a = state.read_v(self.vs, self.etype)
        s = state.read_f(self.fs) if self.fs.cls is RegClass.F else state.read_x(self.fs)
        with np.errstate(divide="ignore", invalid="ignore"):
            result = semantics.binary(self.op)(
                a.data[:vl], self.etype.dtype.type(s)
            )
        state.write_v(
            self.vd,
            VecValue(result.astype(self.etype.dtype),
                     np.ones(max(vl, 1), dtype=bool)),
            self.etype,
        )
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return (self.vs, self.fs)

    def __str__(self):
        return f"v{self.op}.vf {self.vd}, {self.vs}, {self.fs}"


@dataclass(frozen=True)
class VMaccVF(Instruction):
    """``vfmacc.vf vd, fs, vs``: ``vd += fs * vs`` (Fig. 1.C's kernel op)."""

    vd: Reg
    fs: Reg
    vs: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_MAC

    def execute(self, state) -> Optional[str]:
        vl = state.lanes(self.etype)
        acc = state.read_v(self.vd, self.etype)
        a = state.read_v(self.vs, self.etype)
        s = state.read_f(self.fs)
        result = acc.data[:vl] + self.etype.dtype.type(s) * a.data[:vl]
        state.write_v(
            self.vd,
            VecValue(result.astype(self.etype.dtype),
                     np.ones(max(vl, 1), dtype=bool)),
            self.etype,
        )
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return (self.vd, self.fs, self.vs)

    def __str__(self):
        return f"vfmacc.vf {self.vd}, {self.fs}, {self.vs}"


@dataclass(frozen=True)
class VMaccVV(Instruction):
    """``vfmacc.vv vd, vs1, vs2``: ``vd += vs1 * vs2``."""

    vd: Reg
    vs1: Reg
    vs2: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_MAC

    def execute(self, state) -> Optional[str]:
        vl = state.lanes(self.etype)
        acc = state.read_v(self.vd, self.etype)
        a = state.read_v(self.vs1, self.etype)
        b = state.read_v(self.vs2, self.etype)
        result = acc.data[:vl] + a.data[:vl] * b.data[:vl]
        state.write_v(
            self.vd,
            VecValue(result.astype(self.etype.dtype),
                     np.ones(max(vl, 1), dtype=bool)),
            self.etype,
        )
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return (self.vd, self.vs1, self.vs2)

    def __str__(self):
        return f"vfmacc.vv {self.vd}, {self.vs1}, {self.vs2}"


@dataclass(frozen=True)
class VRed(Instruction):
    """``vfred<op>.vs``: reduce the active ``vl`` lanes into a scalar."""

    op: str
    rd: Reg
    vs: Reg
    etype: ElementType = ElementType.F32

    def __post_init__(self) -> None:
        semantics.reduce_fn(self.op)

    opclass = OpClass.VEC_RED

    def execute(self, state) -> Optional[str]:
        vl = state.lanes(self.etype)
        value = state.read_v(self.vs, self.etype)
        result = semantics.reduce_fn(self.op)(value.data[:vl]) if vl else 0
        if self.rd.cls is RegClass.F:
            state.write_f(self.rd, float(result))
        else:
            state.write_x(self.rd, int(result))
        return None

    @property
    def dests(self):
        return (self.rd,)

    @property
    def srcs(self):
        return (self.vs,)

    def __str__(self):
        return f"vfred{self.op}.vs {self.rd}, {self.vs}"


@dataclass(frozen=True)
class VDup(Instruction):
    """``vfmv.v.f``: broadcast a scalar to the active ``vl`` lanes."""

    vd: Reg
    src: Operand
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_MISC

    def execute(self, state) -> Optional[str]:
        vl = state.lanes(self.etype)
        if isinstance(self.src, Reg):
            value = (
                state.read_f(self.src)
                if self.src.cls is RegClass.F
                else state.read_x(self.src)
            )
        else:
            value = self.src
        data = np.full(max(vl, 1), value, dtype=self.etype.dtype)
        state.write_v(
            self.vd, VecValue(data, np.ones(max(vl, 1), dtype=bool)), self.etype
        )
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return operand_regs(self.src)

    def __str__(self):
        return f"vfmv.v.f {self.vd}, {self.src}"
