"""Binary instruction encoding for the UVE extension.

UVE instructions occupy the RISC-V custom opcode space as fixed 32-bit
words.  This module defines a concrete bit-level layout and provides
``encode``/``decode`` with round-trip guarantees for every register-form
UVE instruction (the assembler's immediate-operand forms are pseudo-
instructions that a real toolchain would materialise through scalar
registers first; encoding them raises :class:`EncodingError`).

Word layout (little-endian bit numbering)::

    [6:0]   opcode class (one per instruction family x variant)
    [11:7]  rd   (vector/stream, predicate, or scalar destination)
    [16:12] rs1
    [21:17] rs2
    [26:22] rs3
    [28:27] element width (00=b, 01=h, 10=w, 11=d)
    [30:29] sub-field (modifier target / branch dimension / behaviour)
    [31]    flag (direction, last, negate, complete — per family)
"""
from __future__ import annotations

from typing import Callable, Dict

from repro.common.types import ElementType
from repro.errors import EncodingError
from repro.isa import uve_ops as uve
from repro.isa.instructions import Instruction
from repro.isa.registers import P0, Reg, RegClass, f, p, u, x
from repro.streams.descriptor import (
    IndirectBehavior,
    Param,
    StaticBehavior,
)
from repro.streams.pattern import Direction, MemLevel

# -- Field helpers -------------------------------------------------------------

_WIDTH_CODE = {1: 0, 2: 1, 4: 2, 8: 3}
_WIDTH_ETYPE = {0: ElementType.I8, 1: ElementType.I16, 2: ElementType.F32,
                3: ElementType.F64}
_FWIDTH_ETYPE = {2: ElementType.F32, 3: ElementType.F64}
_PARAM_CODE = {Param.OFFSET: 0, Param.SIZE: 1, Param.STRIDE: 2}
_PARAM_FROM = {v: k for k, v in _PARAM_CODE.items()}
_IND_CODE = {IndirectBehavior.SET_ADD: 0, IndirectBehavior.SET_SUB: 1,
             IndirectBehavior.SET_VALUE: 2}
_IND_FROM = {v: k for k, v in _IND_CODE.items()}

#: opcode classes (7-bit); grouped by family.
CLS_CFG_1D = {MemLevel.L1: 0x0B, MemLevel.L2: 0x0C, MemLevel.MEM: 0x0D}
CLS_CFG_STA = {MemLevel.L1: 0x0E, MemLevel.L2: 0x0F, MemLevel.MEM: 0x10}
CLS_CFG_APP = 0x11
CLS_CFG_MOD = 0x12
CLS_CFG_IND = 0x13
CLS_CTL = 0x14
CLS_ALU = 0x20  # so.a.<op>.fp, two stream/vector sources
CLS_MAC = 0x21
CLS_MOVE = 0x22
CLS_DUP = 0x23
CLS_RED = 0x24
CLS_BR_END = 0x30
CLS_BR_DIM = 0x31

_ALU_OPS = ["add", "sub", "mul", "div", "min", "max", "and", "or", "xor"]
_RED_OPS = ["add", "min", "max", "mul"]
_CTL_KINDS = ["suspend", "resume", "stop"]


def _reg_field(operand, what: str) -> int:
    if not isinstance(operand, Reg):
        raise EncodingError(
            f"{what} must be a register to encode (immediate forms are "
            "assembler pseudo-instructions)"
        )
    return operand.index


def _pack(cls: int, rd: int = 0, rs1: int = 0, rs2: int = 0, rs3: int = 0,
          width: int = 0, sub: int = 0, flag: int = 0) -> int:
    for name, value, bits in (
        ("class", cls, 7), ("rd", rd, 5), ("rs1", rs1, 5), ("rs2", rs2, 5),
        ("rs3", rs3, 5), ("width", width, 2), ("sub", sub, 2), ("flag", flag, 1),
    ):
        if not 0 <= value < (1 << bits):
            raise EncodingError(f"field {name}={value} out of range")
    return (
        cls
        | (rd << 7)
        | (rs1 << 12)
        | (rs2 << 17)
        | (rs3 << 22)
        | (width << 27)
        | (sub << 29)
        | (flag << 31)
    )


class _Fields:
    __slots__ = ("cls", "rd", "rs1", "rs2", "rs3", "width", "sub", "flag")

    def __init__(self, word: int) -> None:
        if not 0 <= word < (1 << 32):
            raise EncodingError(f"not a 32-bit word: {word:#x}")
        self.cls = word & 0x7F
        self.rd = (word >> 7) & 0x1F
        self.rs1 = (word >> 12) & 0x1F
        self.rs2 = (word >> 17) & 0x1F
        self.rs3 = (word >> 22) & 0x1F
        self.width = (word >> 27) & 0x3
        self.sub = (word >> 29) & 0x3
        self.flag = (word >> 31) & 0x1


# -- Encode -------------------------------------------------------------------


def encode(inst: Instruction) -> int:
    """Encode a UVE instruction into its 32-bit word."""
    encoder = _ENCODERS.get(type(inst))
    if encoder is None:
        raise EncodingError(f"no binary encoding for {type(inst).__name__}")
    return encoder(inst)


def _enc_cfg(inst, classes_or_cls) -> int:
    if isinstance(classes_or_cls, dict):
        cls = classes_or_cls[inst.mem_level]
        flag = 1 if inst.direction is Direction.STORE else 0
    else:
        cls = classes_or_cls
        flag = 1 if getattr(inst, "last", False) else 0
    return _pack(
        cls,
        rd=inst.u.index,
        rs1=_reg_field(inst.offset, "offset"),
        rs2=_reg_field(inst.size, "size"),
        rs3=_reg_field(inst.stride, "stride"),
        width=_WIDTH_CODE[getattr(inst, "etype", ElementType.F32).width]
        if hasattr(inst, "etype") else 2,
        flag=flag,
    )


_ENCODERS: Dict[type, Callable] = {}

_ENCODERS[uve.SsConfig1D] = lambda i: _enc_cfg(i, CLS_CFG_1D)
_ENCODERS[uve.SsSta] = lambda i: _enc_cfg(i, CLS_CFG_STA)
_ENCODERS[uve.SsApp] = lambda i: _enc_cfg(i, CLS_CFG_APP)
_ENCODERS[uve.SsAppMod] = lambda i: _pack(
    CLS_CFG_MOD,
    rd=i.u.index,
    rs1=_reg_field(i.displacement, "displacement"),
    rs2=_reg_field(i.count, "count"),
    width=_PARAM_CODE[i.target],
    sub=0 if i.behavior is StaticBehavior.ADD else 1,
    flag=1 if i.last else 0,
)
_ENCODERS[uve.SsAppInd] = lambda i: _pack(
    CLS_CFG_IND,
    rd=i.u.index,
    rs1=i.origin.index,
    width=_PARAM_CODE[i.target],
    sub=_IND_CODE[i.behavior],
    flag=1 if i.last else 0,
)
_ENCODERS[uve.SsCtl] = lambda i: _pack(
    CLS_CTL, rd=i.u.index, sub=_CTL_KINDS.index(i.kind)
)
_ENCODERS[uve.SoOp] = lambda i: _pack(
    CLS_ALU,
    rd=i.ud.index,
    rs1=i.us1.index,
    rs2=i.us2.index,
    rs3=_ALU_OPS.index(i.op),
    width=_WIDTH_CODE[i.etype.width],
    sub=i.pred.index & 0x3 if i.pred != P0 else 0,
)
_ENCODERS[uve.SoMac] = lambda i: _pack(
    CLS_MAC, rd=i.ud.index, rs1=i.us1.index, rs2=i.us2.index,
    width=_WIDTH_CODE[i.etype.width],
)
_ENCODERS[uve.SoMove] = lambda i: _pack(
    CLS_MOVE, rd=i.ud.index, rs1=i.us.index,
    width=_WIDTH_CODE[i.etype.width],
)
_ENCODERS[uve.SoDup] = lambda i: _pack(
    CLS_DUP, rd=i.ud.index, rs1=_reg_field(i.src, "source"),
    width=_WIDTH_CODE[i.etype.width],
    flag=1 if isinstance(i.src, Reg) and i.src.cls is RegClass.F else 0,
)
_ENCODERS[uve.SoRed] = lambda i: _pack(
    CLS_RED, rd=i.ud.index, rs1=i.us.index, rs3=_RED_OPS.index(i.op),
    width=_WIDTH_CODE[i.etype.width],
)

# Branches carry a PC-relative offset in a real encoding; the label is an
# assembler abstraction, so branch words encode everything except the
# displacement (filled in at link time).  encode() packs offset 0.
_ENCODERS[uve.SoBranchEnd] = lambda i: _pack(
    CLS_BR_END, rs1=i.u.index, flag=1 if i.negate else 0
)
_ENCODERS[uve.SoBranchDim] = lambda i: _pack(
    CLS_BR_DIM, rs1=i.u.index, rs3=i.dim,
    flag=1 if i.complete else 0,
)


# -- Decode -------------------------------------------------------------------


def decode(word: int, label: str = "target") -> Instruction:
    """Decode a 32-bit word back into a UVE instruction.

    ``label`` substitutes the branch-displacement field, which a real
    decoder would turn into a PC-relative target.
    """
    fields = _Fields(word)
    cls = fields.cls
    etype = _WIDTH_ETYPE[fields.width]

    for classes, factory in ((CLS_CFG_1D, uve.SsConfig1D),
                             (CLS_CFG_STA, uve.SsSta)):
        for level, code in classes.items():
            if cls == code:
                return factory(
                    u(fields.rd),
                    Direction.STORE if fields.flag else Direction.LOAD,
                    x(fields.rs1), x(fields.rs2), x(fields.rs3),
                    etype=etype, mem_level=level,
                )
    if cls == CLS_CFG_APP:
        return uve.SsApp(u(fields.rd), x(fields.rs1), x(fields.rs2),
                         x(fields.rs3), last=bool(fields.flag))
    if cls == CLS_CFG_MOD:
        return uve.SsAppMod(
            u(fields.rd), _PARAM_FROM[fields.width],
            StaticBehavior.ADD if fields.sub == 0 else StaticBehavior.SUB,
            x(fields.rs1), x(fields.rs2), last=bool(fields.flag),
        )
    if cls == CLS_CFG_IND:
        return uve.SsAppInd(
            u(fields.rd), _PARAM_FROM[fields.width], _IND_FROM[fields.sub],
            u(fields.rs1), last=bool(fields.flag),
        )
    if cls == CLS_CTL:
        return uve.SsCtl(_CTL_KINDS[fields.sub], u(fields.rd))
    if cls == CLS_ALU:
        pred = p(fields.sub) if fields.sub else P0
        return uve.SoOp(_ALU_OPS[fields.rs3], u(fields.rd), u(fields.rs1),
                        u(fields.rs2), etype=etype, pred=pred)
    if cls == CLS_MAC:
        return uve.SoMac(u(fields.rd), u(fields.rs1), u(fields.rs2),
                         etype=etype)
    if cls == CLS_MOVE:
        return uve.SoMove(u(fields.rd), u(fields.rs1), etype=etype)
    if cls == CLS_DUP:
        src = f(fields.rs1) if fields.flag else x(fields.rs1)
        return uve.SoDup(u(fields.rd), src, etype=etype)
    if cls == CLS_RED:
        return uve.SoRed(_RED_OPS[fields.rs3], u(fields.rd), u(fields.rs1),
                         etype=etype)
    if cls == CLS_BR_END:
        return uve.SoBranchEnd(u(fields.rs1), label, negate=bool(fields.flag))
    if cls == CLS_BR_DIM:
        return uve.SoBranchDim(u(fields.rs1), fields.rs3, label,
                               complete=bool(fields.flag))
    raise EncodingError(f"unknown opcode class {cls:#x}")


def isa_catalog() -> Dict[str, int]:
    """Count the encodable instruction variants per family — the paper
    reports 450 instructions across 60 majors once all width/direction/
    level/operator variations are expanded."""
    widths = 4
    return {
        "stream-config-1d": len(CLS_CFG_1D) * 2 * widths // 2,  # dir in flag
        "stream-config-sta": len(CLS_CFG_STA) * 2 * widths // 2,
        "stream-config-app/end": 2,
        "stream-config-modifier": 3 * 2 * 2,
        "stream-config-indirect": 3 * 3 * 2,
        "stream-control": len(_CTL_KINDS),
        "vector-alu": len(_ALU_OPS) * widths,
        "vector-mac": widths,
        "vector-move/dup": 2 * widths,
        "reductions": len(_RED_OPS) * widths,
        "stream-branches": 2 + 8 * 2,
    }
