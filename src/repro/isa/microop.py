"""Micro-op classification used by the timing model.

Each architectural instruction corresponds to exactly one µOp (the
paper's RISC-style design principle); the :class:`OpClass` determines
which functional unit executes it and with what latency (configured in
:mod:`repro.cpu.config`).
"""
from __future__ import annotations

import enum


class OpClass(enum.Enum):
    # Scalar integer cluster.
    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    # Scalar / vector FP and SIMD cluster (shared FUs, per Table I).
    FP_ALU = "fp_alu"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    FP_MAC = "fp_mac"
    VEC_ALU = "vec_alu"
    VEC_MUL = "vec_mul"
    VEC_MAC = "vec_mac"
    VEC_DIV = "vec_div"
    VEC_RED = "vec_red"  # horizontal reductions
    VEC_MISC = "vec_misc"  # moves, dup, predicate manipulation
    # Memory cluster.
    LOAD = "load"
    STORE = "store"
    VEC_LOAD = "vec_load"
    VEC_STORE = "vec_store"
    GATHER = "gather"
    SCATTER = "scatter"
    # Control.
    BRANCH = "branch"
    # Streaming (executed by rename/commit + Streaming Engine).
    STREAM_CFG = "stream_cfg"
    STREAM_CTL = "stream_ctl"
    # Misc.
    NOP = "nop"
    HALT = "halt"

    @property
    def is_mem(self) -> bool:
        return self in _MEM

    @property
    def is_load(self) -> bool:
        return self in (OpClass.LOAD, OpClass.VEC_LOAD, OpClass.GATHER)

    @property
    def is_store(self) -> bool:
        return self in (OpClass.STORE, OpClass.VEC_STORE, OpClass.SCATTER)

    @property
    def is_branch(self) -> bool:
        return self is OpClass.BRANCH

    @property
    def is_vector(self) -> bool:
        return self in _VECTOR

    @property
    def cluster(self) -> "FuCluster":
        return _CLUSTER[self]


class FuCluster(enum.Enum):
    """Functional-unit cluster an op issues to (Table I)."""

    INT = "int"  # 2x Int ALUs
    FP = "fp"  # 2x Int-vector/FP FUs
    MEM = "mem"  # 2x load + 1x store ports
    NONE = "none"  # handled outside the execution clusters


_MEM = {
    OpClass.LOAD,
    OpClass.STORE,
    OpClass.VEC_LOAD,
    OpClass.VEC_STORE,
    OpClass.GATHER,
    OpClass.SCATTER,
}

_VECTOR = {
    OpClass.VEC_ALU,
    OpClass.VEC_MUL,
    OpClass.VEC_MAC,
    OpClass.VEC_DIV,
    OpClass.VEC_RED,
    OpClass.VEC_MISC,
    OpClass.VEC_LOAD,
    OpClass.VEC_STORE,
    OpClass.GATHER,
    OpClass.SCATTER,
}

_CLUSTER = {
    OpClass.INT_ALU: FuCluster.INT,
    OpClass.INT_MUL: FuCluster.INT,
    OpClass.INT_DIV: FuCluster.INT,
    OpClass.FP_ALU: FuCluster.FP,
    OpClass.FP_MUL: FuCluster.FP,
    OpClass.FP_DIV: FuCluster.FP,
    OpClass.FP_MAC: FuCluster.FP,
    OpClass.VEC_ALU: FuCluster.FP,
    OpClass.VEC_MUL: FuCluster.FP,
    OpClass.VEC_MAC: FuCluster.FP,
    OpClass.VEC_DIV: FuCluster.FP,
    OpClass.VEC_RED: FuCluster.FP,
    OpClass.VEC_MISC: FuCluster.FP,
    OpClass.LOAD: FuCluster.MEM,
    OpClass.STORE: FuCluster.MEM,
    OpClass.VEC_LOAD: FuCluster.MEM,
    OpClass.VEC_STORE: FuCluster.MEM,
    OpClass.GATHER: FuCluster.MEM,
    OpClass.SCATTER: FuCluster.MEM,
    OpClass.BRANCH: FuCluster.INT,
    OpClass.STREAM_CFG: FuCluster.NONE,
    OpClass.STREAM_CTL: FuCluster.NONE,
    OpClass.NOP: FuCluster.NONE,
    OpClass.HALT: FuCluster.NONE,
}
