"""Shared element-wise operator semantics.

All three vector ISAs (UVE, SVE-like, NEON-like) and the scalar base ISA
compute through this table, so numerical behaviour is identical across
ISAs by construction — differences between ISAs are purely architectural
(instruction counts, predication, streaming).
"""
from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import IsaError
from repro.isa.microop import OpClass

#: Binary element-wise operators: (a, b) -> result, numpy-broadcastable.
BINARY_OPS: Dict[str, Callable] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
    "min": np.minimum,
    "max": np.maximum,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: a << b,
    "srl": lambda a, b: a >> b,
}

#: Unary element-wise operators.
UNARY_OPS: Dict[str, Callable] = {
    "neg": lambda a: -a,
    "abs": np.abs,
    "sqrt": np.sqrt,
    "not": lambda a: ~a,
    "mov": lambda a: a,
}

#: Reduction operators: vector -> scalar.
REDUCE_OPS: Dict[str, Callable] = {
    "add": np.sum,
    "min": np.min,
    "max": np.max,
    "mul": np.prod,
}

#: Comparison operators (predicate generation).
COMPARE_OPS: Dict[str, Callable] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}

#: OpClass of a binary vector operator (for FU selection / latency).
_VEC_CLASS = {
    "mul": OpClass.VEC_MUL,
    "div": OpClass.VEC_DIV,
}

_FP_CLASS = {
    "mul": OpClass.FP_MUL,
    "div": OpClass.FP_DIV,
}

_INT_CLASS = {
    "mul": OpClass.INT_MUL,
    "div": OpClass.INT_DIV,
}


def binary(op: str) -> Callable:
    try:
        return BINARY_OPS[op]
    except KeyError:
        raise IsaError(f"unknown binary operator {op!r}") from None


def unary(op: str) -> Callable:
    try:
        return UNARY_OPS[op]
    except KeyError:
        raise IsaError(f"unknown unary operator {op!r}") from None


def reduce_fn(op: str) -> Callable:
    try:
        return REDUCE_OPS[op]
    except KeyError:
        raise IsaError(f"unknown reduction operator {op!r}") from None


def compare(op: str) -> Callable:
    try:
        return COMPARE_OPS[op]
    except KeyError:
        raise IsaError(f"unknown comparison operator {op!r}") from None


def vector_opclass(op: str) -> OpClass:
    return _VEC_CLASS.get(op, OpClass.VEC_ALU)


def scalar_fp_opclass(op: str) -> OpClass:
    return _FP_CLASS.get(op, OpClass.FP_ALU)


def scalar_int_opclass(op: str) -> OpClass:
    return _INT_CLASS.get(op, OpClass.INT_ALU)
