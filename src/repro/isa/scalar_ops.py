"""Scalar base ISA (RISC-V flavoured).

Provides the integer/FP scalar instructions, scalar memory accesses and
branches used by loop control in the baseline kernels and by the scalar
fallback implementations of the benchmarks the ARM compiler could not
vectorize.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.types import ElementType
from repro.errors import IsaError
from repro.isa import semantics
from repro.isa.instructions import Instruction, Operand, operand_regs
from repro.isa.microop import OpClass
from repro.isa.registers import Reg, RegClass


def _check_class(reg: Reg, cls: RegClass, what: str) -> None:
    if reg.cls is not cls:
        raise IsaError(f"{what} must be an {cls.value}-register, got {reg}")


@dataclass(frozen=True)
class Li(Instruction):
    """Load integer immediate: ``rd = imm``."""

    rd: Reg
    imm: int
    opclass = OpClass.INT_ALU

    def execute(self, state) -> Optional[str]:
        state.write_x(self.rd, int(self.imm))
        return None

    @property
    def dests(self):
        return (self.rd,)

    def __str__(self):
        return f"li {self.rd}, {self.imm}"


@dataclass(frozen=True)
class FLi(Instruction):
    """Load FP immediate: ``fd = value`` (assembler convenience)."""

    fd: Reg
    value: float
    opclass = OpClass.FP_ALU

    def execute(self, state) -> Optional[str]:
        state.write_f(self.fd, float(self.value))
        return None

    @property
    def dests(self):
        return (self.fd,)

    def __str__(self):
        return f"fli {self.fd}, {self.value}"


@dataclass(frozen=True)
class IntOp(Instruction):
    """Integer ALU op: ``rd = rs1 <op> rs2`` (register or immediate rs2)."""

    op: str
    rd: Reg
    rs1: Reg
    rs2: Operand

    def __post_init__(self) -> None:
        semantics.binary(self.op)

    @property
    def opclass(self):  # type: ignore[override]
        return semantics.scalar_int_opclass(self.op)

    def execute(self, state) -> Optional[str]:
        a = state.read_x(self.rs1)
        b = state.value_int(self.rs2)
        if self.op == "div":
            # RISC-V semantics: division never traps (x/0 yields a
            # defined value; we use 0 for simplicity).
            result = int(a / b) if b else 0
        else:
            result = semantics.binary(self.op)(a, b)
        state.write_x(self.rd, int(result))
        return None

    @property
    def dests(self):
        return (self.rd,)

    @property
    def srcs(self):
        return operand_regs(self.rs1, self.rs2)

    def __str__(self):
        return f"{self.op} {self.rd}, {self.rs1}, {self.rs2}"


@dataclass(frozen=True)
class FOp(Instruction):
    """Scalar FP op: ``fd = fs1 <op> fs2``."""

    op: str
    fd: Reg
    fs1: Reg
    fs2: Operand

    def __post_init__(self) -> None:
        semantics.binary(self.op)

    @property
    def opclass(self):  # type: ignore[override]
        return semantics.scalar_fp_opclass(self.op)

    def execute(self, state) -> Optional[str]:
        a = state.read_f(self.fs1)
        b = state.value_float(self.fs2)
        state.write_f(self.fd, float(semantics.binary(self.op)(a, b)))
        return None

    @property
    def dests(self):
        return (self.fd,)

    @property
    def srcs(self):
        return operand_regs(self.fs1, self.fs2)

    def __str__(self):
        return f"f{self.op} {self.fd}, {self.fs1}, {self.fs2}"


@dataclass(frozen=True)
class FUnary(Instruction):
    """Scalar FP unary op (``neg``, ``abs``, ``sqrt``, ``mov``)."""

    op: str
    fd: Reg
    fs: Reg

    def __post_init__(self) -> None:
        semantics.unary(self.op)

    @property
    def opclass(self):  # type: ignore[override]
        return OpClass.FP_DIV if self.op == "sqrt" else OpClass.FP_ALU

    def execute(self, state) -> Optional[str]:
        state.write_f(self.fd, float(semantics.unary(self.op)(state.read_f(self.fs))))
        return None

    @property
    def dests(self):
        return (self.fd,)

    @property
    def srcs(self):
        return (self.fs,)

    def __str__(self):
        return f"f{self.op} {self.fd}, {self.fs}"


@dataclass(frozen=True)
class FMac(Instruction):
    """Scalar fused multiply-add: ``fd += fs1 * fs2``."""

    fd: Reg
    fs1: Reg
    fs2: Reg
    opclass = OpClass.FP_MAC

    def execute(self, state) -> Optional[str]:
        acc = state.read_f(self.fd)
        state.write_f(self.fd, acc + state.read_f(self.fs1) * state.read_f(self.fs2))
        return None

    @property
    def dests(self):
        return (self.fd,)

    @property
    def srcs(self):
        return (self.fd, self.fs1, self.fs2)

    def __str__(self):
        return f"fmadd {self.fd}, {self.fs1}, {self.fs2}"


@dataclass(frozen=True)
class Move(Instruction):
    """Inter-bank scalar move (``rd = rs``), with int<->float convert."""

    rd: Reg
    rs: Reg
    opclass = OpClass.INT_ALU

    def execute(self, state) -> Optional[str]:
        if self.rs.cls is RegClass.F:
            value = state.read_f(self.rs)
        else:
            value = state.read_x(self.rs)
        if self.rd.cls is RegClass.F:
            state.write_f(self.rd, float(value))
        else:
            state.write_x(self.rd, int(value))
        return None

    @property
    def dests(self):
        return (self.rd,)

    @property
    def srcs(self):
        return (self.rs,)

    def __str__(self):
        return f"mv {self.rd}, {self.rs}"


@dataclass(frozen=True)
class Load(Instruction):
    """Scalar load: ``rd = mem[x[base] + offset]`` (byte offset)."""

    rd: Reg
    base: Reg
    offset: Operand
    etype: ElementType = ElementType.I64

    def __post_init__(self) -> None:
        _check_class(self.base, RegClass.X, "load base")

    opclass = OpClass.LOAD

    def execute(self, state) -> Optional[str]:
        addr = state.read_x(self.base) + state.value_int(self.offset)
        value = state.mem.read_scalar(addr, self.etype)
        state.record_mem_read([addr], self.etype.width)
        if self.rd.cls is RegClass.F:
            state.write_f(self.rd, float(value))
        else:
            state.write_x(self.rd, int(value))
        return None

    @property
    def dests(self):
        return (self.rd,)

    @property
    def srcs(self):
        return operand_regs(self.base, self.offset)

    def __str__(self):
        return f"l{self.etype.suffix} {self.rd}, {self.offset}({self.base})"


@dataclass(frozen=True)
class Store(Instruction):
    """Scalar store: ``mem[x[base] + offset] = rs``."""

    rs: Reg
    base: Reg
    offset: Operand
    etype: ElementType = ElementType.I64

    def __post_init__(self) -> None:
        _check_class(self.base, RegClass.X, "store base")

    opclass = OpClass.STORE

    def execute(self, state) -> Optional[str]:
        addr = state.read_x(self.base) + state.value_int(self.offset)
        if self.rs.cls is RegClass.F:
            value = state.read_f(self.rs)
        else:
            value = state.read_x(self.rs)
        state.mem.write_scalar(addr, value, self.etype)
        state.record_mem_write([addr], self.etype.width)
        return None

    @property
    def srcs(self):
        return operand_regs(self.rs, self.base, self.offset)

    def __str__(self):
        return f"s{self.etype.suffix} {self.rs}, {self.offset}({self.base})"


@dataclass(frozen=True)
class BranchCmp(Instruction):
    """Conditional branch: taken when ``rs1 <cond> rs2``."""

    cond: str
    rs1: Reg
    rs2: Operand
    label: str

    def __post_init__(self) -> None:
        semantics.compare(self.cond)

    opclass = OpClass.BRANCH

    def execute(self, state) -> Optional[str]:
        if self.rs1.cls is RegClass.F:
            a = state.read_f(self.rs1)
            b = state.value_float(self.rs2)
        else:
            a = state.read_x(self.rs1)
            b = state.value_int(self.rs2)
        return self.label if semantics.compare(self.cond)(a, b) else None

    @property
    def srcs(self):
        return operand_regs(self.rs1, self.rs2)

    @property
    def label_target(self):
        return self.label

    def __str__(self):
        return f"b{self.cond} {self.rs1}, {self.rs2}, .{self.label}"


@dataclass(frozen=True)
class Jump(Instruction):
    """Unconditional jump."""

    label: str
    opclass = OpClass.BRANCH

    def execute(self, state) -> Optional[str]:
        return self.label

    @property
    def label_target(self):
        return self.label

    def __str__(self):
        return f"j .{self.label}"


@dataclass(frozen=True)
class Halt(Instruction):
    """Stop program execution (test harness convention)."""

    opclass = OpClass.HALT

    def execute(self, state) -> Optional[str]:
        state.halt()
        return None

    def __str__(self):
        return "halt"


@dataclass(frozen=True)
class Nop(Instruction):
    opclass = OpClass.NOP

    def execute(self, state) -> Optional[str]:
        return None

    def __str__(self):
        return "nop"
