"""SVE-like baseline vector ISA (vector-length agnostic, predicated).

Models the ARM SVE instructions used by the paper's baseline (Fig. 1.B):
``whilelt`` predicate generation, predicated contiguous loads/stores and
gathers, predicated arithmetic with merging semantics, ``fmla``,
element-count increments, and predicate-driven loop branches.  Vector
length comes from the machine configuration, exactly as in SVE.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.common.types import ElementType
from repro.isa import semantics
from repro.isa.instructions import Instruction, Operand, operand_regs
from repro.isa.microop import OpClass
from repro.isa.registers import P0, Reg, RegClass
from repro.isa.vector import VecValue


@dataclass(frozen=True)
class WhileLt(Instruction):
    """``whilelt pd, rs1, rs2``: lane *i* valid iff ``rs1 + i < rs2``."""

    pd: Reg
    rs1: Reg
    rs2: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_MISC

    def execute(self, state) -> Optional[str]:
        lanes = state.lanes(self.etype)
        base = state.read_x(self.rs1)
        bound = state.read_x(self.rs2)
        mask = np.arange(lanes) + base < bound
        state.write_pred(self.pd, mask)
        return None

    @property
    def dests(self):
        return (self.pd,)

    @property
    def srcs(self):
        return (self.rs1, self.rs2)

    def __str__(self):
        return f"whilelt {self.pd}.{self.etype.suffix}, {self.rs1}, {self.rs2}"


@dataclass(frozen=True)
class PTrue(Instruction):
    """``ptrue pd``: all lanes valid."""

    pd: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_MISC

    def execute(self, state) -> Optional[str]:
        state.write_pred(self.pd, np.ones(state.lanes(self.etype), dtype=bool))
        return None

    @property
    def dests(self):
        return (self.pd,)

    def __str__(self):
        return f"ptrue {self.pd}.{self.etype.suffix}"


@dataclass(frozen=True)
class BranchPred(Instruction):
    """Predicate branch: ``kind`` is ``first`` (lane 0 set), ``any``, or
    ``none``."""

    kind: str
    pg: Reg
    label: str
    etype: ElementType = ElementType.F32
    opclass = OpClass.BRANCH

    def execute(self, state) -> Optional[str]:
        mask = state.read_pred(self.pg, state.lanes(self.etype))
        if self.kind == "first":
            taken = bool(mask[0]) if len(mask) else False
        elif self.kind == "any":
            taken = bool(mask.any())
        elif self.kind == "none":
            taken = not mask.any()
        else:
            raise ValueError(f"unknown predicate-branch kind {self.kind!r}")
        return self.label if taken else None

    @property
    def srcs(self):
        return (self.pg,)

    @property
    def label_target(self):
        return self.label

    def __str__(self):
        return f"b.{self.kind} {self.pg}, .{self.label}"


def _address(state, base: Reg, index: Optional[Operand], etype: ElementType) -> int:
    addr = state.read_x(base)
    if index is not None:
        addr += state.value_int(index) * etype.width
    return addr


@dataclass(frozen=True)
class Ld1(Instruction):
    """Predicated contiguous vector load: lanes from ``base + index*ew``."""

    vd: Reg
    pg: Reg
    base: Reg
    index: Optional[Operand] = None
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_LOAD

    def execute(self, state) -> Optional[str]:
        lanes = state.lanes(self.etype)
        mask = state.read_pred(self.pg, lanes)
        start = _address(state, self.base, self.index, self.etype)
        width = self.etype.width
        if mask.all():  # fast path: full contiguous load
            data = state.mem.read_block(start, lanes, self.etype)
            addrs = range(start, start + lanes * width, width)
        else:
            data = np.zeros(lanes, dtype=self.etype.dtype)
            addrs = []
            for i in range(lanes):
                if mask[i]:
                    addr = start + i * width
                    data[i] = state.mem.read_scalar(addr, self.etype)
                    addrs.append(addr)
        state.record_mem_read(addrs, width)
        state.write_v(self.vd, VecValue(data, mask.copy()), self.etype)
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return operand_regs(self.pg, self.base, self.index)

    def __str__(self):
        idx = f", {self.index}, lsl" if self.index is not None else ""
        return f"ld1{self.etype.suffix} {self.vd}, {self.pg}/z, [{self.base}{idx}]"


@dataclass(frozen=True)
class Ld1R(Instruction):
    """Load-and-replicate: broadcast ``mem[base]`` to all valid lanes."""

    vd: Reg
    pg: Reg
    base: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_LOAD

    def execute(self, state) -> Optional[str]:
        lanes = state.lanes(self.etype)
        mask = state.read_pred(self.pg, lanes)
        addr = state.read_x(self.base)
        value = state.mem.read_scalar(addr, self.etype)
        state.record_mem_read([addr], self.etype.width)
        data = np.full(lanes, value, dtype=self.etype.dtype)
        state.write_v(self.vd, VecValue(data, mask.copy()), self.etype)
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return (self.pg, self.base)

    def __str__(self):
        return f"ld1r{self.etype.suffix} {self.vd}, {self.pg}/z, [{self.base}]"


@dataclass(frozen=True)
class St1(Instruction):
    """Predicated contiguous vector store."""

    vs: Reg
    pg: Reg
    base: Reg
    index: Optional[Operand] = None
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_STORE

    def execute(self, state) -> Optional[str]:
        lanes = state.lanes(self.etype)
        mask = state.read_pred(self.pg, lanes)
        value = state.read_v(self.vs, self.etype)
        start = _address(state, self.base, self.index, self.etype)
        width = self.etype.width
        if mask.all():  # fast path: full contiguous store
            state.mem.write_block(start, value.data)
            addrs = range(start, start + lanes * width, width)
        else:
            addrs = []
            for i in range(lanes):
                if mask[i]:
                    addr = start + i * width
                    state.mem.write_scalar(addr, value.data[i], self.etype)
                    addrs.append(addr)
        state.record_mem_write(addrs, width)
        return None

    @property
    def srcs(self):
        return operand_regs(self.vs, self.pg, self.base, self.index)

    def __str__(self):
        idx = f", {self.index}, lsl" if self.index is not None else ""
        return f"st1{self.etype.suffix} {self.vs}, {self.pg}, [{self.base}{idx}]"


@dataclass(frozen=True)
class Ld1Gather(Instruction):
    """Gather load: lane *i* from ``base + vindex[i]*ew``."""

    vd: Reg
    pg: Reg
    base: Reg
    vindex: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.GATHER

    def execute(self, state) -> Optional[str]:
        lanes = state.lanes(self.etype)
        mask = state.read_pred(self.pg, lanes)
        base = state.read_x(self.base)
        index = state.read_v(self.vindex, self.etype)
        width = self.etype.width
        data = np.zeros(lanes, dtype=self.etype.dtype)
        addrs = []
        for i in range(lanes):
            if mask[i]:
                addr = base + int(index.data[i]) * width
                data[i] = state.mem.read_scalar(addr, self.etype)
                addrs.append(addr)
        state.record_mem_read(addrs, width)
        state.write_v(self.vd, VecValue(data, mask.copy()), self.etype)
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return (self.pg, self.base, self.vindex)

    def __str__(self):
        return (
            f"ld1{self.etype.suffix} {self.vd}, {self.pg}/z, "
            f"[{self.base}, {self.vindex}]"
        )


@dataclass(frozen=True)
class St1Scatter(Instruction):
    """Scatter store: lane *i* to ``base + vindex[i]*ew``."""

    vs: Reg
    pg: Reg
    base: Reg
    vindex: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.SCATTER

    def execute(self, state) -> Optional[str]:
        lanes = state.lanes(self.etype)
        mask = state.read_pred(self.pg, lanes)
        base = state.read_x(self.base)
        index = state.read_v(self.vindex, self.etype)
        value = state.read_v(self.vs, self.etype)
        width = self.etype.width
        addrs = []
        for i in range(lanes):
            if mask[i]:
                addr = base + int(index.data[i]) * width
                state.mem.write_scalar(addr, value.data[i], self.etype)
                addrs.append(addr)
        state.record_mem_write(addrs, width)
        return None

    @property
    def srcs(self):
        return (self.vs, self.pg, self.base, self.vindex)

    def __str__(self):
        return (
            f"st1{self.etype.suffix} {self.vs}, {self.pg}, "
            f"[{self.base}, {self.vindex}]"
        )


@dataclass(frozen=True)
class VOp(Instruction):
    """Predicated element-wise op with merging: inactive lanes keep vd."""

    op: str
    vd: Reg
    pg: Reg
    vs1: Reg
    vs2: Reg
    etype: ElementType = ElementType.F32

    def __post_init__(self) -> None:
        semantics.binary(self.op)

    @property
    def opclass(self):  # type: ignore[override]
        return semantics.vector_opclass(self.op)

    def execute(self, state) -> Optional[str]:
        lanes = state.lanes(self.etype)
        mask = state.read_pred(self.pg, lanes)
        a = state.read_v(self.vs1, self.etype)
        b = state.read_v(self.vs2, self.etype)
        old = state.read_v(self.vd, self.etype)
        with np.errstate(divide="ignore", invalid="ignore"):
            result = semantics.binary(self.op)(a.data, b.data)
        data = np.where(mask, result, old.data).astype(self.etype.dtype)
        valid = np.where(mask, a.valid & b.valid, old.valid)
        state.write_v(self.vd, VecValue(data, valid), self.etype)
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return (self.pg, self.vs1, self.vs2, self.vd)

    def __str__(self):
        return (
            f"f{self.op} {self.vd}.{self.etype.suffix}, {self.pg}/m, "
            f"{self.vs1}, {self.vs2}"
        )


@dataclass(frozen=True)
class Fmla(Instruction):
    """Predicated fused multiply-accumulate: ``vd += vs1 * vs2``."""

    vd: Reg
    pg: Reg
    vs1: Reg
    vs2: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_MAC

    def execute(self, state) -> Optional[str]:
        lanes = state.lanes(self.etype)
        mask = state.read_pred(self.pg, lanes)
        a = state.read_v(self.vs1, self.etype)
        b = state.read_v(self.vs2, self.etype)
        acc = state.read_v(self.vd, self.etype)
        result = acc.data + a.data * b.data
        data = np.where(mask, result, acc.data).astype(self.etype.dtype)
        valid = np.where(mask, a.valid & b.valid & acc.valid, acc.valid)
        state.write_v(self.vd, VecValue(data, valid), self.etype)
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return (self.pg, self.vs1, self.vs2, self.vd)

    def __str__(self):
        return f"fmla {self.vd}.{self.etype.suffix}, {self.pg}/m, {self.vs1}, {self.vs2}"


@dataclass(frozen=True)
class Dup(Instruction):
    """Broadcast a scalar register or immediate to every lane."""

    vd: Reg
    src: Operand
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_MISC

    def execute(self, state) -> Optional[str]:
        lanes = state.lanes(self.etype)
        if isinstance(self.src, Reg):
            if self.src.cls is RegClass.F:
                value = state.read_f(self.src)
            else:
                value = state.read_x(self.src)
        else:
            value = self.src
        data = np.full(lanes, value, dtype=self.etype.dtype)
        state.write_v(self.vd, VecValue(data, np.ones(lanes, dtype=bool)), self.etype)
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return operand_regs(self.src)

    def __str__(self):
        return f"dup {self.vd}.{self.etype.suffix}, {self.src}"


@dataclass(frozen=True)
class Index(Instruction):
    """``index vd, base, step``: lane *i* = base + i*step."""

    vd: Reg
    base: Operand
    step: Operand
    etype: ElementType = ElementType.I32
    opclass = OpClass.VEC_MISC

    def execute(self, state) -> Optional[str]:
        lanes = state.lanes(self.etype)
        base = state.value_int(self.base)
        step = state.value_int(self.step)
        data = (base + np.arange(lanes) * step).astype(self.etype.dtype)
        state.write_v(self.vd, VecValue(data, np.ones(lanes, dtype=bool)), self.etype)
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return operand_regs(self.base, self.step)

    def __str__(self):
        return f"index {self.vd}.{self.etype.suffix}, {self.base}, {self.step}"


@dataclass(frozen=True)
class IncElems(Instruction):
    """``incw rd``: rd += number of lanes (loop-counter increment)."""

    rd: Reg
    etype: ElementType = ElementType.F32
    mult: int = 1
    opclass = OpClass.INT_ALU

    def execute(self, state) -> Optional[str]:
        state.write_x(self.rd, state.read_x(self.rd) + state.lanes(self.etype) * self.mult)
        return None

    @property
    def dests(self):
        return (self.rd,)

    @property
    def srcs(self):
        return (self.rd,)

    def __str__(self):
        return f"inc{self.etype.suffix} {self.rd}"


@dataclass(frozen=True)
class CntElems(Instruction):
    """``cntw rd``: rd = number of lanes."""

    rd: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.INT_ALU

    def execute(self, state) -> Optional[str]:
        state.write_x(self.rd, state.lanes(self.etype))
        return None

    @property
    def dests(self):
        return (self.rd,)

    def __str__(self):
        return f"cnt{self.etype.suffix} {self.rd}"


@dataclass(frozen=True)
class Red(Instruction):
    """Predicated horizontal reduction into a scalar register."""

    op: str
    rd: Reg
    pg: Reg
    vs: Reg
    etype: ElementType = ElementType.F32

    def __post_init__(self) -> None:
        semantics.reduce_fn(self.op)

    opclass = OpClass.VEC_RED

    def execute(self, state) -> Optional[str]:
        lanes = state.lanes(self.etype)
        mask = state.read_pred(self.pg, lanes)
        value = state.read_v(self.vs, self.etype)
        active = value.data[mask & value.valid]
        if len(active) == 0:
            result = 0.0
        else:
            result = semantics.reduce_fn(self.op)(active)
        if self.rd.cls is RegClass.F:
            state.write_f(self.rd, float(result))
        else:
            state.write_x(self.rd, int(result))
        return None

    @property
    def dests(self):
        return (self.rd,)

    @property
    def srcs(self):
        return (self.pg, self.vs)

    def __str__(self):
        return f"f{self.op}v {self.rd}, {self.pg}, {self.vs}.{self.etype.suffix}"


@dataclass(frozen=True)
class CmpPred(Instruction):
    """Predicated vector compare producing a predicate."""

    cond: str
    pd: Reg
    pg: Reg
    vs1: Reg
    vs2: Reg
    etype: ElementType = ElementType.F32

    def __post_init__(self) -> None:
        semantics.compare(self.cond)

    opclass = OpClass.VEC_MISC

    def execute(self, state) -> Optional[str]:
        lanes = state.lanes(self.etype)
        mask = state.read_pred(self.pg, lanes)
        a = state.read_v(self.vs1, self.etype)
        b = state.read_v(self.vs2, self.etype)
        result = semantics.compare(self.cond)(a.data, b.data) & mask
        state.write_pred(self.pd, result)
        return None

    @property
    def dests(self):
        return (self.pd,)

    @property
    def srcs(self):
        return (self.pg, self.vs1, self.vs2)

    def __str__(self):
        return (
            f"fcmp{self.cond} {self.pd}.{self.etype.suffix}, {self.pg}/z, "
            f"{self.vs1}, {self.vs2}"
        )


@dataclass(frozen=True)
class Sel(Instruction):
    """``sel vd, pg, vs1, vs2``: lane-wise select."""

    vd: Reg
    pg: Reg
    vs1: Reg
    vs2: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_ALU

    def execute(self, state) -> Optional[str]:
        lanes = state.lanes(self.etype)
        mask = state.read_pred(self.pg, lanes)
        a = state.read_v(self.vs1, self.etype)
        b = state.read_v(self.vs2, self.etype)
        data = np.where(mask, a.data, b.data).astype(self.etype.dtype)
        valid = np.where(mask, a.valid, b.valid)
        state.write_v(self.vd, VecValue(data, valid), self.etype)
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return (self.pg, self.vs1, self.vs2)

    def __str__(self):
        return f"sel {self.vd}.{self.etype.suffix}, {self.pg}, {self.vs1}, {self.vs2}"


@dataclass(frozen=True)
class VUnary(Instruction):
    """Predicated element-wise unary op (``neg``, ``abs``, ``sqrt``)."""

    op: str
    vd: Reg
    pg: Reg
    vs: Reg
    etype: ElementType = ElementType.F32

    def __post_init__(self) -> None:
        semantics.unary(self.op)

    @property
    def opclass(self):  # type: ignore[override]
        return OpClass.VEC_DIV if self.op == "sqrt" else OpClass.VEC_ALU

    def execute(self, state) -> Optional[str]:
        lanes = state.lanes(self.etype)
        mask = state.read_pred(self.pg, lanes)
        a = state.read_v(self.vs, self.etype)
        old = state.read_v(self.vd, self.etype)
        with np.errstate(invalid="ignore"):
            result = semantics.unary(self.op)(a.data)
        data = np.where(mask, result, old.data).astype(self.etype.dtype)
        valid = np.where(mask, a.valid, old.valid)
        state.write_v(self.vd, VecValue(data, valid), self.etype)
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return (self.pg, self.vs, self.vd)

    def __str__(self):
        return f"f{self.op} {self.vd}.{self.etype.suffix}, {self.pg}/m, {self.vs}"


# Default all-true predicate alias for unpredicated use.
PG_ALL = P0
