"""UVE instruction set (paper §III).

Stream configuration (``ss.*``) instructions build descriptor patterns
dimension-by-dimension; streaming compute (``so.*``) instructions operate
on vector registers, implicitly consuming from / producing to the streams
bound to them (features F1/F4); stream branches implement the paper's
end-of-stream and end-of-dimension loop control (F5); control
instructions suspend/resume/stop streams.

O/E/S configuration operands accept scalar registers (the architectural
form) or Python immediates (an assembler convenience that only shortens
the one-time loop preamble, never the measured loop bodies).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.common.types import ElementType
from repro.errors import IsaError
from repro.isa import semantics
from repro.isa.instructions import Instruction, Operand, operand_regs
from repro.isa.microop import OpClass
from repro.isa.registers import P0, Reg, RegClass
from repro.isa.vector import VecValue
from repro.streams.descriptor import (
    IndirectBehavior,
    Param,
    StaticBehavior,
)
from repro.streams.pattern import Direction, MemLevel


def _check_vec(reg: Reg, what: str) -> None:
    if reg.cls is not RegClass.V:
        raise IsaError(f"{what} must be a u-register, got {reg}")


# ---------------------------------------------------------------------------
# Stream configuration (ss.ld / ss.st / ss.sta / ss.app / ss.end, §III-B)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SsConfig1D(Instruction):
    """``ss.{ld|st}.<w>``: configure a complete 1-D stream in one
    instruction."""

    u: Reg
    direction: Direction
    offset: Operand
    size: Operand
    stride: Operand = 1
    etype: ElementType = ElementType.F32
    mem_level: MemLevel = MemLevel.L2

    def __post_init__(self) -> None:
        _check_vec(self.u, "stream register")

    opclass = OpClass.STREAM_CFG

    def execute(self, state) -> Optional[str]:
        state.stream_begin(self.u.index, self.direction, self.etype, self.mem_level)
        state.stream_dim(
            self.u.index,
            state.value_int(self.offset),
            state.value_int(self.size),
            state.value_int(self.stride),
        )
        state.stream_finish(self.u.index)
        return None

    @property
    def dests(self):
        return (self.u,)

    @property
    def srcs(self):
        return operand_regs(self.offset, self.size, self.stride)

    def __str__(self):
        kind = "ld" if self.direction is Direction.LOAD else "st"
        return (
            f"ss.{kind}.{self.etype.suffix} {self.u}, {self.offset}, "
            f"{self.size}, {self.stride}"
        )


@dataclass(frozen=True)
class SsSta(Instruction):
    """``ss.{ld|st}.sta.<w>``: start a multi-dimensional stream
    configuration with its dimension-0 descriptor."""

    u: Reg
    direction: Direction
    offset: Operand
    size: Operand
    stride: Operand = 1
    etype: ElementType = ElementType.F32
    mem_level: MemLevel = MemLevel.L2

    def __post_init__(self) -> None:
        _check_vec(self.u, "stream register")

    opclass = OpClass.STREAM_CFG

    def execute(self, state) -> Optional[str]:
        state.stream_begin(self.u.index, self.direction, self.etype, self.mem_level)
        state.stream_dim(
            self.u.index,
            state.value_int(self.offset),
            state.value_int(self.size),
            state.value_int(self.stride),
        )
        return None

    @property
    def dests(self):
        return (self.u,)

    @property
    def srcs(self):
        return operand_regs(self.offset, self.size, self.stride)

    def __str__(self):
        kind = "ld" if self.direction is Direction.LOAD else "st"
        return (
            f"ss.{kind}.sta.{self.etype.suffix} {self.u}, {self.offset}, "
            f"{self.size}, {self.stride}"
        )


@dataclass(frozen=True)
class SsApp(Instruction):
    """``ss.app`` / ``ss.end``: append a dimension descriptor; with
    ``last=True`` it also completes the configuration."""

    u: Reg
    offset: Operand
    size: Operand
    stride: Operand
    last: bool = False

    def __post_init__(self) -> None:
        _check_vec(self.u, "stream register")

    opclass = OpClass.STREAM_CFG

    def execute(self, state) -> Optional[str]:
        state.stream_dim(
            self.u.index,
            state.value_int(self.offset),
            state.value_int(self.size),
            state.value_int(self.stride),
        )
        if self.last:
            state.stream_finish(self.u.index)
        return None

    @property
    def dests(self):
        return (self.u,)

    @property
    def srcs(self):
        return operand_regs(self.offset, self.size, self.stride)

    def __str__(self):
        name = "ss.end" if self.last else "ss.app"
        return f"{name} {self.u}, {self.offset}, {self.size}, {self.stride}"


@dataclass(frozen=True)
class SsAppMod(Instruction):
    """``ss.app.mod`` / ``ss.end.mod``: attach a static modifier to the
    most recently appended dimension (targeting the dimension below)."""

    u: Reg
    target: Param
    behavior: StaticBehavior
    displacement: Operand
    count: Operand
    last: bool = False

    def __post_init__(self) -> None:
        _check_vec(self.u, "stream register")

    opclass = OpClass.STREAM_CFG

    def execute(self, state) -> Optional[str]:
        state.stream_static_mod(
            self.u.index,
            self.target,
            self.behavior,
            state.value_int(self.displacement),
            state.value_int(self.count),
        )
        if self.last:
            state.stream_finish(self.u.index)
        return None

    @property
    def dests(self):
        return (self.u,)

    @property
    def srcs(self):
        return operand_regs(self.displacement, self.count)

    def __str__(self):
        name = "ss.end.mod" if self.last else "ss.app.mod"
        return (
            f"{name} {self.u}, {self.target.value}, {self.behavior.value}, "
            f"{self.displacement}, {self.count}"
        )


@dataclass(frozen=True)
class SsAppInd(Instruction):
    """``ss.app.ind`` / ``ss.end.ind``: attach an indirect modifier whose
    origin is the stream configured on ``origin`` (which becomes
    engine-internal and can no longer be consumed by the core)."""

    u: Reg
    target: Param
    behavior: IndirectBehavior
    origin: Reg
    last: bool = False

    def __post_init__(self) -> None:
        _check_vec(self.u, "stream register")
        _check_vec(self.origin, "origin stream register")

    opclass = OpClass.STREAM_CFG

    def execute(self, state) -> Optional[str]:
        state.stream_indirect_mod(
            self.u.index, self.target, self.behavior, self.origin.index
        )
        if self.last:
            state.stream_finish(self.u.index)
        return None

    @property
    def dests(self):
        return (self.u,)

    @property
    def srcs(self):
        return (self.origin,)

    def __str__(self):
        name = "ss.end.ind" if self.last else "ss.app.ind"
        return (
            f"{name} {self.u}, {self.target.value}, {self.behavior.value}, "
            f"{self.origin}"
        )


# ---------------------------------------------------------------------------
# Stream control (ss.suspend / ss.resume / ss.stop)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SsCtl(Instruction):
    """Stream control: ``kind`` in {``suspend``, ``resume``, ``stop``}."""

    kind: str
    u: Reg
    opclass = OpClass.STREAM_CTL

    def __post_init__(self) -> None:
        _check_vec(self.u, "stream register")
        if self.kind not in ("suspend", "resume", "stop"):
            raise IsaError(f"unknown stream-control kind {self.kind!r}")

    def execute(self, state) -> Optional[str]:
        state.stream_control(self.u.index, self.kind)
        return None

    @property
    def dests(self):
        return (self.u,)

    def __str__(self):
        return f"ss.{self.kind} {self.u}"


# ---------------------------------------------------------------------------
# Streaming compute (so.*)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SoDup(Instruction):
    """``so.v.dup.<w>``: broadcast a scalar to all vector elements."""

    ud: Reg
    src: Operand
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_MISC

    def execute(self, state) -> Optional[str]:
        lanes = state.lanes(self.etype)
        if isinstance(self.src, Reg):
            if self.src.cls is RegClass.F:
                value = state.read_f(self.src)
            else:
                value = state.read_x(self.src)
        else:
            value = self.src
        data = np.full(lanes, value, dtype=self.etype.dtype)
        state.write_operand(self.ud, VecValue(data, np.ones(lanes, dtype=bool)), self.etype)
        return None

    @property
    def dests(self):
        return (self.ud,)

    @property
    def srcs(self):
        return operand_regs(self.src)

    def __str__(self):
        return f"so.v.dup.{self.etype.suffix} {self.ud}, {self.src}"


class _StreamAwareCompute(Instruction):
    """Shared machinery for compute ops with stream-aware operands."""

    pred: Reg = P0

    def _read_sources(self, state, etype, *regs):
        """Read operand registers, consuming each bound stream once."""
        values = {}
        for reg in regs:
            if reg not in values:
                values[reg] = state.read_operand(reg, etype)
        return [values[reg] for reg in regs]


@dataclass(frozen=True)
class SoOp(_StreamAwareCompute):
    """``so.a.<op>.fp``: element-wise op with implicit stream load/store."""

    op: str
    ud: Reg
    us1: Reg
    us2: Reg
    etype: ElementType = ElementType.F32
    pred: Reg = P0

    def __post_init__(self) -> None:
        semantics.binary(self.op)

    @property
    def opclass(self):  # type: ignore[override]
        return semantics.vector_opclass(self.op)

    def execute(self, state) -> Optional[str]:
        a, b = self._read_sources(state, self.etype, self.us1, self.us2)
        mask = state.read_pred(self.pred, state.lanes(self.etype))
        with np.errstate(divide="ignore", invalid="ignore"):
            result = semantics.binary(self.op)(a.data, b.data)
        # Lanes the Streaming Engine disabled (stream padding) act as a
        # false predicate: where only one operand is valid, its value
        # passes through unchanged (merging semantics).
        both = a.valid & b.valid
        merged = np.where(both, result, np.where(a.valid, a.data, b.data))
        valid = (a.valid | b.valid) & mask
        state.write_operand(
            self.ud, VecValue(merged.astype(self.etype.dtype), valid), self.etype
        )
        return None

    @property
    def dests(self):
        return (self.ud,)

    @property
    def srcs(self):
        extra = (self.pred,) if self.pred != P0 else ()
        return (self.us1, self.us2) + extra

    def __str__(self):
        return f"so.a.{self.op}.fp {self.ud}, {self.us1}, {self.us2}"


@dataclass(frozen=True)
class SoOpScalar(_StreamAwareCompute):
    """Vector-scalar op: ``ud = us1 <op> scalar`` (scalar reg or imm)."""

    op: str
    ud: Reg
    us1: Reg
    scalar: Operand
    etype: ElementType = ElementType.F32
    pred: Reg = P0

    def __post_init__(self) -> None:
        semantics.binary(self.op)

    @property
    def opclass(self):  # type: ignore[override]
        return semantics.vector_opclass(self.op)

    def execute(self, state) -> Optional[str]:
        (a,) = self._read_sources(state, self.etype, self.us1)
        if isinstance(self.scalar, Reg):
            if self.scalar.cls is RegClass.F:
                s = state.read_f(self.scalar)
            else:
                s = state.read_x(self.scalar)
        else:
            s = self.scalar
        mask = state.read_pred(self.pred, state.lanes(self.etype))
        with np.errstate(divide="ignore", invalid="ignore"):
            result = semantics.binary(self.op)(a.data, self.etype.dtype.type(s))
        valid = a.valid & mask
        state.write_operand(
            self.ud, VecValue(result.astype(self.etype.dtype), valid), self.etype
        )
        return None

    @property
    def dests(self):
        return (self.ud,)

    @property
    def srcs(self):
        extra = (self.pred,) if self.pred != P0 else ()
        return (self.us1,) + operand_regs(self.scalar) + extra

    def __str__(self):
        return f"so.a.{self.op}.sc {self.ud}, {self.us1}, {self.scalar}"


@dataclass(frozen=True)
class SoMac(_StreamAwareCompute):
    """``so.a.mac.fp``: ``ud += us1 * us2`` (``ud`` must be a plain
    register — a stream cannot be simultaneously read and written,
    see the Fig. 4 caption)."""

    ud: Reg
    us1: Reg
    us2: Reg
    etype: ElementType = ElementType.F32
    pred: Reg = P0
    opclass = OpClass.VEC_MAC

    def execute(self, state) -> Optional[str]:
        if state.is_stream(self.ud.index):
            raise IsaError(
                f"so.a.mac destination {self.ud} is stream-bound; a stream "
                "cannot operate in both read and write modes"
            )
        a, b = self._read_sources(state, self.etype, self.us1, self.us2)
        acc = state.read_v(self.ud, self.etype)
        mask = state.read_pred(self.pred, state.lanes(self.etype))
        active = a.valid & b.valid & mask
        data = np.where(active, acc.data + a.data * b.data, acc.data)
        valid = acc.valid | active
        state.write_v(
            self.ud, VecValue(data.astype(self.etype.dtype), valid), self.etype
        )
        return None

    @property
    def dests(self):
        return (self.ud,)

    @property
    def srcs(self):
        extra = (self.pred,) if self.pred != P0 else ()
        return (self.ud, self.us1, self.us2) + extra

    def __str__(self):
        return f"so.a.mac.fp {self.ud}, {self.us1}, {self.us2}"


@dataclass(frozen=True)
class SoMacScalar(_StreamAwareCompute):
    """``so.a.mac.sc``: ``ud += us1 * scalar`` (vector MAC with a scalar
    multiplier; ``ud`` must be a plain register)."""

    ud: Reg
    us1: Reg
    scalar: Operand
    etype: ElementType = ElementType.F32
    pred: Reg = P0
    opclass = OpClass.VEC_MAC

    def execute(self, state) -> Optional[str]:
        if state.is_stream(self.ud.index):
            raise IsaError(
                f"so.a.mac.sc destination {self.ud} is stream-bound; a "
                "stream cannot operate in both read and write modes"
            )
        (a,) = self._read_sources(state, self.etype, self.us1)
        if isinstance(self.scalar, Reg):
            if self.scalar.cls is RegClass.F:
                s = state.read_f(self.scalar)
            else:
                s = state.read_x(self.scalar)
        else:
            s = self.scalar
        acc = state.read_v(self.ud, self.etype)
        mask = state.read_pred(self.pred, state.lanes(self.etype))
        active = a.valid & mask
        data = np.where(
            active, acc.data + a.data * self.etype.dtype.type(s), acc.data
        )
        valid = acc.valid | active
        state.write_v(
            self.ud, VecValue(data.astype(self.etype.dtype), valid), self.etype
        )
        return None

    @property
    def dests(self):
        return (self.ud,)

    @property
    def srcs(self):
        extra = (self.pred,) if self.pred != P0 else ()
        return (self.ud, self.us1) + operand_regs(self.scalar) + extra

    def __str__(self):
        return f"so.a.mac.sc {self.ud}, {self.us1}, {self.scalar}"


@dataclass(frozen=True)
class SoUnary(_StreamAwareCompute):
    """``so.a.<op>.u``: element-wise unary op with stream-aware source."""

    op: str
    ud: Reg
    us: Reg
    etype: ElementType = ElementType.F32
    pred: Reg = P0

    def __post_init__(self) -> None:
        semantics.unary(self.op)

    @property
    def opclass(self):  # type: ignore[override]
        return OpClass.VEC_DIV if self.op == "sqrt" else OpClass.VEC_ALU

    def execute(self, state) -> Optional[str]:
        (a,) = self._read_sources(state, self.etype, self.us)
        mask = state.read_pred(self.pred, state.lanes(self.etype))
        with np.errstate(invalid="ignore"):
            result = semantics.unary(self.op)(a.data)
        valid = a.valid & mask
        state.write_operand(
            self.ud, VecValue(result.astype(self.etype.dtype), valid), self.etype
        )
        return None

    @property
    def dests(self):
        return (self.ud,)

    @property
    def srcs(self):
        extra = (self.pred,) if self.pred != P0 else ()
        return (self.us,) + extra

    def __str__(self):
        return f"so.a.{self.op}.u {self.ud}, {self.us}"


@dataclass(frozen=True)
class SoMove(_StreamAwareCompute):
    """``so.v.mv``: vector move (consumes a stream chunk when the source
    is stream-bound — Fig. 2's ``vectormove``)."""

    ud: Reg
    us: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_MISC

    def execute(self, state) -> Optional[str]:
        (a,) = self._read_sources(state, self.etype, self.us)
        state.write_operand(self.ud, a, self.etype)
        return None

    @property
    def dests(self):
        return (self.ud,)

    @property
    def srcs(self):
        return (self.us,)

    def __str__(self):
        return f"so.v.mv {self.ud}, {self.us}"


@dataclass(frozen=True)
class SoRed(_StreamAwareCompute):
    """``so.r.<op>``: horizontal reduction over valid lanes, producing a
    single element (into lane 0 of a register, or one element of an
    output stream — Fig. 2's ``horizontal_max``)."""

    op: str
    ud: Reg
    us: Reg
    etype: ElementType = ElementType.F32
    pred: Reg = P0

    def __post_init__(self) -> None:
        semantics.reduce_fn(self.op)

    opclass = OpClass.VEC_RED

    def execute(self, state) -> Optional[str]:
        (a,) = self._read_sources(state, self.etype, self.us)
        mask = state.read_pred(self.pred, state.lanes(self.etype))
        active = a.data[a.valid & mask]
        result = semantics.reduce_fn(self.op)(active) if len(active) else 0
        if state.is_stream(self.ud.index):
            state.stream_write_scalar(self.ud.index, result)
        else:
            lanes = state.lanes(self.etype)
            data = np.zeros(lanes, dtype=self.etype.dtype)
            data[0] = result
            valid = np.zeros(lanes, dtype=bool)
            valid[0] = True
            state.write_v(self.ud, VecValue(data, valid), self.etype)
        return None

    @property
    def dests(self):
        return (self.ud,)

    @property
    def srcs(self):
        extra = (self.pred,) if self.pred != P0 else ()
        return (self.us,) + extra

    def __str__(self):
        return f"so.r.{self.op} {self.ud}, {self.us}"


@dataclass(frozen=True)
class SoRedScalar(_StreamAwareCompute):
    """Horizontal reduction into a scalar register."""

    op: str
    rd: Reg
    us: Reg
    etype: ElementType = ElementType.F32
    pred: Reg = P0

    def __post_init__(self) -> None:
        semantics.reduce_fn(self.op)

    opclass = OpClass.VEC_RED

    def execute(self, state) -> Optional[str]:
        (a,) = self._read_sources(state, self.etype, self.us)
        mask = state.read_pred(self.pred, state.lanes(self.etype))
        active = a.data[a.valid & mask]
        result = semantics.reduce_fn(self.op)(active) if len(active) else 0
        if self.rd.cls is RegClass.F:
            state.write_f(self.rd, float(result))
        else:
            state.write_x(self.rd, int(result))
        return None

    @property
    def dests(self):
        return (self.rd,)

    @property
    def srcs(self):
        extra = (self.pred,) if self.pred != P0 else ()
        return (self.us,) + extra

    def __str__(self):
        return f"so.r.{self.op}.sc {self.rd}, {self.us}"


@dataclass(frozen=True)
class SoScalarRead(Instruction):
    """Vector-to-scalar: pop one element from a stream into a scalar
    register (element-wise shift consumption, §III-B *Scalar processing*)."""

    rd: Reg
    us: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_MISC

    def execute(self, state) -> Optional[str]:
        value = state.stream_read_scalar(self.us.index)
        if self.rd.cls is RegClass.F:
            state.write_f(self.rd, float(value))
        else:
            state.write_x(self.rd, int(value))
        return None

    @property
    def dests(self):
        return (self.rd,)

    @property
    def srcs(self):
        return (self.us,)

    def __str__(self):
        return f"so.v.tosc {self.rd}, {self.us}"


@dataclass(frozen=True)
class SoScalarWrite(Instruction):
    """Scalar-to-vector: push one scalar element to an output stream."""

    us: Reg
    src: Operand
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_MISC

    def execute(self, state) -> Optional[str]:
        if isinstance(self.src, Reg):
            if self.src.cls is RegClass.F:
                value = state.read_f(self.src)
            else:
                value = state.read_x(self.src)
        else:
            value = self.src
        state.stream_write_scalar(self.us.index, value)
        return None

    @property
    def dests(self):
        return (self.us,)

    @property
    def srcs(self):
        return operand_regs(self.src)

    def __str__(self):
        return f"so.v.fromsc {self.us}, {self.src}"


# ---------------------------------------------------------------------------
# Predication
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SoPredComp(_StreamAwareCompute):
    """Vector compare into a predicate register."""

    cond: str
    pd: Reg
    us1: Reg
    us2: Reg
    etype: ElementType = ElementType.F32

    def __post_init__(self) -> None:
        semantics.compare(self.cond)

    opclass = OpClass.VEC_MISC

    def execute(self, state) -> Optional[str]:
        a, b = self._read_sources(state, self.etype, self.us1, self.us2)
        mask = semantics.compare(self.cond)(a.data, b.data) & a.valid & b.valid
        state.write_pred(self.pd, mask)
        return None

    @property
    def dests(self):
        return (self.pd,)

    @property
    def srcs(self):
        return (self.us1, self.us2)

    def __str__(self):
        return f"so.p.{self.cond} {self.pd}, {self.us1}, {self.us2}"


@dataclass(frozen=True)
class SoPredNot(Instruction):
    """Element-wise predicate negation."""

    pd: Reg
    ps: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_MISC

    def execute(self, state) -> Optional[str]:
        mask = state.read_pred(self.ps, state.lanes(self.etype))
        state.write_pred(self.pd, ~mask)
        return None

    @property
    def dests(self):
        return (self.pd,)

    @property
    def srcs(self):
        return (self.ps,)

    def __str__(self):
        return f"so.p.not {self.pd}, {self.ps}"


# ---------------------------------------------------------------------------
# Stream branches (loop control, §III-B)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SoBranchEnd(Instruction):
    """``so.b.end`` / ``so.b.nend``: branch on (not-)end-of-stream."""

    u: Reg
    label: str
    negate: bool = True  # default: branch while NOT ended (loop back)
    opclass = OpClass.BRANCH

    def execute(self, state) -> Optional[str]:
        ended = state.stream_ended(self.u.index)
        taken = (not ended) if self.negate else ended
        return self.label if taken else None

    @property
    def srcs(self):
        return (self.u,)

    @property
    def label_target(self):
        return self.label

    def __str__(self):
        kind = "nend" if self.negate else "end"
        return f"so.b.{kind} {self.u}, .{self.label}"


@dataclass(frozen=True)
class SoBranchDim(Instruction):
    """``so.b.dim<k>[.n]c``: branch on (not-)completion of dimension *k*
    at the last consumed/produced chunk of the stream."""

    u: Reg
    dim: int
    label: str
    complete: bool = True
    opclass = OpClass.BRANCH

    def execute(self, state) -> Optional[str]:
        done = state.stream_dim_complete(self.u.index, self.dim)
        taken = done if self.complete else not done
        return self.label if taken else None

    @property
    def srcs(self):
        return (self.u,)

    @property
    def label_target(self):
        return self.label

    def __str__(self):
        kind = "c" if self.complete else "nc"
        return f"so.b.dim{self.dim}{kind} {self.u}, .{self.label}"


# ---------------------------------------------------------------------------
# Advanced control (getvl/setvl) and legacy vector memory ops
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SoGetVl(Instruction):
    """``ss.getvl``: read the current vector length (in elements)."""

    rd: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.INT_ALU

    def execute(self, state) -> Optional[str]:
        state.write_x(self.rd, state.lanes(self.etype))
        return None

    @property
    def dests(self):
        return (self.rd,)

    def __str__(self):
        return f"ss.getvl {self.rd}"


@dataclass(frozen=True)
class SoSetVl(Instruction):
    """``ss.setvl``: request a vector length in elements; the machine
    grants ``min(request, hardware lanes)`` (cf. RVV ``vsetvli``)."""

    rd: Reg
    request: Operand
    etype: ElementType = ElementType.F32
    opclass = OpClass.INT_ALU

    def execute(self, state) -> Optional[str]:
        granted = state.set_vl(state.value_int(self.request), self.etype)
        state.write_x(self.rd, granted)
        return None

    @property
    def dests(self):
        return (self.rd,)

    @property
    def srcs(self):
        return operand_regs(self.request)

    def __str__(self):
        return f"ss.setvl {self.rd}, {self.request}"


@dataclass(frozen=True)
class SsLoadVec(Instruction):
    """Legacy (non-streaming) vector load with post-increment
    (``ss.load``, §III-B: kept in the ISA for non-streamable accesses)."""

    ud: Reg
    base: Reg
    etype: ElementType = ElementType.F32
    post_inc: bool = True
    opclass = OpClass.VEC_LOAD

    def execute(self, state) -> Optional[str]:
        lanes = state.lanes(self.etype)
        width = self.etype.width
        start = state.read_x(self.base)
        data = state.mem.read_block(start, lanes, self.etype)
        state.record_mem_read(range(start, start + lanes * width, width), width)
        state.write_v(self.ud, VecValue(data, np.ones(lanes, dtype=bool)), self.etype)
        if self.post_inc:
            state.write_x(self.base, start + lanes * width)
        return None

    @property
    def dests(self):
        return (self.ud, self.base) if self.post_inc else (self.ud,)

    @property
    def early_dests(self):
        return (self.base,) if self.post_inc else ()

    @property
    def srcs(self):
        return (self.base,)

    def __str__(self):
        return f"ss.load.{self.etype.suffix} {self.ud}, ({self.base})"


@dataclass(frozen=True)
class SsStoreVec(Instruction):
    """Legacy (non-streaming) vector store with post-increment."""

    us: Reg
    base: Reg
    etype: ElementType = ElementType.F32
    post_inc: bool = True
    opclass = OpClass.VEC_STORE

    def execute(self, state) -> Optional[str]:
        lanes = state.lanes(self.etype)
        width = self.etype.width
        start = state.read_x(self.base)
        value = state.read_v(self.us, self.etype)
        state.mem.write_block(start, value.data[:lanes])
        state.record_mem_write(range(start, start + lanes * width, width), width)
        if self.post_inc:
            state.write_x(self.base, start + lanes * width)
        return None

    @property
    def dests(self):
        return (self.base,) if self.post_inc else ()

    @property
    def early_dests(self):
        return (self.base,) if self.post_inc else ()

    @property
    def srcs(self):
        return (self.us, self.base)

    def __str__(self):
        return f"ss.store.{self.etype.suffix} {self.us}, ({self.base})"
