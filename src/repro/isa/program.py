"""Programs: instruction sequences with labels.

:class:`ProgramBuilder` is the assembler-level API used by the kernel
implementations; :class:`Program` is the immutable executable form
consumed by the functional simulator.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import IsaError
from repro.isa.instructions import Instruction


@dataclass(frozen=True)
class Program:
    """An executable instruction sequence."""

    instructions: Sequence[Instruction]
    labels: Dict[str, int] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "instructions", tuple(self.instructions))
        for label, index in self.labels.items():
            if not 0 <= index <= len(self.instructions):
                raise IsaError(f"label {label!r} points outside the program")
        for pc, inst in enumerate(self.instructions):
            target = inst.label_target
            if target is not None and target not in self.labels:
                raise IsaError(
                    f"instruction {pc} ({inst}) references undefined label "
                    f"{target!r}"
                )

    def target(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise IsaError(f"undefined label {label!r}") from None

    def __len__(self) -> int:
        return len(self.instructions)

    def listing(self) -> str:
        """Human-readable assembly-style listing."""
        by_index: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = []
        for pc, inst in enumerate(self.instructions):
            for label in by_index.get(pc, ()):
                lines.append(f"{label}:")
            lines.append(f"    {inst}")
        for label in by_index.get(len(self.instructions), ()):
            lines.append(f"{label}:")
        return "\n".join(lines)


class ProgramBuilder:
    """Incrementally builds a :class:`Program` (an assembler without text).

    >>> b = ProgramBuilder("demo")
    >>> b.label("loop")
    >>> b.emit(some_instruction)
    >>> program = b.build()
    """

    def __init__(self, name: str = "") -> None:
        self._name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}

    def label(self, name: str) -> None:
        if name in self._labels:
            raise IsaError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)

    def emit(self, *instructions: Instruction) -> None:
        for inst in instructions:
            if not isinstance(inst, Instruction):
                raise IsaError(f"not an instruction: {inst!r}")
            self._instructions.append(inst)

    def build(self) -> Program:
        return Program(
            instructions=list(self._instructions),
            labels=dict(self._labels),
            name=self._name,
        )
