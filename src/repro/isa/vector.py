"""Vector register values.

A :class:`VecValue` is the architectural content of one vector register:
a lane array (NumPy, typed by the element type) plus a per-lane validity
mask.  Invalid lanes exist because of predication and because streams pad
partial tails (paper feature F5); they read as zero and are never stored.
"""
from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.common.types import ElementType


class VecValue(NamedTuple):
    data: np.ndarray
    valid: np.ndarray

    @property
    def lanes(self) -> int:
        return len(self.data)

    @property
    def valid_count(self) -> int:
        return int(self.valid.sum())

    def active(self) -> np.ndarray:
        """Lane values where valid (compacted)."""
        return self.data[self.valid]


def zeros(lanes: int, etype: ElementType) -> VecValue:
    """An all-invalid, all-zero vector value."""
    return VecValue(
        np.zeros(lanes, dtype=etype.dtype), np.zeros(lanes, dtype=bool)
    )


def full(lanes: int, etype: ElementType, value) -> VecValue:
    """A fully-valid broadcast value."""
    return VecValue(
        np.full(lanes, value, dtype=etype.dtype), np.ones(lanes, dtype=bool)
    )


def from_list(values, etype: ElementType, lanes: int) -> VecValue:
    """Pack ``values`` into the first lanes; the tail is invalid."""
    data = np.zeros(lanes, dtype=etype.dtype)
    valid = np.zeros(lanes, dtype=bool)
    n = len(values)
    data[:n] = values
    valid[:n] = True
    return VecValue(data, valid)
