"""Instruction sets: UVE (§III) plus scalar, SVE-like and NEON-like
baselines sharing one semantic layer."""
from repro.isa.instructions import Instruction, Operand
from repro.isa.microop import FuCluster, OpClass
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import P0, X0, Reg, RegClass, f, p, parse_reg, u, x
from repro.isa.vector import VecValue

__all__ = [
    "FuCluster",
    "Instruction",
    "OpClass",
    "Operand",
    "P0",
    "Program",
    "ProgramBuilder",
    "Reg",
    "RegClass",
    "VecValue",
    "X0",
    "f",
    "p",
    "parse_reg",
    "u",
    "x",
]
