"""NEON-like baseline ISA: fixed 128-bit SIMD, no predication.

Used for the paper's second baseline (ARM NEON).  Vector width is fixed
at 128 bits regardless of the machine's configured vector length, and
loop tails must be handled by scalar code — exactly the limitation that
vector-length-agnostic extensions (SVE, UVE) remove.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.common.types import ElementType
from repro.isa import semantics
from repro.isa.instructions import Instruction, Operand, operand_regs
from repro.isa.microop import OpClass
from repro.isa.registers import Reg, RegClass
from repro.isa.vector import VecValue

#: NEON register width in bits.
NEON_BITS = 128


def neon_lanes(etype: ElementType) -> int:
    return NEON_BITS // (etype.width * 8)


@dataclass(frozen=True)
class NVLoad(Instruction):
    """128-bit vector load from ``x[base] + offset`` (byte offset),
    optionally post-incrementing the base register by 16."""

    vd: Reg
    base: Reg
    offset: Operand = 0
    etype: ElementType = ElementType.F32
    post_inc: bool = False
    opclass = OpClass.VEC_LOAD

    def execute(self, state) -> Optional[str]:
        lanes = neon_lanes(self.etype)
        width = self.etype.width
        start = state.read_x(self.base) + state.value_int(self.offset)
        data = state.mem.read_block(start, lanes, self.etype)
        state.record_mem_read(range(start, start + lanes * width, width), width)
        state.write_v(self.vd, VecValue(data, np.ones(lanes, dtype=bool)), self.etype)
        if self.post_inc:
            state.write_x(self.base, state.read_x(self.base) + NEON_BITS // 8)
        return None

    @property
    def dests(self):
        return (self.vd, self.base) if self.post_inc else (self.vd,)

    @property
    def early_dests(self):
        return (self.base,) if self.post_inc else ()

    @property
    def srcs(self):
        return operand_regs(self.base, self.offset)

    def __str__(self):
        post = "!" if self.post_inc else ""
        return f"ldr.q {self.vd}, [{self.base}, {self.offset}]{post}"


@dataclass(frozen=True)
class NVStore(Instruction):
    """128-bit vector store, optional post-increment."""

    vs: Reg
    base: Reg
    offset: Operand = 0
    etype: ElementType = ElementType.F32
    post_inc: bool = False
    opclass = OpClass.VEC_STORE

    def execute(self, state) -> Optional[str]:
        lanes = neon_lanes(self.etype)
        width = self.etype.width
        start = state.read_x(self.base) + state.value_int(self.offset)
        value = state.read_v(self.vs, self.etype)
        state.mem.write_block(start, value.data[:lanes])
        state.record_mem_write(range(start, start + lanes * width, width), width)
        if self.post_inc:
            state.write_x(self.base, state.read_x(self.base) + NEON_BITS // 8)
        return None

    @property
    def dests(self):
        return (self.base,) if self.post_inc else ()

    @property
    def early_dests(self):
        return (self.base,) if self.post_inc else ()

    @property
    def srcs(self):
        return operand_regs(self.vs, self.base, self.offset)

    def __str__(self):
        post = "!" if self.post_inc else ""
        return f"str.q {self.vs}, [{self.base}, {self.offset}]{post}"


@dataclass(frozen=True)
class NVOp(Instruction):
    """Unpredicated 128-bit element-wise op."""

    op: str
    vd: Reg
    vs1: Reg
    vs2: Reg
    etype: ElementType = ElementType.F32

    def __post_init__(self) -> None:
        semantics.binary(self.op)

    @property
    def opclass(self):  # type: ignore[override]
        return semantics.vector_opclass(self.op)

    def execute(self, state) -> Optional[str]:
        lanes = neon_lanes(self.etype)
        a = state.read_v(self.vs1, self.etype)
        b = state.read_v(self.vs2, self.etype)
        with np.errstate(divide="ignore", invalid="ignore"):
            result = semantics.binary(self.op)(a.data[:lanes], b.data[:lanes])
        data = result.astype(self.etype.dtype)
        state.write_v(
            self.vd, VecValue(data, np.ones(lanes, dtype=bool)), self.etype
        )
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return (self.vs1, self.vs2)

    def __str__(self):
        return f"{self.op}.4{self.etype.suffix} {self.vd}, {self.vs1}, {self.vs2}"


@dataclass(frozen=True)
class NVFma(Instruction):
    """128-bit fused multiply-accumulate: ``vd += vs1 * vs2``."""

    vd: Reg
    vs1: Reg
    vs2: Reg
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_MAC

    def execute(self, state) -> Optional[str]:
        lanes = neon_lanes(self.etype)
        a = state.read_v(self.vs1, self.etype)
        b = state.read_v(self.vs2, self.etype)
        acc = state.read_v(self.vd, self.etype)
        data = (acc.data[:lanes] + a.data[:lanes] * b.data[:lanes]).astype(
            self.etype.dtype
        )
        state.write_v(
            self.vd, VecValue(data, np.ones(lanes, dtype=bool)), self.etype
        )
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return (self.vd, self.vs1, self.vs2)

    def __str__(self):
        return f"fmla.4{self.etype.suffix} {self.vd}, {self.vs1}, {self.vs2}"


@dataclass(frozen=True)
class NVDup(Instruction):
    """Broadcast a scalar register/immediate into a 128-bit register."""

    vd: Reg
    src: Operand
    etype: ElementType = ElementType.F32
    opclass = OpClass.VEC_MISC

    def execute(self, state) -> Optional[str]:
        lanes = neon_lanes(self.etype)
        if isinstance(self.src, Reg):
            if self.src.cls is RegClass.F:
                value = state.read_f(self.src)
            else:
                value = state.read_x(self.src)
        else:
            value = self.src
        data = np.full(lanes, value, dtype=self.etype.dtype)
        state.write_v(
            self.vd, VecValue(data, np.ones(lanes, dtype=bool)), self.etype
        )
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return operand_regs(self.src)

    def __str__(self):
        return f"dup.4{self.etype.suffix} {self.vd}, {self.src}"


@dataclass(frozen=True)
class NVRed(Instruction):
    """Horizontal reduction of a 128-bit register into a scalar."""

    op: str
    rd: Reg
    vs: Reg
    etype: ElementType = ElementType.F32

    def __post_init__(self) -> None:
        semantics.reduce_fn(self.op)

    opclass = OpClass.VEC_RED

    def execute(self, state) -> Optional[str]:
        lanes = neon_lanes(self.etype)
        value = state.read_v(self.vs, self.etype)
        result = semantics.reduce_fn(self.op)(value.data[:lanes])
        if self.rd.cls is RegClass.F:
            state.write_f(self.rd, float(result))
        else:
            state.write_x(self.rd, int(result))
        return None

    @property
    def dests(self):
        return (self.rd,)

    @property
    def srcs(self):
        return (self.vs,)

    def __str__(self):
        return f"f{self.op}v {self.rd}, {self.vs}.4{self.etype.suffix}"


@dataclass(frozen=True)
class NVUnary(Instruction):
    """Unpredicated 128-bit element-wise unary op."""

    op: str
    vd: Reg
    vs: Reg
    etype: ElementType = ElementType.F32

    def __post_init__(self) -> None:
        semantics.unary(self.op)

    @property
    def opclass(self):  # type: ignore[override]
        return OpClass.VEC_DIV if self.op == "sqrt" else OpClass.VEC_ALU

    def execute(self, state) -> Optional[str]:
        lanes = neon_lanes(self.etype)
        a = state.read_v(self.vs, self.etype)
        with np.errstate(invalid="ignore"):
            result = semantics.unary(self.op)(a.data[:lanes])
        state.write_v(
            self.vd,
            VecValue(result.astype(self.etype.dtype), np.ones(lanes, dtype=bool)),
            self.etype,
        )
        return None

    @property
    def dests(self):
        return (self.vd,)

    @property
    def srcs(self):
        return (self.vs,)

    def __str__(self):
        return f"f{self.op}.4{self.etype.suffix} {self.vd}, {self.vs}"
