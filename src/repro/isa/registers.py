"""Architectural register model (paper §III-A1).

UVE adds 32 vector registers (``u0``–``u31``) and 16 predicate registers
(``p0``–``p15``, ``p0`` hardwired to all-true) on top of the RISC-V scalar
integer (``x``) and floating-point (``f``) banks.  The SVE-like and
NEON-like baseline ISAs reuse the same vector/predicate banks (named
``z``/``v`` in their own assemblers, but architecturally identical here).
"""
from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import IsaError


class RegClass(enum.Enum):
    """Register bank."""

    X = "x"  # scalar integer
    F = "f"  # scalar floating point
    V = "u"  # vector (UVE u / SVE z / NEON v)
    P = "p"  # predicate


_BANK_SIZES = {RegClass.X: 32, RegClass.F: 32, RegClass.V: 32, RegClass.P: 16}


@dataclass(frozen=True, eq=False)
class Reg:
    """A single architectural register."""

    cls: RegClass
    index: int

    def __post_init__(self) -> None:
        limit = _BANK_SIZES[self.cls]
        if not 0 <= self.index < limit:
            raise IsaError(
                f"register index {self.index} out of range for bank "
                f"{self.cls.value} (0..{limit - 1})"
            )
        # Cache the hash: registers are hot keys in rename tables.
        object.__setattr__(self, "_hash", hash((self.cls.value, self.index)))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Reg):
            return NotImplemented
        return self.cls is other.cls and self.index == other.index

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.cls.value}{self.index}"

    __repr__ = __str__


def x(index: int) -> Reg:
    """Scalar integer register ``x<index>``."""
    return Reg(RegClass.X, index)


def f(index: int) -> Reg:
    """Scalar floating-point register ``f<index>``."""
    return Reg(RegClass.F, index)


def u(index: int) -> Reg:
    """Vector register ``u<index>`` (also the stream interface)."""
    return Reg(RegClass.V, index)


def p(index: int) -> Reg:
    """Predicate register ``p<index>`` (``p0`` is hardwired all-true)."""
    return Reg(RegClass.P, index)


#: Hardwired all-valid predicate (paper: "p0 is always hardwired to 1").
P0 = p(0)

#: Hardwired zero scalar register (RISC-V x0).
X0 = x(0)


def parse_reg(name: str) -> Reg:
    """Parse a register name like ``u3``, ``x10``, ``f2`` or ``p1``."""
    name = name.strip().lower()
    if len(name) < 2:
        raise IsaError(f"malformed register name {name!r}")
    # SVE/NEON spellings map onto the same banks.
    aliases = {"z": "u", "v": "u", "a": None, "t": None, "fa": None}
    prefix, digits = name[0], name[1:]
    if prefix in aliases and aliases[prefix]:
        prefix = aliases[prefix]
    # RISC-V ABI aliases used in the paper's listings.
    if name.startswith("a") and digits.isdigit():
        return x(10 + int(digits))
    if name.startswith("fa") and name[2:].isdigit():
        return f(10 + int(name[2:]))
    if name.startswith("t") and digits.isdigit():
        return x(5 + int(digits))
    try:
        cls = RegClass(prefix)
    except ValueError:
        raise IsaError(f"unknown register bank in {name!r}") from None
    if not digits.isdigit():
        raise IsaError(f"malformed register name {name!r}")
    return Reg(cls, int(digits))
