"""Instruction base class and operand helpers.

Every concrete instruction implements functional semantics in
``execute(state)`` (the *state* protocol is provided by
:class:`repro.sim.functional.MachineState`) and exposes the architectural
registers it reads/writes so the timing model can track dependencies.
``execute`` returns a label name when the instruction is a taken branch,
else ``None``.
"""
from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple, Union

from repro.isa.microop import OpClass
from repro.isa.registers import Reg

#: A scalar operand: an architectural register or an immediate.
Operand = Union[Reg, int, float]


def operand_regs(*operands: Operand) -> Tuple[Reg, ...]:
    """The register operands among ``operands`` (immediates dropped)."""
    return tuple(op for op in operands if isinstance(op, Reg))


class Instruction(ABC):
    """One architectural instruction (= one µOp, paper §III design)."""

    #: Functional-unit class; concrete classes set or compute this.
    opclass: OpClass = OpClass.NOP

    @abstractmethod
    def execute(self, state) -> Optional[str]:
        """Apply semantics to ``state``; return taken-branch label or None."""

    @property
    def dests(self) -> Tuple[Reg, ...]:
        """Architectural registers written."""
        return ()

    @property
    def srcs(self) -> Tuple[Reg, ...]:
        """Architectural registers read."""
        return ()

    @property
    def early_dests(self) -> Tuple[Reg, ...]:
        """Destinations produced in the first execute cycle (e.g. the
        post-incremented base register of a load), available to
        dependents before the op's full completion."""
        return ()

    @property
    def label_target(self) -> Optional[str]:
        """Branch-target label, if this is a control instruction."""
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"

    def __str__(self) -> str:  # pragma: no cover - overridden by subclasses
        return type(self).__name__.lower()
