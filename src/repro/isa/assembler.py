"""Text assembler for UVE assembly (plus the scalar base ISA).

Accepts the syntax used in the paper's listings (Figs. 1.D, 2.D, 4)::

    ; saxpy -- y = a*x + y
        ss.ld.w     u0, 1024, 256, 1
        ss.ld.w     u1, 2048, 256, 1
        ss.st.w     u2, 2048, 256, 1
        so.v.dup.w  u3, f0
    loop:
        so.a.mul.fp u4, u3, u0
        so.a.add.fp u2, u4, u1
        so.b.nend   u0, loop
        halt

Operands are registers (``u0``/``x3``/``f1``/``p2``), integer or float
immediates, or label names.  ``#`` and ``;`` introduce comments.
"""
from __future__ import annotations

from typing import Callable, Dict, List

from repro.common.types import ElementType
from repro.errors import AssemblerError
from repro.isa import neon_ops, rvv_ops, scalar_ops, sve_ops, uve_ops
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import Reg, parse_reg
from repro.streams.descriptor import (
    IndirectBehavior,
    Param,
    StaticBehavior,
)
from repro.streams.pattern import Direction, MemLevel


def _operand(token: str):
    token = token.strip().rstrip(",")
    if not token:
        raise AssemblerError("empty operand")
    lowered = token.lower()
    first = lowered[0]
    if first in "uxfpazt" and any(ch.isdigit() for ch in lowered):
        try:
            return parse_reg(lowered)
        except Exception:
            pass
    try:
        return int(token, 0)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token  # label


#: Assembly width suffixes.  The paper's {b|h|w|d} encode *widths* only
#: (interpretation comes from the compute op); this typed model defaults
#: word/double-word to floating point (the dominant usage) and offers
#: ``iw``/``id`` for integer streams.
_ASM_SUFFIXES = {
    "b": ElementType.I8,
    "h": ElementType.I16,
    "w": ElementType.F32,
    "d": ElementType.F64,
    "iw": ElementType.I32,
    "id": ElementType.I64,
    "fw": ElementType.F32,
    "fd": ElementType.F64,
}


def _etype(suffix: str) -> ElementType:
    try:
        return _ASM_SUFFIXES[suffix]
    except KeyError:
        raise AssemblerError(
            f"unknown element-width suffix {suffix!r} "
            f"(expected one of {sorted(_ASM_SUFFIXES)})"
        ) from None


_PARAMS = {"offset": Param.OFFSET, "size": Param.SIZE, "stride": Param.STRIDE}
_STATIC_BEH = {"add": StaticBehavior.ADD, "sub": StaticBehavior.SUB}
_IND_BEH = {
    "set-add": IndirectBehavior.SET_ADD,
    "set-sub": IndirectBehavior.SET_SUB,
    "set-value": IndirectBehavior.SET_VALUE,
}
_MEM_LEVELS = {"mem1": MemLevel.L1, "mem2": MemLevel.L2, "mem3": MemLevel.MEM}


class Assembler:
    """Assembles UVE (and scalar base) source text into a Program."""

    def __init__(self) -> None:
        self._handlers: Dict[str, Callable] = {}
        self._register_handlers()

    # -- Public API -----------------------------------------------------------

    def assemble(self, source: str, name: str = "asm") -> Program:
        builder = ProgramBuilder(name)
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = raw.split(";", 1)[0].split("#", 1)[0].strip()
            if not line:
                continue
            try:
                self._line(builder, line)
            except AssemblerError as exc:
                raise AssemblerError(f"line {lineno}: {exc}") from None
        return builder.build()

    # -- Line handling ----------------------------------------------------------

    def _line(self, builder: ProgramBuilder, line: str) -> None:
        while ":" in line.split()[0] if line.split() else False:
            label, _, rest = line.partition(":")
            builder.label(label.strip())
            line = rest.strip()
            if not line:
                return
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = (
            [_operand(tok) for tok in parts[1].split(",")] if len(parts) > 1 else []
        )
        handler = self._lookup(mnemonic)
        builder.emit(handler(operands))

    def _lookup(self, mnemonic: str):
        handler = self._handlers.get(mnemonic)
        if handler is not None:
            return handler
        # Width/op-parameterised mnemonics: resolve by prefix patterns.
        for pattern, factory in self._parametric:
            inst = factory(mnemonic)
            if inst is not None:
                return inst
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}")

    # -- Handler registration --------------------------------------------------------

    def _register_handlers(self) -> None:
        sc = scalar_ops
        uve = uve_ops
        h = self._handlers

        def reg(op):
            if not isinstance(op, Reg):
                raise AssemblerError(f"expected a register, got {op!r}")
            return op

        def label(op):
            if not isinstance(op, str):
                raise AssemblerError(f"expected a label, got {op!r}")
            return op

        # Scalar base.
        h["li"] = lambda ops: sc.Li(reg(ops[0]), int(ops[1]))
        h["fli"] = lambda ops: sc.FLi(reg(ops[0]), float(ops[1]))
        h["mv"] = lambda ops: sc.Move(reg(ops[0]), reg(ops[1]))
        h["halt"] = lambda ops: sc.Halt()
        h["nop"] = lambda ops: sc.Nop()
        h["j"] = lambda ops: sc.Jump(label(ops[0]))
        for op in ("add", "sub", "mul", "div", "and", "or", "xor", "sll", "srl",
                   "min", "max"):
            h[op] = (
                lambda ops, _o=op: sc.IntOp(_o, reg(ops[0]), reg(ops[1]), ops[2])
            )
        for op in ("add", "sub", "mul", "div", "min", "max"):
            h[f"f{op}"] = (
                lambda ops, _o=op: sc.FOp(_o, reg(ops[0]), reg(ops[1]), ops[2])
            )
        h["fmadd"] = lambda ops: sc.FMac(reg(ops[0]), reg(ops[1]), reg(ops[2]))
        h["fsqrt"] = lambda ops: sc.FUnary("sqrt", reg(ops[0]), reg(ops[1]))
        for cond in ("eq", "ne", "lt", "le", "gt", "ge"):
            h[f"b{cond}"] = (
                lambda ops, _c=cond: sc.BranchCmp(
                    _c, reg(ops[0]), ops[1], label(ops[2])
                )
            )
        h["bnez"] = lambda ops: sc.BranchCmp("ne", reg(ops[0]), 0, label(ops[1]))
        h["beqz"] = lambda ops: sc.BranchCmp("eq", reg(ops[0]), 0, label(ops[1]))

        # Stream control / advanced.
        h["ss.suspend"] = lambda ops: uve.SsCtl("suspend", reg(ops[0]))
        h["ss.resume"] = lambda ops: uve.SsCtl("resume", reg(ops[0]))
        h["ss.stop"] = lambda ops: uve.SsCtl("stop", reg(ops[0]))
        h["ss.getvl"] = lambda ops: uve.SoGetVl(reg(ops[0]))
        h["ss.setvl"] = lambda ops: uve.SoSetVl(reg(ops[0]), ops[1])
        h["ss.app"] = lambda ops: uve.SsApp(reg(ops[0]), ops[1], ops[2], ops[3])
        h["ss.end"] = lambda ops: uve.SsApp(
            reg(ops[0]), ops[1], ops[2], ops[3], last=True
        )
        h["so.v.mv"] = lambda ops: uve.SoMove(reg(ops[0]), reg(ops[1]))

        def modifier(ops, last):
            target = _PARAMS.get(str(ops[1]).lower())
            behavior = _STATIC_BEH.get(str(ops[2]).lower())
            if target is None or behavior is None:
                raise AssemblerError(
                    f"bad modifier spec {ops[1]!r}/{ops[2]!r} "
                    "(target in offset|size|stride, behavior in add|sub)"
                )
            return uve_ops.SsAppMod(
                reg(ops[0]), target, behavior, ops[3], ops[4], last=last
            )

        h["ss.app.mod"] = lambda ops: modifier(ops, last=False)
        h["ss.end.mod"] = lambda ops: modifier(ops, last=True)

        def indirect(ops, last):
            target = _PARAMS.get(str(ops[1]).lower())
            behavior = _IND_BEH.get(str(ops[2]).lower())
            if target is None or behavior is None:
                raise AssemblerError(
                    f"bad indirect spec {ops[1]!r}/{ops[2]!r}"
                )
            return uve_ops.SsAppInd(
                reg(ops[0]), target, behavior, reg(ops[3]), last=last
            )

        h["ss.app.ind"] = lambda ops: indirect(ops, last=False)
        h["ss.end.ind"] = lambda ops: indirect(ops, last=True)

        h["so.b.nend"] = lambda ops: uve.SoBranchEnd(
            reg(ops[0]), label(ops[1]), negate=True
        )
        h["so.b.end"] = lambda ops: uve.SoBranchEnd(
            reg(ops[0]), label(ops[1]), negate=False
        )

        # -- SVE-like mnemonics (the baseline ISA, Fig. 1.B) -------------
        sve = sve_ops
        h["whilelt"] = lambda ops: sve.WhileLt(reg(ops[0]), reg(ops[1]),
                                               reg(ops[2]))
        h["ptrue"] = lambda ops: sve.PTrue(reg(ops[0]))
        h["ld1w"] = lambda ops: sve.Ld1(
            reg(ops[0]), reg(ops[1]), reg(ops[2]),
            index=ops[3] if len(ops) > 3 else None,
        )
        h["st1w"] = lambda ops: sve.St1(
            reg(ops[0]), reg(ops[1]), reg(ops[2]),
            index=ops[3] if len(ops) > 3 else None,
        )
        h["ld1rw"] = lambda ops: sve.Ld1R(reg(ops[0]), reg(ops[1]), reg(ops[2]))
        h["fmla"] = lambda ops: sve.Fmla(reg(ops[0]), reg(ops[1]),
                                         reg(ops[2]), reg(ops[3]))
        h["dup"] = lambda ops: sve.Dup(reg(ops[0]), ops[1])
        h["index"] = lambda ops: sve.Index(reg(ops[0]), ops[1], ops[2])
        h["incw"] = lambda ops: sve.IncElems(reg(ops[0]))
        h["cntw"] = lambda ops: sve.CntElems(reg(ops[0]))
        h["b.first"] = lambda ops: sve.BranchPred("first", reg(ops[0]),
                                                  label(ops[1]))
        h["b.any"] = lambda ops: sve.BranchPred("any", reg(ops[0]),
                                                label(ops[1]))
        h["b.none"] = lambda ops: sve.BranchPred("none", reg(ops[0]),
                                                 label(ops[1]))
        h["faddv"] = lambda ops: sve.Red("add", reg(ops[0]), reg(ops[1]),
                                         reg(ops[2]))
        h["fmaxv"] = lambda ops: sve.Red("max", reg(ops[0]), reg(ops[1]),
                                         reg(ops[2]))

        # -- NEON-like mnemonics -------------------------------------------
        neon = neon_ops
        h["ldr.q"] = lambda ops: neon.NVLoad(
            reg(ops[0]), reg(ops[1]), ops[2] if len(ops) > 2 else 0
        )
        h["ldr.q!"] = lambda ops: neon.NVLoad(reg(ops[0]), reg(ops[1]),
                                              post_inc=True)
        h["str.q"] = lambda ops: neon.NVStore(
            reg(ops[0]), reg(ops[1]), ops[2] if len(ops) > 2 else 0
        )
        h["str.q!"] = lambda ops: neon.NVStore(reg(ops[0]), reg(ops[1]),
                                               post_inc=True)
        h["fmla.4s"] = lambda ops: neon.NVFma(reg(ops[0]), reg(ops[1]),
                                              reg(ops[2]))
        h["dup.4s"] = lambda ops: neon.NVDup(reg(ops[0]), ops[1])

        # -- RVV-like mnemonics (Fig. 1.C) -----------------------------------
        rvv = rvv_ops
        h["vsetvli"] = lambda ops: rvv.VSetVli(reg(ops[0]), ops[1])
        h["vle.v"] = lambda ops: rvv.VlLoad(reg(ops[0]), reg(ops[1]))
        h["vse.v"] = lambda ops: rvv.VlStore(reg(ops[0]), reg(ops[1]))
        h["vlse.v"] = lambda ops: rvv.VlLoadStrided(reg(ops[0]), reg(ops[1]),
                                                    reg(ops[2]))
        h["vfmacc.vf"] = lambda ops: rvv.VMaccVF(reg(ops[0]), reg(ops[1]),
                                                 reg(ops[2]))
        h["vfmacc.vv"] = lambda ops: rvv.VMaccVV(reg(ops[0]), reg(ops[1]),
                                                 reg(ops[2]))
        h["vfmv.v.f"] = lambda ops: rvv.VDup(reg(ops[0]), ops[1])

        # Parametric mnemonics (width/operation embedded in the name).
        self._parametric: List = [
            ("ss.ld/st", self._stream_config),
            ("so.v.dup", self._dup),
            ("so.a", self._arith),
            ("so.r", self._reduce),
            ("so.b.dim", self._dim_branch),
            ("so.v.tosc", self._toscalar),
            ("so.v.fromsc", self._fromscalar),
            ("so.p", self._predicate),
            ("vop", self._rvv_arith),
            ("sve-vop", self._sve_arith),
        ]

    # -- Parametric handler factories -------------------------------------------------

    @staticmethod
    def _stream_config(mnemonic: str):
        parts = mnemonic.split(".")
        if parts[0] != "ss" or parts[1] not in ("ld", "st"):
            return None
        direction = Direction.LOAD if parts[1] == "ld" else Direction.STORE
        rest = parts[2:]
        start_only = False
        if rest and rest[0] == "sta":
            start_only = True
            rest = rest[1:]
        mem_level = MemLevel.L2
        if rest and rest[-1] in _MEM_LEVELS:
            mem_level = _MEM_LEVELS[rest[-1]]
            rest = rest[:-1]
        if len(rest) != 1:
            return None
        etype = _etype(rest[0])

        def handler(ops):
            cls = uve_ops.SsSta if start_only else uve_ops.SsConfig1D
            return cls(
                ops[0], direction, ops[1], ops[2],
                ops[3] if len(ops) > 3 else 1,
                etype=etype, mem_level=mem_level,
            )

        return handler

    @staticmethod
    def _dup(mnemonic: str):
        parts = mnemonic.split(".")
        if parts[:3] != ["so", "v", "dup"] or len(parts) != 4:
            return None
        etype = _etype(parts[3])
        return lambda ops: uve_ops.SoDup(ops[0], ops[1], etype=etype)

    @staticmethod
    def _arith(mnemonic: str):
        parts = mnemonic.split(".")
        if parts[:2] != ["so", "a"] or len(parts) != 4:
            return None
        op, kind = parts[2], parts[3]
        if kind == "fp":
            if op == "mac":
                return lambda ops: uve_ops.SoMac(ops[0], ops[1], ops[2])
            if op in ("sqrt", "neg", "abs"):
                return lambda ops: uve_ops.SoUnary(op, ops[0], ops[1])
            return lambda ops: uve_ops.SoOp(op, ops[0], ops[1], ops[2])
        if kind == "sc":
            if op == "mac":
                return lambda ops: uve_ops.SoMacScalar(ops[0], ops[1], ops[2])
            return lambda ops: uve_ops.SoOpScalar(op, ops[0], ops[1], ops[2])
        return None

    @staticmethod
    def _reduce(mnemonic: str):
        parts = mnemonic.split(".")
        if parts[:2] != ["so", "r"] or len(parts) not in (3, 4):
            return None
        op = parts[2]
        if len(parts) == 4 and parts[3] == "sc":
            return lambda ops: uve_ops.SoRedScalar(op, ops[0], ops[1])
        return lambda ops: uve_ops.SoRed(op, ops[0], ops[1])

    @staticmethod
    def _dim_branch(mnemonic: str):
        # so.b.dim<k>c / so.b.dim<k>nc
        prefix = "so.b.dim"
        if not mnemonic.startswith(prefix):
            return None
        tail = mnemonic[len(prefix):]
        if tail.endswith("nc"):
            complete, digits = False, tail[:-2]
        elif tail.endswith("c"):
            complete, digits = True, tail[:-1]
        else:
            return None
        if not digits.isdigit():
            return None
        dim = int(digits)
        return lambda ops: uve_ops.SoBranchDim(
            ops[0], dim, ops[1], complete=complete
        )

    @staticmethod
    def _toscalar(mnemonic: str):
        if mnemonic != "so.v.tosc":
            return None
        return lambda ops: uve_ops.SoScalarRead(ops[0], ops[1])

    @staticmethod
    def _fromscalar(mnemonic: str):
        if mnemonic != "so.v.fromsc":
            return None
        return lambda ops: uve_ops.SoScalarWrite(ops[0], ops[1])

    @staticmethod
    def _rvv_arith(mnemonic: str):
        # v<op>.vv / v<op>.vf
        parts = mnemonic.split(".")
        if len(parts) != 2 or not parts[0].startswith("v"):
            return None
        op, form = parts[0][1:], parts[1]
        if op not in ("add", "sub", "mul", "div", "min", "max"):
            return None
        if form == "vv":
            return lambda ops: rvv_ops.VOpVV(op, ops[0], ops[1], ops[2])
        if form == "vf":
            return lambda ops: rvv_ops.VOpVF(op, ops[0], ops[1], ops[2])
        return None

    @staticmethod
    def _sve_arith(mnemonic: str):
        # f<op>m -- predicated SVE arithmetic: fadd.m vd, pg, vs1, vs2
        if not mnemonic.startswith("f") or not mnemonic.endswith(".m"):
            return None
        op = mnemonic[1:-2]
        if op not in ("add", "sub", "mul", "div", "min", "max"):
            return None
        return lambda ops: sve_ops.VOp(op, ops[0], ops[1], ops[2], ops[3])

    @staticmethod
    def _predicate(mnemonic: str):
        parts = mnemonic.split(".")
        if parts[:2] != ["so", "p"] or len(parts) != 3:
            return None
        op = parts[2]
        if op == "not":
            return lambda ops: uve_ops.SoPredNot(ops[0], ops[1])
        return lambda ops: uve_ops.SoPredComp(op, ops[0], ops[1], ops[2])


def assemble(source: str, name: str = "asm") -> Program:
    """Assemble UVE source text into an executable Program."""
    return Assembler().assemble(source, name)
