"""Functional (architectural) simulator for all ISAs.

:class:`MachineState` realises the state protocol the instruction classes
execute against: scalar/vector/predicate register files, the byte memory,
the current vector length, and the *architectural* stream file (stream
configuration, consumption, production, control — paper §III).

:class:`FunctionalSimulator` drives a :class:`~repro.isa.program.Program`
over a state, producing the final memory contents (verified against NumPy
references by the test-suite) and a dynamic :class:`~repro.sim.trace.DynOp`
stream consumed by the timing model.
"""
from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.common.types import DEFAULT_VECTOR_BITS, ElementType, VectorShape
from repro.errors import ExecutionError, IsaError, StreamError
from repro.isa.instructions import Instruction
from repro.isa.microop import OpClass
from repro.isa.program import Program
from repro.isa.registers import Reg, RegClass
from repro.isa.vector import VecValue, zeros
from repro.memory.backing import Memory
from repro.sim.trace import DynOp, StreamTraceInfo, TraceSummary
from repro.streams.descriptor import (
    Descriptor,
    IndirectBehavior,
    IndirectModifier,
    Param,
    StaticBehavior,
    StaticModifier,
)
from repro.streams.iterator import RunIterator, StreamIterator
from repro.streams.limits import MAX_DIMENSIONS, MAX_MODIFIERS, MAX_STREAMS
from repro.streams.pattern import Direction, Level, MemLevel, StreamPattern

#: Lanes of the widest predicate granularity (one bit per byte of vector).
_MAX_PRED_LANES = 256


class _PendingConfig:
    """Accumulates a stream configuration across ss.sta/app/end."""

    def __init__(
        self, direction: Direction, etype: ElementType, mem_level: MemLevel
    ) -> None:
        self.direction = direction
        self.etype = etype
        self.mem_level = mem_level
        self.dims: List[Descriptor] = []
        self.mods: Dict[int, List] = {}
        self.lone_indirect: Dict[int, List] = {}

    @property
    def nlevels(self) -> int:
        return len(self.dims) + len(self.lone_indirect)

    @property
    def nmodifiers(self) -> int:
        return sum(len(mods) for mods in self.mods.values()) + sum(
            len(mods) for mods in self.lone_indirect.values()
        )

    def build(self) -> StreamPattern:
        levels: List[Level] = []
        for k, dim in enumerate(self.dims):
            levels.append(Level(dim, self.mods.get(k, [])))
            if k in self.lone_indirect:
                levels.append(Level(None, self.lone_indirect[k]))
        return StreamPattern(
            levels=levels,
            etype=self.etype,
            direction=self.direction,
            mem_level=self.mem_level,
        )


def hardware_stream_count(pattern: StreamPattern) -> int:
    """Streaming Engine slots the pattern occupies: itself plus every
    (transitively) attached indirect-origin stream, which stays resident
    in the engine even after its register is unbound."""
    count = 1
    for level in pattern.levels:
        for mod in level.modifiers:
            origin = getattr(mod, "origin", None)
            if origin is not None:
                count += hardware_stream_count(origin)
    return count


class _RuntimeStream:
    """The architectural state of one active stream.

    Address generation is run-granular by default: a
    :class:`~repro.streams.iterator.RunIterator` materialises each
    dimension-0 instance as one NumPy address vector, and vector reads /
    writes slice whole chunks out of the buffered run (chunks never cross
    a dimension-0 boundary, so a chunk is always a slice of one run).

    ``vectorized=False`` selects the legacy element-granular path — one
    Python iteration and one scalar memory access per element, with no
    contiguity fast path at all.  It is deliberately kept as the trusted
    reference the property tests compare the vectorized path against.
    """

    def __init__(
        self,
        uid: int,
        reg: int,
        pattern: StreamPattern,
        lanes: int,
        memory: Memory,
        trace: StreamTraceInfo,
        vectorized: bool = True,
    ) -> None:
        self.uid = uid
        self.reg = reg
        self.pattern = pattern
        self.lanes = lanes
        self.mem = memory
        self.trace = trace
        self.vectorized = vectorized
        self.origin_pending: List[int] = []

        def read_element(addr: int, etype: ElementType):
            self.origin_pending.append(addr)
            return memory.read_scalar(addr, etype)

        reader = read_element if pattern.has_indirection else None
        if vectorized:
            self._runs = iter(RunIterator(pattern, reader))
            self._run_addrs: Optional[np.ndarray] = None
            self._run_pos = 0
            self._run_flags = -1
        else:
            self._elements = iter(StreamIterator(pattern, reader))
        self.last_flags = -1
        self.ended = False
        self.suspended = False
        self.stopped = False
        #: total elements consumed/produced (the committed iteration state
        #: saved on a context switch, §IV-A)
        self.elements_done = 0
        # Element-granular chunk assembly (shared by vector/scalar access).
        self._open_chunk: List[int] = []
        self._chunk_count = 0

    def skip_elements(self, count: int) -> None:
        """Fast-forward past already-committed elements (context restore).

        Prefetched data was lost on the switch, so iteration resumes from
        the saved commit point; skipped elements are not re-recorded."""
        if self.vectorized:
            remaining = count
            while remaining > 0:
                addrs = self._run_addrs
                if addrs is None or self._run_pos == len(addrs):
                    self._advance_run()
                    addrs = self._run_addrs
                take = min(remaining, len(addrs) - self._run_pos)
                self._run_pos += take
                remaining -= take
                self.last_flags = (
                    self._run_flags if self._run_pos == len(addrs) else -1
                )
        else:
            for _ in range(count):
                addr, flags = self._next_element()
                self.last_flags = flags
        self.elements_done = count
        self.ended = count > 0 and self.last_flags == self.pattern.ndims - 1

    @property
    def direction(self) -> Direction:
        return self.pattern.direction

    def _advance_run(self) -> None:
        try:
            run = next(self._runs)
        except StopIteration:
            raise StreamError(
                f"stream u{self.reg} iterated past its end"
            ) from None
        self._run_addrs = run.addresses
        self._run_pos = 0
        self._run_flags = run.dims_ended

    def _next_chunk(self) -> Tuple[np.ndarray, int, int]:
        """Slice the next chunk (<= lanes elements, within the buffered
        dimension-0 run) and return ``(addresses, count, flags)``."""
        addrs = self._run_addrs
        if addrs is None or self._run_pos == len(addrs):
            self._advance_run()
            addrs = self._run_addrs
        pos = self._run_pos
        count = min(self.lanes, len(addrs) - pos)
        end = pos + count
        self._run_pos = end
        flags = self._run_flags if end == len(addrs) else -1
        return addrs[pos:end], count, flags

    def _next_element(self) -> Tuple[int, int]:
        if self.vectorized:
            addrs = self._run_addrs
            if addrs is None or self._run_pos == len(addrs):
                self._advance_run()
                addrs = self._run_addrs
            pos = self._run_pos
            self._run_pos = pos + 1
            flags = self._run_flags if pos + 1 == len(addrs) else -1
            return int(addrs[pos]), flags
        try:
            element = next(self._elements)
        except StopIteration:
            raise StreamError(
                f"stream u{self.reg} iterated past its end"
            ) from None
        return element.address, element.dims_ended

    def _close_chunk(self) -> None:
        self.trace.chunks.append(self._open_chunk)
        self.trace.origin_reads.append(self.origin_pending)
        self.trace.chunk_flags.append(self.last_flags)
        self.origin_pending = []
        self._open_chunk = []
        self._chunk_count += 1

    def _chunk_id(self) -> int:
        return self._chunk_count

    # -- Vector-granular access --------------------------------------------

    def read_vector(self) -> Tuple[VecValue, int]:
        """Consume one chunk (up to ``lanes`` elements, never crossing a
        dimension-0 boundary) and return its value and chunk id."""
        self._check_active("read")
        etype = self.pattern.etype
        chunk_id = self._chunk_id()
        if self._open_chunk:
            raise StreamError(
                f"stream u{self.reg}: vector read after partial scalar "
                "consumption of the current chunk"
            )
        data = np.zeros(self.lanes, dtype=etype.dtype)
        valid = np.zeros(self.lanes, dtype=bool)
        if self.vectorized:
            chunk, count, flags = self._next_chunk()
            width = etype.width
            # Contiguity fast path.  The *whole* address vector must step by
            # exactly one element width — checking only the endpoints would
            # let a permuted interior (e.g. [0, 8, 100, 24]) read the wrong
            # bytes through read_block.
            if count == 1 or bool((chunk[1:] - chunk[:-1] == width).all()):
                data[:count] = self.mem.read_block(int(chunk[0]), count, etype)
            else:
                data[:count] = self.mem.read_gather(chunk, etype)
            self._open_chunk = chunk.tolist()
        else:
            addrs = self._open_chunk
            count = 0
            flags = -1
            while count < self.lanes:
                addr, flags = self._next_element()
                addrs.append(addr)
                count += 1
                if flags >= 0:
                    break
            mem = self.mem
            for i in range(count):
                data[i] = mem.read_scalar(addrs[i], etype)
        valid[:count] = True
        self.last_flags = flags
        self._close_chunk()
        self.elements_done += count
        self.ended = self.last_flags == self.pattern.ndims - 1
        return VecValue(data, valid), chunk_id

    def write_vector(self, value: VecValue) -> int:
        """Produce one chunk of the output pattern from ``value``."""
        self._check_active("write")
        etype = self.pattern.etype
        chunk_id = self._chunk_id()
        if self._open_chunk:
            raise StreamError(
                f"stream u{self.reg}: vector write after partial scalar "
                "production of the current chunk"
            )
        if self.vectorized:
            chunk, count, flags = self._next_chunk()
            width = etype.width
            # Same full-vector contiguity check as read_vector; scattered
            # chunks (including duplicate addresses, which resolve
            # last-write-wins like the scalar loop) go through write_scatter.
            if count == 1 or bool((chunk[1:] - chunk[:-1] == width).all()):
                self.mem.write_block(int(chunk[0]), value.data[:count])
            else:
                self.mem.write_scatter(chunk, value.data[:count], etype)
            self._open_chunk = chunk.tolist()
        else:
            addrs = self._open_chunk
            count = 0
            flags = -1
            while count < self.lanes:
                addr, flags = self._next_element()
                addrs.append(addr)
                count += 1
                if flags >= 0:
                    break
            mem = self.mem
            data = value.data
            for i in range(count):
                mem.write_scalar(addrs[i], data[i], etype)
        self.last_flags = flags
        self._close_chunk()
        self.elements_done += count
        self.ended = self.last_flags == self.pattern.ndims - 1
        return chunk_id

    # -- Element-granular (scalar) access ------------------------------------

    def read_scalar(self) -> Tuple[object, int]:
        self._check_active("read")
        chunk_id = self._chunk_id()
        addr, flags = self._next_element()
        value = self.mem.read_scalar(addr, self.pattern.etype)
        self._open_chunk.append(addr)
        self.elements_done += 1
        self.last_flags = flags
        self.ended = flags == self.pattern.ndims - 1
        if flags >= 0 or len(self._open_chunk) == self.lanes:
            self._close_chunk()
        return value, chunk_id

    def write_scalar(self, value) -> int:
        self._check_active("write")
        chunk_id = self._chunk_id()
        addr, flags = self._next_element()
        self.mem.write_scalar(addr, value, self.pattern.etype)
        self._open_chunk.append(addr)
        self.elements_done += 1
        self.last_flags = flags
        self.ended = flags == self.pattern.ndims - 1
        if flags >= 0 or len(self._open_chunk) == self.lanes:
            self._close_chunk()
        return chunk_id

    def _check_active(self, what: str) -> None:
        if self.stopped:
            raise StreamError(f"cannot {what} stopped stream u{self.reg}")
        if self.suspended:
            raise StreamError(f"cannot {what} suspended stream u{self.reg}")
        if self.ended:
            raise StreamError(f"cannot {what} finished stream u{self.reg}")


class MachineState:
    """Architectural machine state (the instruction execution target)."""

    def __init__(
        self,
        memory: Optional[Memory] = None,
        vector_bits: int = DEFAULT_VECTOR_BITS,
        vectorized_streams: bool = True,
    ) -> None:
        self.mem = memory if memory is not None else Memory()
        self.vector_bits = vector_bits
        #: run-granular NumPy stream execution; False selects the legacy
        #: element-granular reference path (kept for differential testing)
        self.vectorized_streams = vectorized_streams
        self.xregs = [0] * 32
        self.fregs = [0.0] * 32
        self.vregs: List[VecValue] = [
            zeros(vector_bits // 32, ElementType.F32) for _ in range(32)
        ]
        self.vreg_etype: List[ElementType] = [ElementType.F32] * 32
        self.preds = np.zeros((16, _MAX_PRED_LANES), dtype=bool)
        self.preds[0, :] = True  # p0 hardwired all-true
        self.vl_elems: Optional[int] = None  # ss.setvl override
        self.halted = False

        # Stream architectural state.
        self._pending: Dict[int, _PendingConfig] = {}
        self._streams: Dict[int, _RuntimeStream] = {}
        self._next_uid = 0
        self.stream_infos: Dict[int, StreamTraceInfo] = {}

        # Per-instruction event scratchpad (collected into DynOps).
        self.ev_mem_reads: List[int] = []
        self.ev_mem_writes: List[int] = []
        self.ev_mem_width = 0
        self.ev_stream_reads: List[Tuple[int, int, int]] = []
        self.ev_stream_writes: List[Tuple[int, int, int]] = []
        self.ev_cfg_uid: Optional[int] = None
        self._ev_dirty = False

    # -- Scalar registers -----------------------------------------------------

    def read_x(self, reg: Reg) -> int:
        return 0 if reg.index == 0 else self.xregs[reg.index]

    def write_x(self, reg: Reg, value: int) -> None:
        if reg.index != 0:
            self.xregs[reg.index] = int(value)

    def read_f(self, reg: Reg) -> float:
        return self.fregs[reg.index]

    def write_f(self, reg: Reg, value: float) -> None:
        self.fregs[reg.index] = float(value)

    def value_int(self, operand) -> int:
        if isinstance(operand, Reg):
            if operand.cls is RegClass.F:
                return int(self.read_f(operand))
            return self.read_x(operand)
        return int(operand)

    def value_float(self, operand) -> float:
        if isinstance(operand, Reg):
            if operand.cls is RegClass.F:
                return self.read_f(operand)
            return float(self.read_x(operand))
        return float(operand)

    # -- Vector registers and predicates --------------------------------------

    def lanes(self, etype: ElementType) -> int:
        hw = self.vector_bits // (etype.width * 8)
        if self.vl_elems is not None:
            return min(hw, self.vl_elems)
        return hw

    def set_vl(self, request: int, etype: ElementType) -> int:
        hw = self.vector_bits // (etype.width * 8)
        if request <= 0:
            self.vl_elems = None
            return hw
        self.vl_elems = min(request, hw)
        return self.vl_elems

    def read_v(self, reg: Reg, etype: ElementType) -> VecValue:
        value = self.vregs[reg.index]
        lanes = self.lanes(etype)
        if len(value.data) != lanes or value.data.dtype != etype.dtype:
            data = np.zeros(lanes, dtype=etype.dtype)
            valid = np.zeros(lanes, dtype=bool)
            n = min(lanes, len(value.data))
            data[:n] = value.data[:n].astype(etype.dtype)
            valid[:n] = value.valid[:n]
            return VecValue(data, valid)
        return value

    def write_v(self, reg: Reg, value: VecValue, etype: ElementType) -> None:
        self.vregs[reg.index] = value
        self.vreg_etype[reg.index] = etype

    def read_pred(self, reg: Reg, lanes: int) -> np.ndarray:
        return self.preds[reg.index, :lanes]

    def write_pred(self, reg: Reg, mask: np.ndarray) -> None:
        if reg.index == 0:
            raise IsaError("predicate p0 is hardwired and cannot be written")
        self.preds[reg.index, :] = False
        self.preds[reg.index, : len(mask)] = mask

    # -- Stream-aware operand access (UVE F1/F4) ------------------------------

    def is_stream(self, index: int) -> bool:
        stream = self._streams.get(index)
        return stream is not None and not stream.suspended and not stream.stopped

    def read_operand(self, reg: Reg, etype: ElementType) -> VecValue:
        stream = self._streams.get(reg.index)
        if stream is not None and self.is_stream(reg.index):
            if stream.direction is Direction.STORE:
                raise StreamError(
                    f"u{reg.index} is an output stream; it cannot be read "
                    "(a stream cannot operate in both read and write modes)"
                )
            value, chunk = stream.read_vector()
            self.ev_stream_reads.append((reg.index, stream.uid, chunk, True))
            self._ev_dirty = True
            self.write_v(reg, value, etype)  # the register is the interface
            return value
        return self.read_v(reg, etype)

    def write_operand(self, reg: Reg, value: VecValue, etype: ElementType) -> None:
        stream = self._streams.get(reg.index)
        if stream is not None and self.is_stream(reg.index):
            if stream.direction is Direction.LOAD:
                raise StreamError(
                    f"u{reg.index} is an input stream; it cannot be written"
                )
            chunk = stream.write_vector(value)
            self.ev_stream_writes.append((reg.index, stream.uid, chunk, True))
            self._ev_dirty = True
            return
        self.write_v(reg, value, etype)

    # -- Stream configuration ---------------------------------------------------

    def stream_begin(
        self,
        index: int,
        direction: Direction,
        etype: ElementType,
        mem_level: MemLevel,
    ) -> None:
        self._pending[index] = _PendingConfig(direction, etype, mem_level)

    def stream_dim(self, index: int, offset: int, size: int, stride: int) -> None:
        pending = self._require_pending(index)
        if pending.nlevels + 1 > MAX_DIMENSIONS:
            raise StreamError(
                f"u{index}: appending a dimension would give "
                f"{pending.nlevels + 1} dimensions; the Streaming Engine "
                f"supports at most {MAX_DIMENSIONS} per stream"
            )
        pending.dims.append(Descriptor(offset, size, stride))

    def stream_static_mod(
        self,
        index: int,
        target: Param,
        behavior: StaticBehavior,
        displacement: int,
        count: int,
    ) -> None:
        pending = self._require_pending(index)
        if len(pending.dims) < 2:
            raise StreamError(
                "a static modifier needs an appended dimension above "
                "dimension 0 to bind to"
            )
        if pending.nmodifiers + 1 > MAX_MODIFIERS:
            raise StreamError(
                f"u{index}: appending a modifier would give "
                f"{pending.nmodifiers + 1} modifiers; the Streaming Engine "
                f"supports at most {MAX_MODIFIERS} per stream"
            )
        k = len(pending.dims) - 1
        pending.mods.setdefault(k, []).append(
            StaticModifier(target, behavior, displacement, count)
        )

    def stream_indirect_mod(
        self,
        index: int,
        target: Param,
        behavior: IndirectBehavior,
        origin_index: int,
    ) -> None:
        pending = self._require_pending(index)
        origin = self._streams.get(origin_index)
        if origin is None:
            raise StreamError(
                f"indirect origin u{origin_index} has no configured stream"
            )
        if pending.nmodifiers + 1 > MAX_MODIFIERS:
            raise StreamError(
                f"u{index}: appending an indirect modifier would give "
                f"{pending.nmodifiers + 1} modifiers; the Streaming Engine "
                f"supports at most {MAX_MODIFIERS} per stream"
            )
        if len(pending.dims) < 2 and pending.nlevels + 1 > MAX_DIMENSIONS:
            raise StreamError(
                f"u{index}: the lone indirect level would give "
                f"{pending.nlevels + 1} dimensions; the Streaming Engine "
                f"supports at most {MAX_DIMENSIONS} per stream"
            )
        # The origin becomes engine-internal: unbind it from the register.
        del self._streams[origin_index]
        modifier = IndirectModifier(target, behavior, origin.pattern)
        if len(pending.dims) >= 2:
            k = len(pending.dims) - 1
            pending.mods.setdefault(k, []).append(modifier)
        else:
            # Lone indirect level above dimension 0 (Fig. 3.B5).
            pending.lone_indirect.setdefault(len(pending.dims) - 1, []).append(
                modifier
            )

    def stream_finish(self, index: int) -> None:
        pending = self._pending.pop(index, None)
        if pending is None:
            raise StreamError(f"no pending configuration for u{index}")
        pattern = pending.build()
        in_use = sum(
            hardware_stream_count(s.pattern)
            for reg, s in self._streams.items()
            if reg != index  # reconfiguring a register frees its stream
        )
        wanted = hardware_stream_count(pattern)
        if in_use + wanted > MAX_STREAMS:
            raise StreamError(
                f"u{index}: configuring this stream needs {wanted} "
                f"hardware stream(s) on top of {in_use} in use; the "
                f"Streaming Engine has {MAX_STREAMS}"
            )
        uid = self._next_uid
        self._next_uid += 1
        info = StreamTraceInfo(
            uid=uid,
            reg=index,
            direction=pattern.direction,
            etype=pattern.etype,
            mem_level=pattern.mem_level,
            ndims=pattern.ndims,
            storage_bytes=pattern.storage_bytes(),
        )
        self.stream_infos[uid] = info
        lanes = self.lanes(pattern.etype)
        self._streams[index] = _RuntimeStream(
            uid, index, pattern, lanes, self.mem, info,
            vectorized=self.vectorized_streams,
        )
        self.ev_cfg_uid = uid
        self._ev_dirty = True

    def _require_pending(self, index: int) -> _PendingConfig:
        try:
            return self._pending[index]
        except KeyError:
            raise StreamError(
                f"no stream configuration in progress for u{index}"
            ) from None

    def _require_stream(self, index: int) -> _RuntimeStream:
        stream = self._streams.get(index)
        if stream is None:
            raise StreamError(f"u{index} is not bound to a stream")
        return stream

    # -- Stream queries, element access and control -------------------------------

    def stream_ended(self, index: int) -> bool:
        return self._require_stream(index).ended

    def stream_dim_complete(self, index: int, dim: int) -> bool:
        return self._require_stream(index).last_flags >= dim

    def stream_read_scalar(self, index: int):
        stream = self._require_stream(index)
        if stream.direction is Direction.STORE:
            raise StreamError(f"u{index} is an output stream; cannot be read")
        value, chunk = stream.read_scalar()
        closed = stream._chunk_count != chunk
        self.ev_stream_reads.append((index, stream.uid, chunk, closed))
        self._ev_dirty = True
        return value

    def stream_write_scalar(self, index: int, value) -> None:
        stream = self._require_stream(index)
        if stream.direction is Direction.LOAD:
            raise StreamError(f"u{index} is an input stream; cannot be written")
        chunk = stream.write_scalar(value)
        closed = stream._chunk_count != chunk
        self.ev_stream_writes.append((index, stream.uid, chunk, closed))
        self._ev_dirty = True

    def stream_control(self, index: int, kind: str) -> None:
        stream = self._require_stream(index)
        if kind == "suspend":
            stream.suspended = True
        elif kind == "resume":
            stream.suspended = False
        elif kind == "stop":
            stream.stopped = True
            del self._streams[index]

    # -- Trace event helpers ---------------------------------------------------

    def record_mem_read(self, addrs, width: int) -> None:
        self.ev_mem_reads.extend(addrs)
        self.ev_mem_width = width
        self._ev_dirty = True

    def record_mem_write(self, addrs, width: int) -> None:
        self.ev_mem_writes.extend(addrs)
        self.ev_mem_width = width
        self._ev_dirty = True

    def clear_events(self) -> None:
        if not self._ev_dirty:
            return
        self.ev_mem_reads = []
        self.ev_mem_writes = []
        self.ev_mem_width = 0
        self.ev_stream_reads = []
        self.ev_stream_writes = []
        self.ev_cfg_uid = None
        self._ev_dirty = False

    def halt(self) -> None:
        self.halted = True

    # -- Context switching (§IV-A) ------------------------------------------

    def save_stream_context(self) -> List[dict]:
        """Suspend all active streams and capture their committed
        iteration state (pattern + scalar position).  The saved state is
        32 B (1-D) to 400 B (8-D + 7 modifiers) per stream in hardware;
        prefetched FIFO data is lost and reloaded on restore."""
        context = []
        for index, stream in self._streams.items():
            stream.suspended = True
            context.append(
                {
                    "reg": index,
                    "pattern": stream.pattern,
                    "elements_done": stream.elements_done,
                    "bytes": stream.pattern.storage_bytes(),
                }
            )
        return context

    def restore_stream_context(self, context: List[dict]) -> None:
        """Rebind saved streams and resume from their commit points."""
        for saved in context:
            index = saved["reg"]
            pattern = saved["pattern"]
            uid = self._next_uid
            self._next_uid += 1
            info = StreamTraceInfo(
                uid=uid,
                reg=index,
                direction=pattern.direction,
                etype=pattern.etype,
                mem_level=pattern.mem_level,
                ndims=pattern.ndims,
                storage_bytes=pattern.storage_bytes(),
            )
            self.stream_infos[uid] = info
            stream = _RuntimeStream(
                uid, index, pattern, self.lanes(pattern.etype), self.mem, info,
                vectorized=self.vectorized_streams,
            )
            stream.skip_elements(saved["elements_done"])
            self._streams[index] = stream
            self.ev_cfg_uid = uid
            self._ev_dirty = True


class FunctionalSimulator:
    """Interprets a program, yielding the dynamic trace."""

    def __init__(
        self,
        program: Program,
        state: Optional[MachineState] = None,
        memory: Optional[Memory] = None,
        vector_bits: int = DEFAULT_VECTOR_BITS,
        max_steps: int = 50_000_000,
        vectorized_streams: bool = True,
    ) -> None:
        self.program = program
        self.state = state or MachineState(
            memory=memory,
            vector_bits=vector_bits,
            vectorized_streams=vectorized_streams,
        )
        self.max_steps = max_steps
        self.summary = TraceSummary()

    def trace(self) -> Iterator[DynOp]:
        """Execute, yielding one DynOp per committed instruction."""
        state = self.state
        program = self.program
        instructions = program.instructions
        labels = program.labels
        n = len(instructions)
        pc = 0
        seq = 0
        max_steps = self.max_steps
        summary = self.summary
        # Per-instruction static metadata, computed once (dests/srcs/opclass
        # are properties on some instruction classes).
        meta = {}
        while not state.halted and pc < n:
            if seq >= max_steps:
                raise ExecutionError(
                    f"program {program.name!r} exceeded {self.max_steps} steps"
                )
            inst = instructions[pc]
            key = id(inst)
            cached = meta.get(key)
            if cached is None:
                opclass = inst.opclass
                cached = (inst, opclass, inst.dests, inst.srcs,
                          opclass is OpClass.BRANCH, inst.early_dests)
                meta[key] = cached
            _, opclass, dests, srcs, is_branch, early = cached
            state.clear_events()
            label = inst.execute(state)
            op = DynOp(
                seq,
                pc,
                inst,
                opclass,
                dests,
                srcs,
                tuple(state.ev_mem_reads) or None,
                tuple(state.ev_mem_writes) or None,
                state.ev_mem_width,
                is_branch,
                label is not None,
                tuple(state.ev_stream_reads) or None,
                tuple(state.ev_stream_writes) or None,
                state.ev_cfg_uid,
                early,
            )
            summary.count(op)
            yield op
            seq += 1
            pc = labels[label] if label is not None else pc + 1
        summary.streams = dict(state.stream_infos)

    def run(self) -> TraceSummary:
        """Execute to completion, discarding the trace."""
        for _ in self.trace():
            pass
        return self.summary
