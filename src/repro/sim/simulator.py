"""Combined functional + timing simulation.

The timing pipeline needs complete per-stream chunk sequences *before*
consuming instructions arrive (the Streaming Engine runs ahead of the
core), so simulation is two-pass: the functional simulator runs once to
produce stream metadata and the committed-instruction summary, memory is
restored from a snapshot, and a second functional pass feeds the pipeline
its trace lazily (keeping peak memory flat).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cpu.config import MachineConfig
from repro.cpu.pipeline import Pipeline
from repro.cpu.stats import PipelineStats
from repro.errors import ExecutionError
from repro.isa.program import Program
from repro.memory.backing import Memory
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.functional import FunctionalSimulator
from repro.sim.trace import TraceSummary


@dataclass
class SimulationResult:
    """Everything the experiment harness needs from one run."""

    program: str
    summary: TraceSummary
    timing: PipelineStats
    hierarchy: MemoryHierarchy
    pipeline: Pipeline

    @property
    def committed(self) -> int:
        return self.summary.committed

    @property
    def cycles(self) -> float:
        return self.timing.cycles

    @property
    def ipc(self) -> float:
        return self.timing.ipc

    @property
    def bus_utilization(self) -> float:
        return self.timing.bus_utilization

    @property
    def rename_blocks_per_cycle(self) -> float:
        return self.timing.rename_blocks_per_cycle

    def to_dict(self) -> dict:
        """JSON-serialisable summary of the run (for external tooling)."""
        engine = self.pipeline.engine
        out = {
            "program": self.program,
            "committed": self.committed,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "bus_utilization": self.bus_utilization,
            "rename_blocks_per_cycle": self.rename_blocks_per_cycle,
            "rename_block_causes": dict(self.timing.rename_block_causes),
            "mispredict_rate": self.timing.mispredict_rate,
            "fetch_stall_cycles": self.timing.fetch_stall_cycles,
            "dram_bytes": self.hierarchy.dram.total_bytes,
            "l1d_miss_rate": self.hierarchy.l1d.stats.miss_rate,
            "l2_miss_rate": self.hierarchy.l2.stats.miss_rate,
        }
        if engine is not None:
            out["engine"] = {
                "line_requests": engine.stats.line_requests,
                "chunks_filled": engine.stats.chunks_filled,
                "store_lines": engine.stats.store_lines,
                "mean_fifo_occupancy": engine.stats.mean_fifo_occupancy,
                "configs": engine.stats.configs,
            }
        return out


def _check_replay(
    program: str, first: TraceSummary, second: TraceSummary
) -> None:
    """Compare the two passes' full trace summaries.

    The timing pipeline's trace (pass 2) must be the same dynamic
    instruction sequence the Streaming Engine metadata was collected
    from (pass 1); any divergence means data-dependent control flow saw
    different memory — the snapshot/restore contract was violated — and
    every timing number would be quietly wrong.  The diff names each
    mismatching facet so the failure is debuggable.
    """
    problems = []
    if second.committed != first.committed:
        problems.append(
            f"committed {second.committed} vs {first.committed}"
        )
    if second.by_class != first.by_class:
        keys = sorted(
            set(first.by_class) | set(second.by_class), key=lambda c: c.name
        )
        diffs = [
            f"{cls.name}: {second.by_class.get(cls, 0)} vs "
            f"{first.by_class.get(cls, 0)}"
            for cls in keys
            if second.by_class.get(cls, 0) != first.by_class.get(cls, 0)
        ]
        problems.append(f"per-class counts differ ({'; '.join(diffs)})")
    if second.branches != first.branches:
        problems.append(f"branches {second.branches} vs {first.branches}")
    if second.taken_branches != first.taken_branches:
        problems.append(
            f"taken branches {second.taken_branches} vs "
            f"{first.taken_branches}"
        )
    if len(second.streams) != len(first.streams):
        problems.append(
            f"stream configurations {len(second.streams)} vs "
            f"{len(first.streams)}"
        )
    else:
        for uid, info in first.streams.items():
            other = second.streams.get(uid)
            if other is None:
                problems.append(f"stream uid {uid} missing in pass 2")
            elif len(other.chunks) != len(info.chunks):
                problems.append(
                    f"stream uid {uid} (reg u{info.reg}): "
                    f"{len(other.chunks)} vs {len(info.chunks)} chunks"
                )
    if problems:
        raise ExecutionError(
            f"non-deterministic replay of {program!r}: the timing pass "
            "diverged from the metadata pass — " + "; ".join(problems)
        )


class Simulator:
    """Runs a program functionally and through the timing model."""

    def __init__(
        self,
        program: Program,
        memory: Memory,
        config: Optional[MachineConfig] = None,
        warm: bool = True,
    ) -> None:
        self.program = program
        self.memory = memory
        self.config = config or MachineConfig()
        #: pre-install the allocated data into the L2 (steady-state
        #: measurement); working sets beyond the L2 capacity overflow.
        self.warm = warm

    def run_functional(self) -> TraceSummary:
        """Functional-only run (fast; used for instruction counts)."""
        sim = FunctionalSimulator(
            self.program, memory=self.memory,
            vector_bits=self.config.vector_bits,
        )
        return sim.run()

    def run(self) -> SimulationResult:
        snapshot = self.memory.data.copy()

        # Pass 1: functional, collecting stream metadata + summary.
        first = FunctionalSimulator(
            self.program, memory=self.memory,
            vector_bits=self.config.vector_bits,
        )
        summary = first.run()

        # Restore memory so the data-dependent control flow of pass 2
        # replays identically.
        np.copyto(self.memory.data, snapshot)

        # Pass 2: lazy trace into the timing pipeline.
        second = FunctionalSimulator(
            self.program, memory=self.memory,
            vector_bits=self.config.vector_bits,
        )
        hierarchy = MemoryHierarchy(self.config)
        if self.warm:
            hierarchy.warm(0, self.memory._brk)
        stream_infos: Dict = dict(summary.streams)
        pipeline = Pipeline(self.config, hierarchy, stream_infos)
        timing = pipeline.run(second.trace())
        _check_replay(self.program.name, summary, second.summary)
        return SimulationResult(
            program=self.program.name,
            summary=summary,
            timing=timing,
            hierarchy=hierarchy,
            pipeline=pipeline,
        )
