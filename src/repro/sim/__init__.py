"""Simulation layer: functional ISS, trace structures, combined simulator."""
from repro.sim.functional import FunctionalSimulator, MachineState
from repro.sim.trace import DynOp, StreamTraceInfo, TraceSummary

__all__ = [
    "DynOp",
    "FunctionalSimulator",
    "MachineState",
    "StreamTraceInfo",
    "TraceSummary",
]
