"""Dynamic-trace structures connecting the functional and timing layers.

The functional simulator emits one :class:`DynOp` per committed
instruction.  The timing pipeline consumes the sequence, doing its own
renaming/scheduling; the paper's oracle quantities (committed-instruction
counts, Fig. 8.A) come straight from the trace.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.types import ElementType
from repro.isa.instructions import Instruction
from repro.isa.microop import OpClass
from repro.streams.pattern import Direction, MemLevel


class DynOp:
    """One dynamic (committed) instruction instance."""

    __slots__ = (
        "seq",
        "pc",
        "inst",
        "opclass",
        "dests",
        "srcs",
        "early_dests",
        "mem_reads",
        "mem_writes",
        "mem_width",
        "is_branch",
        "taken",
        "stream_reads",
        "stream_writes",
        "cfg_uid",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        inst: Instruction,
        opclass: OpClass,
        dests,
        srcs,
        mem_reads: Optional[Tuple[int, ...]] = None,
        mem_writes: Optional[Tuple[int, ...]] = None,
        mem_width: int = 0,
        is_branch: bool = False,
        taken: bool = False,
        stream_reads: Optional[Tuple[Tuple[int, int, int], ...]] = None,
        stream_writes: Optional[Tuple[Tuple[int, int, int], ...]] = None,
        cfg_uid: Optional[int] = None,
        early_dests=(),
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.opclass = opclass
        self.dests = dests
        self.srcs = srcs
        self.early_dests = early_dests
        self.mem_reads = mem_reads
        self.mem_writes = mem_writes
        self.mem_width = mem_width
        self.is_branch = is_branch
        self.taken = taken
        #: tuples of (vector-register index, stream uid, chunk index)
        self.stream_reads = stream_reads
        self.stream_writes = stream_writes
        self.cfg_uid = cfg_uid

    def __repr__(self) -> str:
        return f"<DynOp #{self.seq} pc={self.pc} {self.inst}>"


class StreamTraceInfo:
    """Per-configured-stream record used by the timing Streaming Engine.

    ``chunks[i]`` is the list of byte addresses of the *i*-th vector-sized
    transfer; ``origin_reads[i]`` are extra engine-internal loads issued
    while generating chunk *i* (indirect-pattern index fetches).
    """

    __slots__ = (
        "uid",
        "reg",
        "direction",
        "etype",
        "mem_level",
        "chunks",
        "origin_reads",
        "chunk_flags",
        "ndims",
        "storage_bytes",
    )

    def __init__(
        self,
        uid: int,
        reg: int,
        direction: Direction,
        etype: ElementType,
        mem_level: MemLevel,
        ndims: int,
        storage_bytes: int,
    ) -> None:
        self.uid = uid
        self.reg = reg
        self.direction = direction
        self.etype = etype
        self.mem_level = mem_level
        self.ndims = ndims
        self.storage_bytes = storage_bytes
        self.chunks: List[List[int]] = []
        self.origin_reads: List[List[int]] = []
        #: dims_ended flag of each chunk's final element
        self.chunk_flags: List[int] = []

    @property
    def is_load(self) -> bool:
        return self.direction is Direction.LOAD

    def total_elements(self) -> int:
        return sum(len(c) for c in self.chunks)


class TraceSummary:
    """Aggregate statistics of a functional run."""

    def __init__(self) -> None:
        self.committed: int = 0
        self.by_class: Dict[OpClass, int] = {}
        self.branches: int = 0
        self.taken_branches: int = 0
        self.streams: Dict[int, StreamTraceInfo] = {}

    def count(self, op: DynOp) -> None:
        self.committed += 1
        self.by_class[op.opclass] = self.by_class.get(op.opclass, 0) + 1
        if op.is_branch:
            self.branches += 1
            if op.taken:
                self.taken_branches += 1

    @property
    def vector_ops(self) -> int:
        return sum(
            count for cls, count in self.by_class.items() if cls.is_vector
        )
