"""Debug and introspection helpers.

* :func:`functional_trace` — human-readable dump of a program's dynamic
  execution (instructions, memory addresses, stream chunk consumption).
* :func:`pipeline_timeline` — per-instruction rename/issue/commit cycles
  from a full timing run, rendered as a text pipeline diagram.
* :func:`stream_report` — per-stream summary (chunks, elements, lines).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cpu.config import MachineConfig, uve_machine
from repro.cpu.pipeline import Pipeline
from repro.isa.program import Program
from repro.memory.backing import Memory
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.functional import FunctionalSimulator
from repro.sim.trace import TraceSummary


def functional_trace(
    program: Program,
    memory: Memory,
    limit: int = 100,
    vector_bits: int = 512,
) -> str:
    """Execute functionally and render the first ``limit`` dynamic
    instructions with their side effects."""
    sim = FunctionalSimulator(program, memory=memory, vector_bits=vector_bits)
    lines: List[str] = []
    for op in sim.trace():
        if op.seq >= limit:
            lines.append(f"... (truncated at {limit} instructions)")
            break
        parts = [f"{op.seq:>6d}  pc={op.pc:<4d} {str(op.inst):<40s}"]
        if op.mem_reads:
            parts.append(f"R[{_addr_span(op.mem_reads)}]")
        if op.mem_writes:
            parts.append(f"W[{_addr_span(op.mem_writes)}]")
        if op.stream_reads:
            parts.append(
                "consume " + ",".join(
                    f"u{r}#{c}" for (r, _, c, __) in op.stream_reads
                )
            )
        if op.stream_writes:
            parts.append(
                "produce " + ",".join(
                    f"u{r}#{c}" for (r, _, c, __) in op.stream_writes
                )
            )
        if op.is_branch:
            parts.append("taken" if op.taken else "not-taken")
        lines.append(" ".join(parts))
    return "\n".join(lines)


def _addr_span(addrs) -> str:
    addrs = list(addrs)
    if len(addrs) == 1:
        return f"{addrs[0]:#x}"
    return f"{addrs[0]:#x}..{addrs[-1]:#x} ({len(addrs)})"


@dataclass
class OpTiming:
    seq: int
    pc: int
    text: str
    rename: Optional[float] = None
    issue: Optional[float] = None
    commit: Optional[float] = None


def pipeline_timeline(
    program: Program,
    memory: Memory,
    config: Optional[MachineConfig] = None,
    first: int = 0,
    count: int = 40,
) -> str:
    """Run the full simulator and render rename/issue/commit cycles for
    ``count`` instructions starting at dynamic index ``first``."""
    import numpy as np

    config = config or uve_machine()
    snapshot = memory.data.copy()
    summary = FunctionalSimulator(
        program, memory=memory, vector_bits=config.vector_bits
    ).run()
    np.copyto(memory.data, snapshot)

    second = FunctionalSimulator(
        program, memory=memory, vector_bits=config.vector_bits
    )
    hierarchy = MemoryHierarchy(config)
    pipeline = Pipeline(config, hierarchy, dict(summary.streams))
    window: Dict[int, OpTiming] = {}

    def observer(event: str, dyn, cycle: float) -> None:
        if not (first <= dyn.seq < first + count):
            return
        timing = window.get(dyn.seq)
        if timing is None:
            timing = window[dyn.seq] = OpTiming(dyn.seq, dyn.pc, str(dyn.inst))
        setattr(timing, event, cycle)

    pipeline.observer = observer
    stats = pipeline.run(second.trace())

    header = (
        f"{'seq':>6s} {'pc':>4s} {'instruction':<40s} "
        f"{'rename':>8s} {'issue':>8s} {'commit':>8s}"
    )
    lines = [header, "-" * len(header)]
    for seq in sorted(window):
        t = window[seq]
        lines.append(
            f"{t.seq:>6d} {t.pc:>4d} {t.text:<40s} "
            f"{_cycle(t.rename)} {_cycle(t.issue)} {_cycle(t.commit)}"
        )
    lines.append(
        f"total: {stats.cycles:.0f} cycles, IPC {stats.ipc:.2f}"
    )
    return "\n".join(lines)


def _cycle(value: Optional[float]) -> str:
    return f"{value:>8.0f}" if value is not None else f"{'-':>8s}"


def stream_report(summary: TraceSummary) -> str:
    """Summarise the streams a functional run configured."""
    lines = [
        f"{'uid':>4s} {'reg':>4s} {'dir':>5s} {'dims':>4s} {'chunks':>7s} "
        f"{'elems':>8s} {'state B':>8s}"
    ]
    for uid in sorted(summary.streams):
        info = summary.streams[uid]
        lines.append(
            f"{uid:>4d} u{info.reg:<3d} "
            f"{'load' if info.is_load else 'store':>5s} {info.ndims:>4d} "
            f"{len(info.chunks):>7d} {info.total_elements():>8d} "
            f"{info.storage_bytes:>8d}"
        )
    return "\n".join(lines)
