"""Automated shape validation of a results.json campaign.

``python -m repro.harness --check results.json`` (or
:func:`validate_results`) asserts the qualitative claims of the paper —
who wins, orderings, flat-vs-growing sensitivities — against a previously
exported campaign, without pinning fragile absolute numbers.

A malformed or truncated campaign (e.g. an export missing its ``average``
row) must degrade to ``FAIL:`` entries naming the missing row, never to
an exception: ``--check`` runs in CI against files a crashed campaign may
have left incomplete.
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class CheckReport:
    passed: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)

    def check(self, condition: bool, description: str) -> None:
        (self.passed if condition else self.failed).append(description)

    @property
    def ok(self) -> bool:
        return not self.failed

    def render(self) -> str:
        lines = [f"{len(self.passed)} checks passed, "
                 f"{len(self.failed)} failed"]
        for item in self.failed:
            lines.append(f"  FAIL: {item}")
        return "\n".join(lines)


def _experiments(payload: dict) -> Dict[str, dict]:
    return {e["experiment"]: e for e in payload["experiments"]}


def _speedup(cell: str) -> float:
    return float(str(cell).rstrip("x"))


def _find_row(
    report: CheckReport,
    rows: Sequence[Sequence[object]],
    column: int,
    value: str,
    what: str,
) -> Optional[Sequence[object]]:
    """First row whose ``column`` equals ``value``; a missing row is a
    reported failure, not a crash."""
    for row in rows:
        if len(row) > column and row[column] == value:
            return row
    report.check(False, f"{what}: missing '{value}' row")
    return None


def _nth_row(
    report: CheckReport,
    rows: Sequence[Sequence[object]],
    index: int,
    what: str,
) -> Optional[Sequence[object]]:
    if index < len(rows):
        return rows[index]
    report.check(
        False, f"{what}: missing row {index} (got {len(rows)} rows)"
    )
    return None


def _wide_enough(
    report: CheckReport, cells: Sequence[object], needed: int, what: str
) -> bool:
    if len(cells) >= needed:
        return True
    report.check(
        False,
        f"{what}: expected at least {needed} values, got {len(cells)}",
    )
    return False


def validate_results(path: str) -> CheckReport:
    """Validate an exported campaign against the paper's shapes."""
    with open(path) as handle:
        payload = json.load(handle)
    exps = _experiments(payload)
    report = CheckReport()

    if "fig8a" in exps:
        rows = [r for r in exps["fig8a"]["rows"] if r[0]]
        for row in rows:
            reduction = float(str(row[5]).rstrip("%"))
            report.check(
                reduction > 0,
                f"fig8a: {row[1]} commits fewer instructions than SVE",
            )
        avg_row = _find_row(report, exps["fig8a"]["rows"], 1, "average",
                            "fig8a")
        if avg_row is not None:
            avg = float(str(avg_row[5]).rstrip("%"))
            report.check(
                40 <= avg <= 80,
                f"fig8a: average reduction {avg}% in the paper's range",
            )

    if "fig8b" in exps:
        rows = [r for r in exps["fig8b"]["rows"] if r[0]]
        for row in rows:
            report.check(
                _speedup(row[2]) >= 1.0,
                f"fig8b: UVE at least matches SVE on {row[1]}",
            )
        starred = [r for r in rows if r[4] == "*" and r[1] != "seidel-2d"]
        report.check(
            all(_speedup(r[2]) > 5 for r in starred),
            "fig8b: order-of-magnitude spikes on compiler-unvectorized "
            "benchmarks",
        )

    if "fig8d" in exps:
        rows = exps["fig8d"]["rows"]
        for name in ("memcpy", "stream"):
            row = _find_row(report, rows, 1, name, "fig8d")
            if row is not None:
                report.check(
                    float(row[2]) > float(row[3]),
                    f"fig8d: UVE uses more DRAM bandwidth on {name}",
                )
        for name in ("gemm", "jacobi-1d", "irsmk"):
            row = _find_row(report, rows, 1, name, "fig8d")
            if row is not None:
                report.check(
                    float(row[2]) < 0.1 and float(row[3]) < 0.1,
                    f"fig8d: {name} stays L2-bound on both cores",
                )

    if "fig8e" in exps:
        speeds = [_speedup(r[2]) for r in exps["fig8e"]["rows"]]
        if _wide_enough(report, speeds, 1, "fig8e"):
            report.check(speeds[0] == 1.0, "fig8e: factor 1 is the baseline")
            report.check(max(speeds) > 1.2,
                         "fig8e: unrolling yields a real speed-up")

    if "fig9" in exps:
        for row in exps["fig9"]["rows"]:
            name, isa, *cells = row
            values = [_speedup(c) for c in cells]
            if isa == "uve" and _wide_enough(report, values, 1,
                                             f"fig9 {name}/uve"):
                report.check(
                    max(values) - min(values) < 0.1,
                    f"fig9: UVE flat in vector PRs on {name}",
                )
        sve_gains = [
            _speedup(row[4]) for row in exps["fig9"]["rows"]
            if len(row) > 4 and row[1] == "sve"
        ]
        if _wide_enough(report, sve_gains, 1, "fig9 sve rows"):
            report.check(max(sve_gains) > 1.2,
                         "fig9: SVE gains from more vector PRs somewhere")

    if "fig10" in exps:
        for row in exps["fig10"]["rows"]:
            name, *cells = row
            values = [_speedup(c) for c in cells]
            if not _wide_enough(report, values, 3, f"fig10 {name}"):
                continue
            report.check(values[0] < 0.8,
                         f"fig10: depth 2 clearly hurts {name}")
            report.check(values[2] == 1.0,
                         f"fig10: depth 8 is the baseline for {name}")

    if "fig11" in exps:
        for row in exps["fig11"]["rows"]:
            name = row[0]
            if not _wide_enough(report, row, 4, f"fig11 {name}"):
                continue
            l2 = _speedup(row[2])
            dram = _speedup(row[3])
            report.check(l2 == 1.0, f"fig11: L2 is the baseline for {name}")
            report.check(dram <= 1.0,
                         f"fig11: DRAM streaming never beats L2 on {name}")

    if "overheads" in exps:
        rows = exps["overheads"]["rows"]
        evaluated = _nth_row(report, rows, 0, "overheads")
        reduced = _nth_row(report, rows, 1, "overheads")
        if evaluated is not None:
            report.check(
                float(evaluated[5]) < 0.6,
                "overheads: evaluated engine under ~1/2 of an L1",
            )
        if reduced is not None:
            report.check(
                float(reduced[5]) <= 0.12,
                "overheads: reduced configuration around 10% of an L1",
            )

    if "ext-rvv" in exps:
        for row in exps["ext-rvv"]["rows"]:
            report.check(
                _speedup(row[2]) >= 1.0,
                f"ext-rvv: UVE at least matches RVV on {row[0]}",
            )

    return report
