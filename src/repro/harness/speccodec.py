"""JSON wire codec for run specifications.

The campaign executor moves :class:`~repro.harness.runner.RunSpec`
objects between processes by pickling, which is fine inside one pool but
wrong for a persistent job queue: pickles are version-fragile, unreadable
in the queue database, and unsafe to load from a shared artifact
directory.  This module round-trips specs (and the nested
:class:`~repro.cpu.config.MachineConfig` dataclass tree) through plain
JSON instead — human-inspectable, diffable, and stable across worker
restarts.

The encoding is structural: dataclasses carry a ``__dc__`` type tag,
enums a ``__enum__`` tag, and dicts with non-string keys (the per-opclass
latency table) become tagged pair lists.  Decoding resolves tags against
an explicit registry, so a queue entry written by an older tree either
decodes into an equal spec or fails loudly — it never half-applies.
Round-tripping preserves content fingerprints: ``decode(encode(spec))``
produces the identical cache key.
"""
from __future__ import annotations

import dataclasses
import json

from repro.cpu.config import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    EngineConfig,
    MachineConfig,
    PrefetcherConfig,
)
from repro.errors import ConfigError
from repro.harness.runner import RunSpec
from repro.isa.microop import OpClass

#: decodable dataclasses, by tag name.  Anything else fails loudly.
DATACLASSES = {
    cls.__name__: cls
    for cls in (
        RunSpec,
        MachineConfig,
        CoreConfig,
        CacheConfig,
        DramConfig,
        PrefetcherConfig,
        EngineConfig,
    )
}

#: decodable enums, by tag name.
ENUMS = {"OpClass": OpClass}


def encode(value):
    """Recursively convert ``value`` into a JSON-serialisable structure."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in DATACLASSES:
            raise ConfigError(f"cannot encode unregistered dataclass {name!r}")
        out = {"__dc__": name}
        for f in dataclasses.fields(value):
            out[f.name] = encode(getattr(value, f.name))
        return out
    if isinstance(value, OpClass):
        return {"__enum__": ["OpClass", value.name]}
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value):
            return {k: encode(v) for k, v in value.items()}
        return {"__map__": [[encode(k), encode(v)] for k, v in value.items()]}
    if isinstance(value, (list, tuple)):
        return [encode(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigError(f"cannot encode {type(value).__name__!r} for the queue")


def decode(value):
    """Inverse of :func:`encode`."""
    if isinstance(value, dict):
        if "__dc__" in value:
            name = value["__dc__"]
            cls = DATACLASSES.get(name)
            if cls is None:
                raise ConfigError(f"unknown dataclass tag {name!r} in queue entry")
            fields = {
                k: decode(v) for k, v in value.items() if k != "__dc__"
            }
            return cls(**fields)
        if "__enum__" in value:
            enum_name, member = value["__enum__"]
            enum_cls = ENUMS.get(enum_name)
            if enum_cls is None:
                raise ConfigError(f"unknown enum tag {enum_name!r} in queue entry")
            return enum_cls[member]
        if "__map__" in value:
            return {decode(k): decode(v) for k, v in value["__map__"]}
        return {k: decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode(v) for v in value]
    return value


def spec_to_json(spec: RunSpec) -> str:
    """Serialise one RunSpec to a compact JSON string (queue payload)."""
    return json.dumps(encode(spec), sort_keys=True, separators=(",", ":"))


def spec_from_json(payload: str) -> RunSpec:
    """Rebuild a RunSpec from a queue payload, failing loudly on damage."""
    spec = decode(json.loads(payload))
    if not isinstance(spec, RunSpec):
        raise ConfigError(
            f"queue payload decoded to {type(spec).__name__}, expected RunSpec"
        )
    return spec
