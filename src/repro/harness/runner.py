"""Experiment runner: executes kernel × ISA × configuration simulations,
verifies numerical correctness, and caches results within a process so a
figure that reuses another figure's runs does not resimulate them.

Runs are identified by a :class:`RunSpec` — a picklable value object that
a :class:`~repro.harness.executor.CampaignExecutor` worker can rebuild a
``Runner`` from — and cached under a canonical content fingerprint (see
:mod:`repro.harness.fingerprint`), so semantically equal configurations
hit regardless of how they were constructed.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cpu.config import MachineConfig, baseline_machine, uve_machine
from repro.errors import ConfigError
from repro.harness.fingerprint import run_fingerprint
from repro.kernels import get_kernel
from repro.sim.simulator import SimulationResult, Simulator


@dataclass
class RunRecord:
    """The measurements a single simulation contributes to the figures."""

    kernel: str
    letter: str
    isa: str
    committed: int
    cycles: float
    ipc: float
    rename_blocks_per_cycle: float
    bus_utilization: float
    dram_bytes: int
    mispredict_rate: float
    fifo_occupancy: float
    l1_miss_rate: float
    l2_miss_rate: float


@dataclass(frozen=True)
class RunSpec:
    """One simulation a figure needs: kernel × ISA × configuration.

    Picklable, so a process-pool worker can rebuild the run from it.
    ``config=None`` means the ISA's default machine; ``unroll > 0``
    selects the unrolled UVE build (Fig. 8.E).  ``lowering=None``
    inherits the Runner's program-generation path (ir or legacy).
    """

    kernel: str
    isa: str
    config: Optional[MachineConfig] = None
    unroll: int = 0
    lowering: Optional[str] = None

    def resolved_config(self) -> MachineConfig:
        if self.config is not None:
            return self.config
        return uve_machine() if self.isa == "uve" else baseline_machine()

    def resolved_lowering(self, default: str = "ir") -> str:
        return self.lowering if self.lowering is not None else default

    def key(self, scale: float, seed: int, lowering: str = "ir") -> str:
        return run_fingerprint(
            self.kernel, self.isa, self.resolved_config(),
            scale, seed, self.unroll,
            lowering=self.resolved_lowering(lowering),
        )


class Runner:
    """Runs and caches simulations for the experiment harness."""

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        disk_cache=None,
        lowering: str = "ir",
    ) -> None:
        if lowering not in ("ir", "legacy"):
            raise ConfigError(
                f"unknown lowering {lowering!r} (expected 'ir' or 'legacy')"
            )
        self.scale = scale
        self.seed = seed
        #: program-generation path for every run (specs may override).
        self.lowering = lowering
        #: optional ResultCache-like object (load/store) consulted on a
        #: memory miss, so re-runs only simulate what changed
        self.disk_cache = disk_cache
        self._cache: Dict[str, RunRecord] = {}

    def config_for(self, isa: str) -> MachineConfig:
        return uve_machine() if isa == "uve" else baseline_machine()

    def run(
        self,
        kernel_name: str,
        isa: str,
        config: Optional[MachineConfig] = None,
        unroll: int = 0,
    ) -> RunRecord:
        return self.run_spec(RunSpec(kernel_name, isa, config, unroll))

    def run_spec(self, spec: RunSpec) -> RunRecord:
        cfg = spec.resolved_config()
        _check_consistent(spec.isa, cfg)
        key = spec.key(self.scale, self.seed, self.lowering)
        record = self._cache.get(key)
        if record is None and self.disk_cache is not None:
            record = self.disk_cache.load(key)
            if record is not None:
                self._cache[key] = record
        if record is None:
            record = self._simulate(
                spec.kernel, spec.isa, cfg, spec.unroll,
                spec.resolved_lowering(self.lowering),
            )
            self._cache[key] = record
            if self.disk_cache is not None:
                self.disk_cache.store(key, record)
        return record

    def seed_cache(self, key: str, record: RunRecord) -> None:
        """Install an externally computed result (executor prefetch)."""
        self._cache[key] = record

    def cached(self, key: str) -> Optional[RunRecord]:
        return self._cache.get(key)

    def _simulate(
        self,
        kernel_name: str,
        isa: str,
        cfg: MachineConfig,
        unroll: int = 0,
        lowering: str = "ir",
    ) -> RunRecord:
        kernel = get_kernel(kernel_name)
        wl = kernel.workload(seed=self.seed, scale=self.scale)
        if unroll:
            program = kernel.build_uve_unrolled(
                wl, cfg.vector_bits // 32, unroll=unroll
            )
        else:
            program = kernel.build(
                isa, wl, cfg.vector_bits, lowering=lowering
            )
        result: SimulationResult = Simulator(program, wl.memory, cfg).run()
        wl.verify()
        engine = result.pipeline.engine
        return RunRecord(
            kernel=kernel_name,
            letter=kernel.letter,
            isa=isa,
            committed=result.committed,
            cycles=result.cycles,
            ipc=result.ipc,
            rename_blocks_per_cycle=result.rename_blocks_per_cycle,
            bus_utilization=result.bus_utilization,
            dram_bytes=result.hierarchy.dram.total_bytes,
            mispredict_rate=result.timing.mispredict_rate,
            fifo_occupancy=(
                engine.stats.mean_fifo_occupancy if engine is not None else 0.0
            ),
            l1_miss_rate=result.hierarchy.l1d.stats.miss_rate,
            l2_miss_rate=result.hierarchy.l2.stats.miss_rate,
        )


def _check_consistent(isa: str, cfg: MachineConfig) -> None:
    """An explicit config must match the requested ISA: UVE code needs the
    Streaming Engine, and the baseline ISAs must not silently run on a
    streaming core."""
    if isa == "uve" and not cfg.streaming:
        raise ConfigError(
            "isa 'uve' requires a streaming machine config "
            "(got streaming=False; use uve_machine())"
        )
    if isa != "uve" and cfg.streaming:
        raise ConfigError(
            f"isa {isa!r} must run on a non-streaming baseline config "
            "(got streaming=True; use baseline_machine())"
        )
