"""Experiment runner: executes kernel × ISA × configuration simulations,
verifies numerical correctness, and caches results within a process so a
figure that reuses another figure's runs does not resimulate them.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cpu.config import MachineConfig, baseline_machine, uve_machine
from repro.kernels import get_kernel
from repro.sim.simulator import SimulationResult, Simulator


@dataclass
class RunRecord:
    """The measurements a single simulation contributes to the figures."""

    kernel: str
    letter: str
    isa: str
    committed: int
    cycles: float
    ipc: float
    rename_blocks_per_cycle: float
    bus_utilization: float
    dram_bytes: int
    mispredict_rate: float
    fifo_occupancy: float
    l1_miss_rate: float
    l2_miss_rate: float


class Runner:
    """Runs and caches simulations for the experiment harness."""

    def __init__(self, scale: float = 1.0, seed: int = 0) -> None:
        self.scale = scale
        self.seed = seed
        self._cache: Dict[tuple, RunRecord] = {}

    def config_for(self, isa: str) -> MachineConfig:
        return uve_machine() if isa == "uve" else baseline_machine()

    def run(
        self,
        kernel_name: str,
        isa: str,
        config: Optional[MachineConfig] = None,
    ) -> RunRecord:
        cfg = config if config is not None else self.config_for(isa)
        key = (kernel_name, isa, repr(cfg), self.scale, self.seed)
        record = self._cache.get(key)
        if record is None:
            record = self._simulate(kernel_name, isa, cfg)
            self._cache[key] = record
        return record

    def _simulate(
        self, kernel_name: str, isa: str, cfg: MachineConfig
    ) -> RunRecord:
        kernel = get_kernel(kernel_name)
        wl = kernel.workload(seed=self.seed, scale=self.scale)
        program = kernel.build(isa, wl, cfg.vector_bits)
        result: SimulationResult = Simulator(program, wl.memory, cfg).run()
        wl.verify()
        engine = result.pipeline.engine
        return RunRecord(
            kernel=kernel_name,
            letter=kernel.letter,
            isa=isa,
            committed=result.committed,
            cycles=result.cycles,
            ipc=result.ipc,
            rename_blocks_per_cycle=result.rename_blocks_per_cycle,
            bus_utilization=result.bus_utilization,
            dram_bytes=result.hierarchy.dram.total_bytes,
            mispredict_rate=result.timing.mispredict_rate,
            fifo_occupancy=(
                engine.stats.mean_fifo_occupancy if engine is not None else 0.0
            ),
            l1_miss_rate=result.hierarchy.l1d.stats.miss_rate,
            l2_miss_rate=result.hierarchy.l2.stats.miss_rate,
        )
