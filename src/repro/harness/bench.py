"""Simulator-performance micro-benchmark (wall clock, not model output).

Measures the pure timing loop — :meth:`Pipeline.run` over a fully
materialised dynamic trace — with the event-horizon fast-forward on and
off, and checks that both produce bit-identical :class:`PipelineStats`.
The functional pass is deliberately excluded: it is shared by both
configurations and would only dilute the quantity being optimised (the
per-cycle Python loop in ``Pipeline.run`` / ``StreamingEngine.tick``).

``BENCH_sim.json`` is a *tracked trajectory*: besides the latest run it
carries an append-only ``trajectory`` list of blessed results (git rev +
cycles/s per case).  ``--gate`` fails a run that regresses more than
``GATE_TOLERANCE`` below the newest same-scale entry; ``--bless``
appends the run as the new reference.  Writes are atomic
(write-to-temp + rename), so a crash can never lose history.

Re-measure and extend the repo's ``BENCH_sim.json``::

    PYTHONPATH=src python -m repro.harness.bench --repeats 3 \
        --json BENCH_sim.json --gate --bless

CI runs the gate at reduced scale against the previous run's cached
artifact and uploads the result; ``benchmarks/test_perf.py`` wraps the
same machinery under pytest.
"""
from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cpu.config import MachineConfig, baseline_machine, uve_machine
from repro.cpu.pipeline import Pipeline
from repro.kernels import get_kernel
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.functional import FunctionalSimulator

#: kernel × ISA pairs benchmarked by default: the memory-bound kernels
#: the acceptance gate names on the UVE machine, plus one SVE reference
DEFAULT_CASES: Tuple[Tuple[str, str], ...] = (
    ("stream", "uve"),
    ("memcpy", "uve"),
    ("saxpy", "uve"),
    ("memcpy", "sve"),
)

#: regression tolerance of the trajectory gate: a run whose cycles/s
#: falls more than this fraction below the last blessed entry fails
GATE_TOLERANCE = 0.10


@dataclass
class MaterializedRun:
    """A trace replay decoupled from the functional simulator."""

    kernel: str
    isa: str
    config: MachineConfig
    trace: List
    stream_infos: Dict
    mem_bytes: int


def materialize(
    kernel_name: str, isa: str, scale: float = 1.0, seed: int = 0
) -> MaterializedRun:
    """Run the functional passes once and capture the dynamic trace, so
    repeated timing runs measure only the timing model."""
    kernel = get_kernel(kernel_name)
    wl = kernel.workload(seed=seed, scale=scale)
    cfg = uve_machine() if isa == "uve" else baseline_machine()
    program = kernel.build(isa, wl, cfg.vector_bits)
    snapshot = wl.memory.data.copy()
    first = FunctionalSimulator(
        program, memory=wl.memory, vector_bits=cfg.vector_bits
    )
    summary = first.run()
    np.copyto(wl.memory.data, snapshot)
    second = FunctionalSimulator(
        program, memory=wl.memory, vector_bits=cfg.vector_bits
    )
    trace = list(second.trace())
    return MaterializedRun(
        kernel=kernel_name,
        isa=isa,
        config=cfg,
        trace=trace,
        stream_infos=dict(summary.streams),
        mem_bytes=wl.memory._brk,
    )


def time_run(mat: MaterializedRun, fast_forward: bool) -> Tuple[float, Pipeline]:
    """One timed ``Pipeline.run`` over the materialised trace; returns
    (wall seconds, finished pipeline)."""
    cfg = mat.config.with_(fast_forward=fast_forward)
    hierarchy = MemoryHierarchy(cfg)
    hierarchy.warm(0, mat.mem_bytes)
    pipeline = Pipeline(cfg, hierarchy, dict(mat.stream_infos))
    start = time.perf_counter()
    pipeline.run(iter(mat.trace))
    return time.perf_counter() - start, pipeline


def bench_case(
    kernel: str, isa: str, scale: float = 1.0, repeats: int = 2
) -> Dict[str, object]:
    """Benchmark one kernel × ISA: fast-forward off vs on (best-of-N),
    verifying that both produce identical PipelineStats."""
    mat = materialize(kernel, isa, scale=scale)
    off_s, off_pipe = min(
        (time_run(mat, fast_forward=False) for _ in range(repeats)),
        key=lambda r: r[0],
    )
    on_s, on_pipe = min(
        (time_run(mat, fast_forward=True) for _ in range(repeats)),
        key=lambda r: r[0],
    )
    off_stats = off_pipe.stats.as_dict()
    on_stats = on_pipe.stats.as_dict()
    if off_stats != on_stats:
        raise AssertionError(
            f"fast-forward changed PipelineStats for {kernel}/{isa}: "
            f"{off_stats} != {on_stats}"
        )
    cycles = off_pipe.stats.cycles
    engine = on_pipe.engine
    occ_off = (
        off_pipe.engine.stats.mean_fifo_occupancy
        if off_pipe.engine is not None
        else 0.0
    )
    occ_on = engine.stats.mean_fifo_occupancy if engine is not None else 0.0
    if occ_off != occ_on:
        raise AssertionError(
            f"fast-forward changed mean_fifo_occupancy for {kernel}/{isa}: "
            f"{occ_off} != {occ_on}"
        )
    return {
        "kernel": kernel,
        "isa": isa,
        "scale": scale,
        "cycles": cycles,
        "committed": off_pipe.stats.committed,
        "wall_s_off": round(off_s, 4),
        "wall_s_on": round(on_s, 4),
        "cycles_per_sec_off": round(cycles / off_s, 1),
        "cycles_per_sec_on": round(cycles / on_s, 1),
        "speedup": round(off_s / on_s, 3),
        "skipped_cycles": on_pipe.ff_skipped_cycles,
        "skipped_fraction": round(on_pipe.ff_skipped_cycles / cycles, 4),
        "stats_identical": True,
    }


#: stand-alone script run under PYTHONPATH=<baseline>/src — times the
#: *baseline tree's own* Pipeline.run on the same materialised workload
#: (the functional side is deterministic and shared, so the traces match)
_BASELINE_SNIPPET = r"""
import json, sys, time
import numpy as np
from repro.cpu.config import uve_machine, baseline_machine
from repro.cpu.pipeline import Pipeline
from repro.kernels import get_kernel
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.functional import FunctionalSimulator

kern, isa, scale, repeats = (
    sys.argv[1], sys.argv[2], float(sys.argv[3]), int(sys.argv[4])
)
kernel = get_kernel(kern)
wl = kernel.workload(seed=0, scale=scale)
cfg = uve_machine() if isa == "uve" else baseline_machine()
program = kernel.build(isa, wl, cfg.vector_bits)
snap = wl.memory.data.copy()
summary = FunctionalSimulator(
    program, memory=wl.memory, vector_bits=cfg.vector_bits
).run()
np.copyto(wl.memory.data, snap)
second = FunctionalSimulator(
    program, memory=wl.memory, vector_bits=cfg.vector_bits
)
trace = list(second.trace())
best, stats = None, None
for _ in range(repeats):
    h = MemoryHierarchy(cfg)
    h.warm(0, wl.memory._brk)
    p = Pipeline(cfg, h, dict(summary.streams))
    t0 = time.perf_counter()
    p.run(iter(trace))
    dt = time.perf_counter() - t0
    if best is None or dt < best:
        best, stats = dt, p.stats
print(json.dumps(
    {"wall_s": best, "cycles": stats.cycles, "committed": stats.committed}
))
"""


def time_baseline(
    baseline_src: str, kernel: str, isa: str, scale: float, repeats: int
) -> Dict[str, object]:
    """Time ``Pipeline.run`` of another source tree (e.g. a git worktree
    of the pre-fast-forward commit) on the same case, in a subprocess."""
    env = dict(os.environ, PYTHONPATH=baseline_src)
    out = subprocess.run(
        [sys.executable, "-c", _BASELINE_SNIPPET, kernel, isa,
         str(scale), str(repeats)],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def run_benchmarks(
    cases=DEFAULT_CASES,
    scale: float = 1.0,
    repeats: int = 2,
    baseline_src: Optional[str] = None,
    baseline_ref: str = "",
) -> Dict[str, object]:
    runs = [bench_case(k, isa, scale=scale, repeats=repeats) for k, isa in cases]
    out: Dict[str, object] = {
        "benchmark": "timing-loop wall clock, fast-forward off vs on",
        "scale": scale,
        "repeats": repeats,
        "runs": runs,
        "max_speedup": max(r["speedup"] for r in runs),
    }
    if baseline_src:
        for run in runs:
            base = time_baseline(
                baseline_src, run["kernel"], run["isa"], scale, repeats
            )
            if base["cycles"] != run["cycles"]:
                raise AssertionError(
                    f"baseline tree simulated different cycles for "
                    f"{run['kernel']}/{run['isa']}: "
                    f"{base['cycles']} != {run['cycles']}"
                )
            run["wall_s_baseline"] = round(base["wall_s"], 4)
            run["speedup_vs_baseline"] = round(
                base["wall_s"] / run["wall_s_on"], 3
            )
        out["baseline_ref"] = baseline_ref
        out["max_speedup_vs_baseline"] = max(
            r["speedup_vs_baseline"] for r in runs
        )
    return out


# -- Tracked trajectory -------------------------------------------------------
#
# BENCH_sim.json carries an append-only ``trajectory`` list: one entry
# per blessed run, recording the git revision and the cycles/s each case
# achieved.  ``--gate`` compares a fresh run against the newest entry of
# the same scale and fails on a >GATE_TOLERANCE regression, turning the
# file into a simulator-performance ratchet; ``--bless`` appends the
# fresh run as the new reference.  Entries are never rewritten.


def _git_rev() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            cwd=here,
        )
        rev = out.stdout.strip()
    except Exception:
        return "unknown"
    try:
        dirty = subprocess.run(
            ["git", "diff", "--quiet", "HEAD"], cwd=here
        ).returncode != 0
    except Exception:
        dirty = False
    return rev + "-dirty" if dirty else rev


def trajectory_entry(results: Dict[str, object], rev: str = "") -> Dict[str, object]:
    """One append-only trajectory record summarising ``results``."""
    runs = results["runs"]
    return {
        "rev": rev or _git_rev(),
        "recorded_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale": results["scale"],
        "cycles": {f"{r['kernel']}/{r['isa']}": r["cycles"] for r in runs},
        "cycles_per_sec_on": {
            f"{r['kernel']}/{r['isa']}": r["cycles_per_sec_on"] for r in runs
        },
    }


def _reference_from(doc: Dict[str, object], scale: float) -> Optional[Dict]:
    """Extract a gate reference from a results document: the newest
    same-scale trajectory entry, else the document's own runs (so a
    previous CI artifact works directly as ``--gate-against``)."""
    for entry in reversed(doc.get("trajectory", [])):
        if entry.get("scale") == scale:
            return entry
    if doc.get("scale") == scale and "runs" in doc:
        return trajectory_entry(doc, rev=str(doc.get("rev", "previous-run")))
    return None


def check_gate(
    results: Dict[str, object],
    reference: Optional[Dict],
    tolerance: float = GATE_TOLERANCE,
) -> Tuple[List[str], List[str]]:
    """Compare ``results`` against a trajectory ``reference``.

    Returns ``(failures, warnings)``.  Only cases present in both are
    compared, and only when their simulated cycle counts agree — a cycle
    count changed by a timing-model PR makes wall-clock comparison
    meaningless, so it downgrades to a warning (model *output* drift is
    guarded separately by tier-1 and the differential fuzzer).
    """
    failures: List[str] = []
    warnings: List[str] = []
    if reference is None:
        warnings.append("gate: no same-scale reference entry; passing")
        return failures, warnings
    ref_cycles = reference.get("cycles", {})
    ref_cps = reference.get("cycles_per_sec_on", {})
    for run in results["runs"]:
        key = f"{run['kernel']}/{run['isa']}"
        want_cps = ref_cps.get(key)
        if want_cps is None:
            warnings.append(f"gate: {key} not in reference; skipping")
            continue
        want_cycles = ref_cycles.get(key)
        if want_cycles is not None and want_cycles != run["cycles"]:
            warnings.append(
                f"gate: {key} simulated cycles changed "
                f"{want_cycles} -> {run['cycles']}; wall-clock comparison "
                "skipped (bless a new entry after review)"
            )
            continue
        floor = want_cps * (1.0 - tolerance)
        if run["cycles_per_sec_on"] < floor:
            failures.append(
                f"gate: {key} regressed to {run['cycles_per_sec_on']:,.0f} "
                f"cycles/s, more than {tolerance:.0%} below the blessed "
                f"{want_cps:,.0f} (rev {reference.get('rev', '?')})"
            )
    return failures, warnings


def _atomic_write_json(path: str, payload: Dict[str, object]) -> None:
    """Replace ``path`` atomically so a crash mid-write can never lose
    the append-only trajectory."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", default=None, help="write the results to this JSON file "
        "(an existing file's trajectory is carried forward)"
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--cases",
        default=None,
        help="comma-separated kernel/isa pairs, e.g. stream/uve,memcpy/sve",
    )
    parser.add_argument(
        "--baseline-src",
        default=None,
        help="PYTHONPATH of another source tree (e.g. a git worktree of "
        "the pre-fast-forward commit) to time as a baseline",
    )
    parser.add_argument(
        "--baseline-ref",
        default="",
        help="label recorded for the baseline tree (e.g. its git rev)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="fail (exit 2) if cycles/s regresses more than the tolerance "
        "below the newest same-scale trajectory entry",
    )
    parser.add_argument(
        "--gate-against",
        default=None,
        help="read the gate reference from this JSON file instead of the "
        "--json file (e.g. a previous CI artifact)",
    )
    parser.add_argument(
        "--gate-tolerance",
        type=float,
        default=GATE_TOLERANCE,
        help="allowed fractional cycles/s regression (default %(default)s)",
    )
    parser.add_argument(
        "--bless",
        action="store_true",
        help="append this run to the trajectory as the new gate reference "
        "(skipped if --gate fails)",
    )
    args = parser.parse_args(argv)
    cases = DEFAULT_CASES
    if args.cases:
        cases = tuple(
            tuple(pair.split("/", 1)) for pair in args.cases.split(",")
        )

    previous: Dict[str, object] = {}
    if args.json and os.path.exists(args.json):
        with open(args.json) as fh:
            previous = json.load(fh)
    trajectory = list(previous.get("trajectory", []))

    results = run_benchmarks(
        cases,
        scale=args.scale,
        repeats=args.repeats,
        baseline_src=args.baseline_src,
        baseline_ref=args.baseline_ref,
    )

    failures: List[str] = []
    if args.gate:
        if args.gate_against:
            with open(args.gate_against) as fh:
                reference = _reference_from(json.load(fh), args.scale)
        else:
            reference = _reference_from(
                {"trajectory": trajectory}, args.scale
            )
        failures, warnings = check_gate(
            results, reference, tolerance=args.gate_tolerance
        )
        for line in warnings:
            print(line, file=sys.stderr)
        for line in failures:
            print(line, file=sys.stderr)

    if args.bless and not failures:
        trajectory.append(trajectory_entry(results))
    results["trajectory"] = trajectory

    text = json.dumps(results, indent=2)
    print(text)
    if args.json:
        _atomic_write_json(args.json, results)
    return 2 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
