"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness                 # everything, full scale
    python -m repro.harness fig8b fig9      # selected experiments
    python -m repro.harness --scale 0.5     # smaller workloads (faster)
"""
from __future__ import annotations

import argparse
import json
import sys
import time

from repro.harness import EXPERIMENTS, Runner, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the UVE paper's evaluation figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"experiment ids (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", metavar="PATH", default="",
                        help="also write all results as JSON")
    parser.add_argument("--check", metavar="RESULTS_JSON", default="",
                        help="validate a previously exported campaign "
                             "against the paper's shapes and exit")
    args = parser.parse_args(argv)

    if args.check:
        from repro.harness.checks import validate_results
        report = validate_results(args.check)
        print(report.render())
        return 0 if report.ok else 1

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    runner = Runner(scale=args.scale, seed=args.seed)
    collected = []
    for name in names:
        start = time.time()
        result = run_experiment(name, runner)
        collected.append(result)
        print(result.render())
        print(f"  [{time.time() - start:.1f}s]\n")
    if args.json:
        payload = {
            "scale": args.scale,
            "seed": args.seed,
            "experiments": [r.to_dict() for r in collected],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
