"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness                 # everything, full scale
    python -m repro.harness fig8b fig9      # selected experiments
    python -m repro.harness --scale 0.5     # smaller workloads (faster)
    python -m repro.harness --jobs 8        # parallel campaign
    python -m repro.harness --no-cache      # ignore the on-disk cache

Results persist in a content-addressed cache (``~/.cache/repro`` or
``--cache-dir``), so a re-run only simulates what changed.
"""
from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.harness import EXPERIMENTS
from repro.harness.diskcache import ResultCache, parse_size
from repro.harness.executor import (
    CampaignExecutor,
    CampaignInterrupted,
    stderr_progress,
)


class IncrementalJsonWriter:
    """Rewrites the results JSON atomically after every experiment, so a
    crash in experiment N never loses experiments 1..N-1."""

    def __init__(self, path: str, scale: float, seed: int) -> None:
        self.path = path
        self.payload = {"scale": scale, "seed": seed, "experiments": []}

    def append(self, result) -> None:
        self.payload["experiments"].append(result.to_dict())
        self.flush()

    def mark_interrupted(self, completed: int, cancelled: int) -> None:
        """Stamp the partial export so downstream consumers can tell a
        Ctrl-C'd campaign from a finished one, and flush it atomically."""
        self.payload["interrupted"] = {
            "completed_runs": completed,
            "cancelled_runs": cancelled,
        }
        self.flush()

    def flush(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self.payload, handle, indent=2)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the UVE paper's evaluation figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"experiment ids (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload RNG seed (default 0)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="parallel simulation processes "
                             "(default: os.cpu_count())")
    parser.add_argument("--lowering", default="ir",
                        choices=("ir", "legacy"),
                        help="program generation path: the shared "
                             "loop-nest IR (default) or the legacy "
                             "hand-written builders")
    parser.add_argument("--json", metavar="PATH", default="",
                        help="also write all results as JSON "
                             "(updated atomically after each experiment)")
    parser.add_argument("--cache-dir", metavar="DIR", default="",
                        help="persistent result cache location "
                             "(default ~/.cache/repro or $REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the on-disk cache")
    parser.add_argument("--cache-prune", metavar="SIZE", default="",
                        help="evict least-recently-used cache entries "
                             "until the store fits in SIZE (e.g. 500M, "
                             "2G) and exit")
    parser.add_argument("--cache-max-bytes", metavar="SIZE", default="",
                        help="after the campaign, prune the cache to "
                             "SIZE (LRU by mtime) so long sweep "
                             "campaigns don't grow it unboundedly")
    parser.add_argument("--trace", metavar="PATH", default="",
                        help="write a JSON log of per-run timing/cache "
                             "events")
    parser.add_argument("--check", metavar="RESULTS_JSON", default="",
                        help="validate a previously exported campaign "
                             "against the paper's shapes and exit")
    args = parser.parse_args(argv)

    if args.check:
        conflicting = [
            flag
            for flag, present in (
                ("experiments", bool(args.experiments)),
                ("--scale", args.scale is not None),
                ("--seed", args.seed is not None),
                ("--jobs", args.jobs is not None),
                ("--lowering", args.lowering != "ir"),
                ("--json", bool(args.json)),
                ("--cache-dir", bool(args.cache_dir)),
                ("--no-cache", args.no_cache),
                ("--cache-prune", bool(args.cache_prune)),
                ("--cache-max-bytes", bool(args.cache_max_bytes)),
                ("--trace", bool(args.trace)),
            )
            if present
        ]
        if conflicting:
            parser.error(
                "--check validates an existing results file and takes no "
                f"campaign arguments (got: {', '.join(conflicting)})"
            )
        from repro.harness.checks import validate_results
        report = validate_results(args.check)
        print(report.render())
        return 0 if report.ok else 1

    if args.cache_prune:
        if args.no_cache:
            parser.error("--cache-prune needs the cache (drop --no-cache)")
        try:
            limit = parse_size(args.cache_prune)
        except ValueError as exc:
            parser.error(str(exc))
        cache = ResultCache(args.cache_dir or None)
        print(cache.prune(limit).render())
        return 0

    max_bytes = None
    if args.cache_max_bytes:
        if args.no_cache:
            parser.error("--cache-max-bytes needs the cache "
                         "(drop --no-cache)")
        try:
            max_bytes = parse_size(args.cache_max_bytes)
        except ValueError as exc:
            parser.error(str(exc))

    scale = 1.0 if args.scale is None else args.scale
    seed = 0 if args.seed is None else args.seed

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or None)
    executor = CampaignExecutor(
        scale=scale, seed=seed, jobs=args.jobs, cache=cache,
        progress=stderr_progress, lowering=args.lowering,
    )
    writer = IncrementalJsonWriter(args.json, scale, seed) if args.json \
        else None

    start = time.time()

    def on_result(result) -> None:
        print(result.render())
        print()
        if writer is not None:
            writer.append(result)

    try:
        executor.run_campaign(names, on_result=on_result)
    except CampaignInterrupted as interrupt:
        # Completed rows are safe (disk cache + already-flushed JSON);
        # record the interruption and exit with the conventional SIGINT
        # status so callers can distinguish it from success or failure.
        if writer is not None:
            writer.mark_interrupted(interrupt.completed, interrupt.cancelled)
            print(f"wrote partial {args.json} (interrupted)",
                  file=sys.stderr)
        print(f"{interrupt} — completed runs are cached; re-run to "
              f"finish", file=sys.stderr)
        return 130

    counts = executor.cache_summary()
    print(
        f"campaign: {counts['total']} runs in {time.time() - start:.1f}s "
        f"({counts['miss']} simulated, {counts['hit-disk']} from disk "
        f"cache, {counts['hit-memory']} from memory; jobs="
        f"{executor.jobs})",
        file=sys.stderr,
    )
    if counts["miss"]:
        print(executor.slowest_table().render(), file=sys.stderr)
    if args.trace:
        executor.write_trace(args.trace)
        print(f"wrote trace {args.trace}", file=sys.stderr)
    if writer is not None:
        print(f"wrote {args.json}")
    if max_bytes is not None and cache is not None:
        print(cache.prune(max_bytes).render(), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
