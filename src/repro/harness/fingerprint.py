"""Canonical run fingerprints shared by every result cache.

``repr(cfg)`` is a fragile cache key: it depends on field ordering, dict
insertion order, and float formatting, and two semantically equal
configurations built through different code paths need not compare equal.
This module derives a *canonical* fingerprint by recursively walking
dataclass fields (enums by qualified name, dicts sorted by key) and
hashing the sorted-JSON form, so equal configs always hit and any nested
field change always misses.  The same fingerprint keys the in-process
:class:`~repro.harness.runner.Runner` cache and the on-disk
:class:`~repro.harness.diskcache.ResultCache`.
"""
from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from typing import Optional

from repro.cpu.config import MachineConfig


def canonicalize(value):
    """Recursively convert ``value`` into a JSON-stable structure."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {"__dataclass__": type(value).__name__}
        for f in dataclasses.fields(value):
            out[f.name] = canonicalize(getattr(value, f.name))
        return out
    if isinstance(value, dict):
        items = [(_key(k), canonicalize(v)) for k, v in value.items()]
        return {k: v for k, v in sorted(items)}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if isinstance(value, Enum):
        return f"{type(value).__name__}.{value.name}"
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for fingerprinting"
    )


def _key(key) -> str:
    """Dict keys must be strings after canonicalisation (sortable, JSON)."""
    canon = canonicalize(key)
    return canon if isinstance(canon, str) else json.dumps(canon)


def fingerprint(value) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``value``."""
    blob = json.dumps(
        canonicalize(value), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def config_fingerprint(cfg: MachineConfig) -> str:
    """Canonical fingerprint of a machine configuration."""
    return fingerprint(cfg)


def run_fingerprint(
    kernel: str,
    isa: str,
    cfg: MachineConfig,
    scale: float,
    seed: int,
    unroll: int = 0,
    salt: Optional[str] = None,
    lowering: str = "ir",
) -> str:
    """Fingerprint identifying one simulation run.

    ``salt`` lets the on-disk cache mix in a code-version component so
    stale results from an older simulator never satisfy a newer one;
    ``lowering`` distinguishes IR-lowered programs from the legacy
    hand-built ones (they can differ in code shape).
    """
    return fingerprint(
        {
            "kernel": kernel,
            "isa": isa,
            "config": canonicalize(cfg),
            "scale": scale,
            "seed": seed,
            "unroll": unroll,
            "salt": salt or "",
            "lowering": lowering,
        }
    )
