"""Sharded experiment service: queue, worker shards, streaming client.

PR 1's :class:`~repro.harness.executor.CampaignExecutor` is one process
pool deep: submit everything, wait, lose in-flight work on a crash.  This
module promotes it to a small experiment *service* built from three
pieces that share one campaign directory::

    campaign/
      manifest.json     # scale/seed/lowering/salt — resume safety
      queue.sqlite      # persistent job queue (jobqueue.JobQueue)
      events.jsonl      # structured job events (submit/lease/complete/...)
      artifacts/        # content-addressed result store (ResultCache)

*Submission* deduplicates by the existing content fingerprints: a spec
whose artifact already exists is an immediate cache hit (never enqueued),
a spec already queued joins the existing row, anything else becomes a
pending job.  *Worker shards* are separate OS processes that lease jobs
with heartbeats; a SIGKILLed worker's lease expires and any surviving
worker requeues and re-runs the job, finding any artifact the dead worker
already stored (idempotent replay).  *Clients* stream results as rows
complete — completion order for liveness, while callers that need
deterministic output sort by their own submission order afterwards.

CLI::

    python -m repro.harness.serve --queue DIR --status
    python -m repro.harness.serve --queue DIR --workers 4 [--resume]
    python -m repro.harness.serve --queue DIR --worker --shard-id w0

Jobs are normally submitted by :mod:`repro.harness.sweep`; the worker and
supervisor here run any queued RunSpec.
"""
from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import ConfigError
from repro.harness.diskcache import ResultCache, code_version_salt
from repro.harness.jobqueue import JobQueue, QueueError
from repro.harness.runner import Runner, RunRecord, RunSpec
from repro.harness.speccodec import spec_from_json, spec_to_json

#: manifest schema version; bump on incompatible campaign-dir changes.
MANIFEST_FORMAT = 1


@dataclass
class SubmitResult:
    """Outcome of one submission: where the row will come from."""

    key: str
    status: str  # "hit" (artifact exists) | "queued" | "duplicate"


@dataclass
class JobResult:
    """One completed row, as streamed back to the client."""

    key: str
    status: str  # "hit" | "ran" | "dead"
    record: Optional[RunRecord]
    error: Optional[str] = None
    queue_wait_s: float = 0.0
    run_s: float = 0.0
    worker: Optional[str] = None
    attempts: int = 0
    requeues: int = 0


class ExperimentService:
    """Client/worker handle on one campaign directory."""

    def __init__(
        self,
        root,
        scale: float = 1.0,
        seed: int = 0,
        lowering: str = "ir",
        lease_seconds: float = 60.0,
        max_attempts: int = 3,
        salt: Optional[str] = None,
        clock: Callable[[], float] = time.time,
        resume: bool = False,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        params = {
            "format": MANIFEST_FORMAT,
            "scale": scale,
            "seed": seed,
            "lowering": lowering,
            "lease_seconds": lease_seconds,
            "max_attempts": max_attempts,
            "salt": salt if salt is not None else code_version_salt(),
        }
        self.params = self._load_or_create_manifest(params, resume=resume)
        self.scale = self.params["scale"]
        self.seed = self.params["seed"]
        self.lowering = self.params["lowering"]
        self.queue = JobQueue(
            self.root / "queue.sqlite",
            lease_seconds=self.params["lease_seconds"],
            max_attempts=self.params["max_attempts"],
            clock=clock,
        )
        self.cache = ResultCache(
            self.root / "artifacts", salt=self.params["salt"]
        )

    @classmethod
    def attach(cls, root, clock: Callable[[], float] = time.time,
               **overrides) -> "ExperimentService":
        """Open an existing campaign directory, inheriting every campaign
        parameter from its manifest (worker-shard entry point)."""
        manifest = Path(root) / "manifest.json"
        try:
            params = json.loads(manifest.read_text())
        except (OSError, ValueError) as exc:
            raise ConfigError(
                f"no readable campaign manifest at {manifest}: {exc}"
            )
        params.update(overrides)
        return cls(
            root,
            scale=params["scale"],
            seed=params["seed"],
            lowering=params["lowering"],
            lease_seconds=params["lease_seconds"],
            max_attempts=params["max_attempts"],
            salt=params["salt"],
            clock=clock,
        )

    def _load_or_create_manifest(self, params: dict, resume: bool) -> dict:
        manifest = self.root / "manifest.json"
        if manifest.exists():
            existing = json.loads(manifest.read_text())
            mismatched = {
                k: (existing.get(k), v)
                for k, v in params.items()
                if existing.get(k) != v and k not in ("lease_seconds",
                                                      "max_attempts")
            }
            if mismatched and not resume:
                raise ConfigError(
                    f"campaign dir {self.root} was created with different "
                    f"parameters: {mismatched}; use a fresh --queue dir"
                )
            if mismatched:
                raise ConfigError(
                    f"--resume cannot change campaign parameters "
                    f"{sorted(mismatched)} (manifest {manifest})"
                )
            return existing
        manifest.write_text(json.dumps(params, indent=2, sort_keys=True))
        return params

    # -- Client API ----------------------------------------------------------

    def key_for(self, spec: RunSpec) -> str:
        return spec.key(self.scale, self.seed, self.lowering)

    def submit(self, spec: RunSpec) -> SubmitResult:
        """Submit one run.  Identical requests — same content fingerprint,
        from any client, any time — collapse to one job or one artifact."""
        key = self.key_for(spec)
        if self.cache.load(key) is not None:
            return SubmitResult(key, "hit")
        if self.queue.submit(key, spec_to_json(spec)):
            return SubmitResult(key, "queued")
        return SubmitResult(key, "duplicate")

    def submit_many(self, specs: List[RunSpec]) -> List[SubmitResult]:
        return [self.submit(spec) for spec in specs]

    def result_for(self, key: str) -> Optional[JobResult]:
        """The finished row for ``key`` if it is available now, else None."""
        job = self.queue.get(key)
        if job is None or job.status == "done":
            record = self.cache.load(key)
            if record is None:
                if job is None:
                    return None
                # done but artifact missing (pruned mid-campaign): rerun.
                return None
            if job is None:
                return JobResult(key, "hit", record)
            return JobResult(
                key, "ran", record,
                queue_wait_s=job.queue_wait_s,
                run_s=(job.finished_at or 0.0) - (job.started_at or 0.0),
                worker=job.worker, attempts=job.attempts,
                requeues=job.requeues,
            )
        if job.status == "dead":
            return JobResult(
                key, "dead", None, error=job.error,
                attempts=job.attempts, requeues=job.requeues,
            )
        return None

    def stream_results(
        self,
        keys: List[str],
        poll_s: float = 0.2,
        timeout_s: Optional[float] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> Iterator[JobResult]:
        """Yield one :class:`JobResult` per key as rows complete
        (completion order; cache hits first).  Raises on timeout so a
        wedged campaign surfaces instead of hanging forever."""
        pending = list(dict.fromkeys(keys))
        start = time.monotonic()
        total = len(pending)
        yielded = 0
        while pending:
            advanced = False
            still = []
            for key in pending:
                result = self.result_for(key)
                if result is None:
                    still.append(key)
                    continue
                advanced = True
                yielded += 1
                if progress is not None:
                    progress(
                        f"[serve] {yielded}/{total} rows "
                        f"({result.status}) {key[:12]}"
                    )
                yield result
            pending = still
            if not pending:
                return
            if not advanced:
                if timeout_s is not None and \
                        time.monotonic() - start > timeout_s:
                    raise TimeoutError(
                        f"campaign stalled: {len(pending)} rows outstanding "
                        f"after {timeout_s:.0f}s (queue {self.queue.counts()})"
                    )
                time.sleep(poll_s)


# -- Worker shard ------------------------------------------------------------


class _Heartbeat:
    """Background lease-extender for the job a worker is simulating.

    Uses its own queue connection (SQLite connections are not shareable
    across threads).  Losing the lease — expired while the worker was
    descheduled, then re-leased elsewhere — flips ``lost`` so the worker
    discards its completion instead of double-recording."""

    def __init__(self, queue_path, params: dict, key: str, worker: str)\
            -> None:
        self.queue = JobQueue(
            queue_path, lease_seconds=params["lease_seconds"],
            max_attempts=params["max_attempts"],
        )
        self.key = key
        self.worker = worker
        self.lost = False
        self.interval_s = max(0.05, params["lease_seconds"] / 3.0)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.queue.heartbeat(self.key, self.worker)
            except QueueError:
                self.lost = True
                return

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        self.queue.close()


def worker_loop(
    root,
    shard_id: Optional[str] = None,
    max_jobs: Optional[int] = None,
    poll_s: float = 0.2,
    forever: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> int:
    """Lease-and-run loop for one worker shard.  Returns jobs completed.

    Exits when the queue is drained (every job terminal) unless
    ``forever`` keeps it waiting for future submissions; ``max_jobs``
    bounds the shard (tests use it to stop a campaign half-finished)."""
    service = ExperimentService.attach(root)
    worker = shard_id or f"{os.uname().nodename}:{os.getpid()}"
    runner = Runner(
        scale=service.scale, seed=service.seed,
        disk_cache=service.cache, lowering=service.lowering,
    )
    completed = 0
    while max_jobs is None or completed < max_jobs:
        service.queue.requeue_expired()
        job = service.queue.lease(worker)
        if job is None:
            if service.queue.drained() and not forever:
                break
            time.sleep(poll_s)
            continue
        spec = spec_from_json(job.payload)
        heartbeat = _Heartbeat(
            service.root / "queue.sqlite", service.params, job.key, worker
        )
        try:
            # Idempotent replay: run_spec consults the shared artifact
            # store first, so a job whose previous owner died after
            # storing the artifact completes without resimulating.
            record = runner.run_spec(spec)
        except Exception as exc:  # noqa: BLE001 — any failure retries
            heartbeat.stop()
            try:
                service.queue.fail(job.key, worker, repr(exc))
            except QueueError:
                pass  # lease lost while failing; owner will retry anyway
            continue
        heartbeat.stop()
        try:
            if not heartbeat.lost:
                service.queue.complete(job.key, worker)
                completed += 1
                if progress is not None:
                    progress(f"[worker {worker}] done {spec.kernel}/"
                             f"{spec.isa} {job.key[:12]}")
        except QueueError:
            # Lease expired and the job was re-leased: the artifact is
            # stored, the new owner will complete instantly.  Not a loss.
            pass
    service.queue.close()
    return completed


# -- Shard supervisor --------------------------------------------------------


def _worker_argv(root, shard_id: str,
                 max_jobs: Optional[int] = None) -> List[str]:
    argv = [
        sys.executable, "-m", "repro.harness.serve",
        "--queue", str(root), "--worker", "--shard-id", shard_id,
    ]
    if max_jobs is not None:
        argv += ["--max-jobs", str(max_jobs)]
    return argv


def _worker_env() -> dict:
    """Child env whose PYTHONPATH can import this very repro package."""
    import repro

    env = dict(os.environ)
    pkg_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    if pkg_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            pkg_root + (os.pathsep + existing if existing else "")
        )
    return env


def serve_workers(
    root,
    workers: int,
    max_jobs: Optional[int] = None,
    chaos_kill: int = 0,
    poll_s: float = 0.2,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, int]:
    """Boot ``workers`` shard subprocesses on one campaign dir and wait
    until they exit (normally: queue drained).

    ``chaos_kill`` SIGKILLs that many shards, one at a time, each after
    at least one further job completes — the fault-injection drill used
    by CI to prove lease recovery.  Returns the final queue counts plus
    per-shard exit codes."""
    root = Path(root)
    queue = JobQueue(root / "queue.sqlite")
    env = _worker_env()
    procs = [
        subprocess.Popen(_worker_argv(root, f"w{i}", max_jobs), env=env)
        for i in range(workers)
    ]
    kills_left = chaos_kill
    kill_after_done = 1  # next completion count that triggers a kill
    try:
        while any(p.poll() is None for p in procs):
            counts = queue.counts()
            if kills_left > 0 and counts["done"] >= kill_after_done:
                victim = next(
                    (p for p in procs if p.poll() is None), None
                )
                if victim is not None:
                    victim.send_signal(signal.SIGKILL)
                    victim.wait()
                    kills_left -= 1
                    kill_after_done = counts["done"] + 1
                    queue._event("chaos-kill", "", victim_pid=victim.pid)
                    if progress is not None:
                        progress(
                            f"[serve] chaos: SIGKILLed worker pid "
                            f"{victim.pid} ({counts['done']} rows done)"
                        )
            if progress is not None:
                progress(
                    f"[serve] queue: {counts['pending']} pending, "
                    f"{counts['leased']} leased, {counts['done']} done, "
                    f"{counts['dead']} dead"
                )
            time.sleep(poll_s)
    finally:
        for p in procs:
            if p.poll() is None:
                p.terminate()
        for p in procs:
            try:
                p.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                p.kill()
                p.wait()
    summary = queue.counts()
    summary["worker_exits"] = [p.returncode for p in procs]
    queue.close()
    return summary


# -- CLI ---------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.serve",
        description="Run worker shards / inspect a campaign queue.",
    )
    parser.add_argument("--queue", metavar="DIR", required=True,
                        help="campaign directory (queue + artifacts)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="boot N worker shard subprocesses and wait "
                             "for the queue to drain")
    parser.add_argument("--worker", action="store_true",
                        help="run a single in-process worker loop "
                             "(what --workers shards execute)")
    parser.add_argument("--shard-id", default=None,
                        help="worker shard name (default host:pid)")
    parser.add_argument("--max-jobs", type=int, default=None, metavar="N",
                        help="stop this worker after N completed jobs")
    parser.add_argument("--forever", action="store_true",
                        help="keep the worker alive when the queue drains "
                             "(wait for future submissions)")
    parser.add_argument("--resume", action="store_true",
                        help="force stale leases back to pending before "
                             "starting (only when no workers are running)")
    parser.add_argument("--status", action="store_true",
                        help="print queue counts and recent events, then "
                             "exit")
    args = parser.parse_args(argv)

    root = Path(args.queue)
    if args.status:
        queue = JobQueue(root / "queue.sqlite")
        counts = queue.counts()
        print(json.dumps(counts, indent=2, sort_keys=True))
        for event in queue.events()[-20:]:
            print(f"  {event['event']:<10} {event['key'][:12]} "
                  f"pid {event.get('pid')}")
        queue.close()
        return 0

    if args.worker:
        completed = worker_loop(
            root, shard_id=args.shard_id, max_jobs=args.max_jobs,
            forever=args.forever,
            progress=lambda line: print(line, file=sys.stderr, flush=True),
        )
        print(f"worker {args.shard_id or os.getpid()}: "
              f"{completed} jobs completed", file=sys.stderr)
        return 0

    if args.workers > 0:
        if args.resume:
            queue = JobQueue(root / "queue.sqlite")
            released = queue.release_stale_leases()
            queue.close()
            if released:
                print(f"resume: released {released} stale leases",
                      file=sys.stderr)
        summary = serve_workers(
            root, args.workers, max_jobs=args.max_jobs,
            progress=lambda line: print(line, file=sys.stderr, flush=True),
        )
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0 if summary["pending"] == summary["leased"] == \
            summary["dead"] == 0 else 1

    parser.error("nothing to do: pass --workers N, --worker, or --status")
    return 2


if __name__ == "__main__":
    sys.exit(main())
