"""Declarative design-space-exploration sweeps over the simulator.

The paper's evaluation is a grid of (kernel × ISA × vector-bits ×
machine config) simulations; the "simulator as a design tool" workflow
(Ramírez et al., PAPERS.md) needs the same grid swept over *candidate*
configurations — engine sizing, stream cache level, vector length — with
thousands of points, run once, resumable, and summarised as a Pareto
front instead of nineteen hand-read tables.

A sweep is a small JSON document::

    {
      "name": "engine-sizing",
      "kernels": ["saxpy", "memcpy", "stream"],
      "isas": ["uve"],
      "axes": {
        "vector_bits": [128, 256, 512],
        "engine.fifo_depth": [4, 8, 16],
        "engine.processing_modules": [1, 2],
        "engine.mem_level_override": ["", "L2"]
      }
    }

Axis names are dotted paths into :class:`~repro.cpu.config.MachineConfig`
(validated against the dataclass tree at expansion time); the sweep is
the cartesian product kernels × isas × axes, expanded in a fixed,
documented order so row indices are stable across runs and machines.

Execution goes through either the in-process
:class:`~repro.harness.executor.CampaignExecutor` (``--serial``, the
reference path) or the sharded experiment service
(:mod:`repro.harness.serve`): submit every point (duplicates collapse by
fingerprint, finished artifacts are immediate cache hits), boot worker
shards, and stream rows as they complete.  Either way the emitted
``rows``/``pareto`` sections depend only on simulation results — byte
identical between serial, sharded, and resumed runs — while scheduling
noise (queue waits, retries, worker ids) is quarantined in ``jobs``.

CLI::

    python -m repro.harness.sweep SPEC.json --serial --json out.json
    python -m repro.harness.sweep SPEC.json --queue DIR --workers 4 \
        --json out.json [--resume]
"""
from __future__ import annotations

import argparse
import dataclasses
import itertools
import json
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.cpu.config import MachineConfig, baseline_machine, uve_machine
from repro.errors import ConfigError
from repro.harness.report import ExperimentResult, geomean
from repro.harness.runner import RunSpec
from repro.kernels import get_kernel


# -- Spec --------------------------------------------------------------------


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: kernels × isas × config axes."""

    name: str
    kernels: Tuple[str, ...]
    isas: Tuple[str, ...]
    #: ordered (dotted_path, values) pairs; product order follows this.
    axes: Tuple[Tuple[str, Tuple[object, ...]], ...]
    description: str = ""

    _FIELDS = ("name", "kernels", "isas", "axes", "description")

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepSpec":
        unknown = sorted(set(payload) - set(cls._FIELDS))
        if unknown:
            raise ConfigError(
                f"unknown sweep spec fields {unknown} "
                f"(expected {list(cls._FIELDS)})"
            )
        for field in ("name", "kernels", "isas", "axes"):
            if field not in payload:
                raise ConfigError(f"sweep spec missing {field!r}")
        if not payload["kernels"] or not payload["isas"]:
            raise ConfigError("sweep spec needs >= 1 kernel and >= 1 isa")
        axes = tuple(
            (path, tuple(values))
            for path, values in payload["axes"].items()
        )
        for path, values in axes:
            if not values:
                raise ConfigError(f"sweep axis {path!r} has no values")
        return cls(
            name=payload["name"],
            kernels=tuple(payload["kernels"]),
            isas=tuple(payload["isas"]),
            axes=axes,
            description=payload.get("description", ""),
        )

    @classmethod
    def from_file(cls, path) -> "SweepSpec":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise ConfigError(f"unreadable sweep spec {path}: {exc}")
        return cls.from_dict(payload)

    def point_count(self) -> int:
        count = len(self.kernels) * len(self.isas)
        for _, values in self.axes:
            count *= len(values)
        return count

    def expand(self) -> List["SweepPoint"]:
        """The full point list in canonical order: kernels outermost,
        then isas, then the axes in spec order (itertools.product)."""
        for kernel in self.kernels:
            get_kernel(kernel)  # unknown kernels fail before any run
        points = []
        value_lists = [values for _, values in self.axes]
        paths = [path for path, _ in self.axes]
        index = 0
        for kernel in self.kernels:
            for isa in self.isas:
                for combo in itertools.product(*value_lists):
                    axes = dict(zip(paths, combo))
                    cfg = _apply_axes(_base_config(isa), axes)
                    _check_streaming(isa, cfg)
                    points.append(SweepPoint(
                        index=index, kernel=kernel, isa=isa,
                        axes=axes, spec=RunSpec(kernel, isa, cfg),
                    ))
                    index += 1
        return points


@dataclass(frozen=True)
class SweepPoint:
    """One expanded grid point (a RunSpec plus its sweep coordinates)."""

    index: int
    kernel: str
    isa: str
    axes: Dict[str, object]
    spec: RunSpec


def _base_config(isa: str) -> MachineConfig:
    return uve_machine() if isa == "uve" else baseline_machine()


def _check_streaming(isa: str, cfg: MachineConfig) -> None:
    if (isa == "uve") != cfg.streaming:
        raise ConfigError(
            f"sweep axis set streaming={cfg.streaming} which is "
            f"inconsistent with isa {isa!r}"
        )


def _apply_axes(cfg: MachineConfig, axes: Dict[str, object]) -> MachineConfig:
    for path, value in axes.items():
        cfg = _set_path(cfg, path.split("."), value)
    return cfg


def _set_path(node, parts: List[str], value):
    """Replace one dotted-path field in a frozen dataclass tree."""
    if not dataclasses.is_dataclass(node) or isinstance(node, type):
        raise ConfigError(
            f"axis path descends into non-config value {node!r}"
        )
    head, rest = parts[0], parts[1:]
    names = {f.name for f in dataclasses.fields(node)}
    if head not in names:
        raise ConfigError(
            f"unknown config field {head!r} on {type(node).__name__} "
            f"(valid: {sorted(names)})"
        )
    new = value if not rest else _set_path(getattr(node, head), rest, value)
    return dataclasses.replace(node, **{head: new})


# -- Resource proxy + Pareto -------------------------------------------------


def resource_proxy(cfg: MachineConfig) -> float:
    """Dimensionless hardware-cost proxy for Pareto fronts (bigger =
    more silicon).  Normalised so the paper's 512-bit UVE configuration
    scores ~2.25: vector datapath and vector register file scale with
    vector width; a streaming engine adds its processing modules and the
    per-stream FIFO storage (streams × depth × vector bits).  A proxy,
    not an area model — it only needs to order configs sensibly."""
    proxy = cfg.vector_bits / 512.0
    proxy += (cfg.core.vec_phys_regs * cfg.vector_bits) / (48 * 512.0)
    if cfg.streaming:
        engine = cfg.engine
        fifo_bits = engine.max_streams * engine.fifo_depth * cfg.vector_bits
        proxy += fifo_bits / float(32 * 8 * 512)
        proxy += 0.25 * engine.processing_modules / 2.0
    return round(proxy, 6)


def pareto_front(rows: List[dict]) -> List[dict]:
    """Group rows by (isa, axes), aggregate cycles across kernels by
    geomean, and mark the non-dominated set minimising
    (geomean_cycles, resource_proxy)."""
    groups: Dict[str, dict] = {}
    for row in rows:
        label = json.dumps(
            {"isa": row["isa"], **row["axes"]}, sort_keys=True
        )
        group = groups.setdefault(label, {
            "isa": row["isa"], "axes": row["axes"],
            "resource_proxy": row["resource_proxy"], "cycles": [],
        })
        group["cycles"].append(row["cycles"])
    entries = []
    for label in sorted(groups):
        group = groups[label]
        entries.append({
            "isa": group["isa"],
            "axes": group["axes"],
            "geomean_cycles": round(geomean(group["cycles"]), 6),
            "resource_proxy": group["resource_proxy"],
        })
    for entry in entries:
        entry["on_front"] = not any(
            _dominates(other, entry) for other in entries
        )
    return entries


def _dominates(a: dict, b: dict) -> bool:
    """True when ``a`` is at least as good on both objectives and
    strictly better on one (minimisation)."""
    if a is b:
        return False
    better_eq = (a["geomean_cycles"] <= b["geomean_cycles"]
                 and a["resource_proxy"] <= b["resource_proxy"])
    strictly = (a["geomean_cycles"] < b["geomean_cycles"]
                or a["resource_proxy"] < b["resource_proxy"])
    return better_eq and strictly


# -- Campaign driver ---------------------------------------------------------


def _row_for(point: SweepPoint, record) -> dict:
    """One deterministic result row: sweep coordinates + measurements.
    No scheduling data here — rows must be byte-identical between
    serial, sharded, and resumed runs."""
    return {
        "index": point.index,
        "kernel": point.kernel,
        "isa": point.isa,
        "axes": point.axes,
        "resource_proxy": resource_proxy(point.spec.resolved_config()),
        **dataclasses.asdict(record),
    }


def run_sweep_serial(
    spec: SweepSpec,
    scale: float = 1.0,
    seed: int = 0,
    lowering: str = "ir",
    jobs: int = 1,
    cache=None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Reference path: the whole sweep through the existing
    :class:`CampaignExecutor` (serial by default), no service."""
    from repro.harness.executor import CampaignExecutor

    points = spec.expand()
    executor = CampaignExecutor(
        scale=scale, seed=seed, jobs=jobs, cache=cache,
        progress=progress, lowering=lowering,
    )
    keyed = {}
    for point in points:
        keyed.setdefault(point.spec.key(scale, seed, lowering), point.spec)
    start = time.monotonic()
    executor.run_specs(keyed)
    rows = [
        _row_for(point, executor.runner.cached(
            point.spec.key(scale, seed, lowering)
        ))
        for point in points
    ]
    counts = executor.cache_summary()
    return _payload(spec, scale, seed, lowering, rows, jobs={
        "mode": "serial",
        "total": len(points),
        "unique": len(keyed),
        "cache_hits": counts["hit-disk"] + counts["hit-memory"],
        "ran": counts["miss"],
        "wall_s": round(time.monotonic() - start, 3),
    })


def run_sweep_service(
    spec: SweepSpec,
    root,
    workers: int,
    scale: float = 1.0,
    seed: int = 0,
    lowering: str = "ir",
    lease_seconds: float = 60.0,
    max_attempts: int = 3,
    resume: bool = False,
    chaos_kill: int = 0,
    timeout_s: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
    on_row: Optional[Callable[[dict], None]] = None,
) -> dict:
    """The sharded campaign: submit every point to the experiment
    service, boot worker shards, stream rows as they complete.

    Resumable by construction — finished rows live in the artifact
    store, so a second invocation (``--resume`` releases stale leases
    first) submits the same fingerprints, gets cache hits for finished
    work, and only simulates the remainder."""
    from repro.harness.serve import ExperimentService, serve_workers

    points = spec.expand()
    service = ExperimentService(
        root, scale=scale, seed=seed, lowering=lowering,
        lease_seconds=lease_seconds, max_attempts=max_attempts,
        resume=resume,
    )
    if resume:
        released = service.queue.release_stale_leases()
        if released and progress is not None:
            progress(f"[sweep] resume: released {released} stale leases")

    submits = service.submit_many([p.spec for p in points])
    statuses = [s.status for s in submits]
    keys = list(dict.fromkeys(s.key for s in submits))
    if progress is not None:
        progress(
            f"[sweep] {spec.name}: {len(points)} points -> "
            f"{len(keys)} unique jobs ({statuses.count('hit')} artifact "
            f"hits, {statuses.count('queued')} queued, "
            f"{statuses.count('duplicate')} already queued)"
        )

    start = time.monotonic()
    shard_summary: dict = {}
    supervisor = None
    if workers > 0 and not service.queue.drained():
        supervisor = threading.Thread(
            target=lambda: shard_summary.update(serve_workers(
                root, workers, chaos_kill=chaos_kill, progress=None,
            )),
            daemon=True,
        )
        supervisor.start()

    results = {}
    done = 0
    for result in service.stream_results(
        keys, timeout_s=timeout_s, progress=None
    ):
        results[result.key] = result
        done += 1
        if progress is not None and (done % 25 == 0 or done == len(keys)):
            progress(f"[sweep] {done}/{len(keys)} rows complete")
        if on_row is not None and result.record is not None:
            for point in points:
                if service.key_for(point.spec) == result.key:
                    on_row(_row_for(point, result.record))
    if supervisor is not None:
        supervisor.join()

    dead = [r for r in results.values() if r.status == "dead"]
    if dead:
        raise ConfigError(
            f"{len(dead)} sweep jobs failed permanently, e.g. "
            f"{dead[0].key[:12]}: {dead[0].error}"
        )

    rows = []
    for point in points:
        result = results[service.key_for(point.spec)]
        rows.append(_row_for(point, result.record))

    # "ran" means *this* invocation: keys whose artifact already existed
    # at submit time are cache hits even if a prior campaign ran them
    # through this same queue (their Job rows still read "done").
    hit_keys = {s.key for s in submits if s.status == "hit"}
    ran = [
        r for r in results.values()
        if r.status == "ran" and r.key not in hit_keys
    ]
    waits = [r.queue_wait_s for r in ran]
    runs = [r.run_s for r in ran]
    jobs = {
        "mode": "service",
        "workers": workers,
        "total": len(points),
        "unique": len(keys),
        "cache_hits": statuses.count("hit"),
        "ran": len(ran),
        "cache_hit_rate": round(
            statuses.count("hit") / max(1, len(keys)), 4
        ),
        "requeues": sum(r.requeues for r in ran),
        "retries": sum(max(0, r.attempts - 1) for r in ran),
        "queue_wait_mean_s": round(sum(waits) / len(waits), 3) if waits
        else 0.0,
        "queue_wait_max_s": round(max(waits), 3) if waits else 0.0,
        "run_mean_s": round(sum(runs) / len(runs), 3) if runs else 0.0,
        "run_max_s": round(max(runs), 3) if runs else 0.0,
        "wall_s": round(time.monotonic() - start, 3),
        "queue": service.queue.counts(),
    }
    if shard_summary:
        jobs["worker_exits"] = shard_summary.get("worker_exits", [])
    return _payload(spec, scale, seed, lowering, rows, jobs=jobs)


def _payload(spec, scale, seed, lowering, rows, jobs) -> dict:
    return {
        "sweep": spec.name,
        "description": spec.description,
        "scale": scale,
        "seed": seed,
        "lowering": lowering,
        "rows": rows,
        "pareto": pareto_front(rows),
        "jobs": jobs,
    }


def pareto_table(payload: dict, limit: int = 15) -> ExperimentResult:
    """Render the Pareto front (plus how much it pruned) as a table."""
    entries = payload["pareto"]
    front = [e for e in entries if e["on_front"]]
    front.sort(key=lambda e: e["resource_proxy"])
    rows = [
        (
            e["isa"],
            json.dumps(e["axes"], sort_keys=True),
            e["resource_proxy"],
            e["geomean_cycles"],
        )
        for e in front[:limit]
    ]
    return ExperimentResult(
        f"sweep-{payload['sweep']}",
        f"Pareto front: {len(front)}/{len(entries)} configs "
        f"non-dominated (cycles vs. resource proxy, "
        f"{len(payload['rows'])} rows)",
        ["isa", "config", "resource", "geomean cycles"],
        rows,
    )


# -- CLI ---------------------------------------------------------------------


def _write_json(path: str, payload: dict) -> None:
    import os
    import tempfile

    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.sweep",
        description="Expand and run a declarative design-space sweep.",
    )
    parser.add_argument("spec", help="sweep spec JSON file")
    parser.add_argument("--queue", metavar="DIR", default="",
                        help="campaign directory (required unless "
                             "--serial/--expand)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="worker shards to boot (default 2; 0 "
                             "attaches to externally started workers)")
    parser.add_argument("--serial", action="store_true",
                        help="run in-process through the campaign "
                             "executor instead of the service "
                             "(reference path)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="process-pool width for --serial")
    parser.add_argument("--resume", action="store_true",
                        help="release stale leases and continue a "
                             "half-finished campaign")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--lowering", default="ir",
                        choices=("ir", "legacy"))
    parser.add_argument("--lease-seconds", type=float, default=60.0,
                        help="worker lease/heartbeat window")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="S", help="abort if no row completes "
                        "for S seconds")
    parser.add_argument("--json", metavar="PATH", default="",
                        help="write rows + Pareto front + job metrics")
    parser.add_argument("--expand", action="store_true",
                        help="print the expanded point count and exit")
    parser.add_argument("--chaos-kill", type=int, default=0, metavar="N",
                        help="fault-injection drill: SIGKILL N worker "
                             "shards mid-campaign (CI uses 1)")
    args = parser.parse_args(argv)

    spec = SweepSpec.from_file(args.spec)
    if args.expand:
        points = spec.expand()
        print(f"{spec.name}: {len(points)} points "
              f"({len(spec.kernels)} kernels x {len(spec.isas)} isas x "
              f"{len(points) // max(1, len(spec.kernels) * len(spec.isas))}"
              f" configs)")
        return 0

    progress = lambda line: print(line, file=sys.stderr, flush=True)  # noqa: E731
    if args.serial:
        payload = run_sweep_serial(
            spec, scale=args.scale, seed=args.seed,
            lowering=args.lowering, jobs=args.jobs, progress=progress,
        )
    else:
        if not args.queue:
            parser.error("--queue DIR is required (or pass --serial)")
        payload = run_sweep_service(
            spec, args.queue, args.workers, scale=args.scale,
            seed=args.seed, lowering=args.lowering,
            lease_seconds=args.lease_seconds, resume=args.resume,
            chaos_kill=args.chaos_kill, timeout_s=args.timeout,
            progress=progress,
        )

    print(pareto_table(payload).render())
    jobs = payload["jobs"]
    print(
        f"sweep {spec.name}: {jobs['total']} rows in "
        f"{jobs['wall_s']:.1f}s ({jobs.get('ran', 0)} simulated, "
        f"{jobs.get('cache_hits', 0)} cache hits, "
        f"{jobs.get('requeues', 0)} requeues, mode {jobs['mode']})",
        file=sys.stderr,
    )
    if args.json:
        _write_json(args.json, payload)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
