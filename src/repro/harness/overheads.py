"""§VI.C — Streaming Engine hardware storage overheads, plus Table I."""
from __future__ import annotations

from dataclasses import replace

from repro.cpu.config import EngineConfig, MachineConfig
from repro.engine.engine import StreamingEngine
from repro.harness.report import ExperimentResult
from repro.memory.hierarchy import MemoryHierarchy


def storage_overheads(runner=None) -> ExperimentResult:
    """Storage accounting for the evaluated engine and the reduced
    configuration the paper proposes (8 streams, 4 dims)."""
    rows = []
    for label, engine_cfg in (
        ("evaluated (32 streams, 8 dims, 7 mods)", EngineConfig()),
        (
            "reduced (8 streams, 4 dims, 3 mods)",
            EngineConfig(max_streams=8, max_dims=4, max_mods=3),
        ),
    ):
        cfg = MachineConfig(engine=engine_cfg)
        engine = StreamingEngine(engine_cfg, MemoryHierarchy(cfg))
        ov = engine.storage_overheads()
        rows.append(
            (
                label,
                ov["stream_table_bytes"],
                ov["request_queue_bytes"],
                ov["fifo_bytes"],
                ov["total_bytes"],
                f"{ov['total_bytes'] / 65536:.2f}",
            )
        )
    return ExperimentResult(
        "overheads",
        "Streaming Engine storage (paper: ~14 KB tables + ~17 KB FIFOs "
        "~= 1/2 L1; reduced config ~6 KB ~= 10% of L1)",
        ["configuration", "stream table B", "request queue B", "FIFOs B",
         "total B", "vs 64KB L1"],
        rows,
    )


def table1(runner=None) -> ExperimentResult:
    """Table I: the machine configuration actually simulated."""
    cfg = MachineConfig()
    core, eng = cfg.core, cfg.engine
    rows = [
        ("CPU", f"{core.fetch_width}-wide fetch, {core.commit_width}-wide "
                f"commit, {core.issue_width}-wide issue @ {cfg.freq_ghz} GHz"),
        ("Windows", f"{core.iq_entries} IQ, {core.lq_entries} LQ, "
                    f"{core.sq_entries} SQ, {core.rob_entries} ROB"),
        ("Registers", f"{core.int_phys_regs} Int, {core.fp_phys_regs} FP, "
                      f"{core.vec_phys_regs} x {cfg.vector_bits}-bit vector"),
        ("FUs", f"{core.int_alus} int ALUs, {core.fp_units} FP/vector, "
                f"{core.load_ports} load + {core.store_ports} store ports, "
                f"{core.scheduler_entries}-entry schedulers"),
        ("Streaming Engine", f"{eng.processing_modules} processing modules, "
                             f"{eng.fifo_depth}-entry FIFOs/stream, "
                             f"{eng.memory_request_queue} request queue"),
        ("L1-I/L1-D", f"{cfg.l1i.size_bytes // 1024}KB/"
                      f"{cfg.l1d.size_bytes // 1024}KB {cfg.l1d.assoc}-way, "
                      f"stride prefetcher depth "
                      f"{cfg.prefetch.l1_stride_depth}"),
        ("L2", f"{cfg.l2.size_bytes // 1024}KB {cfg.l2.assoc}-way, AMPM "
               f"prefetcher queue {cfg.prefetch.l2_ampm_queue}"),
        ("DRAM", f"dual-channel DDR3-1600, {cfg.dram.access_latency}-cycle "
                 f"loaded latency, {cfg.dram.peak_bytes_per_cycle:.1f} "
                 f"B/cycle peak"),
    ]
    return ExperimentResult(
        "table1",
        "CPU model configuration (paper Table I)",
        ["component", "configuration"],
        rows,
    )
