"""Persistent, crash-safe job queue for the experiment service.

One SQLite file holds every job of a campaign, keyed by content
fingerprint so duplicate submissions collapse to one row.  Workers in
separate processes *lease* jobs rather than popping them: a lease carries
the worker id and an expiry deadline, the worker extends it with
heartbeats while simulating, and if the worker dies (crash, SIGKILL, OOM)
the lease simply expires and the next ``requeue_expired`` moves the job
back to pending — a killed worker loses nothing.  Failures retry with
exponential backoff up to ``max_attempts``, after which the job is marked
``dead`` (terminal, surfaced to the client rather than looping forever).

Job lifecycle::

    pending --lease--> leased --complete--> done
       ^                  |  `--fail--> pending (backoff) ... or dead
       `---requeue_expired'

All state transitions are single ``BEGIN IMMEDIATE`` transactions, so any
number of worker processes can share the queue file; SQLite's WAL mode
plus a busy timeout make the cross-process races safe.  Every transition
additionally appends a structured JSON line to ``events.jsonl`` next to
the queue — the campaign's observability log.
"""
from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError


class QueueError(ReproError):
    """Illegal job-queue transition (e.g. completing a lost lease)."""


#: terminal states: the queue is drained when every job is in one of them.
TERMINAL = ("done", "dead")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    key          TEXT PRIMARY KEY,
    payload      TEXT NOT NULL,
    seq          INTEGER NOT NULL,
    status       TEXT NOT NULL DEFAULT 'pending',
    attempts     INTEGER NOT NULL DEFAULT 0,
    requeues     INTEGER NOT NULL DEFAULT 0,
    worker       TEXT,
    lease_expiry REAL,
    not_before   REAL NOT NULL DEFAULT 0,
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    error        TEXT
);
CREATE INDEX IF NOT EXISTS jobs_status ON jobs (status, not_before, seq);
"""


@dataclass
class Job:
    """A leased (or inspected) queue entry."""

    key: str
    payload: str
    seq: int
    status: str
    attempts: int
    requeues: int
    worker: Optional[str]
    submitted_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    error: Optional[str]

    @property
    def queue_wait_s(self) -> float:
        if self.started_at is None:
            return 0.0
        return max(0.0, self.started_at - self.submitted_at)


_ROW_FIELDS = (
    "key, payload, seq, status, attempts, requeues, worker, "
    "submitted_at, started_at, finished_at, error"
)


class JobQueue:
    """SQLite-backed lease queue; one instance per process, shared file."""

    def __init__(
        self,
        path,
        lease_seconds: float = 60.0,
        max_attempts: int = 3,
        backoff_base_s: float = 0.5,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = Path(path)
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.clock = clock
        self.events_path = self.path.with_name("events.jsonl")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path, timeout=30.0)
        self._conn.isolation_level = None  # explicit transactions only
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        self._conn.close()

    # -- Event log -----------------------------------------------------------

    def _event(self, kind: str, key: str, **extra) -> None:
        """Append one structured event line (best-effort; O_APPEND writes
        of short lines are atomic on POSIX, so concurrent workers can
        share the log without interleaving)."""
        record = {"ts": self.clock(), "event": kind, "key": key,
                  "pid": os.getpid(), **extra}
        try:
            with open(self.events_path, "a") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError:
            pass

    def events(self) -> List[dict]:
        """Parse the event log (damaged lines are skipped, not fatal)."""
        out = []
        try:
            lines = self.events_path.read_text().splitlines()
        except OSError:
            return out
        for line in lines:
            try:
                out.append(json.loads(line))
            except ValueError:
                continue
        return out

    # -- Submission ----------------------------------------------------------

    def submit(self, key: str, payload: str) -> bool:
        """Enqueue a job; returns False if ``key`` is already queued
        (duplicate submissions are deduplicated, not re-run)."""
        now = self.clock()
        with self._txn() as cur:
            cur.execute("SELECT COALESCE(MAX(seq), -1) + 1 FROM jobs")
            seq = cur.fetchone()[0]
            try:
                cur.execute(
                    "INSERT INTO jobs (key, payload, seq, submitted_at) "
                    "VALUES (?, ?, ?, ?)",
                    (key, payload, seq, now),
                )
            except sqlite3.IntegrityError:
                return False
        self._event("submitted", key, seq=seq)
        return True

    # -- Leasing -------------------------------------------------------------

    def lease(self, worker: str) -> Optional[Job]:
        """Atomically lease the oldest runnable pending job, or None."""
        now = self.clock()
        with self._txn() as cur:
            cur.execute(
                f"SELECT {_ROW_FIELDS} FROM jobs "
                "WHERE status = 'pending' AND not_before <= ? "
                "ORDER BY seq LIMIT 1",
                (now,),
            )
            row = cur.fetchone()
            if row is None:
                return None
            cur.execute(
                "UPDATE jobs SET status = 'leased', worker = ?, "
                "lease_expiry = ?, started_at = ?, attempts = attempts + 1 "
                "WHERE key = ?",
                (worker, now + self.lease_seconds, now, row[0]),
            )
        job = Job(*row)
        job.status = "leased"
        job.worker = worker
        job.attempts += 1
        job.started_at = now
        self._event("leased", job.key, worker=worker, attempts=job.attempts)
        return job

    def heartbeat(self, key: str, worker: str) -> None:
        """Extend a held lease; raises if the lease was lost (expired and
        re-leased elsewhere), so a zombie worker stops rather than
        double-completing."""
        now = self.clock()
        with self._txn() as cur:
            cur.execute(
                "UPDATE jobs SET lease_expiry = ? "
                "WHERE key = ? AND status = 'leased' AND worker = ?",
                (now + self.lease_seconds, key, worker),
            )
            if cur.rowcount != 1:
                raise QueueError(
                    f"lost lease on {key[:12]} (worker {worker})"
                )

    def requeue_expired(self) -> int:
        """Return expired leases to pending (the crash-recovery path)."""
        now = self.clock()
        with self._txn() as cur:
            cur.execute(
                "SELECT key, worker FROM jobs "
                "WHERE status = 'leased' AND lease_expiry < ?",
                (now,),
            )
            expired = cur.fetchall()
            if not expired:
                return 0
            cur.execute(
                "UPDATE jobs SET status = 'pending', worker = NULL, "
                "lease_expiry = NULL, requeues = requeues + 1 "
                "WHERE status = 'leased' AND lease_expiry < ?",
                (now,),
            )
        for key, worker in expired:
            self._event("requeued", key, lost_worker=worker)
        return len(expired)

    def release_stale_leases(self) -> int:
        """Force every lease back to pending regardless of expiry — the
        explicit ``--resume`` path, valid only when no workers are
        running (a live worker's lease would be stolen)."""
        with self._txn() as cur:
            cur.execute("SELECT key, worker FROM jobs WHERE status='leased'")
            stale = cur.fetchall()
            if not stale:
                return 0
            cur.execute(
                "UPDATE jobs SET status = 'pending', worker = NULL, "
                "lease_expiry = NULL, requeues = requeues + 1 "
                "WHERE status = 'leased'"
            )
        for key, worker in stale:
            self._event("requeued", key, lost_worker=worker, forced=True)
        return len(stale)

    # -- Completion ----------------------------------------------------------

    def complete(self, key: str, worker: str) -> None:
        """Mark a leased job done.  Only the lease holder may complete it;
        a worker whose lease expired and was re-leased raises instead of
        recording a duplicate completion."""
        now = self.clock()
        with self._txn() as cur:
            cur.execute(
                "UPDATE jobs SET status = 'done', finished_at = ?, "
                "error = NULL WHERE key = ? AND status = 'leased' "
                "AND worker = ?",
                (now, key, worker),
            )
            if cur.rowcount != 1:
                raise QueueError(
                    f"cannot complete {key[:12]}: lease not held by {worker}"
                )
        self._event("completed", key, worker=worker)

    def fail(self, key: str, worker: str, error: str) -> str:
        """Record a job failure: retry with exponential backoff while
        attempts remain, else mark the job dead.  Returns the new status."""
        now = self.clock()
        with self._txn() as cur:
            cur.execute(
                "SELECT attempts FROM jobs "
                "WHERE key = ? AND status = 'leased' AND worker = ?",
                (key, worker),
            )
            row = cur.fetchone()
            if row is None:
                raise QueueError(
                    f"cannot fail {key[:12]}: lease not held by {worker}"
                )
            attempts = row[0]
            if attempts >= self.max_attempts:
                status = "dead"
                cur.execute(
                    "UPDATE jobs SET status = 'dead', finished_at = ?, "
                    "error = ? WHERE key = ?",
                    (now, error, key),
                )
            else:
                status = "pending"
                backoff = self.backoff_base_s * (2 ** (attempts - 1))
                cur.execute(
                    "UPDATE jobs SET status = 'pending', worker = NULL, "
                    "lease_expiry = NULL, not_before = ?, error = ? "
                    "WHERE key = ?",
                    (now + backoff, error, key),
                )
        self._event("failed", key, worker=worker, status=status,
                    attempts=attempts, error=error[:500])
        return status

    # -- Inspection ----------------------------------------------------------

    def get(self, key: str) -> Optional[Job]:
        cur = self._conn.execute(
            f"SELECT {_ROW_FIELDS} FROM jobs WHERE key = ?", (key,)
        )
        row = cur.fetchone()
        return Job(*row) if row else None

    def jobs(self) -> List[Job]:
        cur = self._conn.execute(
            f"SELECT {_ROW_FIELDS} FROM jobs ORDER BY seq"
        )
        return [Job(*row) for row in cur.fetchall()]

    def counts(self) -> Dict[str, int]:
        out = {"pending": 0, "leased": 0, "done": 0, "dead": 0, "total": 0}
        cur = self._conn.execute(
            "SELECT status, COUNT(*) FROM jobs GROUP BY status"
        )
        for status, count in cur.fetchall():
            out[status] = count
            out["total"] += count
        return out

    def drained(self) -> bool:
        """True when every job is terminal (done or dead)."""
        cur = self._conn.execute(
            "SELECT COUNT(*) FROM jobs WHERE status NOT IN ('done', 'dead')"
        )
        return cur.fetchone()[0] == 0

    def statuses(self, keys: List[str]) -> Dict[str, str]:
        """Status for many keys in one query (client polling)."""
        out: Dict[str, str] = {}
        for start in range(0, len(keys), 500):
            chunk = keys[start:start + 500]
            marks = ",".join("?" * len(chunk))
            cur = self._conn.execute(
                f"SELECT key, status FROM jobs WHERE key IN ({marks})", chunk
            )
            out.update(dict(cur.fetchall()))
        return out

    # -- Internals -----------------------------------------------------------

    def _txn(self):
        return _Transaction(self._conn)


class _Transaction:
    """``BEGIN IMMEDIATE`` context manager (commit/rollback on exit)."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self.conn = conn

    def __enter__(self) -> sqlite3.Cursor:
        self.conn.execute("BEGIN IMMEDIATE")
        return self.conn.cursor()

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.conn.execute("COMMIT")
        else:
            self.conn.execute("ROLLBACK")
