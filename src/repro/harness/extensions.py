"""Extension experiments beyond the paper's evaluation.

* ``ext-rvv`` — adds the paper's third comparator (RISC-V "V", Fig. 1.C)
  to the timing comparison on the 1-D benchmark family.
* ``ext-vl`` — the vector-length-agnosticism premise: the *same* UVE and
  SVE programs run unchanged on machines with 128- to 1024-bit vectors
  (NEON code is fixed-width and serves as the control).
* ``ext-shared-fifo`` — the paper's §IV-B future-work idea: one pooled
  load-FIFO budget shared across streams instead of fixed per-stream
  queues.
"""
from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.cpu.config import baseline_machine, uve_machine
from repro.harness.report import ExperimentResult
from repro.harness.runner import Runner, RunSpec

#: kernels with RVV implementations (the 1-D family).
RVV_KERNELS = ("memcpy", "stream", "saxpy", "jacobi-1d", "jacobi-2d", "knn")

#: the vector-length sweep (ext-vl): kernels and hardware widths.
VL_KERNELS = ("saxpy", "jacobi-1d")
VL_WIDTHS = (128, 256, 512, 1024)

#: ext-shared-fifo benchmark subset.
SHARED_FIFO_KERNELS = ("stream", "jacobi-2d", "gemm", "mamr")


def _vl_config(isa: str, bits: int):
    cfg = uve_machine() if isa == "uve" else baseline_machine()
    return cfg.with_(vector_bits=bits)


def _pooled_config(runner: Runner):
    cfg = runner.config_for("uve")
    return cfg.with_(engine=replace(cfg.engine, shared_fifo=True))


def rvv_comparison_specs(runner: Runner) -> List[RunSpec]:
    specs = []
    for name in RVV_KERNELS:
        specs.extend(
            (
                RunSpec(name, "uve"),
                RunSpec(name, "sve"),
                RunSpec(name, "rvv", runner.config_for("sve")),
                RunSpec(name, "neon"),
            )
        )
    return specs


def vector_length_sweep_specs(runner: Runner) -> List[RunSpec]:
    return [
        RunSpec(name, isa, _vl_config(isa, bits))
        for name in VL_KERNELS
        for isa in ("uve", "sve")
        for bits in VL_WIDTHS
    ]


def shared_fifo_specs(runner: Runner) -> List[RunSpec]:
    specs = []
    for name in SHARED_FIFO_KERNELS:
        specs.append(RunSpec(name, "uve"))
        specs.append(RunSpec(name, "uve", _pooled_config(runner)))
    return specs


def rvv_comparison(runner: Runner) -> ExperimentResult:
    rows = []
    for name in RVV_KERNELS:
        uve = runner.run(name, "uve")
        sve = runner.run(name, "sve")
        rvv = runner.run(name, "rvv", runner.config_for("sve"))
        neon = runner.run(name, "neon")
        rows.append(
            (
                name,
                f"{sve.cycles / uve.cycles:.2f}x",
                f"{rvv.cycles / uve.cycles:.2f}x",
                f"{neon.cycles / uve.cycles:.2f}x",
                rvv.committed,
                sve.committed,
            )
        )
    return ExperimentResult(
        "ext-rvv",
        "UVE speed-up vs all three comparators of Fig. 1 (SVE, RVV, NEON)",
        ["benchmark", "vs SVE", "vs RVV", "vs NEON", "rvv inst", "sve inst"],
        rows,
        notes=["RVV strip-mines with vsetvli instead of predication; its "
               "loop overhead sits between SVE's and NEON's"],
    )


def vector_length_sweep(runner: Runner) -> ExperimentResult:
    """Run the *same* kernel builders at four hardware vector lengths."""
    rows = []
    widths = VL_WIDTHS
    for name in VL_KERNELS:
        for isa in ("uve", "sve"):
            cycles = []
            for bits in widths:
                record = runner.run(name, isa, _vl_config(isa, bits))
                cycles.append(record.cycles)
            base = cycles[widths.index(512)]
            rows.append(
                (name, isa)
                + tuple(f"{base / c:.2f}x" for c in cycles)
            )
    return ExperimentResult(
        "ext-vl",
        "Vector-length agnosticism: identical code, 128- to 1024-bit "
        "machines (normalized to 512-bit)",
        ["benchmark", "isa"] + [f"{w}b" for w in widths],
        rows,
        notes=["wider vectors help until the memory system saturates; "
               "no program was modified across columns"],
    )


def shared_fifo(runner: Runner) -> ExperimentResult:
    """§IV-B future work: pool the load-FIFO capacity across streams."""
    rows = []
    for name in SHARED_FIFO_KERNELS:
        fixed = runner.run(name, "uve")
        pooled = runner.run(name, "uve", _pooled_config(runner))
        rows.append(
            (
                name,
                int(fixed.cycles),
                int(pooled.cycles),
                f"{fixed.cycles / pooled.cycles:.3f}x",
            )
        )
    return ExperimentResult(
        "ext-shared-fifo",
        "Shared (pooled) load FIFOs vs fixed per-stream queues "
        "(the paper's future-work design)",
        ["benchmark", "fixed", "pooled", "speed-up"],
        rows,
    )
