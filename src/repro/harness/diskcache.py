"""Persistent, content-addressed result cache for campaign runs.

Records live under ``~/.cache/repro`` (or ``--cache-dir``) as one JSON
file per run, addressed by the run fingerprint mixed with a code-version
salt — a hash of the simulator sources — so editing the simulator
invalidates every cached result while harness-only changes keep them.
Corrupted or schema-incompatible entries degrade to cache misses and are
overwritten on the next store.
"""
from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.harness.runner import RunRecord

#: schema version of the stored record payload; bump on RunRecord changes.
CACHE_FORMAT = 1

_SALT_CACHE: dict = {}


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def code_version_salt() -> str:
    """Hash of the simulator sources (everything under ``repro`` except
    the harness itself, whose changes cannot alter simulation results)."""
    import repro

    root = Path(repro.__file__).resolve().parent
    cached = _SALT_CACHE.get(root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        if rel.parts and rel.parts[0] == "harness":
            continue
        digest.update(str(rel).encode())
        digest.update(path.read_bytes())
    salt = digest.hexdigest()
    _SALT_CACHE[root] = salt
    return salt


class ResultCache:
    """On-disk cache of run results, keyed by fingerprint.

    ``record_cls`` is the payload constructor: the campaign harness uses
    the default :class:`RunRecord`; other subsystems (e.g. the fuzzer)
    pass their own dataclass — or ``dict`` for schemaless payloads."""

    def __init__(
        self,
        root: Optional[Path] = None,
        salt: Optional[str] = None,
        record_cls=RunRecord,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.salt = salt if salt is not None else code_version_salt()
        self.record_cls = record_cls
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        addressed = hashlib.sha256(
            f"{CACHE_FORMAT}:{self.salt}:{key}".encode()
        ).hexdigest()
        return self.root / addressed[:2] / f"{addressed}.json"

    def load(self, key: str) -> Optional[RunRecord]:
        """Return the cached record for ``key``, or None on any miss —
        including unreadable, corrupted, or schema-incompatible entries."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            record = self.record_cls(**payload["record"])
        except (OSError, ValueError, TypeError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        try:
            # LRU touch: prune() evicts by mtime, so a hit must count as
            # recent use, not leave the entry looking as old as its write.
            os.utime(path)
        except OSError:
            pass
        return record

    def store(self, key: str, record: RunRecord) -> None:
        """Atomically persist ``record`` (temp file + rename), so readers
        never observe a half-written entry.  Best-effort: an unwritable
        cache degrades to a slower campaign, never a failed one."""
        path = self._path(key)
        body = (
            dataclasses.asdict(record)
            if dataclasses.is_dataclass(record)
            else dict(record)
        )
        payload = {
            "format": CACHE_FORMAT,
            "key": key,
            "record": body,
        }
        tmp = ""
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), prefix=path.stem, suffix=".tmp"
            )
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except OSError:
            if tmp:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    # -- Garbage collection --------------------------------------------------

    def entries(self) -> List[Tuple[Path, float, int]]:
        """Every cache entry as ``(path, mtime, size_bytes)``, across all
        salts/formats sharing this root (GC is salt-agnostic: stale-salt
        entries are exactly the ones worth evicting first)."""
        out = []
        try:
            paths = list(self.root.rglob("*.json"))
        except OSError:
            return out
        for path in paths:
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append((path, stat.st_mtime, stat.st_size))
        return out

    def size_bytes(self) -> int:
        return sum(size for _, _, size in self.entries())

    def prune(self, max_bytes: int) -> "PruneStats":
        """Evict least-recently-used entries (by mtime; hits touch) until
        the store fits in ``max_bytes``.  Best-effort and concurrent-safe:
        a worker re-storing an evicted entry just repopulates it, and an
        entry that vanishes mid-prune is skipped."""
        entries = self.entries()
        total = sum(size for _, _, size in entries)
        stats = PruneStats(
            scanned=len(entries), removed=0,
            bytes_before=total, bytes_after=total,
        )
        if total <= max_bytes:
            return stats
        # Oldest first; break mtime ties by path for determinism.
        for path, _, size in sorted(entries, key=lambda e: (e[1], str(e[0]))):
            if stats.bytes_after <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            stats.removed += 1
            stats.bytes_after -= size
            parent = path.parent
            if parent != self.root:
                try:
                    parent.rmdir()  # only succeeds when empty
                except OSError:
                    pass
        return stats


@dataclass
class PruneStats:
    """Outcome of one :meth:`ResultCache.prune` pass."""

    scanned: int
    removed: int
    bytes_before: int
    bytes_after: int

    def render(self) -> str:
        return (
            f"cache prune: {self.removed}/{self.scanned} entries evicted "
            f"({self.bytes_before} -> {self.bytes_after} bytes)"
        )


def parse_size(text: str) -> int:
    """Parse ``500M``/``2G``-style sizes into bytes (plain int = bytes)."""
    text = text.strip()
    units = {"K": 1024, "M": 1024 ** 2, "G": 1024 ** 3, "T": 1024 ** 4}
    mult = 1
    if text and text[-1].upper() in units:
        mult = units[text[-1].upper()]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"unparseable size {text!r} (want e.g. 500M, 2G)")
    if value < 0:
        raise ValueError(f"negative size {text!r}")
    return int(value * mult)
