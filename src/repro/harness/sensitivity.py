"""Figs. 9-11 — sensitivity studies.

Fig. 9: number of physical vector registers (48/64/96), UVE vs SVE.
Fig. 10: Streaming Engine FIFO depth (2/4/8/12), UVE.
Fig. 11: stream cache level (L1/L2/DRAM), UVE.
"""
from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.harness.report import ExperimentResult
from repro.harness.runner import Runner, RunSpec

#: the benchmark subset the paper sweeps.
SWEEP_KERNELS = ("gemm", "jacobi-2d", "stream", "mamr")

#: Fig. 9 physical-vector-register counts.
PR_COUNTS = (48, 64, 96)
#: Fig. 10 FIFO depths.
FIFO_DEPTHS = (2, 4, 8, 12)
#: Fig. 11 stream cache levels.
CACHE_LEVELS = ("L1", "L2", "MEM")


def _pr_config(runner: Runner, isa: str, count: int):
    cfg = runner.config_for(isa)
    return cfg.with_(core=replace(cfg.core, vec_phys_regs=count))


def _fifo_config(runner: Runner, depth: int):
    cfg = runner.config_for("uve")
    return cfg.with_(engine=replace(cfg.engine, fifo_depth=depth))


def _level_config(runner: Runner, level: str):
    cfg = runner.config_for("uve")
    return cfg.with_(engine=replace(cfg.engine, mem_level_override=level))


def vector_registers_specs(runner: Runner) -> List[RunSpec]:
    return [
        RunSpec(name, isa, _pr_config(runner, isa, count))
        for name in SWEEP_KERNELS
        for isa in ("uve", "sve")
        for count in PR_COUNTS
    ]


def fifo_depth_specs(runner: Runner) -> List[RunSpec]:
    return [
        RunSpec(name, "uve", _fifo_config(runner, depth))
        for name in SWEEP_KERNELS + ("3mm",)
        for depth in FIFO_DEPTHS
    ]


def stream_cache_level_specs(runner: Runner) -> List[RunSpec]:
    return [
        RunSpec(name, "uve", _level_config(runner, level))
        for name in SWEEP_KERNELS
        for level in CACHE_LEVELS
    ]


def vector_registers(runner: Runner) -> ExperimentResult:
    """Fig. 9: performance sensitivity to physical vector registers."""
    counts = PR_COUNTS
    rows = []
    for name in SWEEP_KERNELS:
        for isa in ("uve", "sve"):
            base = None
            speeds = []
            for count in counts:
                record = runner.run(name, isa, _pr_config(runner, isa, count))
                if base is None:
                    base = record.cycles
                speeds.append(base / record.cycles)
            rows.append((name, isa) + tuple(f"{s:.2f}x" for s in speeds))
    return ExperimentResult(
        "fig9",
        "Sensitivity to the number of physical vector registers "
        "(normalized to 48 PRs; paper: SVE gains, UVE is flat)",
        ["benchmark", "isa"] + [f"{c} PRs" for c in counts],
        rows,
        notes=["the starred mamr runs scalar code on the SVE core"],
    )


def fifo_depth(runner: Runner) -> ExperimentResult:
    """Fig. 10: sensitivity to the load/store FIFO depth."""
    depths = FIFO_DEPTHS
    rows = []
    for name in SWEEP_KERNELS + ("3mm",):
        base = None
        speeds = []
        for depth in depths:
            record = runner.run(name, "uve", _fifo_config(runner, depth))
            if depth == 8:
                base = record.cycles
            speeds.append(record.cycles)
        rows.append(
            (name,) + tuple(f"{base / c:.2f}x" for c in speeds)
        )
    return ExperimentResult(
        "fig10",
        "Sensitivity to FIFO depth (normalized to depth 8; paper: >=4 "
        "needed, saturates at 8, latency-sensitive kernels keep gaining)",
        ["benchmark"] + [f"depth {d}" for d in depths],
        rows,
    )


def stream_cache_level(runner: Runner) -> ExperimentResult:
    """Fig. 11: sensitivity to the cache/memory level streams access."""
    levels = CACHE_LEVELS
    rows = []
    for name in SWEEP_KERNELS:
        base = None
        cycles = []
        for level in levels:
            record = runner.run(name, "uve", _level_config(runner, level))
            if level == "L2":
                base = record.cycles
            cycles.append(record.cycles)
        rows.append((name,) + tuple(f"{base / c:.2f}x" for c in cycles))
    return ExperimentResult(
        "fig11",
        "Sensitivity to the streaming cache level (normalized to L2; "
        "paper: L2 best overall, kernel-specific exceptions)",
        ["benchmark", "L1", "L2", "DRAM"],
        rows,
    )
