"""Parallel, cache-persistent campaign executor.

The campaign for the full paper (19 kernels × 3–4 ISAs × the Fig. 9/10/11
sweeps) used to run serially, figure by figure.  The executor instead:

1. collects every figure's declared :class:`~repro.harness.runner.RunSpec`
   up front and deduplicates them by content fingerprint, so independent
   runs of *different* figures interleave in one pool;
2. satisfies what it can from the on-disk
   :class:`~repro.harness.diskcache.ResultCache`, so a re-run only
   simulates what changed;
3. fans the remaining specs out over a
   :class:`concurrent.futures.ProcessPoolExecutor` (``--jobs N``), each
   worker rebuilding ``Runner`` state from the picklable spec;
4. finally builds every experiment table serially from the warm
   in-process cache — so ``--jobs 4`` output is byte-identical to
   ``--jobs 1``.

Every run emits a structured progress line (cache status, wall time,
worker id, remaining queue depth); ``--trace PATH`` additionally persists
the event log as JSON, and :meth:`CampaignExecutor.slowest` feeds the
campaign-end table of slowest runs.
"""
from __future__ import annotations

import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.harness.report import ExperimentResult
from repro.harness.runner import Runner, RunSpec


class CampaignInterrupted(ReproError):
    """Ctrl-C during a campaign: pending work was cancelled cleanly.

    Completed rows survive — they are already in the disk cache and in
    ``CampaignExecutor.events`` — so the CLI can flush a partial
    ``--json`` and exit with a distinct status instead of a traceback."""

    def __init__(self, completed: int, cancelled: int) -> None:
        super().__init__(
            f"campaign interrupted: {completed} runs completed, "
            f"{cancelled} cancelled"
        )
        self.completed = completed
        self.cancelled = cancelled


@dataclass
class RunEvent:
    """Observability record for one campaign run."""

    kernel: str
    isa: str
    unroll: int
    key: str
    status: str  # "hit-memory" | "hit-disk" | "miss"
    wall_s: float
    worker: int
    queue_depth: int

    @property
    def label(self) -> str:
        tag = f"{self.kernel}/{self.isa}"
        if self.unroll:
            tag += f"/unroll{self.unroll}"
        return tag


def _execute_spec(spec: RunSpec, scale: float, seed: int, lowering: str = "ir"):
    """Pool worker: rebuild a Runner from the picklable spec and run it."""
    start = time.perf_counter()
    runner = Runner(scale=scale, seed=seed, lowering=lowering)
    record = runner.run_spec(spec)
    return record, time.perf_counter() - start, os.getpid()


class CampaignExecutor:
    """Runs a set of experiments through one shared, parallel run pool."""

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        jobs: Optional[int] = None,
        cache=None,
        progress: Optional[Callable[[str], None]] = None,
        lowering: str = "ir",
    ) -> None:
        self.scale = scale
        self.seed = seed
        self.jobs = max(1, jobs if jobs is not None else os.cpu_count() or 1)
        self.cache = cache
        self.lowering = lowering
        self.runner = Runner(
            scale=scale, seed=seed, disk_cache=cache, lowering=lowering
        )
        self.progress = progress
        self.events: List[RunEvent] = []

    # -- Spec collection -----------------------------------------------------

    def collect_specs(self, names: List[str]) -> Dict[str, RunSpec]:
        """Every experiment's declared runs, deduplicated by fingerprint
        (insertion order preserved, so execution order is deterministic)."""
        from repro.harness import EXPERIMENTS

        specs: Dict[str, RunSpec] = {}
        for name in names:
            for spec in EXPERIMENTS[name].specs(self.runner):
                key = spec.key(self.scale, self.seed, self.lowering)
                specs.setdefault(key, spec)
        return specs

    # -- Execution -----------------------------------------------------------

    def prefetch(self, names: List[str]) -> None:
        """Warm the in-process cache for every declared run: disk cache
        first, then the process pool for the misses."""
        self.run_specs(self.collect_specs(names))

    def run_specs(self, specs: Dict[str, RunSpec]) -> None:
        """Execute fingerprint-keyed specs into the runner's warm cache
        (cache-first, then serial or pooled).  Also the entry point for
        external spec producers such as :mod:`repro.harness.sweep`."""
        pending: Dict[str, RunSpec] = {}
        for key, spec in specs.items():
            if self.runner.cached(key) is not None:
                self._emit(spec, key, "hit-memory", 0.0, os.getpid(),
                           len(pending))
                continue
            record = self.cache.load(key) if self.cache else None
            if record is not None:
                self.runner.seed_cache(key, record)
                self._emit(spec, key, "hit-disk", 0.0, os.getpid(),
                           len(pending))
            else:
                pending[key] = spec
        if not pending:
            return
        if self.jobs == 1:
            self._run_serial(pending)
        else:
            self._run_pool(pending)

    def _finish(self, key, spec, record, wall, worker, remaining) -> None:
        self.runner.seed_cache(key, record)
        if self.cache is not None:
            self.cache.store(key, record)
        self._emit(spec, key, "miss", wall, worker, remaining)

    def _run_serial(self, pending: Dict[str, RunSpec]) -> None:
        remaining = len(pending)
        completed = 0
        try:
            for key, spec in pending.items():
                record, wall, worker = _execute_spec(
                    spec, self.scale, self.seed, self.lowering
                )
                remaining -= 1
                completed += 1
                self._finish(key, spec, record, wall, worker, remaining)
        except KeyboardInterrupt:
            raise CampaignInterrupted(completed, remaining) from None

    def _run_pool(self, pending: Dict[str, RunSpec]) -> None:
        remaining = len(pending)
        completed = 0
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(_execute_spec, spec, self.scale, self.seed,
                            self.lowering):
                    (key, spec)
                for key, spec in pending.items()
            }
            try:
                for future in as_completed(futures):
                    key, spec = futures[future]
                    record, wall, worker = future.result()
                    remaining -= 1
                    completed += 1
                    self._finish(key, spec, record, wall, worker, remaining)
            except KeyboardInterrupt:
                # Completed rows are already cached; drop the rest now
                # (cancel queued futures, kill the pool) instead of
                # waiting out every in-flight simulation.
                cancelled = sum(1 for f in futures if f.cancel())
                pool.shutdown(wait=False, cancel_futures=True)
                raise CampaignInterrupted(completed, cancelled) from None

    def run_campaign(
        self,
        names: List[str],
        on_result: Optional[Callable[[ExperimentResult], None]] = None,
    ) -> List[ExperimentResult]:
        """Prefetch every declared run, then build each experiment table
        from the warm cache, invoking ``on_result`` as each completes."""
        from repro.harness import EXPERIMENTS

        self.prefetch(names)
        results = []
        for name in names:
            result = EXPERIMENTS[name].build(self.runner)
            results.append(result)
            if on_result is not None:
                on_result(result)
        return results

    # -- Observability -------------------------------------------------------

    def _emit(self, spec, key, status, wall, worker, queue_depth) -> None:
        event = RunEvent(
            kernel=spec.kernel, isa=spec.isa, unroll=spec.unroll,
            key=key, status=status, wall_s=wall, worker=worker,
            queue_depth=queue_depth,
        )
        self.events.append(event)
        if self.progress is not None:
            self.progress(
                f"[run] {event.status:<10} {event.label:<28} "
                f"{event.wall_s:6.2f}s  worker {event.worker}  "
                f"queue {event.queue_depth}"
            )

    def cache_summary(self) -> Dict[str, int]:
        counts = {"hit-memory": 0, "hit-disk": 0, "miss": 0}
        for event in self.events:
            counts[event.status] += 1
        counts["total"] = len(self.events)
        return counts

    def slowest(self, count: int = 10) -> List[RunEvent]:
        ran = [e for e in self.events if e.status == "miss"]
        return sorted(ran, key=lambda e: e.wall_s, reverse=True)[:count]

    def slowest_table(self, count: int = 10) -> ExperimentResult:
        rows = [
            (e.label, f"{e.wall_s:.2f}", e.worker, e.key[:12])
            for e in self.slowest(count)
        ]
        return ExperimentResult(
            "campaign",
            f"slowest simulated runs (of {len(self.events)} total; "
            f"jobs={self.jobs})",
            ["run", "seconds", "worker", "fingerprint"],
            rows,
        )

    def write_trace(self, path: str) -> None:
        payload = {
            "scale": self.scale,
            "seed": self.seed,
            "jobs": self.jobs,
            "salt": getattr(self.cache, "salt", ""),
            "events": [asdict(e) for e in self.events],
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)


def stderr_progress(line: str) -> None:
    """Default progress sink: structured lines on stderr, tables stay
    clean on stdout."""
    print(line, file=sys.stderr, flush=True)
