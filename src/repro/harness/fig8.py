"""Fig. 8 — the paper's main evaluation panels.

Each function regenerates one panel as an :class:`ExperimentResult`:
A: committed-instruction reduction, B: speedup, C: rename blocks/cycle,
D: DRAM bus utilization, E: loop unrolling on GEMM, plus the left-hand
benchmark-characterisation table.
"""
from __future__ import annotations

from typing import List

from repro.harness.report import ExperimentResult, geomean
from repro.harness.runner import Runner, RunSpec
from repro.kernels import all_kernels, get_kernel

#: the three ISAs every fig8 comparison panel runs per benchmark.
COMPARISON_ISAS = ("uve", "sve", "neon")


def comparison_specs(runner: Runner) -> List[RunSpec]:
    """Runs shared by panels A-D: every benchmark on all three ISAs."""
    return [
        RunSpec(kernel.name, isa)
        for kernel in all_kernels()
        for isa in COMPARISON_ISAS
    ]


def _unroll_factors(runner: Runner) -> List[int]:
    """Unroll factors must divide the scaled GEMM K dimension."""
    kernel = get_kernel("gemm")
    k_dim = kernel.workload(seed=runner.seed, scale=runner.scale).params["k"]
    return [f for f in (1, 2, 4, 8) if k_dim % f == 0]


def unrolling_specs(runner: Runner) -> List[RunSpec]:
    return [
        RunSpec("gemm", "uve", unroll=factor)
        for factor in _unroll_factors(runner)
    ]


def benchmark_table(runner: Runner = None) -> ExperimentResult:
    """Fig. 8 left table: per-benchmark stream/pattern characterisation."""
    rows = []
    for kernel in all_kernels():
        d = kernel.describe()
        rows.append(
            (
                d["letter"],
                d["name"],
                d["domain"],
                d["streams"],
                d["nesting"],
                d["kernels"],
                d["pattern"],
                "" if d["sve_vectorized"] else "*",
            )
        )
    return ExperimentResult(
        "fig8-table",
        "Benchmarks (A-S): #streams, max loop nesting, #kernels, pattern",
        ["id", "benchmark", "domain", "streams", "nesting", "kernels",
         "pattern", "SVE*"],
        rows,
        notes=["* = not vectorized by the baseline compiler (scalar SVE/NEON)"],
    )


def instruction_reduction(runner: Runner) -> ExperimentResult:
    """Fig. 8.A: reduction of committed instructions, UVE vs SVE/NEON."""
    rows = []
    red_sve, red_neon = [], []
    for kernel in all_kernels():
        u = runner.run(kernel.name, "uve")
        s = runner.run(kernel.name, "sve")
        n = runner.run(kernel.name, "neon")
        rs = 1 - u.committed / s.committed
        rn = 1 - u.committed / n.committed
        red_sve.append(rs)
        red_neon.append(rn)
        rows.append((kernel.letter, kernel.name, u.committed, s.committed,
                     n.committed, f"{rs:.1%}", f"{rn:.1%}"))
    rows.append(("", "average", "", "", "",
                 f"{sum(red_sve)/len(red_sve):.1%}",
                 f"{sum(red_neon)/len(red_neon):.1%}"))
    return ExperimentResult(
        "fig8a",
        "Reduction of committed instructions (paper: 60.9% vs SVE, "
        "93.2% vs NEON)",
        ["id", "benchmark", "uve", "sve", "neon", "vs SVE", "vs NEON"],
        rows,
    )


def speedup(runner: Runner) -> ExperimentResult:
    """Fig. 8.B: performance speedup of UVE over SVE and NEON."""
    rows = []
    vec_sve, all_neon = [], []
    for kernel in all_kernels():
        u = runner.run(kernel.name, "uve")
        s = runner.run(kernel.name, "sve")
        n = runner.run(kernel.name, "neon")
        sp_s = s.cycles / u.cycles
        sp_n = n.cycles / u.cycles
        if kernel.sve_vectorized:
            vec_sve.append(sp_s)
        all_neon.append(sp_n)
        rows.append((kernel.letter, kernel.name,
                     f"{sp_s:.2f}x", f"{sp_n:.2f}x",
                     "" if kernel.sve_vectorized else "*"))
    rows.append(("", "geomean (vectorized vs SVE)",
                 f"{geomean(vec_sve):.2f}x", f"{geomean(all_neon):.2f}x", ""))
    return ExperimentResult(
        "fig8b",
        "Speed-up of UVE (paper: 2.4x average over SVE on vectorized "
        "benchmarks; large spikes on * benchmarks)",
        ["id", "benchmark", "vs SVE", "vs NEON", "SVE*"],
        rows,
    )


def rename_blocks(runner: Runner) -> ExperimentResult:
    """Fig. 8.C: rename-stage blocks per cycle."""
    rows = []
    ratios = []
    for kernel in all_kernels():
        u = runner.run(kernel.name, "uve")
        s = runner.run(kernel.name, "sve")
        n = runner.run(kernel.name, "neon")
        rows.append((kernel.letter, kernel.name,
                     u.rename_blocks_per_cycle, s.rename_blocks_per_cycle,
                     n.rename_blocks_per_cycle))
        if kernel.sve_vectorized and s.rename_blocks_per_cycle > 0:
            ratios.append(
                u.rename_blocks_per_cycle / s.rename_blocks_per_cycle
            )
    note = (
        f"mean UVE/SVE ratio on vectorized benchmarks: "
        f"{sum(ratios)/len(ratios):.2f} (paper: -33.4% on average)"
    )
    return ExperimentResult(
        "fig8c",
        "Rename blocks per cycle (fraction of cycles rename stalled)",
        ["id", "benchmark", "uve", "sve", "neon"],
        rows,
        notes=[note],
    )


def bus_utilization(runner: Runner) -> ExperimentResult:
    """Fig. 8.D: DRAM bus utilization, (ReadBW+WriteBW)/PeakBW."""
    rows = []
    for kernel in all_kernels():
        u = runner.run(kernel.name, "uve")
        s = runner.run(kernel.name, "sve")
        n = runner.run(kernel.name, "neon")
        rows.append((kernel.letter, kernel.name,
                     u.bus_utilization, s.bus_utilization, n.bus_utilization))
    return ExperimentResult(
        "fig8d",
        "Memory bus utilization (paper: large increases on memory-bound "
        "benchmarks; no change on L2-bound ones)",
        ["id", "benchmark", "uve", "sve", "neon"],
        rows,
    )


def unrolling(runner: Runner) -> ExperimentResult:
    """Fig. 8.E: speed-up of loop unrolling on the UVE GEMM."""
    base_cycles = None
    rows = []
    for factor in _unroll_factors(runner):
        record = runner.run("gemm", "uve", unroll=factor)
        if base_cycles is None:
            base_cycles = record.cycles
        rows.append((factor, int(record.cycles),
                     f"{base_cycles / record.cycles:.2f}x"))
    return ExperimentResult(
        "fig8e",
        "GEMM loop-unrolling speed-up (UVE unrolled vs not unrolled)",
        ["unroll factor", "cycles", "speed-up"],
        rows,
    )
