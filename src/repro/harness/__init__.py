"""Experiment harness: regenerates every table and figure of the paper."""
from typing import Callable, Dict

from repro.harness import extensions, fig8, overheads, sensitivity
from repro.harness.report import ExperimentResult
from repro.harness.runner import Runner, RunRecord

#: experiment id -> callable(runner) -> ExperimentResult
EXPERIMENTS: Dict[str, Callable] = {
    "table1": overheads.table1,
    "fig8-table": fig8.benchmark_table,
    "fig8a": fig8.instruction_reduction,
    "fig8b": fig8.speedup,
    "fig8c": fig8.rename_blocks,
    "fig8d": fig8.bus_utilization,
    "fig8e": fig8.unrolling,
    "fig9": sensitivity.vector_registers,
    "fig10": sensitivity.fifo_depth,
    "fig11": sensitivity.stream_cache_level,
    "overheads": overheads.storage_overheads,
    "ext-rvv": extensions.rvv_comparison,
    "ext-vl": extensions.vector_length_sweep,
    "ext-shared-fifo": extensions.shared_fifo,
}


def run_experiment(name: str, runner: Runner = None) -> ExperimentResult:
    if runner is None:
        runner = Runner()
    return EXPERIMENTS[name](runner)


__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "RunRecord",
    "Runner",
    "run_experiment",
]
