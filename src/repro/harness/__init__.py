"""Experiment harness: regenerates every table and figure of the paper."""
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.harness import extensions, fig8, overheads, sensitivity
from repro.harness.report import ExperimentResult
from repro.harness.runner import Runner, RunRecord, RunSpec


def _no_specs(runner: Runner) -> List[RunSpec]:
    return []


@dataclass(frozen=True)
class Experiment:
    """A registered experiment: the table builder plus the up-front
    declaration of every simulation it needs, so the campaign executor
    can interleave runs of different figures in one pool."""

    build: Callable[[Runner], ExperimentResult]
    specs: Callable[[Runner], List[RunSpec]] = field(default=_no_specs)

    def __call__(self, runner: Runner) -> ExperimentResult:
        return self.build(runner)


#: experiment id -> Experiment (callable(runner) -> ExperimentResult)
EXPERIMENTS: Dict[str, Experiment] = {
    "table1": Experiment(overheads.table1),
    "fig8-table": Experiment(fig8.benchmark_table),
    "fig8a": Experiment(fig8.instruction_reduction, fig8.comparison_specs),
    "fig8b": Experiment(fig8.speedup, fig8.comparison_specs),
    "fig8c": Experiment(fig8.rename_blocks, fig8.comparison_specs),
    "fig8d": Experiment(fig8.bus_utilization, fig8.comparison_specs),
    "fig8e": Experiment(fig8.unrolling, fig8.unrolling_specs),
    "fig9": Experiment(sensitivity.vector_registers,
                       sensitivity.vector_registers_specs),
    "fig10": Experiment(sensitivity.fifo_depth, sensitivity.fifo_depth_specs),
    "fig11": Experiment(sensitivity.stream_cache_level,
                        sensitivity.stream_cache_level_specs),
    "overheads": Experiment(overheads.storage_overheads),
    "ext-rvv": Experiment(extensions.rvv_comparison,
                          extensions.rvv_comparison_specs),
    "ext-vl": Experiment(extensions.vector_length_sweep,
                         extensions.vector_length_sweep_specs),
    "ext-shared-fifo": Experiment(extensions.shared_fifo,
                                  extensions.shared_fifo_specs),
}


def run_experiment(name: str, runner: Runner = None) -> ExperimentResult:
    if runner is None:
        runner = Runner()
    return EXPERIMENTS[name](runner)


__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "RunRecord",
    "RunSpec",
    "Runner",
    "run_experiment",
]
