"""Plain-text table rendering for experiment results."""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class ExperimentResult:
    """One regenerated table/figure: a title, column headers, and rows."""

    experiment: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    notes: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-serialisable form (for ``python -m repro.harness --json``)."""
        return {
            "experiment": self.experiment,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [
            f"== {self.experiment}: {self.title} ==",
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths)),
            sep,
        ]
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def geomean(values) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
