"""Structural validation of loop-nest IR.

``validate_nest`` enforces the contract every :mod:`repro.lower`
backend assumes — geometry within the ``streams.limits`` bounds,
consistent per-access shapes, a well-formed op chain, and the feature
combinations the backends define (mirroring the constraints the fuzz
generator and shrinker always respected).  Backends may *additionally*
reject nests they cannot express (e.g. the RVV backend only streamlines
1-D nests); those raise :class:`~repro.errors.LoweringError` instead.
"""
from __future__ import annotations

from repro.common.types import ElementType
from repro.errors import IRError
from repro.ir.nodes import (
    Access,
    COMPARE_OPS,
    FLOAT_OPS,
    FMA_OP,
    INT_OPS,
    MOD_BEHAVIORS,
    Nest,
    REDUCE_OPS,
    SCHEDULES,
    UNARY_OPS,
)
from repro.streams import limits


def _fail(nest: Nest, message: str) -> None:
    raise IRError(f"nest {nest.name!r}: {message}")


def _check_mods(nest: Nest, acc_name: str, mods, targets) -> None:
    for mod in mods:
        if not 1 <= mod.level <= nest.ndims - 1:
            _fail(
                nest,
                f"{acc_name} modifier bound at level {mod.level}, legal "
                f"levels are 1..{nest.ndims - 1}",
            )
        if mod.target not in targets:
            _fail(nest, f"{acc_name} modifier target {mod.target!r}")
        if mod.behavior not in MOD_BEHAVIORS:
            _fail(nest, f"{acc_name} modifier behavior {mod.behavior!r}")
        if mod.count < 1:
            _fail(nest, f"{acc_name} modifier count {mod.count} < 1")
        if mod.displacement < 0:
            _fail(
                nest,
                f"{acc_name} modifier displacement {mod.displacement} < 0 "
                "(use behavior 'sub')",
            )


def _check_access(nest: Nest, acc: Access) -> None:
    if acc.name == "c" and nest.reduce is not None:
        # A reduction's output is a single cell: only the innermost
        # offset is meaningful, so a 1-level shape is accepted.
        if len(acc.offsets) < 1 or len(acc.strides) < 1:
            _fail(nest, "reduction output needs an innermost offset/stride")
    elif len(acc.offsets) != nest.ndims or len(acc.strides) != nest.ndims:
        _fail(
            nest,
            f"access {acc.name!r} has {len(acc.offsets)} offsets / "
            f"{len(acc.strides)} strides for a {nest.ndims}-dim nest",
        )
    _check_mods(nest, f"access {acc.name!r}", acc.mods, ("offset", "stride"))
    per_stream = len(acc.mods) + len(nest.size_mods)
    if nest.indirect is not None and nest.indirect.array == acc.name:
        per_stream += 1
    if per_stream > limits.MAX_MODIFIERS:
        _fail(
            nest,
            f"access {acc.name!r} needs {per_stream} modifiers, the "
            f"descriptor limit is {limits.MAX_MODIFIERS}",
        )


def _check_ops(nest: Nest) -> None:
    binary = FLOAT_OPS if nest.is_float else INT_OPS
    for step in nest.ops:
        if step.op == FMA_OP:
            if step.rhs != "b" or not nest.has_b:
                _fail(nest, "fma step requires rhs='b' and a b input")
            if not nest.is_float:
                _fail(nest, "fma step requires a float element type")
        elif step.rhs is None:
            if step.op not in UNARY_OPS:
                _fail(nest, f"unknown unary op {step.op!r}")
            if not nest.is_float:
                _fail(nest, "unary chain steps require a float etype")
        else:
            if step.rhs not in ("b", "imm"):
                _fail(nest, f"unknown op rhs {step.rhs!r}")
            if step.op not in binary:
                _fail(
                    nest,
                    f"op {step.op!r} is not legal for {nest.etype.name}",
                )
            if step.rhs == "b" and not nest.has_b:
                _fail(nest, f"op {step.op!r} references missing input 'b'")


def validate_nest(nest: Nest) -> Nest:
    """Raise :class:`~repro.errors.IRError` unless ``nest`` satisfies
    the backend contract; returns the nest for call chaining."""
    if not nest.name:
        _fail(nest, "empty name")
    if not isinstance(nest.etype, ElementType):
        _fail(nest, f"etype must be an ElementType, got {nest.etype!r}")
    if nest.schedule not in SCHEDULES:
        _fail(nest, f"unknown schedule {nest.schedule!r}")
    if not 1 <= nest.ndims <= limits.MAX_DIMENSIONS:
        _fail(
            nest,
            f"{nest.ndims} dimensions, legal range is "
            f"1..{limits.MAX_DIMENSIONS}",
        )
    for size in nest.sizes:
        if not isinstance(size, int) or size < 1:
            _fail(nest, f"size {size!r} must be a positive int")

    names = [acc.name for acc in nest.inputs]
    if names not in (["a"], ["a", "b"]):
        _fail(nest, f"inputs must be ('a',) or ('a', 'b'), got {names}")
    if nest.output.name != "c":
        _fail(nest, f"output must be named 'c', got {nest.output.name!r}")
    for acc in nest.arrays:
        _check_access(nest, acc)
    _check_mods(nest, "shared size", nest.size_mods, ("size",))
    _check_ops(nest)

    if nest.reduce is not None and nest.reduce not in REDUCE_OPS:
        _fail(nest, f"unknown reduction {nest.reduce!r}")
    if nest.pred_cond is not None:
        if nest.pred_cond not in COMPARE_OPS:
            _fail(nest, f"unknown predicate condition {nest.pred_cond!r}")
        if not nest.has_b or nest.reduce != "add" or nest.ops:
            _fail(
                nest,
                "predication requires a b input, an add reduction, and an "
                "empty op chain",
            )
    if nest.use_mac:
        if (
            nest.reduce != "add"
            or not nest.is_float
            or not nest.has_b
            or nest.ops
            or nest.pred_cond is not None
        ):
            _fail(
                nest,
                "use_mac requires a float add-reduction of a*b with an "
                "empty op chain and no predicate",
            )
    if nest.scalar_engine and (
        nest.reduce is not None or nest.pred_cond is not None
        or nest.indirect is not None
    ):
        _fail(
            nest,
            "scalar-engine nests cannot reduce, predicate, or gather",
        )

    ind = nest.indirect
    if ind is not None:
        if nest.ndims != 2:
            _fail(nest, "indirect nests must be exactly 2-dimensional")
        if ind.array not in ("a", "c"):
            _fail(nest, f"indirect array {ind.array!r} (expected 'a' or 'c')")
        if ind.array == "c" and nest.reduce is not None:
            _fail(nest, "a reduction cannot scatter its output")
        acc = nest.array(ind.array)
        if acc.mods or any(acc.offsets):
            _fail(
                nest,
                "the indirect access takes no modifiers and zero offsets",
            )
        if ind.idx_addr < 0 or ind.idx_addr % 4:
            _fail(nest, f"index vector address {ind.idx_addr:#x} (int32)")
    if nest.reduce is None and nest.output.strides[0] < 1:
        _fail(
            nest,
            "the output's innermost stride must be >= 1 (store chunks "
            "have no intra-chunk ordering)",
        )
    return nest
