"""Loop-nest IR node types.

A :class:`Nest` is the repo's single source of truth for "one loop nest
over streamed arrays": shared geometry (``sizes``, innermost first, up
to ``streams.limits.MAX_DIMENSIONS`` levels), one or two input arrays
plus one output array with per-level affine access and static
modifiers, an optional indirect (gather/scatter) level, an element-wise
op chain, and optionally a reduction, a predicate, or scalar-engine
consumption.  It generalises the fuzzer's
:class:`~repro.fuzz.spec.CaseSpec` — the fuzz spec bridges into this IR
via :meth:`CaseSpec.to_ir` — and the per-ISA backends in
:mod:`repro.lower` turn a nest into a runnable
:class:`~repro.isa.program.Program`.

Unlike the fuzz spec (which is seed-addressed and serialisable), a nest
is *placed*: every access carries its absolute base element index, so a
backend needs nothing beyond the nest itself to emit code.
"""
from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.common.types import ElementType
from repro.streams.pattern import MemLevel

#: ops legal in element-wise chains, per type class (canonical vocab;
#: the fuzz spec layer re-exports these).
FLOAT_OPS = ("add", "sub", "mul", "min", "max")
INT_OPS = ("add", "sub", "mul", "min", "max", "and", "or", "xor")
UNARY_OPS = ("neg", "abs")
REDUCE_OPS = ("add", "min", "max")
COMPARE_OPS = ("eq", "ne", "lt", "le", "gt", "ge")

#: fused multiply-add chain step: ``run = imm * run + b``.  Kernel-only
#: (the fuzz generator never samples it); backends with a native FMA
#: lower it to one instruction, the rest decompose into mul + add.
FMA_OP = "fma"

#: modifier parameter / behaviour vocabulary (mirrors streams.descriptor).
MOD_TARGETS = ("offset", "size", "stride")
MOD_BEHAVIORS = ("add", "sub")

#: nest scheduling hints: "auto" lets a backend pick its streamlined
#: hand-kernel code shape when the nest qualifies; "nested" forces the
#: general explicit-loop-nest scaffolding (the fuzz bridge pins this so
#: fuzz programs stay byte-identical across refactors).
SCHEDULES = ("auto", "nested")


@dataclass(frozen=True)
class Mod:
    """A static descriptor modifier: bound at loop ``level`` (>= 1), it
    mutates ``target`` of the level below by ``displacement`` on each of
    the first ``count`` iterations of the bound level, and resets when
    the bound level restarts — the `{T,B,D,E}` semantics of paper §II-B."""

    level: int
    target: str  # offset | size | stride
    behavior: str  # add | sub
    displacement: int
    count: int

    @property
    def signed_displacement(self) -> int:
        return -self.displacement if self.behavior == "sub" else self.displacement


@dataclass(frozen=True)
class Access:
    """One array's placed view of the shared nest.

    ``base`` is the array's absolute base element index (byte address
    divided by the element width); ``offsets``/``strides`` are per-level
    in element units, innermost first, and must match the nest's
    dimensionality."""

    name: str  # "a" | "b" | "c"
    base: int
    offsets: Tuple[int, ...]
    strides: Tuple[int, ...]
    mods: Tuple[Mod, ...] = ()


@dataclass(frozen=True)
class Indirect:
    """Gather/scatter level: the named array's rows are addressed
    through an int32 index vector at byte address ``idx_addr`` (one
    index per iteration of level 1, SET_ADD semantics)."""

    array: str  # which array is indirect: "a" (gather) | "c" (scatter)
    idx_addr: int


@dataclass(frozen=True)
class Op:
    """One step of the element-wise chain.  The running value starts as
    ``a[i]``; each step combines it with ``rhs`` ("b", "imm", or None
    for unary ops) under ``op``.  The :data:`FMA_OP` step uses both:
    ``rhs="b"`` with ``imm`` as the coefficient."""

    op: str
    rhs: Optional[str] = None  # "b" | "imm" | None (unary)
    imm: float = 0.0


@dataclass(frozen=True)
class Nest:
    """A complete loop nest.  ``sizes`` is innermost-first and shared by
    every access; ``size_mods`` mutate the shared sizes (triangular
    iteration), per-array offset/stride modifiers live on the accesses."""

    name: str
    etype: ElementType
    sizes: Tuple[int, ...]
    inputs: Tuple[Access, ...]
    output: Access
    ops: Tuple[Op, ...] = ()
    size_mods: Tuple[Mod, ...] = ()
    reduce: Optional[str] = None
    pred_cond: Optional[str] = None
    use_mac: bool = False
    #: element-granular stream consumption (UVE ``so.sc.*`` engine).
    scalar_engine: bool = False
    indirect: Optional[Indirect] = None
    mem_level: MemLevel = MemLevel.L2
    schedule: str = "auto"

    # -- derived ------------------------------------------------------------

    @property
    def ndims(self) -> int:
        return len(self.sizes)

    @property
    def is_float(self) -> bool:
        return self.etype in (ElementType.F32, ElementType.F64)

    @property
    def arrays(self) -> Tuple[Access, ...]:
        return self.inputs + (self.output,)

    @property
    def has_b(self) -> bool:
        return any(acc.name == "b" for acc in self.inputs)

    def array(self, name: str) -> Access:
        for acc in self.arrays:
            if acc.name == name:
                return acc
        raise KeyError(name)

    def mods_for(self, acc: Access, level: int) -> Tuple[Mod, ...]:
        """Modifiers affecting ``acc`` bound at ``level``: the shared
        size modifiers plus the access's own offset/stride modifiers."""
        shared = tuple(m for m in self.size_mods if m.level == level)
        own = tuple(m for m in acc.mods if m.level == level)
        return shared + own

    def with_(self, **kwargs) -> "Nest":
        return replace(self, **kwargs)


def loop1d(
    name: str,
    ins,
    out: int,
    n: int,
    *,
    ops: Tuple[Op, ...] = (),
    etype: ElementType = ElementType.F32,
    reduce: Optional[str] = None,
    use_mac: bool = False,
    mem_level: MemLevel = MemLevel.L2,
) -> Nest:
    """A unit-stride 1-D nest over byte-addressed arrays — the ~5-line
    way to declare a streaming kernel (memcpy/STREAM/saxpy/dot shapes).

    ``ins`` is a list of input byte addresses (one becomes array "a",
    two become "a" and "b"); ``out`` is the output byte address (array
    "c" — a single accumulator cell when ``reduce`` is set).
    """
    width = etype.width
    if len(ins) not in (1, 2):
        raise ValueError(f"loop1d takes one or two inputs, got {len(ins)}")
    for addr in tuple(ins) + (out,):
        if addr % width:
            raise ValueError(
                f"address {addr:#x} is not {width}-byte aligned for {etype}"
            )
    roles = ("a", "b")
    inputs = tuple(
        Access(roles[i], addr // width, (0,), (1,))
        for i, addr in enumerate(ins)
    )
    return Nest(
        name=name,
        etype=etype,
        sizes=(n,),
        inputs=inputs,
        output=Access("c", out // width, (0,), (1,)),
        ops=tuple(ops),
        reduce=reduce,
        use_mac=use_mac,
        mem_level=mem_level,
    )
