"""Loop-nest intermediate representation.

One validated description of a streamed loop nest
(:class:`~repro.ir.nodes.Nest`), lowered to every ISA by the pluggable
backends in :mod:`repro.lower`.  See ``docs/IR.md`` for the node
reference and the backend contract.
"""
from repro.ir.nodes import (
    Access,
    COMPARE_OPS,
    FLOAT_OPS,
    FMA_OP,
    INT_OPS,
    Indirect,
    MOD_BEHAVIORS,
    MOD_TARGETS,
    Mod,
    Nest,
    Op,
    REDUCE_OPS,
    SCHEDULES,
    UNARY_OPS,
    loop1d,
)
from repro.ir.validate import validate_nest

__all__ = [
    "Access",
    "COMPARE_OPS",
    "FLOAT_OPS",
    "FMA_OP",
    "INT_OPS",
    "Indirect",
    "MOD_BEHAVIORS",
    "MOD_TARGETS",
    "Mod",
    "Nest",
    "Op",
    "REDUCE_OPS",
    "SCHEDULES",
    "UNARY_OPS",
    "loop1d",
    "validate_nest",
]
