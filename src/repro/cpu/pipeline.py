"""Out-of-order core timing model (paper §IV, Table I).

A cycle-driven pipeline consuming the functional simulator's dynamic
trace: fetch (4-wide, gshare-predicted branches; a misprediction stalls
fetch until the branch resolves plus the front-end redirect depth),
rename/dispatch (RAT producers, physical-register/ROB/IQ/LQ/SQ structural
limits — stalls here are the paper's Fig. 8.C metric), per-cluster
24-entry schedulers, issue (2 int ALUs, 2 FP/vector units, 2 load + 1
store ports, 8-wide total), execution latencies per op class, memory
through the cache hierarchy, and 4-wide in-order commit.

Streaming instructions interact with the
:class:`~repro.engine.engine.StreamingEngine`: configurations register at
rename through the SCROB; stream-consuming ops wait for their FIFO entry
instead of a register producer and release it at commit; stream-producing
ops reserve Store FIFO entries at rename (stalling when full) and drain
to the L1 after commit.
"""
from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from repro.cpu.branch_pred import GsharePredictor
from repro.cpu.config import MachineConfig
from repro.cpu.stats import PipelineStats
from repro.engine.engine import StreamingEngine
from repro.errors import ConfigError
from repro.isa.microop import FuCluster, OpClass
from repro.isa.registers import RegClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.trace import DynOp, StreamTraceInfo

_BANK_OF = {RegClass.X: "int", RegClass.F: "fp", RegClass.V: "vec"}

#: op classes whose accumulator operand benefits from MAC->MAC forwarding
_MAC_CLASSES = (OpClass.VEC_MAC, OpClass.FP_MAC)

#: per-opclass (cluster, is_load, is_store, is_stream_co): one dict hit in
#: _Op.__init__ instead of three enum property calls per dynamic op
_OPCLASS_META = {
    oc: (
        oc.cluster,
        oc.is_load,
        oc.is_store,
        oc in (OpClass.STREAM_CFG, OpClass.STREAM_CTL),
    )
    for oc in OpClass
}


class _Op:
    """In-flight instruction state."""

    __slots__ = (
        "dyn",
        "cluster",
        "producers",
        "stream_waits",
        "store_streams",
        "complete",
        "early_complete",
        "issued",
        "is_load",
        "is_store",
        "is_stream_co",
        "needs_sched",
        "needed_banks",
        "sched",
        "wake_at",
        "mem_lines",
        "allocs",
        "mispredicted",
    )

    def __init__(self, dyn: DynOp) -> None:
        self.dyn = dyn
        cluster, is_load, is_store, is_stream_co = _OPCLASS_META[dyn.opclass]
        self.cluster = cluster
        #: (producer, wants_early) pairs; pruned as they are satisfied
        self.producers: List = []
        self.stream_waits = ()
        self.store_streams = ()
        self.complete: Optional[float] = None
        self.early_complete: Optional[float] = None
        self.issued = False
        self.is_load = is_load
        self.is_store = is_store
        self.is_stream_co = is_stream_co
        self.needs_sched = cluster is not FuCluster.NONE and not is_stream_co
        #: ((bank, count), ...) of physical registers this op allocates —
        #: reused across repeated structural-block checks while stalled
        if is_stream_co:
            self.needed_banks = ()
        else:
            needed: Dict[str, int] = {}
            for dest in dyn.dests:
                bank = _BANK_OF.get(dest.cls)
                if bank is not None:
                    needed[bank] = needed.get(bank, 0) + 1
            self.needed_banks = tuple(needed.items())
        #: scheduler queue this op dispatches to (bound lazily)
        self.sched: Optional[List["_Op"]] = None
        #: cycle before which _ready is known to return False (exact; 0.0
        #: when some blocking condition has no known completion time yet)
        self.wake_at = 0.0
        self.mem_lines: List[int] = []
        self.allocs: Dict[str, int] = {}
        self.mispredicted = False


class Pipeline:
    """The timing model; one instance per simulation run."""

    def __init__(
        self,
        config: MachineConfig,
        hierarchy: Optional[MemoryHierarchy] = None,
        stream_infos: Optional[Dict[int, StreamTraceInfo]] = None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy or MemoryHierarchy(config)
        self.stream_infos = stream_infos or {}
        self.engine = (
            StreamingEngine(config.engine, self.hierarchy)
            if config.streaming
            else None
        )
        if not config.streaming and stream_infos:
            raise ConfigError(
                "trace contains stream operations but the machine has no "
                "Streaming Engine (streaming=False)"
            )
        self.predictor = GsharePredictor()
        self.stats = PipelineStats()
        core = config.core
        self._latency = config.latencies
        self._mac_forwarding = core.mac_forwarding
        # Hot-path scalars hoisted out of the config dataclasses (every
        # per-cycle stage reads several of these).
        self._fetch_width = core.fetch_width
        self._commit_width = core.commit_width
        self._issue_width = core.issue_width
        self._decode_queue = core.decode_queue
        self._frontend_depth = core.frontend_depth
        self._rob_entries = core.rob_entries
        self._iq_entries = core.iq_entries
        self._lq_entries = core.lq_entries
        self._sq_entries = core.sq_entries
        self._scheduler_entries = core.scheduler_entries
        self._core_load_ports = core.load_ports
        self._core_store_ports = core.store_ports
        #: rename short-circuit while blocked on a full stream Store FIFO:
        #: (decode-head op, blocking stream).  While rename is stalled no
        #: structure fills up (ROB/IQ/LQ/SQ/registers only drain), so the
        #: recorded cause stays correct until the blocking stream's
        #: ``store_drained`` counter advances — re-checked live each cycle.
        self._rename_block = None
        # Structural resources (counters).
        self._rob = 0
        self._iq = 0
        self._lq = 0
        self._sq = 0
        self._free = {
            "int": core.int_phys_regs - 32,
            "fp": core.fp_phys_regs - 32,
            "vec": core.vec_phys_regs - 32,
        }
        # Pipeline structures.
        self._decode: Deque[_Op] = deque()
        self._rob_q: Deque[_Op] = deque()
        self._sched: Dict[FuCluster, List[_Op]] = {
            FuCluster.INT: [],
            FuCluster.FP: [],
            FuCluster.MEM: [],
        }
        #: issue order with per-cluster port counts, binding the queue
        #: lists directly (they are compacted in place, never rebound) so
        #: the per-cycle issue loop does no enum-keyed dict lookups
        self._issue_plan = (
            (self._sched[FuCluster.MEM], True, core.load_ports + core.store_ports),
            (self._sched[FuCluster.FP], False, core.fp_units),
            (self._sched[FuCluster.INT], False, core.int_alus),
        )
        self._rat: Dict[object, _Op] = {}
        #: line -> in-flight (renamed, not yet drained) store ops, oldest
        #: first; loads must wait for every older store to the same line
        self._store_by_line: Dict[int, List[_Op]] = {}
        #: committed demand stores awaiting L1 acceptance (SQ drains here)
        self._post_stores: Deque = deque()
        self._block_branch: Optional[_Op] = None
        self._resume_fetch_at = 0.0
        self._trace_done = False
        #: Stream Alias Table at commit: architectural stream register ->
        #: uid of the latest *committed* configuration.  ``stream.stop``
        #: terminates only the stream its register currently aliases, not
        #: later reconfigurations that reuse the register.
        self._stream_alias: Dict[int, int] = {}
        #: cycles elided by the event-horizon fast path (diagnostic; not
        #: part of PipelineStats, which must be identical with it off)
        self.ff_skipped_cycles = 0
        #: optional callable(event, dyn_op, cycle) receiving "rename",
        #: "issue", and "commit" events (used by repro.sim.debug)
        self.observer = None

    # ------------------------------------------------------------------ run --

    def run(self, trace: Iterable[DynOp]) -> PipelineStats:
        trace_iter = iter(trace)
        cycle = 0.0
        line_bytes = self.hierarchy.line_bytes
        fast_forward = self.config.fast_forward
        batching = self.config.event_batching
        stats = self.stats
        engine = self.engine
        engine_tick = engine.tick if engine is not None else None
        rob_q = self._rob_q
        decode = self._decode
        commit = self._commit
        issue = self._issue
        rename = self._rename
        fetch = self._fetch
        guard = 0
        while True:
            # Every stage reports whether it changed any machine state
            # this cycle; a fully quiescent cycle is eligible for the
            # event-horizon fast path below.  With event batching on,
            # stages whose inputs are empty (or provably blocked: a ROB
            # head that has not completed, an issue queue with nothing
            # in it) are skipped outright — each skip is a pure
            # short-circuit of a call that would have reported "no
            # progress" (see docs/TIMING.md).
            progress = False
            if engine_tick is not None:
                progress = engine_tick(cycle)
            if self._post_stores and self._drain_post_stores(cycle):
                progress = True
            if rob_q:
                if batching:
                    # _commit's own head gate, checked without the call:
                    # only a completed head (by cycle-1) can commit.
                    head_t = rob_q[0].complete
                    runnable = head_t is not None and head_t <= cycle - 1
                else:
                    runnable = True
                if runnable:
                    committed_before = stats.committed
                    commit(cycle)
                    if stats.committed != committed_before:
                        progress = True
            if (not batching or self._iq) and issue(cycle):
                progress = True
            fetch_stalls_before = stats.fetch_stall_cycles
            if batching and not decode:
                renamed, block_cause = 0, None
            else:
                renamed, block_cause = rename(cycle)
            if renamed:
                progress = True
            if fetch(cycle, trace_iter, line_bytes):
                progress = True
            if self._trace_done and not rob_q and not decode:
                if not (
                    self._post_stores
                    or (engine is not None and engine.stores_pending)
                ):
                    break
            if fast_forward and not progress:
                skipped = int(self._event_horizon(cycle) - cycle) - 1
                if skipped > 0:
                    # Nothing can change before the horizon, so every
                    # skipped cycle would have repeated this cycle's
                    # stall accounting exactly — back-fill it.
                    if stats.fetch_stall_cycles != fetch_stalls_before:
                        stats.fetch_stall_cycles += skipped
                    if block_cause is not None:
                        stats.rename_block_cycles += skipped
                        stats.rename_block_causes[block_cause] += skipped
                    if engine is not None:
                        engine.skip_idle(skipped)
                    self.ff_skipped_cycles += skipped
                    cycle += skipped
            cycle += 1
            guard += 1
            if guard > 200_000_000:
                raise ConfigError("timing simulation exceeded cycle guard")
        end = cycle
        if self.engine is not None:
            end = max(end, self.engine.last_drain_cycle)
        self.stats.cycles = max(end, 1.0)
        self.stats.bus_utilization = self.hierarchy.bus_utilization(
            self.stats.cycles
        )
        self.stats.branch_mispredicts = self.predictor.mispredictions
        self.stats.branches = self.predictor.predictions
        return self.stats

    # ----------------------------------------------------- event horizon --

    def _event_horizon(self, now: float) -> float:
        """Earliest future cycle at which any pipeline state can change.

        Only called on cycles where no stage made progress.  Every
        blocking condition in the model unblocks when simulated time
        crosses some already-known completion time, so the machine state
        is provably frozen until the minimum of those horizons:

        * the ROB head's completion (the only completion that can
          unblock the in-order commit stage) at ``t + 1``;
        * scheduler residents' wake-up times, read off the exact state
          ``_ready`` consults: unsatisfied producer links (with the MAC
          forwarding bonus already folded in), and older same-line
          stores blocking a load;
        * a blocked branch's resolution plus the front-end redirect;
        * ``_resume_fetch_at``;
        * Streaming Engine state: SCROB free time, module dimension-
          switch busy times, stream start cycles, and load-FIFO
          ``chunk_ready`` times (these cover stream_waits);
        * posted stores: the engine store queue's head ready time and
          the L1's next-MSHR-free (``can_accept``) horizon.

        Non-head, non-scheduler completions need no event: in-order
        commit means nothing observes them until the head commits, and
        that is itself a simulated (progress) cycle.  Returning a
        too-early cycle is always safe (the resumed cycle simply makes
        no progress and skips again); returning a too-late cycle never
        happens because each collected horizon is exactly the first
        cycle its condition can flip.
        """
        inf = math.inf
        ceil = math.ceil
        best = inf
        blocker = self._block_branch
        if blocker is not None and blocker.complete is not None:
            c = ceil(blocker.complete + self.config.core.frontend_depth)
            if now < c < best:
                best = c
        if self._resume_fetch_at > now:
            c = ceil(self._resume_fetch_at)
            if now < c < best:
                best = c
        if self._rob_q:
            t = self._rob_q[0].complete
            if t is not None:
                c = ceil(t) + 1
                if now < c < best:
                    best = c
        store_by_line = self._store_by_line
        for queue in self._sched.values():
            for op in queue:
                for producer, early, bonus in op.producers:
                    t = producer.early_complete if early else producer.complete
                    if t is None:
                        continue  # wakes via the producer's own events
                    c = ceil(t - bonus)
                    if now < c < best:
                        best = c
                if op.is_load and op.mem_lines:
                    seq = op.dyn.seq
                    for line in op.mem_lines:
                        for store in store_by_line.get(line, ()):
                            if store.dyn.seq >= seq:
                                break
                            t = store.complete
                            if t is not None:
                                c = ceil(t)
                                if now < c < best:
                                    best = c
        engine = self.engine
        if engine is not None:
            c = ceil(engine._scrob_free_at) + 1
            if now < c < best:
                best = c
            for busy in engine._module_busy:
                c = ceil(busy)
                if now < c < best:
                    best = c
            for stream in engine.streams.values():
                if stream.start_cycle > now:
                    c = ceil(stream.start_cycle)
                    if now < c < best:
                        best = c
                for t in stream.chunk_ready.values():
                    c = ceil(t)
                    if now < c < best:
                        best = c
            if engine._store_queue:
                c = ceil(engine._store_queue[0][0])
                if now < c < best:
                    best = c
        if self._post_stores or (engine is not None and engine.stores_pending):
            t = self.hierarchy.l1_accept_horizon(now)
            if t != inf:
                c = ceil(t)
                if now < c < best:
                    best = c
        if best == inf:
            return now + 1.0  # no known event: tick normally (guarded)
        return float(best)

    # ---------------------------------------------------------------- fetch --

    def _fetch(self, now: float, trace_iter, line_bytes: int) -> bool:
        """Returns True when any front-end state changed this cycle."""
        if self._trace_done:
            return False
        progress = False
        blocker = self._block_branch
        if blocker is not None:
            if blocker.complete is None:
                self.stats.fetch_stall_cycles += 1
                return False
            resume = blocker.complete + self._frontend_depth
            if now < resume:
                self.stats.fetch_stall_cycles += 1
                return False
            self._block_branch = None
            progress = True
        if now < self._resume_fetch_at:
            self.stats.fetch_stall_cycles += 1
            return progress
        width = self._fetch_width
        room = self._decode_queue - len(self._decode)
        if room <= 0:
            # A full decode queue stalls fetch exactly like a blocked
            # branch does; count it so decode-bound kernels show up in
            # the stall breakdown instead of losing these cycles.
            self.stats.fetch_stall_cycles += 1
            return progress
        for _ in range(min(width, room)):
            try:
                dyn = next(trace_iter)
            except StopIteration:
                self._trace_done = True
                return True
            op = _Op(dyn)
            self.stats.fetched += 1
            self._decode.append(op)
            progress = True
            if dyn.is_branch:
                wrong = self.predictor.record_outcome(dyn.pc, dyn.taken)
                if wrong:
                    op.mispredicted = True
                    self._block_branch = op
                    return True
                if dyn.taken:
                    return True  # taken branch ends the fetch group
        return progress

    # --------------------------------------------------------------- rename --

    def _rename(self, now: float) -> "tuple[int, Optional[str]]":
        """Returns (ops renamed, block cause counted this cycle or None)."""
        engine = self.engine
        # Store-FIFO stall short-circuit: while the decode head is parked
        # on a full Store FIFO, every structural check it passed keeps
        # passing (resources only drain during the stall), so the only
        # condition worth re-evaluating is the blocking stream's live
        # FIFO occupancy.
        memo = self._rename_block
        if memo is not None:
            op, stream, fifo_depth = memo
            if self._decode and self._decode[0] is op:
                if stream.store_reserved - stream.store_drained >= fifo_depth:
                    self.stats.block("store_fifo")
                    return 0, "store_fifo"
            self._rename_block = None
        renamed = 0
        fetch_width = self._fetch_width
        while self._decode and renamed < fetch_width:
            op = self._decode[0]
            dyn = op.dyn
            cause = self._structural_block(op)
            if cause is not None:
                self.stats.block(cause)
                return renamed, cause
            # Stream store-FIFO reservation (may stall rename).
            if dyn.stream_writes and engine is not None:
                fifo_depth = engine.config.fifo_depth
                for (_, uid, __, last) in dyn.stream_writes:
                    if last:
                        stream = engine.streams[uid]
                        if (
                            stream.store_reserved - stream.store_drained
                            >= fifo_depth
                        ):
                            self.stats.block("store_fifo")
                            self._rename_block = (op, stream, fifo_depth)
                            return renamed, "store_fifo"
            self._decode.popleft()
            renamed += 1
            self._rob += 1
            self._rob_q.append(op)
            if self.observer is not None:
                self.observer("rename", dyn, now)
            # Resource allocation.  Stream config/control name streams via
            # the Stream Alias Table, not physical vector registers; data
            # written to an output stream lives in its reserved Store FIFO
            # entry rather than a vector PR (§IV-A Stream Iteration).
            if not op.is_stream_co:
                write_regs = (
                    {ev[0] for ev in dyn.stream_writes}
                    if dyn.stream_writes
                    else ()
                )
                for dest in dyn.dests:
                    if dest.cls is RegClass.V and dest.index in write_regs:
                        continue
                    bank = _BANK_OF.get(dest.cls)
                    if bank is not None:
                        self._free[bank] -= 1
                        op.allocs[bank] = op.allocs.get(bank, 0) + 1
            if op.is_load:
                self._lq += 1
            if op.is_store:
                self._sq += 1
            # Register dependences via the RAT (stream-read registers are
            # satisfied by the FIFO, not by a producer).
            stream_regs = (
                {ev[0] for ev in dyn.stream_reads} if dyn.stream_reads else ()
            )
            is_mac = (
                self._mac_forwarding and dyn.opclass in _MAC_CLASSES
            )
            for src in dyn.srcs:
                if src.cls is RegClass.V and src.index in stream_regs:
                    continue
                producer = self._rat.get(src)
                if producer is not None:
                    # Cortex-A76-style accumulator forwarding: a MAC
                    # feeding the accumulator of the next MAC is consumed
                    # two cycles early (back-to-back FMLA chains).
                    bonus = (
                        2.0
                        if is_mac
                        and producer.dyn.opclass in _MAC_CLASSES
                        and producer.dyn.dests
                        and src == producer.dyn.dests[0]
                        and dyn.dests
                        and src == dyn.dests[0]
                        else 0.0
                    )
                    op.producers.append(
                        (producer, src in producer.dyn.early_dests, bonus)
                    )
            for dest in dyn.dests:
                self._rat[dest] = op
            # Stream interactions.
            if engine is not None:
                if dyn.cfg_uid is not None:
                    info = self.stream_infos[dyn.cfg_uid]
                    start = engine.configure(info, now)
                    op.complete = start
                    op.early_complete = start
                elif op.is_stream_co:
                    op.complete = now + 1
                    op.early_complete = now + 1
                if dyn.stream_reads:
                    op.stream_waits = dyn.stream_reads
                    for (_, uid, chunk, __) in dyn.stream_reads:
                        engine.rename_read(uid, chunk)
                if dyn.stream_writes:
                    op.store_streams = dyn.stream_writes
                    for (_, uid, __, last) in dyn.stream_writes:
                        if last:
                            engine.reserve_store(uid)
            elif op.is_stream_co:
                op.complete = now + 1
                op.early_complete = now + 1
            # Dispatch.
            if op.complete is not None:
                continue  # completes outside the execution clusters
            if op.cluster is FuCluster.NONE:
                op.complete = now + 1
                op.early_complete = now + 1
                continue
            if op.is_store:
                for addr in dyn.mem_writes or ():
                    line = addr // self.hierarchy.line_bytes
                    if not op.mem_lines or op.mem_lines[-1] != line:
                        op.mem_lines.append(line)
                for line in op.mem_lines:
                    self._store_by_line.setdefault(line, []).append(op)
            elif op.is_load:
                seen = []
                for addr in dyn.mem_reads or ():
                    line = addr // self.hierarchy.line_bytes
                    if line not in seen:
                        seen.append(line)
                op.mem_lines = seen
            self._iq += 1
            op.sched.append(op)  # bound by _structural_block this cycle
        return renamed, None

    def _structural_block(self, op: _Op) -> Optional[str]:
        if self._rob >= self._rob_entries:
            return "rob"
        if op.needs_sched:
            if self._iq >= self._iq_entries:
                return "iq"
            queue = op.sched
            if queue is None:
                queue = op.sched = self._sched[op.cluster]
            if len(queue) >= self._scheduler_entries:
                return "scheduler"
        if op.is_load and self._lq >= self._lq_entries:
            return "lq"
        if op.is_store and self._sq >= self._sq_entries:
            return "sq"
        free = self._free
        for bank, count in op.needed_banks:
            if free[bank] < count:
                return f"{bank}_regs"
        return None

    # ---------------------------------------------------------------- issue --

    def _ready(self, op: _Op, now: float) -> bool:
        """Is the op's every input available?  On failure, memoises the
        exact earliest cycle it could become ready in ``op.wake_at`` (0
        when some blocking condition has no known time yet), so the issue
        loop skips re-evaluating it until then.  Completion times never
        move later once set, which is what makes the memo exact."""
        wake = 0.0
        known = True
        producers = op.producers
        if producers:
            remaining = []
            for entry in producers:
                producer, early, bonus = entry
                t = producer.early_complete if early else producer.complete
                if t is None:
                    remaining.append(entry)
                    known = False
                elif t - bonus > now:
                    remaining.append(entry)
                    if t - bonus > wake:
                        wake = t - bonus
            op.producers = remaining
            if remaining:
                op.wake_at = wake if known else 0.0
                return False
        if op.stream_waits:
            engine = self.engine
            blocked = False
            for (_, uid, chunk, __) in op.stream_waits:
                t = engine.chunk_ready(uid, chunk)
                if t > now:
                    blocked = True
                    if t == math.inf:
                        known = False
                    elif t > wake:
                        wake = t
            if blocked:
                op.wake_at = wake if known else 0.0
                return False
        if op.is_load:
            seq = op.dyn.seq
            blocked = False
            for line in op.mem_lines:
                for store in self._store_by_line.get(line, ()):
                    if store.dyn.seq >= seq:
                        break  # stores are appended in rename (seq) order
                    t = store.complete
                    if t is None:
                        blocked = True
                        known = False
                    elif t > now:
                        blocked = True
                        if t > wake:
                            wake = t
            if blocked:
                op.wake_at = wake if known else 0.0
                return False
        return True

    def _issue(self, now: float) -> int:
        """Issues ready ops; returns how many issued this cycle."""
        core = self.config.core
        budget = core.issue_width
        store_ports = core.store_ports
        load_ports = core.load_ports
        total = 0
        for queue, is_mem, cluster_ports in self._issue_plan:
            if not queue:
                continue
            issued = 0
            loads = stores = 0
            for op in queue:
                if budget <= 0 or issued >= cluster_ports:
                    break
                if is_mem:
                    if op.is_load and loads >= load_ports:
                        continue
                    if op.is_store and stores >= store_ports:
                        continue
                if op.wake_at > now or not self._ready(op, now):
                    continue
                self._execute(op, now)
                issued += 1
                budget -= 1
                if op.is_load:
                    loads += 1
                elif op.is_store:
                    stores += 1
            if issued:
                # In-place compaction on the `issued` flag set by
                # _execute (the old `op not in issued` rebuild rescanned
                # the whole scheduler per issued op).
                queue[:] = [op for op in queue if not op.issued]
                self._iq -= issued
                total += issued
        return total

    def _execute(self, op: _Op, now: float) -> None:
        dyn = op.dyn
        op.issued = True
        op.early_complete = now + 1
        if self.observer is not None:
            self.observer("issue", dyn, now)
        if op.is_load:
            self.stats.loads_issued += 1
            completion = now + 1
            for line in op.mem_lines:
                done = self.hierarchy.demand_access(
                    line * self.hierarchy.line_bytes, now + 1, False, pc=dyn.pc
                )
                if done > completion:
                    completion = done
            op.complete = completion
        elif op.is_store:
            self.stats.stores_issued += 1
            op.complete = now + 1  # address generation; data written at commit
        else:
            op.complete = now + self._latency[dyn.opclass]

    def _drain_post_stores(self, now: float) -> bool:
        """Write committed stores to the L1, bounded by the store ports
        and by L1 MSHR availability (backpressure under saturation).
        Returns True when any store line drained or SQ entry freed."""
        drained = False
        l1 = self.hierarchy.l1d
        for _ in range(self.config.core.store_ports):
            if not self._post_stores:
                return drained
            if not l1.can_accept(now):
                return drained
            drained = True
            op, lines = self._post_stores[0]
            if lines:
                line = lines.pop(0)
                self.hierarchy.demand_access(
                    line * self.hierarchy.line_bytes, now, True, pc=op.dyn.pc
                )
                waiting = self._store_by_line.get(line)
                if waiting and waiting[0] is op:
                    waiting.pop(0)
                    if not waiting:
                        del self._store_by_line[line]
            if not lines:
                self._post_stores.popleft()
                self._sq -= 1
        return drained

    # --------------------------------------------------------------- commit --

    def _commit(self, now: float) -> None:
        engine = self.engine
        width = self.config.core.commit_width
        for _ in range(width):
            if not self._rob_q:
                return
            op = self._rob_q[0]
            if op.complete is None or op.complete > now - 1:
                return
            self._rob_q.popleft()
            self._rob -= 1
            self.stats.committed += 1
            dyn = op.dyn
            if self.observer is not None:
                self.observer("commit", dyn, now)
            for bank, count in op.allocs.items():
                self._free[bank] += count
            if op.is_load:
                self._lq -= 1
            if op.is_store:
                # The store drains to the L1 after commit; its SQ entry is
                # freed once the L1 accepts it (flow control).
                self._post_stores.append((op, list(op.mem_lines)))
            for dest in dyn.dests:
                if self._rat.get(dest) is op:
                    del self._rat[dest]
            if engine is not None:
                if dyn.cfg_uid is not None:
                    # The register now (architecturally) aliases this
                    # configuration; commit order is program order, so
                    # this is exactly the "latest config with sequence
                    # <= any later stop" mapping.
                    self._stream_alias[
                        self.stream_infos[dyn.cfg_uid].reg
                    ] = dyn.cfg_uid
                if op.stream_waits:
                    for (_, uid, chunk, last) in op.stream_waits:
                        if last:
                            engine.commit_read(uid, chunk)
                if op.store_streams:
                    for (_, uid, chunk, last) in op.store_streams:
                        if last:
                            engine.commit_write(uid, chunk, now)
                if dyn.opclass is OpClass.STREAM_CTL and dyn.inst is not None:
                    kind = getattr(dyn.inst, "kind", None)
                    if kind == "stop":
                        # Terminate only the stream the register aliases
                        # at this point in program order — never streams
                        # configured later that reuse the register.
                        uid = self._stream_alias.pop(dyn.inst.u.index, None)
                        if uid is not None:
                            engine.terminate(uid)
