"""Out-of-order core timing model (paper §IV, Table I).

A cycle-driven pipeline consuming the functional simulator's dynamic
trace: fetch (4-wide, gshare-predicted branches; a misprediction stalls
fetch until the branch resolves plus the front-end redirect depth),
rename/dispatch (RAT producers, physical-register/ROB/IQ/LQ/SQ structural
limits — stalls here are the paper's Fig. 8.C metric), per-cluster
24-entry schedulers, issue (2 int ALUs, 2 FP/vector units, 2 load + 1
store ports, 8-wide total), execution latencies per op class, memory
through the cache hierarchy, and 4-wide in-order commit.

Streaming instructions interact with the
:class:`~repro.engine.engine.StreamingEngine`: configurations register at
rename through the SCROB; stream-consuming ops wait for their FIFO entry
instead of a register producer and release it at commit; stream-producing
ops reserve Store FIFO entries at rename (stalling when full) and drain
to the L1 after commit.
"""
from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from repro.cpu.branch_pred import GsharePredictor
from repro.cpu.config import MachineConfig
from repro.cpu.stats import PipelineStats
from repro.engine.engine import StreamingEngine
from repro.errors import ConfigError
from repro.isa.microop import FuCluster, OpClass
from repro.isa.registers import RegClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.trace import DynOp, StreamTraceInfo

_BANK_OF = {RegClass.X: "int", RegClass.F: "fp", RegClass.V: "vec"}

#: op classes whose accumulator operand benefits from MAC->MAC forwarding
_MAC_CLASSES = (OpClass.VEC_MAC, OpClass.FP_MAC)


class _Op:
    """In-flight instruction state."""

    __slots__ = (
        "dyn",
        "cluster",
        "producers",
        "stream_waits",
        "store_streams",
        "complete",
        "early_complete",
        "issued",
        "is_load",
        "is_store",
        "mem_lines",
        "allocs",
        "mispredicted",
    )

    def __init__(self, dyn: DynOp) -> None:
        self.dyn = dyn
        self.cluster = dyn.opclass.cluster
        #: (producer, wants_early) pairs; pruned as they are satisfied
        self.producers: List = []
        self.stream_waits = ()
        self.store_streams = ()
        self.complete: Optional[float] = None
        self.early_complete: Optional[float] = None
        self.issued = False
        self.is_load = dyn.opclass.is_load
        self.is_store = dyn.opclass.is_store
        self.mem_lines: List[int] = []
        self.allocs: Dict[str, int] = {}
        self.mispredicted = False


class Pipeline:
    """The timing model; one instance per simulation run."""

    def __init__(
        self,
        config: MachineConfig,
        hierarchy: Optional[MemoryHierarchy] = None,
        stream_infos: Optional[Dict[int, StreamTraceInfo]] = None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy or MemoryHierarchy(config)
        self.stream_infos = stream_infos or {}
        self.engine = (
            StreamingEngine(config.engine, self.hierarchy)
            if config.streaming
            else None
        )
        if not config.streaming and stream_infos:
            raise ConfigError(
                "trace contains stream operations but the machine has no "
                "Streaming Engine (streaming=False)"
            )
        self.predictor = GsharePredictor()
        self.stats = PipelineStats()
        core = config.core
        self._latency = config.latencies
        self._mac_forwarding = core.mac_forwarding
        # Structural resources (counters).
        self._rob = 0
        self._iq = 0
        self._lq = 0
        self._sq = 0
        self._free = {
            "int": core.int_phys_regs - 32,
            "fp": core.fp_phys_regs - 32,
            "vec": core.vec_phys_regs - 32,
        }
        # Pipeline structures.
        self._decode: Deque[_Op] = deque()
        self._rob_q: Deque[_Op] = deque()
        self._sched: Dict[FuCluster, List[_Op]] = {
            FuCluster.INT: [],
            FuCluster.FP: [],
            FuCluster.MEM: [],
        }
        self._rat: Dict[object, _Op] = {}
        #: line -> in-flight (renamed, not yet drained) store ops, oldest
        #: first; loads must wait for every older store to the same line
        self._store_by_line: Dict[int, List[_Op]] = {}
        #: committed demand stores awaiting L1 acceptance (SQ drains here)
        self._post_stores: Deque = deque()
        self._block_branch: Optional[_Op] = None
        self._resume_fetch_at = 0.0
        self._trace_done = False
        #: optional callable(event, dyn_op, cycle) receiving "rename",
        #: "issue", and "commit" events (used by repro.sim.debug)
        self.observer = None

    # ------------------------------------------------------------------ run --

    def run(self, trace: Iterable[DynOp]) -> PipelineStats:
        trace_iter = iter(trace)
        cycle = 0.0
        line_bytes = self.hierarchy.line_bytes
        guard = 0
        while True:
            if self.engine is not None:
                self.engine.tick(cycle)
            self._drain_post_stores(cycle)
            self._commit(cycle)
            self._issue(cycle)
            self._rename(cycle)
            self._fetch(cycle, trace_iter, line_bytes)
            if self._trace_done and not self._rob_q and not self._decode:
                if self._post_stores or (
                    self.engine is not None and self.engine.stores_pending
                ):
                    cycle += 1
                    continue
                break
            cycle += 1
            guard += 1
            if guard > 200_000_000:
                raise ConfigError("timing simulation exceeded cycle guard")
        end = cycle
        if self.engine is not None:
            end = max(end, self.engine.last_drain_cycle)
        self.stats.cycles = max(end, 1.0)
        self.stats.bus_utilization = self.hierarchy.bus_utilization(
            self.stats.cycles
        )
        self.stats.branch_mispredicts = self.predictor.mispredictions
        self.stats.branches = self.predictor.predictions
        return self.stats

    # ---------------------------------------------------------------- fetch --

    def _fetch(self, now: float, trace_iter, line_bytes: int) -> None:
        if self._trace_done:
            return
        blocker = self._block_branch
        if blocker is not None:
            if blocker.complete is None:
                self.stats.fetch_stall_cycles += 1
                return
            resume = blocker.complete + self.config.core.frontend_depth
            if now < resume:
                self.stats.fetch_stall_cycles += 1
                return
            self._block_branch = None
        if now < self._resume_fetch_at:
            self.stats.fetch_stall_cycles += 1
            return
        width = self.config.core.fetch_width
        room = self.config.core.decode_queue - len(self._decode)
        for _ in range(min(width, room)):
            try:
                dyn = next(trace_iter)
            except StopIteration:
                self._trace_done = True
                return
            op = _Op(dyn)
            self.stats.fetched += 1
            self._decode.append(op)
            if dyn.is_branch:
                wrong = self.predictor.record_outcome(dyn.pc, dyn.taken)
                if wrong:
                    op.mispredicted = True
                    self._block_branch = op
                    return
                if dyn.taken:
                    return  # taken branch ends the fetch group

    # --------------------------------------------------------------- rename --

    def _rename(self, now: float) -> None:
        core = self.config.core
        engine = self.engine
        renamed = 0
        while self._decode and renamed < core.fetch_width:
            op = self._decode[0]
            dyn = op.dyn
            cause = self._structural_block(op)
            if cause is not None:
                self.stats.block(cause)
                return
            # Stream store-FIFO reservation (may stall rename).
            if dyn.stream_writes and engine is not None:
                if not all(
                    engine.streams[uid].store_reserved
                    - engine.streams[uid].store_drained
                    < engine.config.fifo_depth
                    for (_, uid, __, last) in dyn.stream_writes
                    if last
                ):
                    self.stats.block("store_fifo")
                    return
            self._decode.popleft()
            renamed += 1
            self._rob += 1
            self._rob_q.append(op)
            if self.observer is not None:
                self.observer("rename", dyn, now)
            # Resource allocation.  Stream config/control name streams via
            # the Stream Alias Table, not physical vector registers; data
            # written to an output stream lives in its reserved Store FIFO
            # entry rather than a vector PR (§IV-A Stream Iteration).
            if dyn.opclass not in (OpClass.STREAM_CFG, OpClass.STREAM_CTL):
                write_regs = (
                    {ev[0] for ev in dyn.stream_writes}
                    if dyn.stream_writes
                    else ()
                )
                for dest in dyn.dests:
                    if dest.cls is RegClass.V and dest.index in write_regs:
                        continue
                    bank = _BANK_OF.get(dest.cls)
                    if bank is not None:
                        self._free[bank] -= 1
                        op.allocs[bank] = op.allocs.get(bank, 0) + 1
            if op.is_load:
                self._lq += 1
            if op.is_store:
                self._sq += 1
            # Register dependences via the RAT (stream-read registers are
            # satisfied by the FIFO, not by a producer).
            stream_regs = (
                {ev[0] for ev in dyn.stream_reads} if dyn.stream_reads else ()
            )
            is_mac = (
                self._mac_forwarding and dyn.opclass in _MAC_CLASSES
            )
            for src in dyn.srcs:
                if src.cls is RegClass.V and src.index in stream_regs:
                    continue
                producer = self._rat.get(src)
                if producer is not None:
                    # Cortex-A76-style accumulator forwarding: a MAC
                    # feeding the accumulator of the next MAC is consumed
                    # two cycles early (back-to-back FMLA chains).
                    bonus = (
                        2.0
                        if is_mac
                        and producer.dyn.opclass in _MAC_CLASSES
                        and producer.dyn.dests
                        and src == producer.dyn.dests[0]
                        and dyn.dests
                        and src == dyn.dests[0]
                        else 0.0
                    )
                    op.producers.append(
                        (producer, src in producer.dyn.early_dests, bonus)
                    )
            for dest in dyn.dests:
                self._rat[dest] = op
            # Stream interactions.
            if engine is not None:
                if dyn.cfg_uid is not None:
                    info = self.stream_infos[dyn.cfg_uid]
                    start = engine.configure(info, now)
                    op.complete = start
                    op.early_complete = start
                elif dyn.opclass in (OpClass.STREAM_CFG, OpClass.STREAM_CTL):
                    op.complete = now + 1
                    op.early_complete = now + 1
                if dyn.stream_reads:
                    op.stream_waits = dyn.stream_reads
                    for (_, uid, chunk, __) in dyn.stream_reads:
                        engine.rename_read(uid, chunk)
                if dyn.stream_writes:
                    op.store_streams = dyn.stream_writes
                    for (_, uid, __, last) in dyn.stream_writes:
                        if last:
                            engine.reserve_store(uid)
            elif dyn.opclass in (OpClass.STREAM_CFG, OpClass.STREAM_CTL):
                op.complete = now + 1
                op.early_complete = now + 1
            # Dispatch.
            if op.complete is not None:
                continue  # completes outside the execution clusters
            if op.cluster is FuCluster.NONE:
                op.complete = now + 1
                op.early_complete = now + 1
                continue
            if op.is_store:
                for addr in dyn.mem_writes or ():
                    line = addr // self.hierarchy.line_bytes
                    if not op.mem_lines or op.mem_lines[-1] != line:
                        op.mem_lines.append(line)
                for line in op.mem_lines:
                    self._store_by_line.setdefault(line, []).append(op)
            elif op.is_load:
                seen = []
                for addr in dyn.mem_reads or ():
                    line = addr // self.hierarchy.line_bytes
                    if line not in seen:
                        seen.append(line)
                op.mem_lines = seen
            self._iq += 1
            self._sched[op.cluster].append(op)

    def _structural_block(self, op: _Op) -> Optional[str]:
        core = self.config.core
        dyn = op.dyn
        if self._rob >= core.rob_entries:
            return "rob"
        needs_sched = (
            op.cluster is not FuCluster.NONE
            and dyn.opclass not in (OpClass.STREAM_CFG, OpClass.STREAM_CTL)
        )
        if needs_sched:
            if self._iq >= core.iq_entries:
                return "iq"
            if len(self._sched[op.cluster]) >= core.scheduler_entries:
                return "scheduler"
        if op.is_load and self._lq >= core.lq_entries:
            return "lq"
        if op.is_store and self._sq >= core.sq_entries:
            return "sq"
        if dyn.opclass not in (OpClass.STREAM_CFG, OpClass.STREAM_CTL):
            needed: Dict[str, int] = {}
            for dest in dyn.dests:
                bank = _BANK_OF.get(dest.cls)
                if bank is not None:
                    needed[bank] = needed.get(bank, 0) + 1
            for bank, count in needed.items():
                if self._free[bank] < count:
                    return f"{bank}_regs"
        return None

    # ---------------------------------------------------------------- issue --

    def _ready(self, op: _Op, now: float) -> bool:
        producers = op.producers
        if producers:
            remaining = []
            ready = True
            for entry in producers:
                producer, early, bonus = entry
                t = producer.early_complete if early else producer.complete
                if t is None or t - bonus > now:
                    remaining.append(entry)
                    ready = False
            op.producers = remaining
            if not ready:
                return False
        if op.stream_waits:
            engine = self.engine
            for (_, uid, chunk, __) in op.stream_waits:
                if engine.chunk_ready(uid, chunk) > now:
                    return False
        if op.is_load:
            seq = op.dyn.seq
            for line in op.mem_lines:
                for store in self._store_by_line.get(line, ()):
                    if store.dyn.seq >= seq:
                        break  # stores are appended in rename (seq) order
                    if store.complete is None or store.complete > now:
                        return False
        return True

    def _issue(self, now: float) -> None:
        core = self.config.core
        budget = core.issue_width
        ports = {
            FuCluster.INT: core.int_alus,
            FuCluster.FP: core.fp_units,
            FuCluster.MEM: core.load_ports + core.store_ports,
        }
        store_ports = core.store_ports
        load_ports = core.load_ports
        for cluster in (FuCluster.MEM, FuCluster.FP, FuCluster.INT):
            queue = self._sched[cluster]
            if not queue:
                continue
            issued: List[_Op] = []
            loads = stores = 0
            for op in queue:
                if budget <= 0 or len(issued) >= ports[cluster]:
                    break
                if cluster is FuCluster.MEM:
                    if op.is_load and loads >= load_ports:
                        continue
                    if op.is_store and stores >= store_ports:
                        continue
                if not self._ready(op, now):
                    continue
                self._execute(op, now)
                issued.append(op)
                budget -= 1
                if op.is_load:
                    loads += 1
                elif op.is_store:
                    stores += 1
            if issued:
                remaining = [op for op in queue if op not in issued]
                self._sched[cluster] = remaining
                self._iq -= len(issued)

    def _execute(self, op: _Op, now: float) -> None:
        dyn = op.dyn
        op.issued = True
        op.early_complete = now + 1
        if self.observer is not None:
            self.observer("issue", dyn, now)
        if op.is_load:
            self.stats.loads_issued += 1
            completion = now + 1
            for line in op.mem_lines:
                done = self.hierarchy.demand_access(
                    line * self.hierarchy.line_bytes, now + 1, False, pc=dyn.pc
                )
                if done > completion:
                    completion = done
            op.complete = completion
        elif op.is_store:
            self.stats.stores_issued += 1
            op.complete = now + 1  # address generation; data written at commit
        else:
            op.complete = now + self._latency[dyn.opclass]

    def _drain_post_stores(self, now: float) -> None:
        """Write committed stores to the L1, bounded by the store ports
        and by L1 MSHR availability (backpressure under saturation)."""
        l1 = self.hierarchy.l1d
        for _ in range(self.config.core.store_ports):
            if not self._post_stores:
                return
            if not l1.can_accept(now):
                return
            op, lines = self._post_stores[0]
            if lines:
                line = lines.pop(0)
                self.hierarchy.demand_access(
                    line * self.hierarchy.line_bytes, now, True, pc=op.dyn.pc
                )
                waiting = self._store_by_line.get(line)
                if waiting and waiting[0] is op:
                    waiting.pop(0)
                    if not waiting:
                        del self._store_by_line[line]
            if not lines:
                self._post_stores.popleft()
                self._sq -= 1

    # --------------------------------------------------------------- commit --

    def _commit(self, now: float) -> None:
        engine = self.engine
        width = self.config.core.commit_width
        for _ in range(width):
            if not self._rob_q:
                return
            op = self._rob_q[0]
            if op.complete is None or op.complete > now - 1:
                return
            self._rob_q.popleft()
            self._rob -= 1
            self.stats.committed += 1
            dyn = op.dyn
            if self.observer is not None:
                self.observer("commit", dyn, now)
            for bank, count in op.allocs.items():
                self._free[bank] += count
            if op.is_load:
                self._lq -= 1
            if op.is_store:
                # The store drains to the L1 after commit; its SQ entry is
                # freed once the L1 accepts it (flow control).
                self._post_stores.append((op, list(op.mem_lines)))
            for dest in dyn.dests:
                if self._rat.get(dest) is op:
                    del self._rat[dest]
            if engine is not None:
                if op.stream_waits:
                    for (_, uid, chunk, last) in op.stream_waits:
                        if last:
                            engine.commit_read(uid, chunk)
                if op.store_streams:
                    for (_, uid, chunk, last) in op.store_streams:
                        if last:
                            engine.commit_write(uid, chunk, now)
                if dyn.opclass is OpClass.STREAM_CTL and dyn.inst is not None:
                    kind = getattr(dyn.inst, "kind", None)
                    if kind == "stop":
                        for uid, info in self.stream_infos.items():
                            if info.reg == dyn.inst.u.index:
                                engine.terminate(uid)
