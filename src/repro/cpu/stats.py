"""Pipeline statistics, including the paper's reported metrics."""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PipelineStats:
    cycles: float = 0.0
    committed: int = 0
    fetched: int = 0
    #: cycles on which rename could not process an instruction, by cause
    rename_block_cycles: int = 0
    rename_block_causes: Dict[str, int] = field(default_factory=dict)
    fetch_stall_cycles: int = 0
    branch_mispredicts: int = 0
    branches: int = 0
    loads_issued: int = 0
    stores_issued: int = 0
    #: DRAM bus utilization, (ReadBW+WriteBW)/PeakBW (Fig. 8.D)
    bus_utilization: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """Every counter as a plain dict — the fast-forward equivalence
        gate compares these bit-for-bit, and BENCH records embed them."""
        return {
            "cycles": self.cycles,
            "committed": self.committed,
            "fetched": self.fetched,
            "rename_block_cycles": self.rename_block_cycles,
            "rename_block_causes": dict(
                sorted(self.rename_block_causes.items())
            ),
            "fetch_stall_cycles": self.fetch_stall_cycles,
            "branch_mispredicts": self.branch_mispredicts,
            "branches": self.branches,
            "loads_issued": self.loads_issued,
            "stores_issued": self.stores_issued,
            "bus_utilization": self.bus_utilization,
        }

    def block(self, cause: str) -> None:
        self.rename_block_cycles += 1
        self.rename_block_causes[cause] = (
            self.rename_block_causes.get(cause, 0) + 1
        )

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def rename_blocks_per_cycle(self) -> float:
        """Fraction of cycles the rename stage was blocked (Fig. 8.C)."""
        return self.rename_block_cycles / self.cycles if self.cycles else 0.0

    @property
    def mispredict_rate(self) -> float:
        return self.branch_mispredicts / self.branches if self.branches else 0.0
