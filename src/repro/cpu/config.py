"""Machine configuration (paper Table I).

Defaults reproduce the evaluated configuration: an ARM Cortex-A76-like
out-of-order core at 1.5 GHz with 512-bit vectors, 64 KB L1 caches (stride
prefetcher, depth 16), a 256 KB L2 (AMPM prefetcher, queue 32), dual-channel
DDR3-1600, and — for UVE — a Streaming Engine with 2 processing modules and
8-entry per-stream FIFOs.
"""
from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.errors import ConfigError
from repro.isa.microop import OpClass


@dataclass(frozen=True)
class CacheConfig:
    name: str
    size_bytes: int
    assoc: int
    hit_latency: int
    mshrs: int
    line_bytes: int = 64
    #: line-wide access ports (bandwidth limit in lines/cycle)
    ports: int = 2

    def __post_init__(self) -> None:
        lines = self.size_bytes // self.line_bytes
        if lines % self.assoc != 0:
            raise ConfigError(f"{self.name}: lines not divisible by assoc")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // self.line_bytes // self.assoc


@dataclass(frozen=True)
class DramConfig:
    """Dual-channel DDR3-1600 (Table I), timed in core cycles @1.5 GHz."""

    channels: int = 2
    #: loaded-system access latency in core cycles (~93 ns @1.5 GHz,
    #: including controller queueing).
    access_latency: int = 140
    #: core cycles one 64 B line transfer occupies a channel
    #: (64 B / 12.8 GB/s = 5 ns = 7.5 cycles @1.5 GHz).
    line_transfer_cycles: float = 7.5
    line_bytes: int = 64

    @property
    def peak_bytes_per_cycle(self) -> float:
        return self.channels * self.line_bytes / self.line_transfer_cycles


@dataclass(frozen=True)
class PrefetcherConfig:
    """Baseline-core prefetchers (Table I)."""

    l1_stride_enabled: bool = True
    l1_stride_depth: int = 16
    l1_stride_table_entries: int = 64
    l2_ampm_enabled: bool = True
    l2_ampm_queue: int = 32
    l2_ampm_zones: int = 64


@dataclass(frozen=True)
class EngineConfig:
    """Streaming Engine (Table I, §IV-B)."""

    processing_modules: int = 2
    fifo_depth: int = 8  # vector-sized entries per stream
    max_streams: int = 32
    max_dims: int = 8
    max_mods: int = 7
    memory_request_queue: int = 16
    #: extra cycle when the address generator switches descriptor dimension
    dim_switch_penalty: int = 1
    #: load + store ports into the cache hierarchy (Table I: 1+1)
    load_ports: int = 1
    store_ports: int = 1
    scheduler_policy: str = "fifo-occupancy"  # or "round-robin" (ablation)
    #: override the per-stream cache level ("L1" | "L2" | "MEM"); None
    #: keeps each stream's configured level (Fig. 11 sweeps this)
    mem_level_override: str = ""
    #: pool the load-FIFO capacity across streams instead of fixed
    #: per-stream queues (the paper's §IV-B future-work design); a busy
    #: stream may then run ahead up to 4x its nominal depth while others
    #: are idle
    shared_fifo: bool = False


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (Table I)."""

    # Pipeline widths.
    fetch_width: int = 4
    commit_width: int = 4
    issue_width: int = 8
    # Window structures.
    iq_entries: int = 80
    lq_entries: int = 32
    sq_entries: int = 48
    rob_entries: int = 128
    # Physical register files.
    int_phys_regs: int = 128
    fp_phys_regs: int = 192
    vec_phys_regs: int = 48
    # Functional units (per-cluster port counts + 24-entry schedulers).
    int_alus: int = 2
    fp_units: int = 2
    load_ports: int = 2
    store_ports: int = 1
    scheduler_entries: int = 24
    # Front-end depth: cycles from fetch redirect to rename (mispredict cost).
    frontend_depth: int = 11
    decode_queue: int = 16
    #: forward MAC results to a dependent MAC's accumulator two cycles
    #: early (Cortex-A76 FMLA accumulator forwarding); off by default —
    #: the simple fixed-latency model matches the paper's Fig. 8.E shape
    mac_forwarding: bool = False


#: Execution latencies per op class (cycles), Cortex-A76-flavoured.
DEFAULT_LATENCIES: Dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.INT_DIV: 12,
    OpClass.FP_ALU: 2,
    OpClass.FP_MUL: 3,
    OpClass.FP_DIV: 11,
    OpClass.FP_MAC: 4,
    OpClass.VEC_ALU: 2,
    OpClass.VEC_MUL: 3,
    OpClass.VEC_MAC: 4,
    OpClass.VEC_DIV: 13,
    OpClass.VEC_RED: 4,
    OpClass.VEC_MISC: 1,
    OpClass.BRANCH: 1,
    OpClass.STREAM_CFG: 1,
    OpClass.STREAM_CTL: 1,
    OpClass.NOP: 1,
    OpClass.HALT: 1,
}


@dataclass(frozen=True)
class MachineConfig:
    """Complete machine: core + memory + (optionally) Streaming Engine."""

    core: CoreConfig = field(default_factory=CoreConfig)
    #: MSHR depths follow gem5-classic-like values (the paper's substrate):
    #: a handful of outstanding L1 misses, more at the L2.
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 64 * 1024, 4, 4, 6, ports=3)
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1I", 64 * 1024, 4, 1, 8, ports=1)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 256 * 1024, 8, 12, 30, ports=2)
    )
    dram: DramConfig = field(default_factory=DramConfig)
    prefetch: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    vector_bits: int = 512
    #: streaming support on (UVE core) or off (baseline ARM-like core)
    streaming: bool = True
    #: event-horizon fast-forward: when a cycle makes no progress, jump
    #: straight to the earliest cycle any state can change instead of
    #: ticking through the stall.  Produces bit-identical PipelineStats
    #: (see docs/TIMING.md "Fast-forward"); off simulates every cycle.
    fast_forward: bool = True
    #: batch independent per-cycle events between event horizons: skip
    #: pipeline stages whose inputs are provably empty this cycle and
    #: keep the Streaming Engine's tick bookkeeping incremental.  Pure
    #: short-circuiting — PipelineStats stays bit-identical with it off
    #: (see docs/TIMING.md "Event batching").
    event_batching: bool = True
    latencies: Dict[OpClass, int] = field(
        default_factory=lambda: dict(DEFAULT_LATENCIES)
    )
    freq_ghz: float = 1.5

    def with_(self, **kwargs) -> "MachineConfig":
        """Return a modified copy (sweep helper)."""
        return replace(self, **kwargs)


def uve_machine(**kwargs) -> MachineConfig:
    """The paper's UVE configuration (streaming on, no prefetchers needed —
    they stay on for the scalar side, as stream and conventional accesses
    coexist)."""
    return MachineConfig(streaming=True, **kwargs)


def baseline_machine(**kwargs) -> MachineConfig:
    """The paper's baseline ARM configuration (SVE/NEON): identical core,
    no Streaming Engine, stride + AMPM prefetchers."""
    return MachineConfig(streaming=False, **kwargs)
