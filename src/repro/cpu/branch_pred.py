"""Branch predictor: gshare with 2-bit saturating counters.

The trace-driven pipeline knows each branch's actual outcome; the
predictor decides whether fetch proceeds speculatively (prediction
correct) or stalls until the branch resolves (misprediction bubble).
Targets are assumed BTB-resident (tight loop kernels).
"""
from __future__ import annotations


class GsharePredictor:
    def __init__(self, index_bits: int = 12, history_bits: int = 12) -> None:
        self.size = 1 << index_bits
        self._mask = self.size - 1
        self._history_mask = (1 << history_bits) - 1
        self._table = bytearray([2] * self.size)  # weakly taken
        self._ghr = 0
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self._ghr) & self._mask

    def predict(self, pc: int) -> bool:
        self.predictions += 1
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        if taken:
            self._table[index] = min(3, counter + 1)
        else:
            self._table[index] = max(0, counter - 1)
        self._ghr = ((self._ghr << 1) | int(taken)) & self._history_mask

    def record_outcome(self, pc: int, taken: bool) -> bool:
        """Predict, update, and return True on a misprediction."""
        predicted = self.predict(pc)
        self.update(pc, taken)
        wrong = predicted != taken
        if wrong:
            self.mispredictions += 1
        return wrong

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions
