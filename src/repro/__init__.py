"""Reproduction of *Unlimited Vector Extension with Data Streaming Support*
(Domingos, Neves, Roma, Tomás — ISCA 2021).

The package provides:

* ``repro.streams`` — the hierarchical stream-descriptor model (§II);
* ``repro.isa`` — the UVE instruction set plus SVE-like, NEON-like and
  scalar baseline ISAs (§III);
* ``repro.engine`` — the Streaming Engine (§IV-B);
* ``repro.cpu`` — the out-of-order core timing model (§IV, Table I);
* ``repro.memory`` — caches, prefetchers, TLB, and DRAM;
* ``repro.sim`` — the functional simulator and the combined
  functional+timing :class:`~repro.sim.simulator.Simulator`;
* ``repro.kernels`` — the 19 evaluation kernels in all ISAs;
* ``repro.harness`` — regeneration of every figure of the paper.
"""

__version__ = "1.0.0"

from repro.common.types import ElementType, VectorShape  # noqa: F401
from repro.streams import (  # noqa: F401
    Descriptor,
    Direction,
    IndirectModifier,
    Level,
    MemLevel,
    StaticModifier,
    StreamIterator,
    StreamPattern,
    VectorChunker,
    indirect,
    linear,
    lower_triangular,
    rectangular,
    repeated,
)
