"""Representative UVE instruction pool for round-trip testing.

The fuzzer exercises UVE *semantics* through generated programs; this
module pins down the *syntax* layers — binary encoding and assembly
text — with curated instances of every round-trippable instruction
form:

* :func:`encodable_pool` — register-form instances of every class with
  a binary encoding (``encode(inst)`` → 32-bit word → ``decode`` →
  equal instance).  The encoding stores element *width* only, so the
  pool uses the width-faithful element types
  :data:`WIDTH_FAITHFUL_ETYPES` (I8, I16, F32, F64); I32/I64 decode to
  the float type of the same width by design.
* :func:`asm_pool` — instances whose ``str()`` rendering re-assembles
  (via :func:`repro.isa.assembler.assemble`) to an equal instance.
  Branches are excluded (their text prints a ``.label`` the assembler
  treats as an opaque name) and tested from explicit source instead.

Both pools double as the seed vocabulary documented in
``docs/FUZZING.md``: every stream-configuration and compute form the
generator's lowerings emit appears here at least once.
"""
from __future__ import annotations

from typing import List

from repro.common.types import ElementType
from repro.isa import uve_ops as uve
from repro.isa.instructions import Instruction
from repro.isa.registers import P0, f, p, u, x
from repro.streams.descriptor import (
    IndirectBehavior,
    Param,
    StaticBehavior,
)
from repro.streams.pattern import Direction, MemLevel

#: Element types whose width survives encode→decode unchanged (the
#: binary word stores widths, not interpretations).
WIDTH_FAITHFUL_ETYPES = (
    ElementType.I8,
    ElementType.I16,
    ElementType.F32,
    ElementType.F64,
)

_ALU_OPS = ("add", "sub", "mul", "div", "min", "max", "and", "or", "xor")
_RED_OPS = ("add", "min", "max", "mul")


def encodable_pool() -> List[Instruction]:
    """Register-form instances of every binary-encodable UVE class."""
    pool: List[Instruction] = []
    # Stream configuration: every (family, mem level, direction) opcode
    # class, plus each width code once.
    for cls in (uve.SsConfig1D, uve.SsSta):
        for level in (MemLevel.L1, MemLevel.L2, MemLevel.MEM):
            for direction in (Direction.LOAD, Direction.STORE):
                pool.append(
                    cls(
                        u(3),
                        direction,
                        x(5),
                        x(6),
                        x(7),
                        etype=ElementType.F32,
                        mem_level=level,
                    )
                )
        for etype in WIDTH_FAITHFUL_ETYPES:
            pool.append(
                cls(
                    u(31),
                    Direction.LOAD,
                    x(1),
                    x(2),
                    x(3),
                    etype=etype,
                    mem_level=MemLevel.L2,
                )
            )
    for last in (False, True):
        pool.append(uve.SsApp(u(4), x(8), x(9), x(10), last=last))
    for target in (Param.OFFSET, Param.SIZE, Param.STRIDE):
        for behavior in (StaticBehavior.ADD, StaticBehavior.SUB):
            for last in (False, True):
                pool.append(
                    uve.SsAppMod(u(2), target, behavior, x(11), x(12), last=last)
                )
    for target in (Param.OFFSET, Param.SIZE, Param.STRIDE):
        for behavior in (
            IndirectBehavior.SET_ADD,
            IndirectBehavior.SET_SUB,
            IndirectBehavior.SET_VALUE,
        ):
            pool.append(uve.SsAppInd(u(1), target, behavior, u(30), last=True))
    pool.append(uve.SsAppInd(u(1), Param.OFFSET, IndirectBehavior.SET_ADD, u(3)))
    for kind in ("suspend", "resume", "stop"):
        pool.append(uve.SsCtl(kind, u(17)))
    # Streaming compute.
    for op in _ALU_OPS:
        pool.append(uve.SoOp(op, u(2), u(0), u(1)))
    for etype in WIDTH_FAITHFUL_ETYPES:
        pool.append(uve.SoOp("add", u(4), u(5), u(6), etype=etype))
    for pred in (p(1), p(2), p(3)):
        pool.append(uve.SoOp("mul", u(7), u(8), u(9), pred=pred))
    for etype in WIDTH_FAITHFUL_ETYPES:
        pool.append(uve.SoMac(u(8), u(0), u(1), etype=etype))
        pool.append(uve.SoMove(u(10), u(1), etype=etype))
    pool.append(uve.SoDup(u(4), x(0), etype=ElementType.I16))
    pool.append(uve.SoDup(u(4), f(9), etype=ElementType.F64))
    for op in _RED_OPS:
        pool.append(uve.SoRed(op, u(6), u(2)))
    # Branches: the word encodes everything but the displacement, which
    # decode() re-synthesises from its ``label`` argument.
    for negate in (False, True):
        pool.append(uve.SoBranchEnd(u(0), "target", negate=negate))
    for dim in (0, 1, 3, 7):
        for complete in (False, True):
            pool.append(uve.SoBranchDim(u(0), dim, "target", complete=complete))
    return pool


def asm_pool() -> List[Instruction]:
    """Instances whose ``str()`` re-assembles to an equal instance."""
    pool: List[Instruction] = []
    # Stream configuration text omits the memory level (default L2) and
    # prints I32/I64 with the width suffixes the assembler reads back as
    # floats, so the text-faithful subset mirrors the encodable one.
    for cls in (uve.SsConfig1D, uve.SsSta):
        for etype in WIDTH_FAITHFUL_ETYPES:
            pool.append(cls(u(0), Direction.LOAD, 1024, 64, 1, etype=etype))
        pool.append(cls(u(2), Direction.STORE, x(5), x(6), x(7)))
    for last in (False, True):
        pool.append(uve.SsApp(u(1), 0, 8, x(3), last=last))
    for target in (Param.OFFSET, Param.SIZE, Param.STRIDE):
        for behavior in (StaticBehavior.ADD, StaticBehavior.SUB):
            pool.append(uve.SsAppMod(u(1), target, behavior, 2, 3))
    pool.append(
        uve.SsAppMod(u(1), Param.SIZE, StaticBehavior.SUB, x(4), x(5), last=True)
    )
    for behavior in (
        IndirectBehavior.SET_ADD,
        IndirectBehavior.SET_SUB,
        IndirectBehavior.SET_VALUE,
    ):
        pool.append(
            uve.SsAppInd(u(2), Param.OFFSET, behavior, u(3), last=True)
        )
    for kind in ("suspend", "resume", "stop"):
        pool.append(uve.SsCtl(kind, u(9)))
    # Compute: the ``.fp``/``.sc`` mnemonics carry no width or predicate
    # field, so only the defaults (F32, P0) are text-faithful.
    for op in _ALU_OPS:
        pool.append(uve.SoOp(op, u(2), u(0), u(1)))
        pool.append(uve.SoOpScalar(op, u(2), u(0), x(3)))
    pool.append(uve.SoOpScalar("mul", u(2), u(0), 7))
    pool.append(uve.SoMac(u(8), u(0), u(1)))
    pool.append(uve.SoMacScalar(u(8), u(0), f(2)))
    pool.append(uve.SoMove(u(10), u(1)))
    for etype in WIDTH_FAITHFUL_ETYPES:
        pool.append(uve.SoDup(u(3), x(0), etype=etype))
    pool.append(uve.SoDup(u(3), f(1)))
    for op in _RED_OPS:
        pool.append(uve.SoRed(op, u(6), u(2)))
        pool.append(uve.SoRedScalar(op, f(1), u(2)))
    pool.append(uve.SoScalarRead(x(5), u(2)))
    pool.append(uve.SoScalarWrite(u(2), x(5)))
    for cond in ("eq", "ne", "lt", "le", "gt", "ge"):
        pool.append(uve.SoPredComp(cond, p(1), u(0), u(1)))
    pool.append(uve.SoPredNot(p(2), p(1)))
    pool.append(uve.SoGetVl(x(6)))
    pool.append(uve.SoSetVl(x(6), 16))
    return pool
