"""Command-line entry point: ``python -m repro.fuzz``.

Fuzz campaign (default):

    python -m repro.fuzz --seed 0 --cases 500 --jobs 4

Validate the oracle against a deliberately broken UVE lowering, writing
shrunk reproducers to the corpus:

    python -m repro.fuzz --seed 0 --cases 200 --inject uve-mod-extra-count \\
        --corpus tests/fuzz/corpus

Replay committed reproducers (what the tier-1 suite does):

    python -m repro.fuzz --replay tests/fuzz/corpus
"""
from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.fuzz.campaign import fuzz_cache, run_campaign
from repro.fuzz.corpus import load_case
from repro.fuzz.lowering import INJECTIONS
from repro.fuzz.oracle import run_case


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description=(
            "Cross-ISA differential fuzzer: random loop-nest cases are "
            "lowered to UVE, SVE, NEON, and scalar programs, run through "
            "the functional simulator, and compared against a NumPy "
            "reference and each other."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign seed")
    parser.add_argument(
        "--cases", type=int, default=500, help="number of cases to run"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial)"
    )
    parser.add_argument(
        "--inject",
        choices=sorted(INJECTIONS),
        default=None,
        help="distort the UVE lowering to validate the oracle",
    )
    parser.add_argument(
        "--timing-every",
        type=int,
        default=10,
        metavar="K",
        help="run timing invariants on every K-th case (0 = never)",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip delta-debugging failures down to minimal reproducers",
    )
    parser.add_argument(
        "--corpus",
        type=Path,
        default=None,
        metavar="DIR",
        help="write shrunk reproducers to this directory",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None, help="result-cache root"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    parser.add_argument(
        "--max-elems",
        type=int,
        default=1024,
        help="cap on elements iterated per case",
    )
    parser.add_argument(
        "--replay",
        type=Path,
        action="append",
        default=None,
        metavar="PATH",
        help="replay corpus file(s)/dir(s) instead of fuzzing",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    return parser


def _replay(paths: List[Path], verbose: bool) -> int:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.glob("*.json")))
        elif path.is_file():
            files.append(path)
        else:
            print(f"fuzz: no such corpus path: {path}", file=sys.stderr)
            return 1
    if not files:
        print("fuzz: no corpus files to replay", file=sys.stderr)
        return 1
    bad = 0
    for fpath in files:
        spec, meta = load_case(fpath)
        inject = meta.get("inject")
        report = run_case(spec, inject=inject)
        if inject:
            # Injected reproducers prove detection power: the oracle must
            # still catch the distorted lowering.
            ok = not report.ok
            expectation = f"inject={inject}, expect caught"
        else:
            # Organic reproducers are regression guards: fixed means fixed.
            ok = report.ok
            expectation = "expect clean"
        status = "ok  " if ok else "FAIL"
        print(f"{status} {fpath.name} ({expectation})")
        if not ok and verbose:
            for failure in report.failures:
                print(f"     {failure.isa}: {failure.kind}: {failure.detail}")
        bad += 0 if ok else 1
    print(f"fuzz: replayed {len(files)} corpus case(s), {bad} unexpected")
    return 1 if bad else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.replay:
        return _replay(args.replay, args.verbose)

    cache = None if args.no_cache else fuzz_cache(args.cache_dir)
    started = time.time()

    def progress(report) -> None:
        if args.verbose:
            state = "ok" if report["ok"] else "FAIL"
            spec = report["spec"]
            print(
                f"  case {report['index']:>5} {state:<4} "
                f"{spec['family']}/{spec['etype']} sizes={spec['sizes']}"
            )

    summary = run_campaign(
        seed=args.seed,
        cases=args.cases,
        jobs=args.jobs,
        inject=args.inject,
        timing_every=args.timing_every,
        shrink_failures=not args.no_shrink,
        corpus_dir=args.corpus,
        cache=cache,
        max_elems=args.max_elems,
        progress=progress,
    )
    elapsed = time.time() - started
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"fuzz: seed={summary.seed} cases={summary.cases} "
            f"inject={summary.inject or 'none'}: "
            f"{len(summary.failures)} failing case(s), "
            f"{summary.timing_checked} timing-checked, "
            f"{summary.cache_hits} cache hit(s) in {elapsed:.1f}s"
        )
        for path in summary.corpus_files:
            print(f"  reproducer: {path}")
    if args.inject is not None:
        if not summary.failures:
            print(
                "fuzz: warning: injection was not caught by any case",
                file=sys.stderr,
            )
        return 0
    return 0 if summary.ok else 1


if __name__ == "__main__":
    sys.exit(main())
