"""Loop-nest case specifications for the differential fuzzer.

A :class:`CaseSpec` is a small, JSON-serialisable description of one
fuzz case: a shared loop-nest geometry (sizes, innermost first), one or
two input arrays plus one output array with per-array strides/offsets
and static modifiers, an element-wise op chain, and optionally a
reduction, a predicate, or an indirect (gather/scatter) level.  All
bulk data — array contents and index vectors — is derived
deterministically from ``seed``, so a spec stays a few hundred bytes
even for thousand-element cases and can be replayed bit-identically
from the corpus.

The spec layer is deliberately independent of the ``streams``
descriptor classes: lowerings (:mod:`repro.fuzz.lowering`) and the
reference expander (:mod:`repro.fuzz.reference`) each interpret it with
separately-written code, which is what gives the differential oracle
its teeth.
"""
from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.common.types import ElementType

# Canonical op/modifier vocabulary lives with the loop-nest IR; the spec
# layer re-exports it so generator/shrinker imports keep working.
from repro.ir.nodes import (  # noqa: F401  (re-exports)
    COMPARE_OPS,
    FLOAT_OPS,
    INT_OPS,
    MOD_BEHAVIORS,
    MOD_TARGETS,
    REDUCE_OPS,
    UNARY_OPS,
)

#: case families the generator can sample.
FAMILIES = (
    "elementwise",  # c[i] = chain(a[i], b[i]) stored per element
    "reduction",    # scalar = reduce(chain(a[i], b[i]))
    "predicated",   # scalar = reduce(a[i] where cmp(a[i], b[i]))
    "scalar",       # element-granular stream consumption (UVE so.sc.*)
    "gather",       # a indexed through an int32 index vector (load side)
    "scatter",      # c indexed through an int32 index vector (store side)
)


@dataclass(frozen=True)
class ModSpec:
    """A static descriptor modifier: bound at loop ``level`` (>= 1), it
    mutates ``target`` of the level below by ``displacement`` on each of
    the first ``count`` iterations of the bound level, and resets when
    the bound level restarts — the `{T,B,D,E}` semantics of paper §II-B."""

    level: int
    target: str  # offset | size | stride
    behavior: str  # add | sub
    displacement: int
    count: int

    def to_dict(self) -> Dict:
        return {
            "level": self.level,
            "target": self.target,
            "behavior": self.behavior,
            "displacement": self.displacement,
            "count": self.count,
        }

    @staticmethod
    def from_dict(data: Dict) -> "ModSpec":
        return ModSpec(
            level=int(data["level"]),
            target=str(data["target"]),
            behavior=str(data["behavior"]),
            displacement=int(data["displacement"]),
            count=int(data["count"]),
        )

    @property
    def signed_displacement(self) -> int:
        return -self.displacement if self.behavior == "sub" else self.displacement


@dataclass(frozen=True)
class ArraySpec:
    """One array's view of the shared nest: per-level offsets and
    strides (element units, innermost first) plus its own offset/stride
    modifiers.  Sizes live on the CaseSpec — shared geometry keeps
    stream chunk boundaries aligned across all streams of a case."""

    name: str  # "a" | "b" | "c"
    offsets: Tuple[int, ...]
    strides: Tuple[int, ...]
    mods: Tuple[ModSpec, ...] = ()

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "offsets": list(self.offsets),
            "strides": list(self.strides),
            "mods": [m.to_dict() for m in self.mods],
        }

    @staticmethod
    def from_dict(data: Dict) -> "ArraySpec":
        return ArraySpec(
            name=str(data["name"]),
            offsets=tuple(int(v) for v in data["offsets"]),
            strides=tuple(int(v) for v in data["strides"]),
            mods=tuple(ModSpec.from_dict(m) for m in data.get("mods", ())),
        )


@dataclass(frozen=True)
class IndirectSpec:
    """Gather/scatter configuration: the indirect array's rows are
    addressed through an int32 index vector (one index per iteration of
    level 1), regenerated from the case seed.  ``region`` fixes the
    indirect array's allocation span so index values can be sampled
    in-bounds without knowing the data first."""

    array: str  # which array is indirect: "a" (gather) | "c" (scatter)
    region: int  # allocation span of the indirect array, elements

    def to_dict(self) -> Dict:
        return {"array": self.array, "region": self.region}

    @staticmethod
    def from_dict(data: Dict) -> "IndirectSpec":
        return IndirectSpec(array=str(data["array"]), region=int(data["region"]))


@dataclass(frozen=True)
class OpStep:
    """One step of the element-wise chain.  The running value starts as
    ``a[i]``; each step combines it with ``rhs`` ("b", "imm", or None
    for unary ops) under ``op``."""

    op: str
    rhs: Optional[str] = None  # "b" | "imm" | None (unary)
    imm: float = 0.0

    def to_dict(self) -> Dict:
        data: Dict = {"op": self.op}
        if self.rhs is not None:
            data["rhs"] = self.rhs
        if self.rhs == "imm":
            data["imm"] = self.imm
        return data

    @staticmethod
    def from_dict(data: Dict) -> "OpStep":
        return OpStep(
            op=str(data["op"]),
            rhs=data.get("rhs"),
            imm=float(data.get("imm", 0.0)),
        )


@dataclass(frozen=True)
class CaseSpec:
    """A complete fuzz case.  ``sizes`` is innermost-first and shared by
    every array; the element type is stored by :class:`ElementType`
    name.  ``size_mods`` mutate the shared sizes (e.g. triangular
    iteration); per-array offset/stride modifiers live on the arrays."""

    seed: int
    family: str
    etype: str  # ElementType name: "F32", "I32", ...
    vector_bits: int
    sizes: Tuple[int, ...]
    inputs: Tuple[ArraySpec, ...]
    output: ArraySpec
    ops: Tuple[OpStep, ...]
    size_mods: Tuple[ModSpec, ...] = ()
    reduce: Optional[str] = None
    pred_cond: Optional[str] = None
    use_mac: bool = False
    indirect: Optional[IndirectSpec] = None

    # -- derived ------------------------------------------------------------

    @property
    def element_type(self) -> ElementType:
        return ElementType[self.etype]

    @property
    def ndims(self) -> int:
        return len(self.sizes)

    @property
    def is_float(self) -> bool:
        return self.element_type in (ElementType.F32, ElementType.F64)

    @property
    def arrays(self) -> Tuple[ArraySpec, ...]:
        return self.inputs + (self.output,)

    def array(self, name: str) -> ArraySpec:
        for arr in self.arrays:
            if arr.name == name:
                return arr
        raise KeyError(name)

    def mods_for(self, arr: ArraySpec, level: int) -> Tuple[ModSpec, ...]:
        """Modifiers affecting ``arr`` bound at ``level``: the shared
        size modifiers plus the array's own offset/stride modifiers."""
        shared = tuple(m for m in self.size_mods if m.level == level)
        own = tuple(m for m in arr.mods if m.level == level)
        return shared + own

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict:
        data: Dict = {
            "seed": self.seed,
            "family": self.family,
            "etype": self.etype,
            "vector_bits": self.vector_bits,
            "sizes": list(self.sizes),
            "inputs": [a.to_dict() for a in self.inputs],
            "output": self.output.to_dict(),
            "ops": [o.to_dict() for o in self.ops],
        }
        if self.size_mods:
            data["size_mods"] = [m.to_dict() for m in self.size_mods]
        if self.reduce is not None:
            data["reduce"] = self.reduce
        if self.pred_cond is not None:
            data["pred_cond"] = self.pred_cond
        if self.use_mac:
            data["use_mac"] = True
        if self.indirect is not None:
            data["indirect"] = self.indirect.to_dict()
        return data

    @staticmethod
    def from_dict(data: Dict) -> "CaseSpec":
        indirect = data.get("indirect")
        return CaseSpec(
            seed=int(data["seed"]),
            family=str(data["family"]),
            etype=str(data["etype"]),
            vector_bits=int(data["vector_bits"]),
            sizes=tuple(int(v) for v in data["sizes"]),
            inputs=tuple(ArraySpec.from_dict(a) for a in data["inputs"]),
            output=ArraySpec.from_dict(data["output"]),
            ops=tuple(OpStep.from_dict(o) for o in data["ops"]),
            size_mods=tuple(
                ModSpec.from_dict(m) for m in data.get("size_mods", ())
            ),
            reduce=data.get("reduce"),
            pred_cond=data.get("pred_cond"),
            use_mac=bool(data.get("use_mac", False)),
            indirect=IndirectSpec.from_dict(indirect) if indirect else None,
        )

    def with_(self, **kwargs) -> "CaseSpec":
        """A copy with fields replaced — the shrinker's workhorse."""
        return replace(self, **kwargs)

    # -- IR bridge ----------------------------------------------------------

    def to_ir(self, art):
        """This case as a placed :class:`repro.ir.Nest`.

        ``art`` (:class:`repro.fuzz.reference.Artifacts`) supplies the
        absolute placement — per-array base element indices and the
        index-vector address.  ``schedule="nested"`` pins every backend
        to its general loop-nest scaffolding so lowered fuzz programs
        stay byte-identical to the pre-IR lowering.
        """
        from repro.ir.nodes import Access, Indirect, Mod, Nest, Op

        def conv_mods(mods) -> Tuple[Mod, ...]:
            return tuple(
                Mod(m.level, m.target, m.behavior, m.displacement, m.count)
                for m in mods
            )

        def conv(arr: ArraySpec) -> Access:
            return Access(
                name=arr.name,
                base=art.views[arr.name].bias,
                offsets=arr.offsets,
                strides=arr.strides,
                mods=conv_mods(arr.mods),
            )

        indirect = None
        if self.indirect is not None:
            indirect = Indirect(self.indirect.array, art.idx_addr)
        return Nest(
            name=f"fuzz-{self.family}",
            etype=self.element_type,
            sizes=self.sizes,
            inputs=tuple(conv(arr) for arr in self.inputs),
            output=conv(self.output),
            ops=tuple(Op(o.op, o.rhs, o.imm) for o in self.ops),
            size_mods=conv_mods(self.size_mods),
            reduce=self.reduce,
            pred_cond=self.pred_cond,
            use_mac=self.use_mac,
            scalar_engine=self.family == "scalar",
            indirect=indirect,
            schedule="nested",
        )
