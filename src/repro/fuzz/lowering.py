"""Lowering of fuzz case specs to the four ISAs under test.

Each :class:`~repro.fuzz.spec.CaseSpec` is lowered to four programs that
must leave the output region in the same state:

* **uve** — descriptor-configured streams (``ss.*``) with stream-aware
  compute (``so.*``); modifiers and indirection are expressed in the
  descriptors, so the body is a flat loop.
* **scalar** — the RISC-V base ISA: explicit loop nest, working
  parameters in registers, one element per iteration.
* **sve** — the vector-length-agnostic baseline: the same loop nest
  with a ``whilelt``-predicated inner loop, gathers for non-unit
  strides.
* **neon** — the fixed 128-bit baseline: an unrolled main loop over
  full vectors plus a scalar tail; falls back to the scalar body when
  the case is not NEON-vectorisable (non-unit or dynamic innermost
  stride, predication).

Since the loop-nest IR refactor this module is a thin bridge: a spec is
placed into a :class:`repro.ir.Nest` (:meth:`CaseSpec.to_ir`, pinned to
the general ``nested`` schedule so programs stay byte-identical to the
pre-IR lowering) and emitted by the shared backends in
:mod:`repro.lower` — the same code that lowers the hand-written
kernels.  What keeps the differential oracle honest is no longer four
separate lowerings but the independence of the **reference**: the NumPy
expander (:mod:`repro.fuzz.reference`) never touches the IR or the
backends, and the per-ISA backends still interpret modifier/indirect
semantics through disjoint mechanisms (descriptors vs. explicit loop
scaffolding).

``inject`` selects a deliberate semantic distortion of the **UVE**
lowering only (see :data:`INJECTIONS`); the other backends and the
NumPy reference stay faithful, so an injected bug must surface as a
cross-ISA mismatch.  This is how the fuzzer's own detection power is
tested.
"""
from __future__ import annotations

from typing import Optional

from repro.fuzz.reference import Artifacts
from repro.fuzz.spec import CaseSpec
from repro.isa.program import Program
from repro.lower import INJECTIONS, ISAS, lower as lower_nest

__all__ = ["INJECTIONS", "ISAS", "lower"]


def lower(
    spec: CaseSpec,
    art: Artifacts,
    isa: str,
    inject: Optional[str] = None,
) -> Program:
    """Lower ``spec`` (materialised as ``art``) to one ISA's program."""
    if inject is not None and inject not in INJECTIONS:
        raise ValueError(f"unknown injection {inject!r}")
    if isa not in ISAS:
        raise ValueError(f"unknown isa {isa!r}")
    nest = spec.to_ir(art)
    return lower_nest(nest, isa, inject=inject if isa == "uve" else None)
