"""Lowering of fuzz case specs to the four ISAs under test.

Each :class:`~repro.fuzz.spec.CaseSpec` is lowered to four programs that
must leave the output region in the same state:

* **uve** — descriptor-configured streams (``ss.*``) with stream-aware
  compute (``so.*``); modifiers and indirection are expressed in the
  descriptors, so the body is a flat loop.
* **scalar** — the RISC-V base ISA: explicit loop nest, working
  parameters in registers, one element per iteration.
* **sve** — the vector-length-agnostic baseline: the same loop nest
  with a ``whilelt``-predicated inner loop, gathers for non-unit
  strides.
* **neon** — the fixed 128-bit baseline: an unrolled main loop over
  full vectors plus a scalar tail; falls back to the scalar body when
  the case is not NEON-vectorisable (non-unit or dynamic innermost
  stride, predication).

The scalar/SVE/NEON backends share the :class:`_Nest` scaffolding for
outer loops, static-modifier application, and row-address computation;
the UVE backend encodes the same semantics in stream descriptors, which
is exactly the redundancy the differential oracle exploits.

``inject`` selects a deliberate semantic distortion of the **UVE**
lowering only (see :data:`INJECTIONS`); the other backends and the
NumPy reference stay faithful, so an injected bug must surface as a
cross-ISA mismatch.  This is how the fuzzer's own detection power is
tested.
"""
from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.common.types import ElementType
from repro.fuzz.reference import Artifacts
from repro.fuzz.spec import ArraySpec, CaseSpec, ModSpec
from repro.isa.neon_ops import (
    NVDup,
    NVFma,
    NVLoad,
    NVOp,
    NVRed,
    NVStore,
    NVUnary,
    neon_lanes,
)
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import Reg, f, p, u, x
from repro.isa.scalar_ops import (
    BranchCmp,
    FLi,
    FMac,
    FOp,
    FUnary,
    Halt,
    IntOp,
    Jump,
    Li,
    Load,
    Store,
)
from repro.isa.sve_ops import (
    CmpPred,
    Dup,
    Fmla,
    IncElems,
    Index,
    Ld1,
    Ld1Gather,
    PTrue,
    Red,
    St1,
    St1Scatter,
    VOp,
    VUnary,
    WhileLt,
)
from repro.isa.uve_ops import (
    SoBranchEnd,
    SoDup,
    SoMac,
    SoMove,
    SoOp,
    SoOpScalar,
    SoPredComp,
    SoRedScalar,
    SoScalarRead,
    SoScalarWrite,
    SoUnary,
    SsApp,
    SsAppInd,
    SsAppMod,
    SsConfig1D,
    SsSta,
)
from repro.streams.descriptor import IndirectBehavior, Param, StaticBehavior
from repro.streams.pattern import Direction

#: the ISAs every case is lowered to, in oracle order.
ISAS = ("uve", "scalar", "sve", "neon")

#: deliberate UVE-lowering distortions used to validate the oracle.
INJECTIONS = {
    "uve-mod-extra-count": (
        "static modifiers are configured with count+1, firing once more "
        "than the spec (and the reference) intends"
    ),
    "uve-dim0-size-off-by-one": (
        "stream a's innermost dimension is configured one element short"
    ),
    "uve-ind-set-value": (
        "the indirect modifier uses SET_VALUE instead of SET_ADD, "
        "dropping the configured base offset from gathered addresses"
    ),
}

_PARAM = {"offset": Param.OFFSET, "size": Param.SIZE, "stride": Param.STRIDE}
_BEHAVIOR = {"add": StaticBehavior.ADD, "sub": StaticBehavior.SUB}
_INV_COND = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "gt": "le", "le": "gt"}

# Scalar register conventions shared by the scalar/SVE/NEON backends.
_ACC_F, _PART_F = f(1), f(2)
_A_F, _B_F, _RUN_F = f(8), f(9), f(10)
_ACC_X, _SIZE_X, _IDX_X, _J_X = x(1), x(2), x(3), x(4)
_T5, _PART_X, _T7 = x(5), x(6), x(7)
_ROW = {"a": x(8), "b": x(9), "c": x(10)}
_A_X, _B_X, _RUN_X = x(11), x(12), x(13)
#: registers available for dynamic (modifier-written) working parameters.
_DYN_POOL = (14, 15, 16, 17, 18, 19, 28, 29, 30)

Operand = Union[Reg, int]


def lower(
    spec: CaseSpec,
    art: Artifacts,
    isa: str,
    inject: Optional[str] = None,
) -> Program:
    """Lower ``spec`` (materialised as ``art``) to one ISA's program."""
    if inject is not None and inject not in INJECTIONS:
        raise ValueError(f"unknown injection {inject!r}")
    if isa == "uve":
        return _lower_uve(spec, art, inject)
    if isa == "scalar":
        return _lower_scalar(spec, art)
    if isa == "sve":
        return _lower_sve(spec, art)
    if isa == "neon":
        return _lower_neon(spec, art)
    raise ValueError(f"unknown isa {isa!r}")


def _has_b(spec: CaseSpec) -> bool:
    return any(arr.name == "b" for arr in spec.inputs)


def _imm_value(spec: CaseSpec, imm: float) -> Union[int, float]:
    return float(imm) if spec.is_float else int(imm)


# ---------------------------------------------------------------------------
# Shared loop-nest scaffolding (scalar / SVE / NEON)
# ---------------------------------------------------------------------------


class _Nest:
    """Explicit loop nest with working parameters in registers.

    Mirrors the Streaming Engine's traversal semantics: entering level
    ``k`` resets the level-``k-1`` working parameters to their
    configured values and rearms the modifiers bound at ``k``; bound
    modifiers fire before each of the first ``count`` iterations; at
    every level-0 entry the per-array row byte addresses are recomputed
    from the current working parameters.
    """

    def __init__(self, spec: CaseSpec, art: Artifacts, b: ProgramBuilder):
        self.spec = spec
        self.art = art
        self.b = b
        self.etype = spec.element_type
        self.width = self.etype.width
        self._label_seq = 0
        # Dynamic working parameters: (target, owner, target_level) -> reg.
        # Sizes are shared across arrays (owner "*"), offsets/strides are
        # per-array.  Each modifier instance gets its own firing counter.
        self.dyn: Dict[Tuple[str, str, int], Reg] = {}
        self.counters: List[Tuple[ModSpec, str, Reg]] = []
        pool = iter(_DYN_POOL)

        def take() -> Reg:
            try:
                return x(next(pool))
            except StopIteration:
                raise ValueError(
                    "case has too many dynamic parameters/modifiers for "
                    "the scalar lowering's register pool"
                ) from None

        for mod in spec.size_mods:
            key = ("size", "*", mod.level - 1)
            if key not in self.dyn:
                self.dyn[key] = take()
            self.counters.append((mod, "*", take()))
        for arr in spec.arrays:
            for mod in arr.mods:
                key = (mod.target, arr.name, mod.level - 1)
                if key not in self.dyn:
                    self.dyn[key] = take()
                self.counters.append((mod, arr.name, take()))

    # -- helpers ------------------------------------------------------------

    def label(self, stem: str) -> str:
        self._label_seq += 1
        return f"{stem}_{self._label_seq}"

    def row_arrays(self) -> Tuple[ArraySpec, ...]:
        """Arrays addressed per-row: inputs always; the output too,
        unless the family reduces into a single cell after the nest."""
        if self.spec.reduce is not None:
            return self.spec.inputs
        return self.spec.arrays

    def size_operand(self, level: int) -> Operand:
        return self.dyn.get(("size", "*", level), self.spec.sizes[level])

    def stride_operand(self, arr: ArraySpec, level: int) -> Operand:
        return self.dyn.get(("stride", arr.name, level), arr.strides[level])

    def _configured(self, target: str, owner: str, level: int) -> int:
        if target == "size":
            return self.spec.sizes[level]
        arr = self.spec.array(owner)
        return arr.offsets[level] if target == "offset" else arr.strides[level]

    # -- emission -----------------------------------------------------------

    def emit(self, inner: Callable[["_Nest"], None]) -> None:
        self._emit_level(self.spec.ndims - 1, inner)

    def _emit_level(self, k: int, inner: Callable[["_Nest"], None]) -> None:
        b, spec = self.b, self.spec
        if k == 0:
            self._emit_rows()
            inner(self)
            return
        # Entering level k: reset the level below, rearm bound modifiers.
        for (target, owner, lvl), reg in self.dyn.items():
            if lvl == k - 1:
                b.emit(Li(reg, self._configured(target, owner, lvl)))
        for mod, _owner, creg in self.counters:
            if mod.level == k:
                b.emit(Li(creg, 0))
        i_reg = x(20 + k)
        b.emit(Li(i_reg, 0))
        top, end = self.label(f"l{k}_top"), self.label(f"l{k}_end")
        b.label(top)
        b.emit(BranchCmp("ge", i_reg, self.size_operand(k), end))
        for mod, owner, creg in self.counters:
            if mod.level == k:
                self._emit_mod(mod, owner, creg)
        if spec.indirect is not None and k == 1:
            # idx[i1] -> _IDX_X (int32 vector laid out by materialize).
            b.emit(IntOp("mul", _T5, i_reg, 4))
            b.emit(IntOp("add", _T5, _T5, self.art.idx_addr))
            b.emit(Load(_IDX_X, _T5, 0, ElementType.I32))
        self._emit_level(k - 1, inner)
        b.emit(IntOp("add", i_reg, i_reg, 1))
        b.emit(Jump(top))
        b.label(end)

    def _emit_mod(self, mod: ModSpec, owner: str, creg: Reg) -> None:
        b = self.b
        skip = self.label("mod_skip")
        b.emit(BranchCmp("ge", creg, mod.count, skip))
        key = (mod.target, owner, mod.level - 1)
        reg = self.dyn[key]
        b.emit(IntOp(mod.behavior, reg, reg, mod.displacement))
        b.emit(IntOp("add", creg, creg, 1))
        b.label(skip)

    def _emit_rows(self) -> None:
        """Row byte address of every active array from the current
        working parameters: ``bias + sum_k(off_k + i_k * stride_k)``."""
        spec, art, b = self.spec, self.art, self.b
        for arr in self.row_arrays():
            row = _ROW[arr.name]
            const = art.views[arr.name].bias
            dyn_offsets = []
            for lvl in range(spec.ndims):
                key = ("offset", arr.name, lvl)
                if key in self.dyn:
                    dyn_offsets.append(self.dyn[key])
                else:
                    const += arr.offsets[lvl]
            b.emit(Li(row, const))
            for reg in dyn_offsets:
                b.emit(IntOp("add", row, row, reg))
            for lvl in range(1, spec.ndims):
                b.emit(IntOp("mul", _T5, x(20 + lvl), self.stride_operand(arr, lvl)))
                b.emit(IntOp("add", row, row, _T5))
            if spec.indirect is not None and spec.indirect.array == arr.name:
                b.emit(IntOp("add", row, row, _IDX_X))
            b.emit(IntOp("mul", row, row, self.width))


def _emit_acc_init(b: ProgramBuilder, spec: CaseSpec) -> None:
    if spec.reduce is None:
        return
    if spec.reduce == "min":
        value: Union[int, float] = float("inf") if spec.is_float else 1 << 62
    elif spec.reduce == "max":
        value = float("-inf") if spec.is_float else -(1 << 62)
    else:
        value = 0
    if spec.is_float:
        b.emit(FLi(_ACC_F, float(value)))
    else:
        b.emit(Li(_ACC_X, int(value)))


def _emit_acc_store(b: ProgramBuilder, spec: CaseSpec, art: Artifacts) -> None:
    etype = spec.element_type
    addr = (art.views["c"].bias + spec.output.offsets[0]) * etype.width
    b.emit(Li(_T7, addr))
    b.emit(Store(_ACC_F if spec.is_float else _ACC_X, _T7, 0, etype))


def _emit_acc_step(b: ProgramBuilder, spec: CaseSpec, part: Reg) -> None:
    if spec.is_float:
        b.emit(FOp(spec.reduce, _ACC_F, _ACC_F, part))
    else:
        b.emit(IntOp(spec.reduce, _ACC_X, _ACC_X, part))


def _emit_scalar_chain(
    b: ProgramBuilder, spec: CaseSpec, a_reg: Reg, b_reg: Reg, run_reg: Reg
) -> Reg:
    """The op chain on scalar registers; returns the result register."""
    is_f = spec.is_float
    run = a_reg
    for step in spec.ops:
        if step.rhs is None:
            if not is_f:
                raise ValueError("unary chain steps require a float etype")
            b.emit(FUnary(step.op, run_reg, run))
        else:
            rhs = b_reg if step.rhs == "b" else _imm_value(spec, step.imm)
            if is_f:
                b.emit(FOp(step.op, run_reg, run, rhs))
            else:
                b.emit(IntOp(step.op, run_reg, run, rhs))
        run = run_reg
    return run


# ---------------------------------------------------------------------------
# Scalar backend
# ---------------------------------------------------------------------------


def _scalar_body(nest: _Nest) -> None:
    """One element per iteration of an explicit dim-0 loop."""
    b, spec = nest.b, nest.spec
    etype, width, is_f = nest.etype, nest.width, nest.spec.is_float
    has_b = _has_b(spec)
    a_reg = _A_F if is_f else _A_X
    b_reg = _B_F if is_f else _B_X
    run_reg = _RUN_F if is_f else _RUN_X
    size_op = nest.size_operand(0)
    top, end = nest.label("s_top"), nest.label("s_end")
    b.emit(Li(_J_X, 0))
    b.label(top)
    b.emit(BranchCmp("ge", _J_X, size_op, end))
    b.emit(Load(a_reg, _ROW["a"], 0, etype))
    if has_b:
        b.emit(Load(b_reg, _ROW["b"], 0, etype))
    if spec.family == "predicated":
        skip = nest.label("p_skip")
        b.emit(BranchCmp(_INV_COND[spec.pred_cond], a_reg, b_reg, skip))
        _emit_acc_step(b, spec, a_reg)
        b.label(skip)
    elif spec.reduce is not None:
        if spec.use_mac:
            b.emit(FMac(_ACC_F, a_reg, b_reg))
        else:
            res = _emit_scalar_chain(b, spec, a_reg, b_reg, run_reg)
            _emit_acc_step(b, spec, res)
    else:
        res = _emit_scalar_chain(b, spec, a_reg, b_reg, run_reg)
        b.emit(Store(res, _ROW["c"], 0, etype))
    for arr in nest.row_arrays():
        s_op = nest.stride_operand(arr, 0)
        row = _ROW[arr.name]
        if isinstance(s_op, Reg):
            b.emit(IntOp("mul", _T5, s_op, width))
            b.emit(IntOp("add", row, row, _T5))
        else:
            b.emit(IntOp("add", row, row, s_op * width))
    b.emit(IntOp("add", _J_X, _J_X, 1))
    b.emit(Jump(top))
    b.label(end)


def _lower_scalar(spec: CaseSpec, art: Artifacts) -> Program:
    b = ProgramBuilder(f"fuzz-{spec.family}-scalar")
    nest = _Nest(spec, art, b)
    _emit_acc_init(b, spec)
    nest.emit(_scalar_body)
    if spec.reduce is not None:
        _emit_acc_store(b, spec, art)
    b.emit(Halt())
    return b.build()


# ---------------------------------------------------------------------------
# SVE backend
# ---------------------------------------------------------------------------


def _sve_access(nest: _Nest, arr: ArraySpec, vreg: Reg, store: bool) -> None:
    """Load/store one vector of ``arr``'s row under predicate p1.

    Unit, static innermost stride uses contiguous ld1/st1 indexed by the
    element counter; anything else goes through an index vector and
    gather/scatter.
    """
    b, etype = nest.b, nest.etype
    row = _ROW[arr.name]
    s_op = nest.stride_operand(arr, 0)
    if not isinstance(s_op, Reg) and s_op == 1:
        if store:
            b.emit(St1(vreg, p(1), row, index=_J_X, etype=etype))
        else:
            b.emit(Ld1(vreg, p(1), row, index=_J_X, etype=etype))
        return
    b.emit(IntOp("mul", _T5, _J_X, s_op))
    b.emit(Index(u(5), _T5, s_op, etype))
    if store:
        b.emit(St1Scatter(vreg, p(1), row, u(5), etype))
    else:
        b.emit(Ld1Gather(vreg, p(1), row, u(5), etype))


def _sve_chain(nest: _Nest, va: Reg, vb: Reg) -> Reg:
    b, spec, etype = nest.b, nest.spec, nest.etype
    run = va
    for i, step in enumerate(spec.ops):
        if step.rhs is None:
            b.emit(VUnary(step.op, u(3), p(1), run, etype))
        else:
            rhs = vb if step.rhs == "b" else u(16 + i)
            b.emit(VOp(step.op, u(3), p(1), run, rhs, etype))
        run = u(3)
    return run


def _sve_body(nest: _Nest) -> None:
    b, spec, etype = nest.b, nest.spec, nest.etype
    is_f = spec.is_float
    has_b = _has_b(spec)
    size_op = nest.size_operand(0)
    if isinstance(size_op, Reg):
        size_reg = size_op
    else:
        b.emit(Li(_SIZE_X, size_op))
        size_reg = _SIZE_X
    part = _PART_F if is_f else _PART_X
    top, end = nest.label("v_top"), nest.label("v_end")
    b.emit(Li(_J_X, 0))
    b.label(top)
    b.emit(BranchCmp("ge", _J_X, size_reg, end))
    b.emit(WhileLt(p(1), _J_X, size_reg, etype))
    _sve_access(nest, spec.array("a"), u(1), store=False)
    if has_b:
        _sve_access(nest, spec.array("b"), u(2), store=False)
    if spec.family == "predicated":
        b.emit(CmpPred(spec.pred_cond, p(2), p(1), u(1), u(2), etype))
        b.emit(Red("add", part, p(2), u(1), etype))
        _emit_acc_step(b, spec, part)
    elif spec.reduce is not None and spec.use_mac:
        b.emit(Fmla(u(4), p(1), u(1), u(2), etype))
    elif spec.reduce is not None:
        res = _sve_chain(nest, u(1), u(2))
        b.emit(Red(spec.reduce, part, p(1), res, etype))
        _emit_acc_step(b, spec, part)
    else:
        res = _sve_chain(nest, u(1), u(2))
        _sve_access(nest, spec.output, res, store=True)
    b.emit(IncElems(_J_X, etype))
    b.emit(Jump(top))
    b.label(end)


def _lower_sve(spec: CaseSpec, art: Artifacts) -> Program:
    b = ProgramBuilder(f"fuzz-{spec.family}-sve")
    nest = _Nest(spec, art, b)
    etype = spec.element_type
    _emit_acc_init(b, spec)
    for i, step in enumerate(spec.ops):
        if step.rhs == "imm":
            b.emit(Dup(u(16 + i), _imm_value(spec, step.imm), etype))
    if spec.use_mac:
        b.emit(Dup(u(4), _imm_value(spec, 0), etype))
    nest.emit(_sve_body)
    if spec.use_mac:
        b.emit(PTrue(p(2), etype))
        b.emit(Red("add", _ACC_F, p(2), u(4), etype))
    if spec.reduce is not None:
        _emit_acc_store(b, spec, art)
    b.emit(Halt())
    return b.build()


# ---------------------------------------------------------------------------
# NEON backend
# ---------------------------------------------------------------------------


def _neon_vectorizable(nest: _Nest) -> bool:
    """Fixed-width NEON only handles unit, never-modified innermost
    strides and has no predication; everything else runs scalar."""
    if nest.spec.family == "predicated":
        return False
    for arr in nest.row_arrays():
        if arr.strides[0] != 1:
            return False
        if ("stride", arr.name, 0) in nest.dyn:
            return False
    return True


def _neon_chain(nest: _Nest, va: Reg, vb: Reg) -> Reg:
    b, spec, etype = nest.b, nest.spec, nest.etype
    run = va
    for i, step in enumerate(spec.ops):
        if step.rhs is None:
            b.emit(NVUnary(step.op, u(3), run, etype))
        else:
            rhs = vb if step.rhs == "b" else u(16 + i)
            b.emit(NVOp(step.op, u(3), run, rhs, etype))
        run = u(3)
    return run


def _neon_body(nest: _Nest) -> None:
    b, spec, etype = nest.b, nest.spec, nest.etype
    is_f = spec.is_float
    has_b = _has_b(spec)
    lanes = neon_lanes(etype)
    part = _PART_F if is_f else _PART_X
    size_op = nest.size_operand(0)
    if isinstance(size_op, Reg):
        b.emit(IntOp("and", _SIZE_X, size_op, -lanes))
        main_op: Operand = _SIZE_X
    else:
        main_op = size_op - size_op % lanes
    a_reg = _A_F if is_f else _A_X
    b_reg = _B_F if is_f else _B_X
    run_reg = _RUN_F if is_f else _RUN_X
    vtop, vend = nest.label("n_top"), nest.label("n_end")
    b.emit(Li(_J_X, 0))
    b.label(vtop)
    b.emit(BranchCmp("ge", _J_X, main_op, vend))
    b.emit(NVLoad(u(1), _ROW["a"], 0, etype, post_inc=True))
    if has_b:
        b.emit(NVLoad(u(2), _ROW["b"], 0, etype, post_inc=True))
    if spec.reduce is not None and spec.use_mac:
        b.emit(NVFma(u(4), u(1), u(2), etype))
    elif spec.reduce is not None:
        res = _neon_chain(nest, u(1), u(2))
        b.emit(NVRed(spec.reduce, part, res, etype))
        _emit_acc_step(b, spec, part)
    else:
        res = _neon_chain(nest, u(1), u(2))
        b.emit(NVStore(res, _ROW["c"], 0, etype, post_inc=True))
    b.emit(IntOp("add", _J_X, _J_X, lanes))
    b.emit(Jump(vtop))
    b.label(vend)
    # Scalar tail: the row cursors were already advanced by post_inc.
    ttop, tend = nest.label("t_top"), nest.label("t_end")
    b.label(ttop)
    b.emit(BranchCmp("ge", _J_X, size_op, tend))
    b.emit(Load(a_reg, _ROW["a"], 0, etype))
    if has_b:
        b.emit(Load(b_reg, _ROW["b"], 0, etype))
    if spec.reduce is not None and spec.use_mac:
        b.emit(FMac(_ACC_F, a_reg, b_reg))
    elif spec.reduce is not None:
        res = _emit_scalar_chain(b, spec, a_reg, b_reg, run_reg)
        _emit_acc_step(b, spec, res)
    else:
        res = _emit_scalar_chain(b, spec, a_reg, b_reg, run_reg)
        b.emit(Store(res, _ROW["c"], 0, etype))
    for arr in nest.row_arrays():
        b.emit(IntOp("add", _ROW[arr.name], _ROW[arr.name], nest.width))
    b.emit(IntOp("add", _J_X, _J_X, 1))
    b.emit(Jump(ttop))
    b.label(tend)


def _lower_neon(spec: CaseSpec, art: Artifacts) -> Program:
    b = ProgramBuilder(f"fuzz-{spec.family}-neon")
    nest = _Nest(spec, art, b)
    etype = spec.element_type
    _emit_acc_init(b, spec)
    if not _neon_vectorizable(nest):
        nest.emit(_scalar_body)
        if spec.reduce is not None:
            _emit_acc_store(b, spec, art)
        b.emit(Halt())
        return b.build()
    for i, step in enumerate(spec.ops):
        if step.rhs == "imm":
            b.emit(NVDup(u(16 + i), _imm_value(spec, step.imm), etype))
    if spec.use_mac:
        b.emit(NVDup(u(4), _imm_value(spec, 0), etype))
    nest.emit(_neon_body)
    if spec.use_mac:
        b.emit(NVRed("add", _PART_F, u(4), etype))
        b.emit(FOp("add", _ACC_F, _ACC_F, _PART_F))
    if spec.reduce is not None:
        _emit_acc_store(b, spec, art)
    b.emit(Halt())
    return b.build()


# ---------------------------------------------------------------------------
# UVE backend
# ---------------------------------------------------------------------------


def _uve_configure(
    b: ProgramBuilder,
    spec: CaseSpec,
    art: Artifacts,
    arr: ArraySpec,
    reg: Reg,
    direction: Direction,
    inject: Optional[str],
) -> None:
    etype = spec.element_type
    base0 = art.views[arr.name].bias + arr.offsets[0]
    size0 = spec.sizes[0]
    if inject == "uve-dim0-size-off-by-one" and arr.name == "a" and size0 > 1:
        size0 -= 1

    if spec.indirect is not None and spec.indirect.array == arr.name:
        # Origin stream of row indices, then the indirect level on top
        # of the innermost descriptor (builders.indirect() shape).
        b.emit(
            SsConfig1D(
                u(3),
                Direction.LOAD,
                art.idx_addr // 4,
                spec.sizes[1],
                1,
                etype=ElementType.I32,
            )
        )
        b.emit(SsSta(reg, direction, base0, size0, arr.strides[0], etype=etype))
        behavior = (
            IndirectBehavior.SET_VALUE
            if inject == "uve-ind-set-value"
            else IndirectBehavior.SET_ADD
        )
        b.emit(SsAppInd(reg, Param.OFFSET, behavior, u(3), last=True))
        return

    parts: List[Tuple[str, object]] = []
    for level in range(1, spec.ndims):
        parts.append(
            ("app", (arr.offsets[level], spec.sizes[level], arr.strides[level]))
        )
        for mod in spec.mods_for(arr, level):
            parts.append(("mod", mod))
    if not parts:
        b.emit(
            SsConfig1D(reg, direction, base0, size0, arr.strides[0], etype=etype)
        )
        return
    b.emit(SsSta(reg, direction, base0, size0, arr.strides[0], etype=etype))
    for i, (kind, payload) in enumerate(parts):
        last = i == len(parts) - 1
        if kind == "app":
            off, size, stride = payload
            b.emit(SsApp(reg, off, size, stride, last=last))
        else:
            mod = payload
            count = mod.count + (1 if inject == "uve-mod-extra-count" else 0)
            b.emit(
                SsAppMod(
                    reg,
                    _PARAM[mod.target],
                    _BEHAVIOR[mod.behavior],
                    mod.displacement,
                    count,
                    last=last,
                )
            )


def _uve_chain(
    b: ProgramBuilder, spec: CaseSpec, operand_b: Optional[Reg], final: Optional[Reg]
) -> Reg:
    """The op chain on stream-aware vector ops.  ``final`` routes the
    last step straight into an output stream register (or None to keep
    the result in the u10 temporary)."""
    etype = spec.element_type
    run = u(0)
    if not spec.ops:
        if final is not None:
            b.emit(SoMove(final, run, etype))
            return final
        return run
    for i, step in enumerate(spec.ops):
        dest = final if (final is not None and i == len(spec.ops) - 1) else u(10)
        if step.rhs is None:
            b.emit(SoUnary(step.op, dest, run, etype))
        elif step.rhs == "b":
            b.emit(SoOp(step.op, dest, run, operand_b, etype))
        else:
            b.emit(SoOpScalar(step.op, dest, run, _imm_value(spec, step.imm), etype))
        run = dest
    return run


def _uve_prepare_b(b: ProgramBuilder, spec: CaseSpec) -> Optional[Reg]:
    """Stream b is consumed exactly once per loop iteration: directly
    when the chain references it once, via a u9 staging move when it is
    referenced several times (or not at all, to keep chunks aligned)."""
    if not _has_b(spec):
        return None
    uses = sum(1 for step in spec.ops if step.rhs == "b")
    if uses == 1:
        return u(1)
    b.emit(SoMove(u(9), u(1), spec.element_type))
    return u(9)


def _lower_uve(spec: CaseSpec, art: Artifacts, inject: Optional[str]) -> Program:
    b = ProgramBuilder(f"fuzz-{spec.family}-uve")
    etype = spec.element_type
    is_f = spec.is_float
    part = _PART_F if is_f else _PART_X
    acc = _ACC_F if is_f else _ACC_X

    _uve_configure(b, spec, art, spec.array("a"), u(0), Direction.LOAD, inject)
    if _has_b(spec):
        _uve_configure(b, spec, art, spec.array("b"), u(1), Direction.LOAD, inject)
    if spec.reduce is not None:
        c_base = art.views["c"].bias + spec.output.offsets[0]
        b.emit(SsConfig1D(u(2), Direction.STORE, c_base, 1, 1, etype=etype))
    else:
        _uve_configure(b, spec, art, spec.output, u(2), Direction.STORE, inject)

    _emit_acc_init(b, spec)
    if spec.use_mac:
        b.emit(SoDup(u(8), 0, etype))

    b.label("loop")
    if spec.family == "scalar":
        a_reg = _A_F if is_f else _A_X
        b_reg = _B_F if is_f else _B_X
        run_reg = _RUN_F if is_f else _RUN_X
        b.emit(SoScalarRead(a_reg, u(0), etype))
        if _has_b(spec):
            b.emit(SoScalarRead(b_reg, u(1), etype))
        res = _emit_scalar_chain(b, spec, a_reg, b_reg, run_reg)
        b.emit(SoScalarWrite(u(2), res, etype))
    elif spec.family == "predicated":
        b.emit(SoMove(u(8), u(0), etype))
        b.emit(SoMove(u(9), u(1), etype))
        b.emit(SoPredComp(spec.pred_cond, p(1), u(8), u(9), etype))
        b.emit(SoRedScalar("add", part, u(8), etype, pred=p(1)))
        _emit_acc_step(b, spec, part)
    elif spec.reduce is not None:
        if spec.use_mac:
            b.emit(SoMac(u(8), u(0), u(1), etype))
        else:
            operand_b = _uve_prepare_b(b, spec)
            res = _uve_chain(b, spec, operand_b, final=None)
            b.emit(SoRedScalar(spec.reduce, part, res, etype))
            _emit_acc_step(b, spec, part)
    else:
        operand_b = _uve_prepare_b(b, spec)
        _uve_chain(b, spec, operand_b, final=u(2))
    b.emit(SoBranchEnd(u(0), "loop"))

    if spec.reduce is not None:
        if spec.use_mac:
            b.emit(SoRedScalar("add", acc, u(8), etype))
        b.emit(SoScalarWrite(u(2), acc, etype))
    b.emit(Halt())
    return b.build()
