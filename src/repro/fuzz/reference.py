"""Independent reference semantics for fuzz cases.

This module interprets a :class:`~repro.fuzz.spec.CaseSpec` with code
written separately from both the ``streams`` descriptor machinery and
the per-ISA lowerings: a small recursive expander turns each array's
view of the nest into a flat list of element indices (honouring the
cumulative/reset semantics of static modifiers and the SET_ADD
semantics of the indirect level), NumPy computes the expected values,
and a sequential last-write-wins scatter produces the expected final
contents of the output region.

``materialize`` additionally lays the arrays out in a fresh
:class:`~repro.memory.backing.Memory` (disjoint 64-byte-aligned
regions, deterministic contents derived from the case seed) so every
lowering of the same spec starts from bit-identical memory.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.types import ElementType
from repro.fuzz.spec import ArraySpec, CaseSpec
from repro.memory.backing import Memory

#: rng stream ids per array, mixed with the case seed.
_RNG_LANE = {"a": 1, "b": 2, "c": 3, "idx": 4}


def _rng(spec: CaseSpec, lane: str) -> np.random.Generator:
    return np.random.default_rng([spec.seed & 0x7FFFFFFF, _RNG_LANE[lane]])


# ---------------------------------------------------------------------------
# Index expansion
# ---------------------------------------------------------------------------

def expand_indices(
    spec: CaseSpec,
    arr: ArraySpec,
    idx_values: Optional[np.ndarray] = None,
) -> List[int]:
    """Element indices touched by ``arr``, in iteration order.

    Mirrors the Streaming Engine's traversal semantics from first
    principles: per-level working parameters are reset to their
    configured values when the level above (re)starts; modifiers bound
    at a level fire before each of its first ``count`` iterations; the
    indirect level (gather/scatter) sets the row offset to
    ``configured + index`` per iteration of level 1.
    """
    sizes, offsets, strides = spec.sizes, arr.offsets, arr.strides
    ndims = len(sizes)
    indirect_here = (
        spec.indirect is not None and spec.indirect.array == arr.name
    )
    mods_by_level: Dict[int, Tuple] = {}
    for level in range(1, ndims):
        mods = spec.mods_for(arr, level)
        if mods:
            mods_by_level[level] = mods

    work_off = list(offsets)
    work_str = list(strides)
    work_size = list(sizes)
    out: List[int] = []

    def run_level(k: int, disp: int) -> None:
        if k == 0:
            off, step = work_off[0], work_str[0]
            for i in range(work_size[0]):
                out.append(disp + off + i * step)
            return
        # (Re)starting level k resets the level below to its configured
        # parameters and rearms the modifiers bound here.
        work_off[k - 1] = offsets[k - 1]
        work_str[k - 1] = strides[k - 1]
        work_size[k - 1] = sizes[k - 1]
        mods = mods_by_level.get(k, ())
        fired = [0] * len(mods)
        off, step, count = work_off[k], work_str[k], work_size[k]
        for i in range(count):
            for m_i, mod in enumerate(mods):
                if fired[m_i] < mod.count:
                    delta = mod.signed_displacement
                    if mod.target == "offset":
                        work_off[k - 1] += delta
                    elif mod.target == "stride":
                        work_str[k - 1] += delta
                    else:
                        work_size[k - 1] += delta
                    fired[m_i] += 1
            if indirect_here and k == 1:
                work_off[0] = offsets[0] + int(idx_values[i])
            run_level(k - 1, disp + off + i * step)

    run_level(ndims - 1, 0)
    return out


def output_geometry(spec: CaseSpec) -> Tuple[Tuple[int, ...], ArraySpec]:
    """The output's effective nest.  Reducing families collapse the
    output to a single cell; everything else shares the case nest."""
    if spec.reduce is not None:
        return (1,), spec.output
    return spec.sizes, spec.output


def expand_output_indices(
    spec: CaseSpec, idx_values: Optional[np.ndarray] = None
) -> List[int]:
    if spec.reduce is not None:
        return [spec.output.offsets[0]]
    return expand_indices(spec, spec.output, idx_values)


# ---------------------------------------------------------------------------
# Index vector (gather / scatter)
# ---------------------------------------------------------------------------

def index_vector(spec: CaseSpec) -> Optional[np.ndarray]:
    """The int32 row-index vector for gather/scatter cases, derived
    deterministically from the case seed and sampled so every row stays
    inside the indirect array's fixed region."""
    ind = spec.indirect
    if ind is None:
        return None
    arr = spec.array(ind.array)
    inner_extent = (spec.sizes[0] - 1) * arr.strides[0] + 1
    high = ind.region - inner_extent
    if high < 0:
        raise ValueError(
            f"indirect region {ind.region} too small for inner extent "
            f"{inner_extent}"
        )
    rows = spec.sizes[1]
    return _rng(spec, "idx").integers(0, high + 1, size=rows).astype(np.int32)


# ---------------------------------------------------------------------------
# Value semantics
# ---------------------------------------------------------------------------

_BINARY = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "xor": np.bitwise_xor,
}
_COMPARE = {
    "eq": np.equal,
    "ne": np.not_equal,
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
}


def chain_values(spec: CaseSpec, va: np.ndarray, vb: Optional[np.ndarray]):
    """Per-element values of the op chain, computed in the case dtype
    (the same width the vector ISAs use)."""
    dtype = spec.element_type.dtype
    run = va.astype(dtype, copy=True)
    for step in spec.ops:
        if step.rhs is None:
            run = np.abs(run) if step.op == "abs" else -run
            run = run.astype(dtype, copy=False)
            continue
        if step.rhs == "b":
            rhs = vb
        else:
            rhs = np.dtype(dtype).type(step.imm)
        run = _BINARY[step.op](run, rhs).astype(dtype, copy=False)
    return run


def reduce_values(spec: CaseSpec, values: np.ndarray, mask=None) -> float:
    """Reference reduction, accumulated in wide precision (float64 /
    int64) — per-ISA chunking error is absorbed by oracle tolerances."""
    wide = np.float64 if spec.is_float else np.int64
    vals = values.astype(wide)
    if mask is not None:
        vals = vals[mask]
    if vals.size == 0:
        return 0  # the hardware identity: empty reductions yield zero
    if spec.reduce == "min":
        return vals.min()
    if spec.reduce == "max":
        return vals.max()
    return vals.sum()


# ---------------------------------------------------------------------------
# Materialisation
# ---------------------------------------------------------------------------

@dataclass
class ArrayView:
    """One array's placement: region byte address/length plus the
    region-relative element index of every iteration step."""

    name: str
    addr: int
    length: int  # region length, elements
    bias: int  # absolute element index added to spec-level indices
    rel: np.ndarray  # region-relative indices, iteration order

    @property
    def base_elem(self) -> int:
        return self.addr // self.width if self.width else 0

    width: int = 4


@dataclass
class Artifacts:
    """Everything the oracle needs: the initial memory image, array
    placements, the index vector, and the expected final output."""

    spec: CaseSpec
    memory: Memory
    views: Dict[str, ArrayView]
    idx_addr: Optional[int]
    idx_values: Optional[np.ndarray]
    ref_c: np.ndarray  # expected final contents of the c region
    total: int  # elements iterated by the nest

    def output_region(self, memory: Memory) -> np.ndarray:
        view = self.views["c"]
        etype = self.spec.element_type
        return memory.ndarray(view.addr, (view.length,), etype.dtype).copy()


def materialize(spec: CaseSpec) -> Artifacts:
    """Expand, place, and populate a case; compute its reference output."""
    etype = spec.element_type
    width = etype.width
    idx_values = index_vector(spec)

    indices: Dict[str, List[int]] = {}
    for arr in spec.inputs:
        indices[arr.name] = expand_indices(spec, arr, idx_values)
    indices["c"] = expand_output_indices(spec, idx_values)
    total = len(indices[spec.inputs[0].name])

    # Region spans.  The indirect array's span is pinned by the spec so
    # index values could be sampled without seeing the data first.
    spans: Dict[str, Tuple[int, int]] = {}
    for name, idx in indices.items():
        if spec.indirect is not None and spec.indirect.array == name:
            spans[name] = (0, spec.indirect.region - 1)
        else:
            spans[name] = (min(idx), max(idx))

    need = sum((hi - lo + 1) * width + 64 for lo, hi in spans.values())
    if idx_values is not None:
        need += len(idx_values) * 4 + 64
    size = max(1 << 16, 1 << (int(need + 4096).bit_length()))
    memory = Memory(size=size)

    views: Dict[str, ArrayView] = {}
    for name in ("a", "b", "c"):
        if name not in indices:
            continue
        lo, hi = spans[name]
        length = hi - lo + 1
        addr = memory.alloc(length * width, align=64)
        bias = addr // width - lo
        rel = np.asarray(indices[name], dtype=np.int64) - lo
        if rel.size and (rel.min() < 0 or rel.max() >= length):
            raise ValueError(f"array {name!r} indices escape its region")
        views[name] = ArrayView(
            name=name, addr=addr, length=length, bias=bias, rel=rel,
            width=width,
        )

    idx_addr = None
    if idx_values is not None:
        idx_addr = memory.alloc(len(idx_values) * 4, align=64)
        memory.ndarray(idx_addr, (len(idx_values),), np.int32)[:] = idx_values

    # Deterministic contents (the output region too: stale-data holes in
    # any lowering then diverge from the reference instead of hiding).
    for name, view in views.items():
        region = memory.ndarray(view.addr, (view.length,), etype.dtype)
        rng = _rng(spec, name)
        if spec.is_float:
            region[:] = rng.standard_normal(view.length).astype(etype.dtype)
        else:
            region[:] = rng.integers(-64, 65, size=view.length).astype(
                etype.dtype
            )

    # Reference output.
    va = memory.ndarray(
        views["a"].addr, (views["a"].length,), etype.dtype
    )[views["a"].rel]
    vb = None
    if "b" in views:
        vb = memory.ndarray(
            views["b"].addr, (views["b"].length,), etype.dtype
        )[views["b"].rel]
    values = chain_values(spec, va, vb)
    if spec.reduce is not None and spec.use_mac:
        # mac reductions consume both streams: c = reduce(a * b).
        values = np.multiply(va, vb).astype(etype.dtype)

    ref_c = memory.ndarray(
        views["c"].addr, (views["c"].length,), etype.dtype
    ).copy()
    if spec.reduce is not None:
        mask = None
        if spec.pred_cond is not None:
            mask = _COMPARE[spec.pred_cond](va, vb)
            values = va.astype(etype.dtype)
        result = reduce_values(spec, values, mask)
        ref_c[views["c"].rel[0]] = np.dtype(etype.dtype).type(result)
    else:
        # Sequential last-write-wins scatter: NumPy fancy-index stores
        # are unspecified under duplicate indices, the hardware is not.
        region = ref_c
        vals = values.astype(etype.dtype)
        for pos, val in zip(views["c"].rel, vals):
            region[pos] = val
    return Artifacts(
        spec=spec,
        memory=memory,
        views=views,
        idx_addr=idx_addr,
        idx_values=idx_values,
        ref_c=ref_c,
        total=total,
    )


ELEMENT_TYPES: Tuple[ElementType, ...] = (
    ElementType.F32,
    ElementType.F64,
    ElementType.I32,
    ElementType.I64,
)
