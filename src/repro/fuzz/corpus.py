"""Replayable failure corpus.

Every failing case the fuzzer finds is shrunk and written as one JSON
file — the spec plus discovery metadata (campaign seed, injection,
failure kinds).  Corpus files are committed under ``tests/fuzz/corpus``
and replayed by the tier-1 suite (``tests/fuzz/test_corpus.py``), so a
once-found bug permanently guards against regression.
"""
from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.fuzz.spec import CaseSpec

#: schema version of corpus files; bump on incompatible spec changes.
CORPUS_FORMAT = 1


def case_filename(spec: CaseSpec, inject: Optional[str] = None) -> str:
    """Deterministic, content-addressed corpus file name."""
    key = json.dumps(
        {"spec": spec.to_dict(), "inject": inject}, sort_keys=True
    )
    digest = hashlib.sha256(key.encode()).hexdigest()[:12]
    return f"{spec.family}-{digest}.json"


def save_case(
    path: Union[str, Path],
    spec: CaseSpec,
    meta: Optional[Dict] = None,
) -> Path:
    """Write one corpus entry; returns the path written."""
    path = Path(path)
    payload = {
        "format": CORPUS_FORMAT,
        "spec": spec.to_dict(),
        "meta": dict(meta or {}),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_case(path: Union[str, Path]) -> Tuple[CaseSpec, Dict]:
    """Read one corpus entry back as ``(spec, meta)``."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != CORPUS_FORMAT:
        raise ValueError(
            f"{path}: corpus format {data.get('format')!r}, "
            f"expected {CORPUS_FORMAT}"
        )
    return CaseSpec.from_dict(data["spec"]), dict(data.get("meta", {}))
