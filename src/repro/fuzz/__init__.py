"""Cross-ISA differential fuzzing for the UVE reproduction.

The subsystem samples loop-nest specifications (:mod:`repro.fuzz.spec`,
:mod:`repro.fuzz.generator`) inside the hardware limits of the Streaming
Engine, lowers each spec to four independently-written programs — UVE
(descriptor streams), SVE-like (predicated vector loops), NEON-like
(fixed-width loops + scalar tails) and scalar (explicit address
arithmetic) — plus a NumPy reference (:mod:`repro.fuzz.lowering`,
:mod:`repro.fuzz.reference`), and checks that all of them compute the
same result (:mod:`repro.fuzz.oracle`).  Failures are delta-debugged to
minimal reproducers (:mod:`repro.fuzz.shrinker`) and persisted as
replayable JSON cases (:mod:`repro.fuzz.corpus`).

Campaigns run in parallel with an on-disk result cache
(:mod:`repro.fuzz.campaign`); the CLI lives in ``python -m repro.fuzz``.
"""
from repro.fuzz.corpus import load_case, save_case
from repro.fuzz.generator import generate_spec
from repro.fuzz.oracle import CaseReport, run_case
from repro.fuzz.shrinker import shrink
from repro.fuzz.spec import ArraySpec, CaseSpec, IndirectSpec, ModSpec, OpStep

__all__ = [
    "ArraySpec",
    "CaseSpec",
    "CaseReport",
    "IndirectSpec",
    "ModSpec",
    "OpStep",
    "generate_spec",
    "load_case",
    "run_case",
    "save_case",
    "shrink",
]
