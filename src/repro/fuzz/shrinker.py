"""Delta-debugging shrinker for failing fuzz cases.

Given a failing spec and a ``failing(spec) -> bool`` predicate (usually
"run the oracle with the same injection and see if it still fails"),
``shrink`` greedily applies simplification candidates — drop the outer
loop level, shrink sizes, strip modifiers and chain ops, zero offsets,
normalise strides, narrow the element type — restarting from the most
aggressive candidates after every accepted step, until a fixpoint or
the evaluation budget is reached.

Candidates that would make the case ill-defined (a row shrinking to
zero elements, an indirect region smaller than its inner extent, a
non-positive output stride) are filtered by :func:`valid` *before*
running, so the shrinker cannot wander from the original bug to a
degenerate always-failing spec.
"""
from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.fuzz.spec import ArraySpec, CaseSpec


def valid(spec: CaseSpec) -> bool:
    """Is ``spec`` well-defined for every backend?"""
    if spec.ndims < 1 or any(s < 1 for s in spec.sizes):
        return False
    if spec.indirect is not None:
        if spec.ndims != 2:
            return False
        arr = spec.array(spec.indirect.array)
        extent = (spec.sizes[0] - 1) * arr.strides[0] + 1
        if arr.strides[0] < 1 or spec.indirect.region < extent:
            return False
        if arr.mods or any(o != 0 for o in arr.offsets):
            return False
    for mod in spec.size_mods:
        if not 1 <= mod.level < spec.ndims:
            return False
        if mod.behavior == "sub":
            if spec.sizes[mod.level - 1] - mod.displacement * mod.count < 1:
                return False
    for arr in spec.arrays:
        for mod in arr.mods:
            if not 1 <= mod.level < spec.ndims:
                return False
            if mod.target == "stride" and mod.behavior == "sub":
                floor = 1 if arr.name == "c" and mod.level == 1 else 0
                left = arr.strides[mod.level - 1] - mod.displacement * mod.count
                if left < floor:
                    return False
    if spec.reduce is None and spec.output.strides[0] < 1:
        return False
    return True


def _drop_outer_dim(spec: CaseSpec) -> Optional[CaseSpec]:
    if spec.ndims < 2 or spec.indirect is not None:
        return None
    cut = spec.ndims - 1

    def trim(arr: ArraySpec) -> ArraySpec:
        return ArraySpec(
            arr.name,
            arr.offsets[:cut],
            arr.strides[:cut],
            tuple(m for m in arr.mods if m.level < cut),
        )

    return spec.with_(
        sizes=spec.sizes[:cut],
        inputs=tuple(trim(a) for a in spec.inputs),
        output=spec.output if spec.reduce is not None else trim(spec.output),
        size_mods=tuple(m for m in spec.size_mods if m.level < cut),
    )


def _candidates(spec: CaseSpec) -> Iterator[CaseSpec]:
    """Simplifications of ``spec``, most aggressive first."""
    dropped = _drop_outer_dim(spec)
    if dropped is not None:
        yield dropped
    for k, size in enumerate(spec.sizes):
        if size > 1:
            yield spec.with_(
                sizes=tuple(1 if i == k else s for i, s in enumerate(spec.sizes))
            )
    for k, size in enumerate(spec.sizes):
        if size > 2:
            yield spec.with_(
                sizes=tuple(
                    size // 2 if i == k else s for i, s in enumerate(spec.sizes)
                )
            )
    if spec.ops:
        yield spec.with_(ops=())
        yield spec.with_(ops=spec.ops[:-1])
    if spec.size_mods:
        yield spec.with_(size_mods=())
    for which, arr in enumerate(spec.arrays):
        if arr.mods:
            stripped = ArraySpec(arr.name, arr.offsets, arr.strides, ())
            yield _replace_array(spec, which, stripped)
    for which, arr in enumerate(spec.arrays):
        if spec.indirect is not None and spec.indirect.array == arr.name:
            continue
        if any(o != 0 for o in arr.offsets):
            zeroed = ArraySpec(
                arr.name, (0,) * len(arr.offsets), arr.strides, arr.mods
            )
            yield _replace_array(spec, which, zeroed)
        if any(s != 1 for s in arr.strides):
            unit = ArraySpec(
                arr.name, arr.offsets, (1,) * len(arr.strides), arr.mods
            )
            yield _replace_array(spec, which, unit)
    for which, arr in enumerate(spec.arrays):
        for m_i, mod in enumerate(arr.mods):
            if mod.displacement > 1:
                weakened = mod.__class__(
                    mod.level, mod.target, mod.behavior, 1, mod.count
                )
                mods = tuple(
                    weakened if j == m_i else m for j, m in enumerate(arr.mods)
                )
                yield _replace_array(
                    spec, which, ArraySpec(arr.name, arr.offsets, arr.strides, mods)
                )
            if mod.count > 1:
                weakened = mod.__class__(
                    mod.level, mod.target, mod.behavior, mod.displacement, 1
                )
                mods = tuple(
                    weakened if j == m_i else m for j, m in enumerate(arr.mods)
                )
                yield _replace_array(
                    spec, which, ArraySpec(arr.name, arr.offsets, arr.strides, mods)
                )
    for m_i, mod in enumerate(spec.size_mods):
        if mod.count > 1:
            weakened = mod.__class__(
                mod.level, mod.target, mod.behavior, mod.displacement, 1
            )
            yield spec.with_(
                size_mods=tuple(
                    weakened if j == m_i else m
                    for j, m in enumerate(spec.size_mods)
                )
            )
    if spec.indirect is not None:
        arr = spec.array(spec.indirect.array)
        extent = (spec.sizes[0] - 1) * arr.strides[0] + 1
        if spec.indirect.region > extent + 4:
            yield spec.with_(
                indirect=spec.indirect.__class__(spec.indirect.array, extent + 4)
            )
    if spec.etype != "F32":
        yield spec.with_(etype="F32")
    if spec.vector_bits > 128:
        yield spec.with_(vector_bits=128)


def _replace_array(spec: CaseSpec, which: int, new: ArraySpec) -> CaseSpec:
    arrays = list(spec.arrays)
    arrays[which] = new
    inputs = tuple(arrays[: len(spec.inputs)])
    return spec.with_(inputs=inputs, output=arrays[-1])


def shrink(
    spec: CaseSpec,
    failing: Callable[[CaseSpec], bool],
    max_evals: int = 300,
) -> CaseSpec:
    """Smallest spec (under the candidate moves) that still fails."""
    current = spec
    evals = 0
    progress = True
    while progress and evals < max_evals:
        progress = False
        for candidate in _candidates(current):
            if evals >= max_evals:
                break
            if candidate == current or not valid(candidate):
                continue
            evals += 1
            try:
                still_failing = failing(candidate)
            except Exception:  # noqa: BLE001 — invalid candidate, skip
                continue
            if still_failing:
                current = candidate
                progress = True
                break
    return current
