"""Parallel fuzz campaigns with a persistent result cache.

A campaign is ``cases`` independently generated specs from one seed.
Case ``index`` is a pure function of ``(seed, index)``, so sharding the
campaign across a :class:`~concurrent.futures.ProcessPoolExecutor`
(``--jobs N``) cannot change which cases run — only how fast.

Results ride the PR-1 harness machinery: each case's oracle verdict is
stored in the :class:`~repro.harness.diskcache.ResultCache` (as a
schemaless dict payload) under a fingerprint of the spec plus the
oracle configuration, salted with the code-version hash — so re-running
a campaign after a harness-only edit is instant, while any simulator or
fuzzer change invalidates every cached verdict.

Failures are shrunk in the parent process (delta debugging is
inherently sequential) and written to the corpus directory for
replay by the tier-1 suite.
"""
from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.fuzz.corpus import case_filename, save_case
from repro.fuzz.generator import generate_spec
from repro.fuzz.oracle import CaseReport, run_case
from repro.fuzz.shrinker import shrink
from repro.fuzz.spec import CaseSpec
from repro.harness.diskcache import ResultCache, code_version_salt
from repro.harness.fingerprint import fingerprint

#: bump to invalidate cached verdicts on oracle-protocol changes.
ORACLE_VERSION = 1


def case_key(spec: CaseSpec, inject: Optional[str], timing: bool) -> str:
    """Cache key of one case's oracle verdict."""
    return fingerprint(
        {
            "fuzz": ORACLE_VERSION,
            "spec": spec.to_dict(),
            "inject": inject,
            "timing": timing,
        }
    )


def fuzz_cache(root: Optional[Path] = None) -> ResultCache:
    """The fuzz verdict cache (dict payloads, code-version salted)."""
    return ResultCache(root=root, salt=code_version_salt(), record_cls=dict)


@dataclass
class CampaignSummary:
    """Aggregate outcome of one campaign."""

    seed: int
    cases: int
    inject: Optional[str]
    failures: List[Dict] = field(default_factory=list)  # per-case report dicts
    shrunk: List[Dict] = field(default_factory=list)  # shrunk spec dicts
    corpus_files: List[str] = field(default_factory=list)
    timing_checked: int = 0
    cache_hits: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "cases": self.cases,
            "inject": self.inject,
            "ok": self.ok,
            "failures": self.failures,
            "shrunk": self.shrunk,
            "corpus_files": self.corpus_files,
            "timing_checked": self.timing_checked,
            "cache_hits": self.cache_hits,
        }


def _run_index(
    seed: int,
    index: int,
    inject: Optional[str],
    timing_every: int,
    max_elems: int,
) -> Dict:
    """One case, as a picklable dict (process-pool worker entry)."""
    spec = generate_spec(seed, index, max_elems=max_elems)
    check_timing = timing_every > 0 and index % timing_every == 0
    report = run_case(spec, inject=inject, check_timing=check_timing)
    out = report.to_dict()
    out["index"] = index
    return out


def run_campaign(
    seed: int,
    cases: int,
    jobs: int = 1,
    inject: Optional[str] = None,
    timing_every: int = 10,
    shrink_failures: bool = True,
    corpus_dir: Optional[Path] = None,
    cache: Optional[ResultCache] = None,
    max_elems: int = 1024,
    progress: Optional[Callable[[Dict], None]] = None,
) -> CampaignSummary:
    """Run ``cases`` cases of campaign ``seed`` and collect verdicts.

    ``progress`` (if given) receives each case's report dict as it
    completes — out of order under ``jobs > 1``.
    """
    summary = CampaignSummary(seed=seed, cases=cases, inject=inject)
    pending: List[int] = []
    reports: Dict[int, Dict] = {}
    keys: Dict[int, str] = {}
    for index in range(cases):
        spec = generate_spec(seed, index, max_elems=max_elems)
        check_timing = timing_every > 0 and index % timing_every == 0
        key = case_key(spec, inject, check_timing)
        keys[index] = key
        cached = cache.load(key) if cache is not None else None
        if cached is not None:
            cached = dict(cached)
            cached["index"] = index
            reports[index] = cached
            summary.cache_hits += 1
        else:
            pending.append(index)

    def finish(report: Dict) -> None:
        index = report["index"]
        reports[index] = report
        if cache is not None:
            body = dict(report)
            body.pop("index", None)
            cache.store(keys[index], body)
        if progress is not None:
            progress(report)

    if jobs <= 1 or len(pending) <= 1:
        for index in pending:
            finish(_run_index(seed, index, inject, timing_every, max_elems))
    else:
        workers = min(jobs, len(pending), os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_index, seed, index, inject, timing_every, max_elems
                )
                for index in pending
            ]
            for future in as_completed(futures):
                finish(future.result())

    for index in range(cases):
        report = reports[index]
        if report.get("timing_checked"):
            summary.timing_checked += 1
        if report["ok"]:
            continue
        summary.failures.append(report)
        if not shrink_failures:
            continue
        spec = CaseSpec.from_dict(report["spec"])
        small = shrink(spec, lambda s: not run_case(s, inject=inject).ok)
        small_report = run_case(small, inject=inject)
        summary.shrunk.append(small.to_dict())
        if corpus_dir is not None:
            path = Path(corpus_dir) / case_filename(small, inject)
            save_case(
                path,
                small,
                meta={
                    "campaign_seed": seed,
                    "case_index": index,
                    "inject": inject,
                    "failures": [
                        fl.to_dict() for fl in small_report.failures
                    ],
                },
            )
            summary.corpus_files.append(str(path))
    return summary
