"""Seeded, reproducible sampling of fuzz case specs.

``generate_spec(seed, index)`` is a pure function of its arguments:
case ``index`` of campaign ``seed`` is always the same spec, regardless
of how many worker processes the campaign is sharded across.  The
sampler covers the UVE configuration space the paper exercises — loop
nests up to three dimensions, per-array strides/offsets, static
modifiers (offset/size/stride) within the ``streams.limits`` bounds,
indirect gather/scatter levels, four element types, three vector
lengths, predication, and compute-op chains — while enforcing the
constraints that keep a case well-defined for *every* backend:

* every row keeps at least one element under all modifier schedules
  (a zero-size row would never raise the UVE end-of-dimension flag);
* the output's innermost stride stays positive, so element addresses
  within one store chunk are distinct (vector scatters have no
  intra-chunk ordering);
* indirect arrays take no modifiers and zero offsets — their region is
  pinned in the spec so index values can be sampled in-bounds before
  any data exists;
* integer magnitudes are bounded (values in ±64, at most two ``mul``
  steps) so int32 never wraps and NumPy/Python arithmetic agree;
* the total element count is capped, so a campaign's cost is bounded.
"""
from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.fuzz.reference import expand_indices, index_vector
from repro.fuzz.spec import (
    ArraySpec,
    CaseSpec,
    COMPARE_OPS,
    FLOAT_OPS,
    INT_OPS,
    IndirectSpec,
    ModSpec,
    OpStep,
    REDUCE_OPS,
    UNARY_OPS,
)

_ETYPES = ("F32", "F64", "I32", "I64")
_VECTOR_BITS = (128, 256, 512)
_MIX = 0x9E3779B97F4A7C15


def _mix(seed: int, index: int, attempt: int) -> int:
    h = (seed * _MIX + index * 0xBF58476D1CE4E5B9 + attempt * 0x94D049BB133111EB)
    h &= (1 << 63) - 1
    return h ^ (h >> 29)


def generate_spec(seed: int, index: int, max_elems: int = 1024) -> CaseSpec:
    """Case ``index`` of campaign ``seed`` — deterministic and
    independent of sharding.  Oversized samples are redrawn; a tiny
    always-valid case is the (never observed in practice) backstop."""
    for attempt in range(32):
        case_seed = _mix(seed, index, attempt)
        spec = _sample(random.Random(case_seed), case_seed)
        if spec is None:
            continue
        total = _total_elements(spec)
        if 1 <= total <= max_elems:
            return spec
    case_seed = _mix(seed, index, 99)
    return CaseSpec(
        seed=case_seed,
        family="elementwise",
        etype="F32",
        vector_bits=256,
        sizes=(8,),
        inputs=(ArraySpec("a", (0,), (1,)),),
        output=ArraySpec("c", (0,), (1,)),
        ops=(),
    )


def _total_elements(spec: CaseSpec) -> int:
    idx = index_vector(spec)
    return len(expand_indices(spec, spec.inputs[0], idx))


def _sample(r: random.Random, case_seed: int) -> Optional[CaseSpec]:
    family = r.choices(
        ("elementwise", "reduction", "predicated", "scalar", "gather", "scatter"),
        weights=(30, 20, 10, 10, 15, 15),
    )[0]
    etype = r.choice(_ETYPES)
    is_float = etype in ("F32", "F64")
    vector_bits = r.choice(_VECTOR_BITS)

    indirect_name = {"gather": "a", "scatter": "c"}.get(family)
    if indirect_name is not None:
        ndims = 2
    else:
        ndims = r.choices((1, 2, 3), weights=(30, 45, 25))[0]
    sizes = tuple(
        [r.randint(1, 16)] + [r.randint(1, 6) for _ in range(ndims - 1)]
    )

    # Compute shape.
    reduce_op = None
    pred_cond = None
    use_mac = False
    if family == "predicated":
        # Add is the only reduction whose identity matches the hardware's
        # empty-predicate result (0), so predicated cases are add-reduce.
        reduce_op = "add"
        pred_cond = r.choice(COMPARE_OPS)
        ops: Tuple[OpStep, ...] = ()
    elif family == "reduction":
        reduce_op = r.choice(REDUCE_OPS)
        # mac is additive accumulation (acc += a*b) in every backend, so
        # it only composes with the add reduction.
        use_mac = is_float and reduce_op == "add" and r.random() < 0.4
        ops = () if use_mac else _sample_ops(r, is_float, 2)
    else:
        ops = _sample_ops(r, is_float, 2 if family == "scalar" else 3)
    need_b = use_mac or family == "predicated" or any(
        s.rhs == "b" for s in ops
    )

    # Shared size modifiers (triangular-style iteration).  Excluded for
    # indirect families: the indirect region is pinned from the
    # *configured* inner extent, which a size modifier would outgrow.
    size_mods: Tuple[ModSpec, ...] = ()
    if ndims >= 2 and indirect_name is None and r.random() < 0.30:
        count = r.randint(1, sizes[1])
        behavior = r.choice(("add", "sub"))
        if behavior == "sub":
            max_disp = (sizes[0] - 1) // count
            if max_disp < 1:
                behavior = "add"
        disp = (
            r.randint(1, 3)
            if behavior == "add"
            else r.randint(1, min(3, max_disp))
        )
        size_mods = (ModSpec(1, "size", behavior, disp, count),)

    def own_mods(name: str) -> Tuple[ModSpec, ...]:
        if ndims < 2 or name == indirect_name or r.random() > 0.35:
            return ()
        level = r.randint(1, ndims - 1)
        count = r.randint(1, sizes[level])
        if name != "c" and level == 1 and r.random() < 0.25:
            # Stride modifier on an input's innermost stride; keep the
            # working stride non-negative (loads tolerate stride 0).
            behavior, disp = "add", r.randint(1, 2)
            return (ModSpec(level, "stride", behavior, disp, count),)
        behavior = r.choice(("add", "sub"))
        return (ModSpec(level, "offset", behavior, r.randint(1, 6), count),)

    def affine(name: str) -> ArraySpec:
        offsets = tuple(r.randint(0, 6) for _ in range(ndims))
        strides = tuple(
            [r.choices((1, 2, 3), weights=(70, 20, 10))[0]]
            + [r.randint(0, 3 * sizes[0] + 4) for _ in range(ndims - 1)]
        )
        return ArraySpec(name, offsets, strides, own_mods(name))

    def indirect_arr(name: str) -> Tuple[ArraySpec, IndirectSpec]:
        stride0 = r.choices((1, 2), weights=(80, 20))[0]
        extent = (sizes[0] - 1) * stride0 + 1
        region = extent + r.randint(4, 64)
        return (
            ArraySpec(name, (0,) * ndims, (stride0,) + (0,) * (ndims - 1)),
            IndirectSpec(name, region),
        )

    indirect = None
    if family == "gather":
        a, indirect = indirect_arr("a")
    else:
        a = affine("a")
    b = affine("b") if need_b else None
    if reduce_op is not None:
        c = ArraySpec("c", (r.randint(0, 4),), (1,))
    elif family == "scatter":
        c, indirect = indirect_arr("c")
    else:
        c = affine("c")

    inputs = (a, b) if b is not None else (a,)
    return CaseSpec(
        seed=case_seed,
        family=family,
        etype=etype,
        vector_bits=vector_bits,
        sizes=sizes,
        inputs=inputs,
        output=c,
        ops=ops,
        size_mods=size_mods,
        reduce=reduce_op,
        pred_cond=pred_cond,
        use_mac=use_mac,
        indirect=indirect,
    )


def _sample_ops(
    r: random.Random, is_float: bool, max_len: int
) -> Tuple[OpStep, ...]:
    n = r.randint(0, max_len)
    ops = []
    muls = 0
    for _ in range(n):
        if is_float and r.random() < 0.15:
            ops.append(OpStep(r.choice(UNARY_OPS)))
            continue
        op = r.choice(FLOAT_OPS if is_float else INT_OPS)
        if op == "mul":
            if muls >= 2:
                op = "add"
            else:
                muls += 1
        rhs = "b" if r.random() < 0.6 else "imm"
        if rhs == "imm":
            imm = round(r.uniform(-4.0, 4.0), 2) if is_float else float(
                r.randint(-8, 8)
            )
            ops.append(OpStep(op, "imm", imm))
        else:
            ops.append(OpStep(op, "b"))
    return tuple(ops)
