"""The differential equivalence oracle.

One case, four lowerings, one independently-computed reference: the
oracle runs every lowering through the functional simulator on a clone
of the same initial memory image and demands that

* each ISA's final output region matches the NumPy reference (floats
  within a width-dependent tolerance, integers exactly),
* the four ISAs match **each other** (catching correlated drift from a
  wrong reference),
* no lowering wrote a byte outside the output region (stray writes —
  e.g. a scatter escaping its region — corrupt silently otherwise),
* a lowering that raises (StreamError, MemoryAccessError, ...) is a
  failure in its own right.

Optionally (``check_timing``), the UVE program also runs through the
cycle-level :class:`~repro.sim.simulator.Simulator` twice — with the
event-horizon fast-forward on and off — and the oracle asserts the
timing invariants: identical :class:`PipelineStats` counters both ways,
no skipped cycles when fast-forward is off, at least one cycle, and
committed instructions within the machine's commit bandwidth.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cpu.config import uve_machine
from repro.fuzz.lowering import ISAS, lower
from repro.fuzz.reference import Artifacts, materialize
from repro.fuzz.spec import CaseSpec
from repro.memory.backing import Memory
from repro.sim.functional import FunctionalSimulator
from repro.sim.simulator import Simulator


@dataclass
class Failure:
    """One oracle violation."""

    isa: str  # "uve" | "scalar" | "sve" | "neon" | "timing" | pair "a|b"
    kind: str  # "mismatch" | "exception" | "stray-write" | "timing-..."
    detail: str

    def to_dict(self) -> Dict[str, str]:
        return {"isa": self.isa, "kind": self.kind, "detail": self.detail}


@dataclass
class CaseReport:
    """The oracle's verdict on one case."""

    spec: CaseSpec
    failures: List[Failure] = field(default_factory=list)
    timing_checked: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict:
        return {
            "spec": self.spec.to_dict(),
            "ok": self.ok,
            "timing_checked": self.timing_checked,
            "failures": [fl.to_dict() for fl in self.failures],
        }


def clone_memory(mem: Memory) -> Memory:
    """A byte-identical copy, so every lowering starts from the same
    initial image."""
    copy = Memory(size=mem.size)
    np.copyto(copy.data, mem.data)
    copy._brk = mem._brk
    return copy


def tolerances(spec: CaseSpec) -> tuple:
    """(rtol, atol) for output comparison.  Integers are exact.  Float
    slack covers legitimate cross-ISA divergence: the scalar backend
    computes chains in f64, and reductions associate differently per
    vector length — so reductions get an absolute floor scaled for
    worst-case cancellation."""
    if not spec.is_float:
        return 0.0, 0.0
    if spec.etype == "F32":
        rtol, atol = 1e-4, 1e-5
        red_atol = 0.02
    else:
        rtol, atol = 1e-9, 1e-11
        red_atol = 1e-9
    if spec.reduce is not None:
        atol = max(atol, red_atol)
    return rtol, atol


def _outputs_match(spec: CaseSpec, got: np.ndarray, want: np.ndarray) -> bool:
    rtol, atol = tolerances(spec)
    if not spec.is_float:
        return bool(np.array_equal(got, want))
    return bool(np.allclose(got, want, rtol=rtol, atol=atol, equal_nan=True))


def _diff_detail(got: np.ndarray, want: np.ndarray) -> str:
    n = min(len(got), len(want))
    bad = np.flatnonzero(
        ~np.isclose(got[:n], want[:n], rtol=1e-4, atol=1e-5, equal_nan=True)
    )
    if len(bad) == 0:
        return "outputs differ"
    i = int(bad[0])
    return (
        f"{len(bad)} differing elements; first at [{i}]: "
        f"got {got[i]!r}, want {want[i]!r}"
    )


def run_case(
    spec: CaseSpec,
    inject: Optional[str] = None,
    check_timing: bool = False,
    art: Optional[Artifacts] = None,
) -> CaseReport:
    """Run one case through every lowering and compare.

    Raises if the *spec itself* cannot be materialised (an invalid
    candidate, e.g. from an over-eager shrink step); failures of the
    lowerings are reported, not raised.
    """
    if art is None:
        art = materialize(spec)
    report = CaseReport(spec)
    outputs: Dict[str, np.ndarray] = {}
    for isa in ISAS:
        try:
            program = lower(spec, art, isa, inject if isa == "uve" else None)
            mem = clone_memory(art.memory)
            FunctionalSimulator(
                program, memory=mem, vector_bits=spec.vector_bits
            ).run()
        except Exception as exc:  # noqa: BLE001 — any blow-up is a finding
            report.failures.append(
                Failure(isa, "exception", f"{type(exc).__name__}: {exc}")
            )
            continue
        out = art.output_region(mem)
        outputs[isa] = out
        if not _outputs_match(spec, out, art.ref_c):
            report.failures.append(
                Failure(isa, "mismatch", _diff_detail(out, art.ref_c))
            )
        view = art.views["c"]
        lo = view.addr
        hi = view.addr + view.length * view.width
        if not np.array_equal(
            mem.data[:lo], art.memory.data[:lo]
        ) or not np.array_equal(mem.data[hi:], art.memory.data[hi:]):
            report.failures.append(
                Failure(isa, "stray-write", "bytes outside the output region changed")
            )
    # Pairwise: catches correlated drift even if the reference agreed.
    isas = [i for i in ISAS if i in outputs]
    for i, first in enumerate(isas):
        for second in isas[i + 1 :]:
            if not _outputs_match(spec, outputs[first], outputs[second]):
                report.failures.append(
                    Failure(
                        f"{first}|{second}",
                        "mismatch",
                        _diff_detail(outputs[first], outputs[second]),
                    )
                )
    if check_timing:
        report.timing_checked = True
        _check_timing(spec, art, inject, report.failures)
    return report


def _check_timing(
    spec: CaseSpec,
    art: Artifacts,
    inject: Optional[str],
    failures: List[Failure],
) -> None:
    """Timing-model invariants on the UVE lowering (see module docs)."""
    try:
        program = lower(spec, art, "uve", inject)
        results = {}
        for ff in (True, False):
            config = uve_machine().with_(
                vector_bits=spec.vector_bits, fast_forward=ff
            )
            results[ff] = Simulator(
                program, clone_memory(art.memory), config=config
            ).run()
    except Exception as exc:  # noqa: BLE001
        failures.append(
            Failure("timing", "exception", f"{type(exc).__name__}: {exc}")
        )
        return
    on, off = results[True], results[False]
    if on.timing.as_dict() != off.timing.as_dict():
        failures.append(
            Failure(
                "timing",
                "timing-ff-divergence",
                "PipelineStats differ between fast_forward on and off",
            )
        )
    if off.pipeline.ff_skipped_cycles != 0:
        failures.append(
            Failure(
                "timing",
                "timing-ff-skips",
                f"fast_forward=False skipped "
                f"{off.pipeline.ff_skipped_cycles} cycles",
            )
        )
    commit_width = uve_machine().core.commit_width
    for name, res in (("ff-on", on), ("ff-off", off)):
        if res.cycles < 1:
            failures.append(
                Failure("timing", "timing-invariant", f"{name}: cycles < 1")
            )
        if res.committed > res.cycles * commit_width + commit_width:
            failures.append(
                Failure(
                    "timing",
                    "timing-invariant",
                    f"{name}: committed {res.committed} exceeds commit "
                    f"bandwidth over {res.cycles} cycles",
                )
            )
