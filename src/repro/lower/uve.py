"""UVE backend: descriptor-configured streams (``ss.*``) with
stream-aware compute (``so.*``).

Modifiers and indirection are expressed in the descriptors, so the body
is a flat loop regardless of the nest depth — the defining property the
differential fuzz oracle exercises against the explicit-loop backends.

Two code shapes:

* **general** — the fuzzer's descriptor chains (``SsSta``/``SsApp*``)
  with the compute body keyed off the nest's reduction/predication/
  scalar-engine flags.  This is the only path that honours ``inject``
  (the deliberate UVE-only semantic distortions of
  :data:`repro.lower.INJECTIONS`), so an injection forces it.
* **streamlined** — the hand-kernel Fig. 1.D shape
  (``elementwise.build_uve``) for unit-stride 1-D nests, kept
  instruction-identical to the legacy builders for the migrated 1-D
  kernel family.
"""
from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.types import ElementType
from repro.ir.nodes import Access, FMA_OP, Nest
from repro.isa.program import ProgramBuilder
from repro.isa.registers import Reg, f, p, u
from repro.isa.scalar_ops import FLi
from repro.isa.uve_ops import (
    SoBranchEnd,
    SoDup,
    SoMac,
    SoMove,
    SoOp,
    SoOpScalar,
    SoPredComp,
    SoRedScalar,
    SoScalarRead,
    SoScalarWrite,
    SoUnary,
    SsApp,
    SsAppInd,
    SsAppMod,
    SsConfig1D,
    SsSta,
)
from repro.lower.common import (
    ACC_F,
    ACC_X,
    A_F,
    A_X,
    B_F,
    B_X,
    PART_F,
    PART_X,
    RUN_F,
    RUN_X,
    emit_acc_init,
    emit_acc_step,
    emit_scalar_chain,
    flat_base,
    imm_value,
    streamlined,
)
from repro.streams.descriptor import IndirectBehavior, Param, StaticBehavior
from repro.streams.pattern import Direction

_PARAM = {"offset": Param.OFFSET, "size": Param.SIZE, "stride": Param.STRIDE}
_BEHAVIOR = {"add": StaticBehavior.ADD, "sub": StaticBehavior.SUB}


# ---------------------------------------------------------------------------
# General path (descriptor chains + flat compute loop)
# ---------------------------------------------------------------------------


def _uve_configure(
    b: ProgramBuilder,
    nest: Nest,
    acc: Access,
    reg: Reg,
    direction: Direction,
    inject: Optional[str],
) -> None:
    etype = nest.etype
    base0 = flat_base(acc)
    size0 = nest.sizes[0]
    if inject == "uve-dim0-size-off-by-one" and acc.name == "a" and size0 > 1:
        size0 -= 1

    if nest.indirect is not None and nest.indirect.array == acc.name:
        # Origin stream of row indices, then the indirect level on top
        # of the innermost descriptor (builders.indirect() shape).
        b.emit(
            SsConfig1D(
                u(3),
                Direction.LOAD,
                nest.indirect.idx_addr // 4,
                nest.sizes[1],
                1,
                etype=ElementType.I32,
            )
        )
        b.emit(SsSta(reg, direction, base0, size0, acc.strides[0], etype=etype))
        behavior = (
            IndirectBehavior.SET_VALUE
            if inject == "uve-ind-set-value"
            else IndirectBehavior.SET_ADD
        )
        b.emit(SsAppInd(reg, Param.OFFSET, behavior, u(3), last=True))
        return

    parts: List[Tuple[str, object]] = []
    for level in range(1, nest.ndims):
        parts.append(
            ("app", (acc.offsets[level], nest.sizes[level], acc.strides[level]))
        )
        for mod in nest.mods_for(acc, level):
            parts.append(("mod", mod))
    if not parts:
        b.emit(
            SsConfig1D(reg, direction, base0, size0, acc.strides[0], etype=etype)
        )
        return
    b.emit(SsSta(reg, direction, base0, size0, acc.strides[0], etype=etype))
    for i, (kind, payload) in enumerate(parts):
        last = i == len(parts) - 1
        if kind == "app":
            off, size, stride = payload
            b.emit(SsApp(reg, off, size, stride, last=last))
        else:
            mod = payload
            count = mod.count + (1 if inject == "uve-mod-extra-count" else 0)
            b.emit(
                SsAppMod(
                    reg,
                    _PARAM[mod.target],
                    _BEHAVIOR[mod.behavior],
                    mod.displacement,
                    count,
                    last=last,
                )
            )


def _uve_chain(
    b: ProgramBuilder, nest: Nest, operand_b: Optional[Reg], final: Optional[Reg]
) -> Reg:
    """The op chain on stream-aware vector ops.  ``final`` routes the
    last step straight into an output stream register (or None to keep
    the result in the u10 temporary)."""
    etype = nest.etype
    run = u(0)
    if not nest.ops:
        if final is not None:
            b.emit(SoMove(final, run, etype))
            return final
        return run
    for i, step in enumerate(nest.ops):
        dest = final if (final is not None and i == len(nest.ops) - 1) else u(10)
        if step.op == FMA_OP:
            b.emit(SoOpScalar("mul", u(10), run, imm_value(nest, step.imm), etype))
            b.emit(SoOp("add", dest, u(10), operand_b, etype))
        elif step.rhs is None:
            b.emit(SoUnary(step.op, dest, run, etype))
        elif step.rhs == "b":
            b.emit(SoOp(step.op, dest, run, operand_b, etype))
        else:
            b.emit(SoOpScalar(step.op, dest, run, imm_value(nest, step.imm), etype))
        run = dest
    return run


def _uve_prepare_b(b: ProgramBuilder, nest: Nest) -> Optional[Reg]:
    """Stream b is consumed exactly once per loop iteration: directly
    when the chain references it once, via a u9 staging move when it is
    referenced several times (or not at all, to keep chunks aligned)."""
    if not nest.has_b:
        return None
    uses = sum(1 for step in nest.ops if step.rhs == "b")
    if uses == 1:
        return u(1)
    b.emit(SoMove(u(9), u(1), nest.etype))
    return u(9)


def _emit_general(
    b: ProgramBuilder, nest: Nest, prefix: str, inject: Optional[str]
) -> None:
    etype = nest.etype
    is_f = nest.is_float
    part = PART_F if is_f else PART_X
    acc = ACC_F if is_f else ACC_X

    _uve_configure(b, nest, nest.array("a"), u(0), Direction.LOAD, inject)
    if nest.has_b:
        _uve_configure(b, nest, nest.array("b"), u(1), Direction.LOAD, inject)
    if nest.reduce is not None:
        b.emit(
            SsConfig1D(
                u(2), Direction.STORE, flat_base(nest.output), 1, 1, etype=etype
            )
        )
    else:
        _uve_configure(b, nest, nest.output, u(2), Direction.STORE, inject)

    emit_acc_init(b, nest)
    if nest.use_mac:
        b.emit(SoDup(u(8), 0, etype))

    loop = f"{prefix}loop"
    b.label(loop)
    if nest.scalar_engine:
        a_reg = A_F if is_f else A_X
        b_reg = B_F if is_f else B_X
        run_reg = RUN_F if is_f else RUN_X
        b.emit(SoScalarRead(a_reg, u(0), etype))
        if nest.has_b:
            b.emit(SoScalarRead(b_reg, u(1), etype))
        res = emit_scalar_chain(b, nest, a_reg, b_reg, run_reg)
        b.emit(SoScalarWrite(u(2), res, etype))
    elif nest.pred_cond is not None:
        b.emit(SoMove(u(8), u(0), etype))
        b.emit(SoMove(u(9), u(1), etype))
        b.emit(SoPredComp(nest.pred_cond, p(1), u(8), u(9), etype))
        b.emit(SoRedScalar("add", part, u(8), etype, pred=p(1)))
        emit_acc_step(b, nest, part)
    elif nest.reduce is not None:
        if nest.use_mac:
            b.emit(SoMac(u(8), u(0), u(1), etype))
        else:
            operand_b = _uve_prepare_b(b, nest)
            res = _uve_chain(b, nest, operand_b, final=None)
            b.emit(SoRedScalar(nest.reduce, part, res, etype))
            emit_acc_step(b, nest, part)
    else:
        operand_b = _uve_prepare_b(b, nest)
        _uve_chain(b, nest, operand_b, final=u(2))
    b.emit(SoBranchEnd(u(0), loop))

    if nest.reduce is not None:
        if nest.use_mac:
            b.emit(SoRedScalar("add", acc, u(8), etype))
        b.emit(SoScalarWrite(u(2), acc, etype))


# ---------------------------------------------------------------------------
# Streamlined path (Fig. 1.D: one stream per array, no-overhead loop)
# ---------------------------------------------------------------------------


def _emit_streamlined(b: ProgramBuilder, nest: Nest, prefix: str) -> None:
    etype = nest.etype
    n = nest.sizes[0]
    k = len(nest.inputs)
    reducing = nest.reduce is not None
    is_f = nest.is_float
    part = PART_F if is_f else PART_X
    acc = ACC_F if is_f else ACC_X
    in_regs = [u(i) for i in range(k)]
    out_reg = u(k)
    for reg, access in zip(in_regs, nest.inputs):
        b.emit(
            SsConfig1D(
                reg, Direction.LOAD, flat_base(access), n, 1, etype=etype,
                mem_level=nest.mem_level,
            )
        )
    if reducing:
        b.emit(
            SsConfig1D(
                out_reg, Direction.STORE, flat_base(nest.output), 1, 1,
                etype=etype,
            )
        )
    else:
        b.emit(
            SsConfig1D(
                out_reg, Direction.STORE, flat_base(nest.output), n, 1,
                etype=etype, mem_level=nest.mem_level,
            )
        )
    emit_acc_init(b, nest)
    fma_dup = {}
    const_i = 0
    for i, step in enumerate(nest.ops):
        if step.op == FMA_OP:
            b.emit(
                FLi(f(const_i), imm_value(nest, step.imm)),
                SoDup(u(k + 1), f(const_i), etype=etype),
            )
            fma_dup[i] = u(k + 1)
            const_i += 1
    if nest.use_mac:
        b.emit(SoDup(u(8), 0, etype))
    vb = in_regs[1] if k == 2 else None
    loop = f"{prefix}loop"
    b.label(loop)
    if reducing and nest.use_mac:
        b.emit(SoMac(u(8), in_regs[0], vb, etype))
    elif reducing:
        operand_b = _uve_prepare_b(b, nest)
        res = _streamlined_chain(b, nest, operand_b, None, fma_dup, k)
        b.emit(SoRedScalar(nest.reduce, part, res, etype))
        emit_acc_step(b, nest, part)
    else:
        operand_b = _uve_prepare_b(b, nest)
        _streamlined_chain(b, nest, operand_b, out_reg, fma_dup, k)
    b.emit(SoBranchEnd(in_regs[0], loop, negate=True))
    if reducing:
        if nest.use_mac:
            b.emit(SoRedScalar("add", acc, u(8), etype))
        b.emit(SoScalarWrite(out_reg, acc, etype))


def _streamlined_chain(
    b: ProgramBuilder,
    nest: Nest,
    operand_b: Optional[Reg],
    final: Optional[Reg],
    fma_dup,
    k: int,
) -> Reg:
    etype = nest.etype
    temp = u(k + 2)
    run = u(0)
    if not nest.ops:
        if final is not None:
            b.emit(SoMove(final, run, etype))
            return final
        return run
    for i, step in enumerate(nest.ops):
        dest = final if (final is not None and i == len(nest.ops) - 1) else temp
        if step.op == FMA_OP:
            b.emit(SoOp("mul", temp, fma_dup[i], run, etype))
            b.emit(SoOp("add", dest, temp, operand_b, etype))
        elif step.rhs is None:
            b.emit(SoUnary(step.op, dest, run, etype))
        elif step.rhs == "b":
            b.emit(SoOp(step.op, dest, run, operand_b, etype))
        else:
            b.emit(SoOpScalar(step.op, dest, run, imm_value(nest, step.imm), etype))
        run = dest
    return run


def emit(
    b: ProgramBuilder,
    nest: Nest,
    prefix: str = "",
    inject: Optional[str] = None,
) -> None:
    """Append the UVE lowering of ``nest`` to ``b`` (no Halt)."""
    if inject is None and streamlined(nest):
        _emit_streamlined(b, nest, prefix)
    else:
        _emit_general(b, nest, prefix, inject)
