"""RVV backend: the strip-mined vector-length-agnostic comparator
(paper Fig. 1.C).

Only the streamlined 1-D shape is implemented — ``vsetvli`` grants each
iteration's vector length, loads/stores are unit-stride, and the scalar
unit bumps every base pointer explicitly, matching
``elementwise.build_rvv``.  General nests (modifiers, indirection,
predication, non-unit strides) raise :class:`LoweringError`; the
differential fuzzer deliberately excludes RVV from its oracle set.

Reductions fold per iteration (``vfred`` over the granted ``vl`` then a
scalar accumulate): this model's vector ops rewrite their destination
at the current ``vl``, so an accumulator register cannot survive the
shortened final iteration.
"""
from __future__ import annotations

import math
from typing import Optional

from repro.errors import LoweringError
from repro.ir.nodes import FMA_OP, Nest
from repro.isa.program import ProgramBuilder
from repro.isa.registers import Reg, f, u, x
from repro.isa.rvv_ops import VlLoad, VlStore, VOpVF, VOpVV, VMaccVF, VSetVli
from repro.isa.rvv_ops import VRed
from repro.isa.scalar_ops import BranchCmp, FLi, IntOp, Li
from repro.lower.common import (
    PART_F,
    emit_acc_init,
    emit_acc_step,
    emit_acc_store,
    flat_base,
    imm_value,
    streamlined,
)


def _check_supported(nest: Nest) -> None:
    if not streamlined(nest):
        raise LoweringError(
            f"rvv backend only lowers streamlined unit-stride 1-D nests; "
            f"{nest.name!r} does not qualify"
        )
    if not nest.is_float:
        raise LoweringError(
            f"rvv backend only lowers float nests; {nest.name!r} is "
            f"{nest.etype.name}"
        )
    for step in nest.ops:
        if step.rhs is None:
            raise LoweringError(
                f"rvv backend has no vector unary ops ({nest.name!r} uses "
                f"{step.op!r})"
            )


def _chain(b: ProgramBuilder, nest: Nest, run: Reg, vb, out_reg: Reg, fma_f) -> Reg:
    etype = nest.etype
    for i, step in enumerate(nest.ops):
        if step.op == FMA_OP:
            b.emit(VMaccVF(vb, fma_f[i], run, etype))
            run = vb
        elif step.rhs == "b":
            b.emit(VOpVV(step.op, out_reg, run, vb, etype))
            run = out_reg
        else:
            b.emit(VOpVF(step.op, out_reg, run, fma_f[i], etype))
            run = out_reg
    return run


def emit(
    b: ProgramBuilder,
    nest: Nest,
    prefix: str = "",
    inject: Optional[str] = None,
) -> None:
    """Append the RVV lowering of ``nest`` to ``b`` (no Halt)."""
    _check_supported(nest)
    etype = nest.etype
    width = etype.width
    shift = int(math.log2(width))
    n = nest.sizes[0]
    k = len(nest.inputs)
    reducing = nest.reduce is not None
    remaining, vl, step_r = x(3), x(4), x(5)
    bases = [x(8 + i) for i in range(k)]
    b.emit(Li(remaining, n))
    for base, acc in zip(bases, nest.inputs):
        b.emit(Li(base, flat_base(acc) * width))
    if not reducing:
        out_base = x(8 + k)
        b.emit(Li(out_base, flat_base(nest.output) * width))
    emit_acc_init(b, nest)
    fma_f = {}
    const_i = 0
    for i, step in enumerate(nest.ops):
        if step.op == FMA_OP or step.rhs == "imm":
            b.emit(FLi(f(const_i), imm_value(nest, step.imm)))
            fma_f[i] = f(const_i)
            const_i += 1
    in_regs = [u(1 + i) for i in range(k)]
    out_reg = u(1 + k)
    vb = in_regs[1] if k == 2 else None
    loop = f"{prefix}loop"
    b.label(loop)
    b.emit(VSetVli(vl, remaining, etype=etype))
    for reg, base in zip(in_regs, bases):
        b.emit(VlLoad(reg, base, etype=etype))
    if reducing:
        if nest.use_mac:
            b.emit(VOpVV("mul", out_reg, in_regs[0], vb, etype))
            res = out_reg
        else:
            res = _chain(b, nest, in_regs[0], vb, out_reg, fma_f)
        b.emit(VRed(nest.reduce, PART_F, res, etype))
        emit_acc_step(b, nest, PART_F)
        b.emit(
            IntOp("sub", remaining, remaining, vl),
            IntOp("sll", step_r, vl, shift),
        )
    else:
        store_reg = _chain(b, nest, in_regs[0], vb, out_reg, fma_f)
        b.emit(
            VlStore(store_reg, out_base, etype=etype),
            IntOp("sub", remaining, remaining, vl),
            IntOp("sll", step_r, vl, shift),
        )
    targets = bases if reducing else bases + [out_base]
    for base in targets:
        b.emit(IntOp("add", base, base, step_r))
    b.emit(BranchCmp("ne", remaining, 0, loop))
    if reducing:
        emit_acc_store(b, nest)
