"""Scalar (RISC-V base ISA) backend: explicit loop nest, working
parameters in registers, one element per iteration."""
from __future__ import annotations

from typing import Optional

from repro.ir.nodes import Nest
from repro.isa.program import ProgramBuilder
from repro.isa.scalar_ops import BranchCmp, FMac, IntOp, Jump, Li, Load, Store
from repro.isa.registers import Reg
from repro.lower.common import (
    ACC_F,
    A_F,
    A_X,
    B_F,
    B_X,
    J_X,
    NestEmitter,
    ROW,
    RUN_F,
    RUN_X,
    T5,
    _INV_COND,
    emit_acc_init,
    emit_acc_step,
    emit_acc_store,
    emit_scalar_chain,
)


def scalar_body(emitter: NestEmitter) -> None:
    """One element per iteration of an explicit dim-0 loop.  Shared with
    the NEON backend's non-vectorisable fallback."""
    b, nest = emitter.b, emitter.nest
    etype, width, is_f = emitter.etype, emitter.width, nest.is_float
    has_b = nest.has_b
    a_reg = A_F if is_f else A_X
    b_reg = B_F if is_f else B_X
    run_reg = RUN_F if is_f else RUN_X
    size_op = emitter.size_operand(0)
    top, end = emitter.label("s_top"), emitter.label("s_end")
    b.emit(Li(J_X, 0))
    b.label(top)
    b.emit(BranchCmp("ge", J_X, size_op, end))
    b.emit(Load(a_reg, ROW["a"], 0, etype))
    if has_b:
        b.emit(Load(b_reg, ROW["b"], 0, etype))
    if nest.pred_cond is not None:
        skip = emitter.label("p_skip")
        b.emit(BranchCmp(_INV_COND[nest.pred_cond], a_reg, b_reg, skip))
        emit_acc_step(b, nest, a_reg)
        b.label(skip)
    elif nest.reduce is not None:
        if nest.use_mac:
            b.emit(FMac(ACC_F, a_reg, b_reg))
        else:
            res = emit_scalar_chain(b, nest, a_reg, b_reg, run_reg)
            emit_acc_step(b, nest, res)
    else:
        res = emit_scalar_chain(b, nest, a_reg, b_reg, run_reg)
        b.emit(Store(res, ROW["c"], 0, etype))
    for acc in emitter.row_arrays():
        s_op = emitter.stride_operand(acc, 0)
        row = ROW[acc.name]
        if isinstance(s_op, Reg):
            b.emit(IntOp("mul", T5, s_op, width))
            b.emit(IntOp("add", row, row, T5))
        else:
            b.emit(IntOp("add", row, row, s_op * width))
    b.emit(IntOp("add", J_X, J_X, 1))
    b.emit(Jump(top))
    b.label(end)


def emit(
    b: ProgramBuilder,
    nest: Nest,
    prefix: str = "",
    inject: Optional[str] = None,
) -> None:
    """Append the scalar lowering of ``nest`` to ``b`` (no Halt)."""
    emitter = NestEmitter(nest, b, prefix)
    emit_acc_init(b, nest)
    emitter.emit(scalar_body)
    if nest.reduce is not None:
        emit_acc_store(b, nest)
