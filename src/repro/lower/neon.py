"""NEON backend: the fixed 128-bit baseline.

Two code shapes:

* **general** — the fuzzer's explicit loop nest with an unrolled
  full-vector main loop plus a scalar tail; falls back to the shared
  scalar body when the nest is not NEON-vectorisable (non-unit or
  dynamic innermost stride, predication).
* **streamlined** — the hand-kernel main-loop/tail idiom
  (``elementwise.build_neon``'s shape) for unit-stride 1-D nests, kept
  instruction-identical to the legacy builders for the migrated 1-D
  kernel family.
"""
from __future__ import annotations

from typing import Optional

from repro.ir.nodes import FMA_OP, Nest
from repro.isa.neon_ops import (
    NVDup,
    NVFma,
    NVLoad,
    NVOp,
    NVRed,
    NVStore,
    NVUnary,
    neon_lanes,
)
from repro.isa.program import ProgramBuilder
from repro.isa.registers import Reg, f, u, x
from repro.isa.scalar_ops import (
    BranchCmp,
    FLi,
    FMac,
    FOp,
    FUnary,
    IntOp,
    Jump,
    Li,
    Load,
    Store,
)
from repro.lower.common import (
    ACC_F,
    A_F,
    A_X,
    B_F,
    B_X,
    J_X,
    NestEmitter,
    Operand,
    PART_F,
    PART_X,
    ROW,
    RUN_F,
    RUN_X,
    SIZE_X,
    emit_acc_init,
    emit_acc_step,
    emit_acc_store,
    emit_scalar_chain,
    flat_base,
    imm_value,
    streamlined,
)
from repro.lower.scalar import scalar_body


# ---------------------------------------------------------------------------
# General path (explicit nest, main loop + scalar tail)
# ---------------------------------------------------------------------------


def _neon_vectorizable(emitter: NestEmitter) -> bool:
    """Fixed-width NEON only handles unit, never-modified innermost
    strides and has no predication; everything else runs scalar."""
    if emitter.nest.pred_cond is not None:
        return False
    for acc in emitter.row_arrays():
        if acc.strides[0] != 1:
            return False
        if ("stride", acc.name, 0) in emitter.dyn:
            return False
    return True


def _neon_chain(emitter: NestEmitter, va: Reg, vb: Reg) -> Reg:
    b, nest, etype = emitter.b, emitter.nest, emitter.etype
    run = va
    for i, step in enumerate(nest.ops):
        if step.op == FMA_OP:
            # Decomposed: the fused form would clobber the b input that a
            # later chain step may still reference (u(16+i) holds the coeff).
            b.emit(NVOp("mul", u(3), run, u(16 + i), etype))
            b.emit(NVOp("add", u(3), u(3), vb, etype))
        elif step.rhs is None:
            b.emit(NVUnary(step.op, u(3), run, etype))
        else:
            rhs = vb if step.rhs == "b" else u(16 + i)
            b.emit(NVOp(step.op, u(3), run, rhs, etype))
        run = u(3)
    return run


def _neon_body(emitter: NestEmitter) -> None:
    b, nest, etype = emitter.b, emitter.nest, emitter.etype
    is_f = nest.is_float
    has_b = nest.has_b
    lanes = neon_lanes(etype)
    part = PART_F if is_f else PART_X
    size_op = emitter.size_operand(0)
    if isinstance(size_op, Reg):
        b.emit(IntOp("and", SIZE_X, size_op, -lanes))
        main_op: Operand = SIZE_X
    else:
        main_op = size_op - size_op % lanes
    a_reg = A_F if is_f else A_X
    b_reg = B_F if is_f else B_X
    run_reg = RUN_F if is_f else RUN_X
    vtop, vend = emitter.label("n_top"), emitter.label("n_end")
    b.emit(Li(J_X, 0))
    b.label(vtop)
    b.emit(BranchCmp("ge", J_X, main_op, vend))
    b.emit(NVLoad(u(1), ROW["a"], 0, etype, post_inc=True))
    if has_b:
        b.emit(NVLoad(u(2), ROW["b"], 0, etype, post_inc=True))
    if nest.reduce is not None and nest.use_mac:
        b.emit(NVFma(u(4), u(1), u(2), etype))
    elif nest.reduce is not None:
        res = _neon_chain(emitter, u(1), u(2))
        b.emit(NVRed(nest.reduce, part, res, etype))
        emit_acc_step(b, nest, part)
    else:
        res = _neon_chain(emitter, u(1), u(2))
        b.emit(NVStore(res, ROW["c"], 0, etype, post_inc=True))
    b.emit(IntOp("add", J_X, J_X, lanes))
    b.emit(Jump(vtop))
    b.label(vend)
    # Scalar tail: the row cursors were already advanced by post_inc.
    ttop, tend = emitter.label("t_top"), emitter.label("t_end")
    b.label(ttop)
    b.emit(BranchCmp("ge", J_X, size_op, tend))
    b.emit(Load(a_reg, ROW["a"], 0, etype))
    if has_b:
        b.emit(Load(b_reg, ROW["b"], 0, etype))
    if nest.reduce is not None and nest.use_mac:
        b.emit(FMac(ACC_F, a_reg, b_reg))
    elif nest.reduce is not None:
        res = emit_scalar_chain(b, nest, a_reg, b_reg, run_reg)
        emit_acc_step(b, nest, res)
    else:
        res = emit_scalar_chain(b, nest, a_reg, b_reg, run_reg)
        b.emit(Store(res, ROW["c"], 0, etype))
    for acc in emitter.row_arrays():
        b.emit(IntOp("add", ROW[acc.name], ROW[acc.name], emitter.width))
    b.emit(IntOp("add", J_X, J_X, 1))
    b.emit(Jump(ttop))
    b.label(tend)


def _emit_general(b: ProgramBuilder, nest: Nest, prefix: str) -> None:
    emitter = NestEmitter(nest, b, prefix)
    etype = nest.etype
    emit_acc_init(b, nest)
    if not _neon_vectorizable(emitter):
        emitter.emit(scalar_body)
        if nest.reduce is not None:
            emit_acc_store(b, nest)
        return
    for i, step in enumerate(nest.ops):
        if step.rhs == "imm" or step.op == FMA_OP:
            b.emit(NVDup(u(16 + i), imm_value(nest, step.imm), etype))
    if nest.use_mac:
        b.emit(NVDup(u(4), imm_value(nest, 0), etype))
    emitter.emit(_neon_body)
    if nest.use_mac:
        b.emit(NVRed("add", PART_F, u(4), etype))
        b.emit(FOp("add", ACC_F, ACC_F, PART_F))
    if nest.reduce is not None:
        emit_acc_store(b, nest)


# ---------------------------------------------------------------------------
# Streamlined path (hand-kernel main loop + scalar tail)
# ---------------------------------------------------------------------------


def _streamlined_chain(
    b: ProgramBuilder, nest: Nest, run: Reg, vb, out_reg: Reg, fma_dup
) -> Reg:
    etype = nest.etype
    for i, step in enumerate(nest.ops):
        if step.op == FMA_OP:
            b.emit(NVFma(vb, run, fma_dup[i], etype))
            run = vb
        elif step.rhs is None:
            b.emit(NVUnary(step.op, out_reg, run, etype))
            run = out_reg
        else:
            rhs = vb if step.rhs == "b" else u(16 + i)
            b.emit(NVOp(step.op, out_reg, run, rhs, etype))
            run = out_reg
    return run


def _tail_chain(
    b: ProgramBuilder, nest: Nest, in_fregs, out_freg: Reg, fma_freg
) -> Reg:
    run = in_fregs[0]
    bf = in_fregs[1] if len(in_fregs) == 2 else None
    for i, step in enumerate(nest.ops):
        if step.op == FMA_OP:
            b.emit(FMac(bf, run, fma_freg[i]))
            run = bf
        elif step.rhs is None:
            b.emit(FUnary(step.op, out_freg, run))
            run = out_freg
        else:
            rhs = bf if step.rhs == "b" else imm_value(nest, step.imm)
            b.emit(FOp(step.op, out_freg, run, rhs))
            run = out_freg
    return run


def _emit_streamlined(b: ProgramBuilder, nest: Nest, prefix: str) -> None:
    etype = nest.etype
    lanes = neon_lanes(etype)
    width = etype.width
    n = nest.sizes[0]
    k = len(nest.inputs)
    reducing = nest.reduce is not None
    main, idx = x(3), x(4)
    bases = [x(8 + i) for i in range(k)]
    b.emit(Li(main, n - n % lanes))
    for base, acc in zip(bases, nest.inputs):
        b.emit(Li(base, flat_base(acc) * width))
    if not reducing:
        out_base = x(8 + k)
        b.emit(Li(out_base, flat_base(nest.output) * width))
    b.emit(Li(idx, 0))
    emit_acc_init(b, nest)
    fma_dup = {}
    fma_freg = {}
    const_i = 0
    for i, step in enumerate(nest.ops):
        if step.op == FMA_OP:
            b.emit(FLi(f(const_i), imm_value(nest, step.imm)))
            b.emit(NVDup(u(0), f(const_i), etype=etype))
            fma_dup[i] = u(0)
            fma_freg[i] = f(const_i)
            const_i += 1
        elif step.rhs == "imm":
            b.emit(NVDup(u(16 + i), imm_value(nest, step.imm), etype))
    if nest.use_mac:
        b.emit(NVDup(u(4), imm_value(nest, 0), etype))
    in_regs = [u(1 + i) for i in range(k)]
    out_reg = u(1 + k)
    vb = in_regs[1] if k == 2 else None
    part = PART_F if nest.is_float else PART_X
    loop, tail = f"{prefix}loop", f"{prefix}tail"
    tail_loop, done = f"{prefix}tail_loop", f"{prefix}done"
    b.emit(BranchCmp("ge", idx, main, tail))
    b.label(loop)
    for reg, base in zip(in_regs, bases):
        b.emit(NVLoad(reg, base, etype=etype, post_inc=True))
    if reducing and nest.use_mac:
        b.emit(NVFma(u(4), in_regs[0], vb, etype))
    elif reducing:
        res = _streamlined_chain(b, nest, in_regs[0], vb, out_reg, fma_dup)
        b.emit(NVRed(nest.reduce, part, res, etype))
        emit_acc_step(b, nest, part)
    else:
        store_reg = _streamlined_chain(
            b, nest, in_regs[0], vb, out_reg, fma_dup
        )
        b.emit(NVStore(store_reg, out_base, etype=etype, post_inc=True))
    b.emit(
        IntOp("add", idx, idx, lanes),
        BranchCmp("lt", idx, main, loop),
    )
    b.label(tail)
    b.emit(Li(x(5), n), BranchCmp("ge", idx, x(5), done))
    if reducing:
        # The hand-kernel tail registers f(1+i) would collide with the
        # ACC_F/PART_F accumulators, so a reduction tail uses A_F/B_F.
        in_fregs = [A_F, B_F][:k]
        out_freg = RUN_F
    else:
        in_fregs = [f(1 + i) for i in range(k)]
        out_freg = f(1 + k)
    b.label(tail_loop)
    for freg, base in zip(in_fregs, bases):
        b.emit(Load(freg, base, 0, etype))
    if reducing and nest.use_mac:
        b.emit(FMac(ACC_F, in_fregs[0], in_fregs[1]))
    elif reducing:
        res = _tail_chain(b, nest, in_fregs, out_freg, fma_freg)
        emit_acc_step(b, nest, res)
    else:
        store_freg = _tail_chain(b, nest, in_fregs, out_freg, fma_freg)
        b.emit(Store(store_freg, out_base, 0, etype))
    targets = bases if reducing else bases + [out_base]
    for base in targets:
        b.emit(IntOp("add", base, base, width))
    b.emit(
        IntOp("add", idx, idx, 1),
        BranchCmp("lt", idx, x(5), tail_loop),
    )
    b.label(done)
    if nest.use_mac:
        b.emit(NVRed("add", PART_F, u(4), etype))
        b.emit(FOp("add", ACC_F, ACC_F, PART_F))
    if reducing:
        emit_acc_store(b, nest)


def emit(
    b: ProgramBuilder,
    nest: Nest,
    prefix: str = "",
    inject: Optional[str] = None,
) -> None:
    """Append the NEON lowering of ``nest`` to ``b`` (no Halt)."""
    if streamlined(nest):
        _emit_streamlined(b, nest, prefix)
    else:
        _emit_general(b, nest, prefix)
