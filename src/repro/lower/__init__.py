"""Per-ISA lowering backends for the loop-nest IR.

``lower(nest, isa)`` validates a :class:`repro.ir.Nest` and emits one
ISA's complete program; ``lower_nests`` strings several nests into one
program (the STREAM-style multi-kernel shape).  Backends share the
scaffolding in :mod:`repro.lower.common`; each exposes
``emit(builder, nest, prefix="", inject=None)`` and must not emit the
trailing ``Halt`` (the drivers here do).

The NumPy reference expander (:mod:`repro.fuzz.reference`) deliberately
does NOT use this package: the differential fuzz oracle requires the
reference and the lowerings to interpret specs with separately-written
code.
"""
from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import LoweringError
from repro.ir import Nest, validate_nest
from repro.isa.program import Program, ProgramBuilder
from repro.isa.scalar_ops import Halt
from repro.lower import neon, rvv, scalar, sve, uve

#: the ISAs every fuzz case is lowered to, in oracle order.
ISAS = ("uve", "scalar", "sve", "neon")

#: every backend, including the ones outside the fuzz oracle set.
BACKENDS = {
    "uve": uve,
    "scalar": scalar,
    "sve": sve,
    "neon": neon,
    "rvv": rvv,
}

#: deliberate UVE-lowering distortions used to validate the fuzz oracle.
INJECTIONS = {
    "uve-mod-extra-count": (
        "static modifiers are configured with count+1, firing once more "
        "than the spec (and the reference) intends"
    ),
    "uve-dim0-size-off-by-one": (
        "stream a's innermost dimension is configured one element short"
    ),
    "uve-ind-set-value": (
        "the indirect modifier uses SET_VALUE instead of SET_ADD, "
        "dropping the configured base offset from gathered addresses"
    ),
}


def _backend(isa: str):
    try:
        return BACKENDS[isa]
    except KeyError:
        raise ValueError(f"unknown isa {isa!r}") from None


def lower(nest: Nest, isa: str, inject: Optional[str] = None) -> Program:
    """Lower one validated nest to a complete (halted) program."""
    if inject is not None and inject not in INJECTIONS:
        raise ValueError(f"unknown injection {inject!r}")
    if inject is not None and isa != "uve":
        raise ValueError(f"injections distort the uve lowering only, not {isa!r}")
    validate_nest(nest)
    b = ProgramBuilder(f"{nest.name}-{isa}")
    _backend(isa).emit(b, nest, prefix="", inject=inject)
    b.emit(Halt())
    return b.build()


def lower_nests(nests: Iterable[Nest], isa: str, name: str) -> Program:
    """Lower several nests back-to-back into one program (STREAM's
    four sub-kernels, say).  Labels are namespaced per nest."""
    nests = tuple(nests)
    if not nests:
        raise ValueError("lower_nests needs at least one nest")
    for nest in nests:
        validate_nest(nest)
    backend = _backend(isa)
    b = ProgramBuilder(name)
    single = len(nests) == 1
    for nest in nests:
        backend.emit(b, nest, prefix="" if single else f"{nest.name}_")
    b.emit(Halt())
    return b.build()


__all__ = [
    "BACKENDS",
    "INJECTIONS",
    "ISAS",
    "LoweringError",
    "lower",
    "lower_nests",
]
