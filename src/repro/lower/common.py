"""Shared lowering scaffolding: register conventions, the explicit
loop-nest emitter, and the accumulator/op-chain helpers.

The scalar/SVE/NEON backends share :class:`NestEmitter` for outer
loops, static-modifier application, and row-address computation; the
UVE backend encodes the same semantics in stream descriptors, which is
exactly the redundancy the differential fuzz oracle exploits.

This code is the former ``repro.fuzz.lowering`` scaffolding, lifted to
operate on :class:`repro.ir.Nest` so hand-written kernels and fuzz
cases lower through one implementation.
"""
from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.common.types import ElementType
from repro.ir.nodes import Access, FMA_OP, Mod, Nest
from repro.isa.program import ProgramBuilder
from repro.isa.registers import Reg, f, x
from repro.isa.scalar_ops import (
    BranchCmp,
    FLi,
    FOp,
    FUnary,
    IntOp,
    Jump,
    Li,
    Load,
    Store,
)

_INV_COND = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "gt": "le", "le": "gt"}

# Scalar register conventions shared by the scalar/SVE/NEON backends.
ACC_F, PART_F = f(1), f(2)
A_F, B_F, RUN_F = f(8), f(9), f(10)
ACC_X, SIZE_X, IDX_X, J_X = x(1), x(2), x(3), x(4)
T5, PART_X, T7 = x(5), x(6), x(7)
ROW = {"a": x(8), "b": x(9), "c": x(10)}
A_X, B_X, RUN_X = x(11), x(12), x(13)
#: registers available for dynamic (modifier-written) working parameters.
DYN_POOL = (14, 15, 16, 17, 18, 19, 28, 29, 30)

Operand = Union[Reg, int]


def imm_value(nest: Nest, imm: float) -> Union[int, float]:
    return float(imm) if nest.is_float else int(imm)


def streamlined(nest: Nest) -> bool:
    """True when a backend may use its streamlined 1-D code shape (the
    hand-written kernel idiom) instead of the general nest scaffolding:
    a unit-stride, modifier-free, direct 1-D nest with at most one
    fused-multiply-add step."""
    if nest.schedule != "auto":
        return False
    if nest.ndims != 1 or nest.indirect is not None:
        return False
    if nest.size_mods or any(acc.mods for acc in nest.arrays):
        return False
    if nest.pred_cond is not None or nest.scalar_engine:
        return False
    if any(acc.strides != (1,) for acc in nest.arrays):
        return False
    if sum(1 for step in nest.ops if step.op == FMA_OP) > 1:
        return False
    return True


def flat_base(acc: Access) -> int:
    """Element-granular flat base of a 1-D access (base + offset)."""
    return acc.base + acc.offsets[0]


class NestEmitter:
    """Explicit loop nest with working parameters in registers.

    Mirrors the Streaming Engine's traversal semantics: entering level
    ``k`` resets the level-``k-1`` working parameters to their
    configured values and rearms the modifiers bound at ``k``; bound
    modifiers fire before each of the first ``count`` iterations; at
    every level-0 entry the per-array row byte addresses are recomputed
    from the current working parameters.

    ``prefix`` namespaces the emitted labels, so several nests can share
    one :class:`~repro.isa.program.ProgramBuilder`.
    """

    def __init__(
        self, nest: Nest, b: ProgramBuilder, prefix: str = ""
    ) -> None:
        self.nest = nest
        self.b = b
        self.prefix = prefix
        self.etype = nest.etype
        self.width = self.etype.width
        self._label_seq = 0
        # Dynamic working parameters: (target, owner, target_level) -> reg.
        # Sizes are shared across arrays (owner "*"), offsets/strides are
        # per-array.  Each modifier instance gets its own firing counter.
        self.dyn: Dict[Tuple[str, str, int], Reg] = {}
        self.counters: List[Tuple[Mod, str, Reg]] = []
        pool = iter(DYN_POOL)

        def take() -> Reg:
            try:
                return x(next(pool))
            except StopIteration:
                raise ValueError(
                    "case has too many dynamic parameters/modifiers for "
                    "the scalar lowering's register pool"
                ) from None

        for mod in nest.size_mods:
            key = ("size", "*", mod.level - 1)
            if key not in self.dyn:
                self.dyn[key] = take()
            self.counters.append((mod, "*", take()))
        for acc in nest.arrays:
            for mod in acc.mods:
                key = (mod.target, acc.name, mod.level - 1)
                if key not in self.dyn:
                    self.dyn[key] = take()
                self.counters.append((mod, acc.name, take()))

    # -- helpers ------------------------------------------------------------

    def label(self, stem: str) -> str:
        self._label_seq += 1
        return f"{self.prefix}{stem}_{self._label_seq}"

    def row_arrays(self) -> Tuple[Access, ...]:
        """Arrays addressed per-row: inputs always; the output too,
        unless the nest reduces into a single cell after the loops."""
        if self.nest.reduce is not None:
            return self.nest.inputs
        return self.nest.arrays

    def size_operand(self, level: int) -> Operand:
        return self.dyn.get(("size", "*", level), self.nest.sizes[level])

    def stride_operand(self, acc: Access, level: int) -> Operand:
        return self.dyn.get(("stride", acc.name, level), acc.strides[level])

    def _configured(self, target: str, owner: str, level: int) -> int:
        if target == "size":
            return self.nest.sizes[level]
        acc = self.nest.array(owner)
        return acc.offsets[level] if target == "offset" else acc.strides[level]

    # -- emission -----------------------------------------------------------

    def emit(self, inner: Callable[["NestEmitter"], None]) -> None:
        self._emit_level(self.nest.ndims - 1, inner)

    def _emit_level(
        self, k: int, inner: Callable[["NestEmitter"], None]
    ) -> None:
        b, nest = self.b, self.nest
        if k == 0:
            self._emit_rows()
            inner(self)
            return
        # Entering level k: reset the level below, rearm bound modifiers.
        for (target, owner, lvl), reg in self.dyn.items():
            if lvl == k - 1:
                b.emit(Li(reg, self._configured(target, owner, lvl)))
        for mod, _owner, creg in self.counters:
            if mod.level == k:
                b.emit(Li(creg, 0))
        i_reg = x(20 + k)
        b.emit(Li(i_reg, 0))
        top, end = self.label(f"l{k}_top"), self.label(f"l{k}_end")
        b.label(top)
        b.emit(BranchCmp("ge", i_reg, self.size_operand(k), end))
        for mod, owner, creg in self.counters:
            if mod.level == k:
                self._emit_mod(mod, owner, creg)
        if nest.indirect is not None and k == 1:
            # idx[i1] -> IDX_X (int32 vector laid out by the placer).
            b.emit(IntOp("mul", T5, i_reg, 4))
            b.emit(IntOp("add", T5, T5, nest.indirect.idx_addr))
            b.emit(Load(IDX_X, T5, 0, ElementType.I32))
        self._emit_level(k - 1, inner)
        b.emit(IntOp("add", i_reg, i_reg, 1))
        b.emit(Jump(top))
        b.label(end)

    def _emit_mod(self, mod: Mod, owner: str, creg: Reg) -> None:
        b = self.b
        skip = self.label("mod_skip")
        b.emit(BranchCmp("ge", creg, mod.count, skip))
        key = (mod.target, owner, mod.level - 1)
        reg = self.dyn[key]
        b.emit(IntOp(mod.behavior, reg, reg, mod.displacement))
        b.emit(IntOp("add", creg, creg, 1))
        b.label(skip)

    def _emit_rows(self) -> None:
        """Row byte address of every active array from the current
        working parameters: ``base + sum_k(off_k + i_k * stride_k)``."""
        nest, b = self.nest, self.b
        for acc in self.row_arrays():
            row = ROW[acc.name]
            const = acc.base
            dyn_offsets = []
            for lvl in range(nest.ndims):
                key = ("offset", acc.name, lvl)
                if key in self.dyn:
                    dyn_offsets.append(self.dyn[key])
                else:
                    const += acc.offsets[lvl]
            b.emit(Li(row, const))
            for reg in dyn_offsets:
                b.emit(IntOp("add", row, row, reg))
            for lvl in range(1, nest.ndims):
                b.emit(IntOp("mul", T5, x(20 + lvl), self.stride_operand(acc, lvl)))
                b.emit(IntOp("add", row, row, T5))
            if nest.indirect is not None and nest.indirect.array == acc.name:
                b.emit(IntOp("add", row, row, IDX_X))
            b.emit(IntOp("mul", row, row, self.width))


def emit_acc_init(b: ProgramBuilder, nest: Nest) -> None:
    if nest.reduce is None:
        return
    if nest.reduce == "min":
        value: Union[int, float] = float("inf") if nest.is_float else 1 << 62
    elif nest.reduce == "max":
        value = float("-inf") if nest.is_float else -(1 << 62)
    else:
        value = 0
    if nest.is_float:
        b.emit(FLi(ACC_F, float(value)))
    else:
        b.emit(Li(ACC_X, int(value)))


def emit_acc_store(b: ProgramBuilder, nest: Nest) -> None:
    etype = nest.etype
    addr = flat_base(nest.output) * etype.width
    b.emit(Li(T7, addr))
    b.emit(Store(ACC_F if nest.is_float else ACC_X, T7, 0, etype))


def emit_acc_step(b: ProgramBuilder, nest: Nest, part: Reg) -> None:
    if nest.is_float:
        b.emit(FOp(nest.reduce, ACC_F, ACC_F, part))
    else:
        b.emit(IntOp(nest.reduce, ACC_X, ACC_X, part))


def emit_scalar_chain(
    b: ProgramBuilder, nest: Nest, a_reg: Reg, b_reg: Reg, run_reg: Reg
) -> Reg:
    """The op chain on scalar registers; returns the result register.
    The fma step decomposes into mul-imm + add-b here (no scalar fused
    op over a general immediate)."""
    is_f = nest.is_float
    run = a_reg
    for step in nest.ops:
        if step.op == FMA_OP:
            b.emit(FOp("mul", run_reg, run, imm_value(nest, step.imm)))
            b.emit(FOp("add", run_reg, run_reg, b_reg))
        elif step.rhs is None:
            if not is_f:
                raise ValueError("unary chain steps require a float etype")
            b.emit(FUnary(step.op, run_reg, run))
        else:
            rhs = b_reg if step.rhs == "b" else imm_value(nest, step.imm)
            if is_f:
                b.emit(FOp(step.op, run_reg, run, rhs))
            else:
                b.emit(IntOp(step.op, run_reg, run, rhs))
        run = run_reg
    return run
