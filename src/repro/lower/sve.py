"""SVE backend: the vector-length-agnostic baseline.

Two code shapes:

* **general** — the fuzzer's explicit loop nest with a
  ``whilelt``-predicated inner loop and gathers for non-unit strides,
  driven by :class:`~repro.lower.common.NestEmitter`.
* **streamlined** — the hand-kernel do-while idiom of Fig. 1.B
  (``elementwise.build_sve``'s shape) for unit-stride 1-D nests, kept
  instruction-identical to the legacy builders for the migrated 1-D
  kernel family.
"""
from __future__ import annotations

from typing import Optional

from repro.ir.nodes import Access, FMA_OP, Nest
from repro.isa.program import ProgramBuilder
from repro.isa.registers import Reg, f, p, u, x
from repro.isa.scalar_ops import FLi, IntOp, Jump, Li
from repro.isa.sve_ops import (
    BranchPred,
    CmpPred,
    Dup,
    Fmla,
    IncElems,
    Index,
    Ld1,
    Ld1Gather,
    PTrue,
    Red,
    St1,
    St1Scatter,
    VOp,
    VUnary,
    WhileLt,
)
from repro.lower.common import (
    ACC_F,
    BranchCmp,
    J_X,
    NestEmitter,
    PART_F,
    PART_X,
    ROW,
    SIZE_X,
    T5,
    emit_acc_init,
    emit_acc_step,
    emit_acc_store,
    flat_base,
    imm_value,
    streamlined,
)


# ---------------------------------------------------------------------------
# General path (explicit nest, whilelt inner loop)
# ---------------------------------------------------------------------------


def _sve_access(
    emitter: NestEmitter, acc: Access, vreg: Reg, store: bool
) -> None:
    """Load/store one vector of ``acc``'s row under predicate p1.

    Unit, static innermost stride uses contiguous ld1/st1 indexed by the
    element counter; anything else goes through an index vector and
    gather/scatter.
    """
    b, etype = emitter.b, emitter.etype
    row = ROW[acc.name]
    s_op = emitter.stride_operand(acc, 0)
    if not isinstance(s_op, Reg) and s_op == 1:
        if store:
            b.emit(St1(vreg, p(1), row, index=J_X, etype=etype))
        else:
            b.emit(Ld1(vreg, p(1), row, index=J_X, etype=etype))
        return
    b.emit(IntOp("mul", T5, J_X, s_op))
    b.emit(Index(u(5), T5, s_op, etype))
    if store:
        b.emit(St1Scatter(vreg, p(1), row, u(5), etype))
    else:
        b.emit(Ld1Gather(vreg, p(1), row, u(5), etype))


def _sve_chain(emitter: NestEmitter, va: Reg, vb: Reg) -> Reg:
    b, nest, etype = emitter.b, emitter.nest, emitter.etype
    run = va
    for i, step in enumerate(nest.ops):
        if step.op == FMA_OP:
            # No predicated fused op over a pre-dup'd immediate here:
            # decompose into mul-imm + add-b (u(16+i) holds the coeff).
            b.emit(VOp("mul", u(3), p(1), run, u(16 + i), etype))
            b.emit(VOp("add", u(3), p(1), u(3), vb, etype))
        elif step.rhs is None:
            b.emit(VUnary(step.op, u(3), p(1), run, etype))
        else:
            rhs = vb if step.rhs == "b" else u(16 + i)
            b.emit(VOp(step.op, u(3), p(1), run, rhs, etype))
        run = u(3)
    return run


def _sve_body(emitter: NestEmitter) -> None:
    b, nest, etype = emitter.b, emitter.nest, emitter.etype
    is_f = nest.is_float
    has_b = nest.has_b
    size_op = emitter.size_operand(0)
    if isinstance(size_op, Reg):
        size_reg = size_op
    else:
        b.emit(Li(SIZE_X, size_op))
        size_reg = SIZE_X
    part = PART_F if is_f else PART_X
    top, end = emitter.label("v_top"), emitter.label("v_end")
    b.emit(Li(J_X, 0))
    b.label(top)
    b.emit(BranchCmp("ge", J_X, size_reg, end))
    b.emit(WhileLt(p(1), J_X, size_reg, etype))
    _sve_access(emitter, nest.array("a"), u(1), store=False)
    if has_b:
        _sve_access(emitter, nest.array("b"), u(2), store=False)
    if nest.pred_cond is not None:
        b.emit(CmpPred(nest.pred_cond, p(2), p(1), u(1), u(2), etype))
        b.emit(Red("add", part, p(2), u(1), etype))
        emit_acc_step(b, nest, part)
    elif nest.reduce is not None and nest.use_mac:
        b.emit(Fmla(u(4), p(1), u(1), u(2), etype))
    elif nest.reduce is not None:
        res = _sve_chain(emitter, u(1), u(2))
        b.emit(Red(nest.reduce, part, p(1), res, etype))
        emit_acc_step(b, nest, part)
    else:
        res = _sve_chain(emitter, u(1), u(2))
        _sve_access(emitter, nest.output, res, store=True)
    b.emit(IncElems(J_X, etype))
    b.emit(Jump(top))
    b.label(end)


def _emit_general(b: ProgramBuilder, nest: Nest, prefix: str) -> None:
    emitter = NestEmitter(nest, b, prefix)
    etype = nest.etype
    emit_acc_init(b, nest)
    for i, step in enumerate(nest.ops):
        if step.rhs == "imm" or step.op == FMA_OP:
            b.emit(Dup(u(16 + i), imm_value(nest, step.imm), etype))
    if nest.use_mac:
        b.emit(Dup(u(4), imm_value(nest, 0), etype))
    emitter.emit(_sve_body)
    if nest.use_mac:
        b.emit(PTrue(p(2), etype))
        b.emit(Red("add", ACC_F, p(2), u(4), etype))
    if nest.reduce is not None:
        emit_acc_store(b, nest)


# ---------------------------------------------------------------------------
# Streamlined path (Fig. 1.B do-while, hand-kernel shape)
# ---------------------------------------------------------------------------


def _emit_streamlined(b: ProgramBuilder, nest: Nest, prefix: str) -> None:
    etype = nest.etype
    n = nest.sizes[0]
    k = len(nest.inputs)
    bound, idx = x(3), x(4)
    bases = [x(8 + i) for i in range(k)]
    b.emit(Li(bound, n))
    for base, acc in zip(bases, nest.inputs):
        b.emit(Li(base, flat_base(acc) * etype.width))
    if nest.reduce is None:
        out_base = x(8 + k)
        b.emit(Li(out_base, flat_base(nest.output) * etype.width))
    b.emit(Li(idx, 0))
    b.emit(WhileLt(p(1), idx, bound, etype=etype))
    emit_acc_init(b, nest)
    fma_dup = {}
    const_i = 0
    for i, step in enumerate(nest.ops):
        if step.op == FMA_OP:
            b.emit(FLi(f(const_i), imm_value(nest, step.imm)))
            b.emit(Dup(u(0), f(const_i), etype=etype))
            fma_dup[i] = u(0)
            const_i += 1
        elif step.rhs == "imm":
            b.emit(Dup(u(16 + i), imm_value(nest, step.imm), etype))
    if nest.use_mac:
        b.emit(Dup(u(4), imm_value(nest, 0), etype))
    in_regs = [u(1 + i) for i in range(k)]
    out_reg = u(1 + k)
    vb = in_regs[1] if k == 2 else None
    part = PART_F if nest.is_float else PART_X
    loop = f"{prefix}loop"
    b.label(loop)
    for reg, base in zip(in_regs, bases):
        b.emit(Ld1(reg, p(1), base, index=idx, etype=etype))
    if nest.reduce is not None and nest.use_mac:
        b.emit(Fmla(u(4), p(1), in_regs[0], vb, etype))
    elif nest.reduce is not None:
        run = _streamlined_chain(b, nest, in_regs[0], vb, out_reg, fma_dup)
        b.emit(Red(nest.reduce, part, p(1), run, etype))
        emit_acc_step(b, nest, part)
    else:
        store_reg = _streamlined_chain(
            b, nest, in_regs[0], vb, out_reg, fma_dup
        )
        b.emit(St1(store_reg, p(1), out_base, index=idx, etype=etype))
    b.emit(
        IncElems(idx, etype=etype),
        WhileLt(p(1), idx, bound, etype=etype),
        BranchPred("first", p(1), loop, etype=etype),
    )
    if nest.use_mac:
        b.emit(PTrue(p(2), etype))
        b.emit(Red("add", ACC_F, p(2), u(4), etype))
    if nest.reduce is not None:
        emit_acc_store(b, nest)


def _streamlined_chain(
    b: ProgramBuilder, nest: Nest, run: Reg, vb, out_reg: Reg, fma_dup
) -> Reg:
    etype = nest.etype
    for i, step in enumerate(nest.ops):
        if step.op == FMA_OP:
            b.emit(Fmla(vb, p(1), run, fma_dup[i], etype))
            run = vb
        elif step.rhs is None:
            b.emit(VUnary(step.op, out_reg, p(1), run, etype))
            run = out_reg
        else:
            rhs = vb if step.rhs == "b" else u(16 + i)
            b.emit(VOp(step.op, out_reg, p(1), run, rhs, etype))
            run = out_reg
    return run


def emit(
    b: ProgramBuilder,
    nest: Nest,
    prefix: str = "",
    inject: Optional[str] = None,
) -> None:
    """Append the SVE lowering of ``nest`` to ``b`` (no Halt)."""
    if streamlined(nest):
        _emit_streamlined(b, nest, prefix)
    else:
        _emit_general(b, nest, prefix)
