"""A miniature stream compiler: affine loop nests → stream descriptors.

The paper leaves the compiler toolchain to future work but spells out
what it must do (§III-A2): *identify linear combinations of loop
induction variables used to calculate the address sequence of streamable
memory accesses* and configure streams from them.  This module
implements that analysis for affine accesses:

>>> nest = LoopNest(["i", "j"], bounds={"i": 64, "j": 32})
>>> access = AffineAccess("A", base=0, terms={"i": 32, "j": 1})
>>> pattern = compile_access(nest, access)

produces the 2-D row-major pattern ``D0 {A, 32, 1}; D1 {0, 64, 32}``,
and :func:`config_instructions` lowers a pattern to the corresponding
``ss.*`` configuration sequence.  Loop variables absent from an access
become zero-stride (re-read) dimensions; triangular bounds (an inner
bound that is an affine function of an outer variable) become static
size modifiers, exactly as in Fig. 3.B4.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from repro.common.types import ElementType
from repro.errors import DescriptorError
from repro.isa import uve_ops as uve
from repro.isa.instructions import Instruction
from repro.isa.registers import Reg
from repro.streams.descriptor import (
    Descriptor,
    Param,
    StaticBehavior,
    StaticModifier,
)
from repro.streams.pattern import Direction, Level, MemLevel, StreamPattern


@dataclass(frozen=True)
class TriangularBound:
    """An inner-loop bound of the form ``coeff*outer + constant``
    (e.g. ``for j in range(i + 1)`` is ``TriangularBound("i", 1, 1)``)."""

    outer: str
    coeff: int = 1
    constant: int = 0


Bound = Union[int, TriangularBound]


@dataclass(frozen=True)
class LoopNest:
    """An ordered loop nest; ``variables[0]`` is the outermost loop."""

    variables: Sequence[str]
    bounds: Dict[str, Bound]

    def __post_init__(self) -> None:
        object.__setattr__(self, "variables", tuple(self.variables))
        missing = [v for v in self.variables if v not in self.bounds]
        if missing:
            raise DescriptorError(f"loops without bounds: {missing}")
        for variable, bound in self.bounds.items():
            if isinstance(bound, TriangularBound):
                if bound.outer not in self.variables:
                    raise DescriptorError(
                        f"bound of {variable!r} references unknown loop "
                        f"{bound.outer!r}"
                    )
                if self.variables.index(bound.outer) >= self.variables.index(
                    variable
                ):
                    raise DescriptorError(
                        f"bound of {variable!r} must reference an *outer* "
                        f"loop, not {bound.outer!r}"
                    )

    def trip_count(self, variable: str) -> int:
        """Worst-case trip count (triangular bounds at their maximum)."""
        bound = self.bounds[variable]
        if isinstance(bound, TriangularBound):
            outer_max = self.trip_count(bound.outer) - 1
            return max(bound.coeff * outer_max + bound.constant, 0)
        return int(bound)


@dataclass(frozen=True)
class AffineAccess:
    """One array access ``name[sum(terms[v] * v) + offset]``."""

    name: str
    base: int
    terms: Dict[str, int] = field(default_factory=dict)
    offset: int = 0
    etype: ElementType = ElementType.F32
    direction: Direction = Direction.LOAD
    mem_level: MemLevel = MemLevel.L2


def compile_access(nest: LoopNest, access: AffineAccess) -> StreamPattern:
    """Derive the stream pattern of an affine access under a loop nest.

    One dimension is produced per loop, innermost first; loops the
    access does not index become zero-stride dimensions (they re-read
    the inner pattern — dropping them would change how many times each
    element is delivered).  A triangular inner bound becomes a static
    SIZE modifier on the dimension of the referenced outer loop.
    """
    unknown = [v for v in access.terms if v not in nest.variables]
    if unknown:
        raise DescriptorError(
            f"access {access.name!r} indexes unknown loops: {unknown}"
        )

    inner_to_outer = list(reversed(list(nest.variables)))
    descriptors: List[Descriptor] = []
    #: (target dimension index, outer variable, bound)
    triangular: List[Tuple[int, TriangularBound]] = []

    for index, variable in enumerate(inner_to_outer):
        stride = access.terms.get(variable, 0)
        bound = nest.bounds[variable]
        offset = access.base + access.offset if index == 0 else 0
        if isinstance(bound, TriangularBound):
            initial = bound.constant - bound.coeff
            if initial < 0:
                raise DescriptorError(
                    f"triangular bound of {variable!r} starts below zero "
                    f"(constant {bound.constant} < step {bound.coeff})"
                )
            descriptors.append(Descriptor(offset, initial, stride))
            triangular.append((index, bound))
        else:
            descriptors.append(Descriptor(offset, int(bound), stride))

    modifiers: Dict[int, List[StaticModifier]] = {}
    for dim_index, bound in triangular:
        outer_index = inner_to_outer.index(bound.outer)
        if outer_index != dim_index + 1:
            raise DescriptorError(
                "a triangular bound must reference the immediately "
                "enclosing loop (descriptor modifiers bind one level up)"
            )
        count = nest.trip_count(bound.outer)
        modifiers.setdefault(outer_index, []).append(
            StaticModifier(
                Param.SIZE,
                StaticBehavior.ADD if bound.coeff > 0 else StaticBehavior.SUB,
                abs(bound.coeff),
                count,
            )
        )

    levels = [
        Level(descriptor, modifiers.get(index, []))
        for index, descriptor in enumerate(descriptors)
    ]
    return StreamPattern(
        levels=levels,
        etype=access.etype,
        direction=access.direction,
        mem_level=access.mem_level,
    )


def compile_nest(
    nest: LoopNest, accesses: Sequence[AffineAccess]
) -> Dict[str, StreamPattern]:
    """Compile every access of a loop nest; returns name -> pattern."""
    return {a.name: compile_access(nest, a) for a in accesses}


def config_instructions(
    register: Reg, pattern: StreamPattern
) -> List[Instruction]:
    """Lower a compiled pattern to its ``ss.*`` configuration sequence
    (the instructions a UVE compiler would emit at the loop preamble)."""
    levels = list(pattern.levels)
    if any(level.descriptor is None for level in levels):
        raise DescriptorError(
            "indirect patterns need their origin stream configured "
            "separately; lower them by hand"
        )
    if len(levels) == 1 and not levels[0].modifiers:
        d = levels[0].descriptor
        return [
            uve.SsConfig1D(
                register, pattern.direction, d.offset, d.size, d.stride,
                etype=pattern.etype, mem_level=pattern.mem_level,
            )
        ]

    out: List[Instruction] = []
    total = len(levels)
    for index, level in enumerate(levels):
        d = level.descriptor
        mods = list(level.modifiers)
        if index == 0:
            out.append(
                uve.SsSta(
                    register, pattern.direction, d.offset, d.size, d.stride,
                    etype=pattern.etype, mem_level=pattern.mem_level,
                )
            )
        else:
            last = index == total - 1 and not mods
            out.append(
                uve.SsApp(register, d.offset, d.size, d.stride, last=last)
            )
        for m_index, modifier in enumerate(mods):
            if not isinstance(modifier, StaticModifier):
                raise DescriptorError("only static modifiers are lowered")
            last = index == total - 1 and m_index == len(mods) - 1
            out.append(
                uve.SsAppMod(
                    register, modifier.target, modifier.behavior,
                    modifier.displacement, modifier.count, last=last,
                )
            )
    return out
