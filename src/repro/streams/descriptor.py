"""Stream descriptors and modifiers (paper §II-B).

A *descriptor* is the three-parameter tuple ``{O, E, S}`` (offset, size,
stride) describing one dimension of an affine access pattern.  Descriptors
are combined hierarchically: the descriptor of dimension *k* produces a
displacement added to the offset of dimension *k-1*.

Two kinds of *modifiers* extend the model:

* a **static modifier** ``{T, B, D, E}`` mutates one parameter of the
  immediately lower dimension by a constant displacement every time its
  bound dimension iterates (e.g. growing the inner-loop size of a lower
  triangular scan);
* an **indirect modifier** ``{T, B, P}`` sets one parameter of the lower
  dimension from the values produced by *another* stream, enabling
  indirect (``A[B[i]]``) and indexed scatter/gather patterns.

All offsets and strides are expressed in *elements* of the stream's data
type; equation (1) of the paper is realised as::

    element_address = sum_k (O_k + i_k * S_k),   i_k in [0, E_k)

which reproduces every example of Fig. 3 (the paper folds the base address
into the dimension-0 offset).
"""
from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.errors import DescriptorError


class Param(enum.Enum):
    """Descriptor parameter targeted by a modifier (the T field)."""

    OFFSET = "offset"
    SIZE = "size"
    STRIDE = "stride"


class StaticBehavior(enum.Enum):
    """Static-modifier behaviour operators (the B field, §II-B2)."""

    ADD = "add"
    SUB = "sub"


class IndirectBehavior(enum.Enum):
    """Indirect-modifier behaviour operators (the B field, §II-B3)."""

    SET_ADD = "set-add"
    SET_SUB = "set-sub"
    SET_VALUE = "set-value"


@dataclass(frozen=True)
class Descriptor:
    """One dimension of an access pattern: ``{offset, size, stride}``.

    ``offset`` is in elements (for dimension 0 it carries the variable's
    base element index); ``size`` is the trip count of the dimension;
    ``stride`` is the element step applied per iteration.  A ``stride`` of
    zero repeats the same displacement (useful to re-read a row), and a
    ``size`` of zero yields no elements.
    """

    offset: int
    size: int
    stride: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise DescriptorError(f"descriptor size must be >= 0, got {self.size}")


@dataclass(frozen=True)
class StaticModifier:
    """Static descriptor modifier ``{T, B, D, E}`` (§II-B2).

    Bound to dimension *k+1*, it applies ``target (B)= displacement`` to
    dimension *k* at the start of each iteration of dimension *k+1*, for at
    most ``count`` applications per traversal.  The modification is
    cumulative and resets when the bound dimension restarts.
    """

    target: Param
    behavior: StaticBehavior
    displacement: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise DescriptorError(f"modifier count must be >= 0, got {self.count}")

    def apply(self, value: int, applications: int) -> int:
        """Value of the target parameter after this application."""
        if applications >= self.count:
            return value
        if self.behavior is StaticBehavior.ADD:
            return value + self.displacement
        return value - self.displacement


@dataclass(frozen=True)
class IndirectModifier:
    """Indirect descriptor modifier ``{T, B, P}`` (§II-B3).

    Bound to dimension *k+1*, it sets the target parameter of dimension *k*
    from the next value of the *origin* stream each time the bound
    dimension iterates.  Unlike static modifiers the effect is not
    cumulative: the target is recomputed from its configured value.  When
    an indirect modifier stands alone as a dimension (no descriptor at its
    level), its trip count is the length of the origin stream.
    """

    target: Param
    behavior: IndirectBehavior
    origin: "object"  # StreamPattern; typed loosely to avoid a cycle

    def apply(self, configured: int, value: int) -> int:
        """Target parameter value given the origin-stream ``value``."""
        if self.behavior is IndirectBehavior.SET_ADD:
            return configured + value
        if self.behavior is IndirectBehavior.SET_SUB:
            return configured - value
        return value


Modifier = Union[StaticModifier, IndirectModifier]
