"""Complexity limits for stream descriptors (paper §III-A.2).

The UVE specification bounds the hardware resources of the Streaming
Engine: the implementation evaluated in the paper supports patterns with
up to 8 dimensions and 7 modifiers per stream, and 32 architectural
streams (one per vector register).
"""

#: Maximum number of dimensions in one stream pattern.
MAX_DIMENSIONS = 8

#: Maximum number of modifiers (static + indirect) in one stream pattern.
MAX_MODIFIERS = 7

#: Number of architectural streams (= number of vector registers).
MAX_STREAMS = 32
