"""Stream descriptor model (paper §II).

Public surface: descriptor/modifier dataclasses, the pattern container,
the functional iterator and vector chunker, and builder helpers for the
pattern families of Fig. 3.
"""
from repro.streams.compiler import (
    AffineAccess,
    LoopNest,
    TriangularBound,
    compile_access,
    compile_nest,
    config_instructions,
)
from repro.streams.builders import (
    indirect,
    linear,
    lower_triangular,
    rectangular,
    repeated,
)
from repro.streams.descriptor import (
    Descriptor,
    IndirectBehavior,
    IndirectModifier,
    Param,
    StaticBehavior,
    StaticModifier,
)
from repro.streams.iterator import (
    StreamChunk,
    StreamElement,
    StreamIterator,
    VectorChunker,
)
from repro.streams.limits import MAX_DIMENSIONS, MAX_MODIFIERS, MAX_STREAMS
from repro.streams.pattern import Direction, Level, MemLevel, StreamPattern

__all__ = [
    "AffineAccess",
    "Descriptor",
    "Direction",
    "IndirectBehavior",
    "IndirectModifier",
    "Level",
    "MAX_DIMENSIONS",
    "MAX_MODIFIERS",
    "MAX_STREAMS",
    "MemLevel",
    "Param",
    "StaticBehavior",
    "StaticModifier",
    "StreamChunk",
    "StreamElement",
    "StreamIterator",
    "StreamPattern",
    "TriangularBound",
    "LoopNest",
    "VectorChunker",
    "compile_access",
    "compile_nest",
    "config_instructions",
    "indirect",
    "linear",
    "lower_triangular",
    "rectangular",
    "repeated",
]
