"""Functional iteration of stream patterns.

:class:`StreamIterator` expands a :class:`~repro.streams.pattern.StreamPattern`
into the exact byte-address sequence it describes, tagging each element with
the dimensions that complete at it (the information behind UVE's
end-of-dimension and end-of-stream branches).  :class:`VectorChunker` groups
elements into vector-register-sized chunks that never cross a dimension-0
boundary — the automatic tail padding of the paper's feature F5.

Iteration is lazy: indirect patterns pull origin-stream values through a
caller-supplied ``read_element(byte_address, etype) -> int`` callback, so
the same code serves the functional simulator and the Streaming Engine.
"""
from __future__ import annotations

from typing import Callable, Iterator, List, NamedTuple, Optional

import numpy as np

from repro.errors import DescriptorError, StreamError
from repro.streams.descriptor import (
    Descriptor,
    IndirectModifier,
    Param,
    StaticModifier,
)
from repro.streams.pattern import StreamPattern

ReadElement = Callable[[int, "object"], int]


class StreamElement(NamedTuple):
    """One generated access.

    ``address`` is the byte address.  ``dims_ended`` is ``-1`` for an
    element in the middle of dimension 0, otherwise the highest dimension
    *k* such that dimensions 0..k all complete with this element
    (``ndims - 1`` therefore marks the end of the whole stream).
    """

    address: int
    dims_ended: int


class _WorkingDescriptor:
    """Mutable copy of a descriptor's parameters during iteration."""

    __slots__ = ("offset", "size", "stride", "base")

    def __init__(self, descriptor: Descriptor) -> None:
        self.base = descriptor
        self.reset()

    def reset(self) -> None:
        self.offset = self.base.offset
        self.size = self.base.size
        self.stride = self.base.stride

    def get(self, param: Param) -> int:
        return getattr(self, param.value)

    def set(self, param: Param, value: int) -> None:
        setattr(self, param.value, value)

    def configured(self, param: Param) -> int:
        return getattr(self.base, param.value)


class StreamIterator:
    """Lazily generates the address sequence of a stream pattern."""

    def __init__(
        self,
        pattern: StreamPattern,
        read_element: Optional[ReadElement] = None,
    ) -> None:
        self._pattern = pattern
        self._read_element = read_element
        if pattern.has_indirection and read_element is None:
            raise DescriptorError(
                "indirect patterns require a read_element callback"
            )

    def __iter__(self) -> Iterator[StreamElement]:
        return self._generate(self._pattern)

    def _generate(self, pattern: StreamPattern) -> Iterator[StreamElement]:
        working = [
            _WorkingDescriptor(lvl.descriptor) if lvl.descriptor else None
            for lvl in pattern.levels
        ]
        width = pattern.etype.width
        top = pattern.ndims - 1
        for address, ended in self._gen_level(pattern, working, top, 0):
            yield StreamElement(address * width, ended)

    def _gen_level(
        self,
        pattern: StreamPattern,
        working: List[Optional[_WorkingDescriptor]],
        level_idx: int,
        displacement: int,
    ) -> Iterator:
        level = pattern.levels[level_idx]
        if level_idx == 0:
            desc = working[0]
            assert desc is not None
            count = desc.size
            offset, stride = desc.offset, desc.stride
            for i in range(count):
                ended = 0 if i == count - 1 else -1
                yield displacement + offset + i * stride, ended
            return

        lower = working[level_idx - 1]
        if lower is not None:
            lower.reset()
        app_counts = [0] * len(level.modifiers)
        origin_iters = [
            self._origin_values(mod)
            if isinstance(mod, IndirectModifier)
            else None
            for mod in level.modifiers
        ]
        desc = working[level_idx]

        if desc is None:
            # Lone indirect modifier: the origin stream drives the trip count.
            mod = level.modifiers[0]
            assert isinstance(mod, IndirectModifier)
            values = list(origin_iters[0])
            count = len(values)
            for i, value in enumerate(values):
                self._apply_indirect(mod, lower, value)
                yield from self._promote(
                    self._gen_level(pattern, working, level_idx - 1, displacement),
                    level_idx,
                    i == count - 1,
                )
            return

        count = desc.size
        offset, stride = desc.offset, desc.stride
        for i in range(count):
            for m, mod in enumerate(level.modifiers):
                if isinstance(mod, StaticModifier):
                    if app_counts[m] < mod.count:
                        current = lower.get(mod.target)
                        lower.set(mod.target, mod.apply(current, app_counts[m]))
                        app_counts[m] += 1
                else:
                    try:
                        value = next(origin_iters[m])
                    except StopIteration:
                        raise StreamError(
                            "indirect origin stream exhausted before the "
                            "dependent stream completed"
                        ) from None
                    self._apply_indirect(mod, lower, value)
            yield from self._promote(
                self._gen_level(
                    pattern, working, level_idx - 1, displacement + offset + i * stride
                ),
                level_idx,
                i == count - 1,
            )

    @staticmethod
    def _promote(inner: Iterator, level_idx: int, last: bool) -> Iterator:
        """Lift end-of-dimension flags across this level's last iteration."""
        for address, ended in inner:
            if last and ended == level_idx - 1:
                yield address, level_idx
            else:
                yield address, ended

    @staticmethod
    def _apply_indirect(
        mod: IndirectModifier, lower: Optional[_WorkingDescriptor], value: int
    ) -> None:
        if lower is None:
            raise DescriptorError("indirect modifier has no lower descriptor")
        lower.set(mod.target, mod.apply(lower.configured(mod.target), value))

    def _origin_values(self, mod: IndirectModifier) -> Iterator[int]:
        origin = mod.origin
        assert isinstance(origin, StreamPattern)
        reader = self._read_element
        assert reader is not None
        for element in StreamIterator(origin, reader):
            yield int(reader(element.address, origin.etype))

    # -- Convenience -------------------------------------------------------

    def materialize(self, limit: int = 1_000_000) -> List[StreamElement]:
        """Expand the whole pattern into a list (test/debug helper)."""
        out: List[StreamElement] = []
        for element in self:
            out.append(element)
            if len(out) > limit:
                raise StreamError(f"pattern expanded past {limit} elements")
        return out

    def addresses(self, limit: int = 1_000_000) -> List[int]:
        """Byte addresses of the whole pattern (test/debug helper)."""
        return [e.address for e in self.materialize(limit)]


class StreamRun(NamedTuple):
    """One dimension-0 instance of a pattern as a NumPy address vector.

    ``addresses`` are the byte addresses of every element of the
    instance, in iteration order (always non-empty; empty instances are
    skipped, exactly as :class:`StreamIterator` yields no element for
    them).  ``dims_ended`` is the flag of the run's *last* element; every
    earlier element of the run carries ``-1``, so runs are a lossless
    regrouping of the element sequence.
    """

    addresses: np.ndarray
    dims_ended: int


class RunIterator:
    """Dimension-0-granular (vectorized) expansion of a stream pattern.

    Yields the exact element sequence of :class:`StreamIterator`, but one
    whole dimension-0 instance at a time as a NumPy vector: outer
    dimensions, modifiers, and indirection still iterate in Python (their
    trip counts are the small factors), while the innermost dimension —
    the bulk of every pattern — is materialised with one ``arange``.

    Side-effect order is preserved: indirect origin values are pulled
    through ``read_element`` lazily, one value per iteration of the
    binding dimension, *before* the dependent run is yielded — the same
    positions at which :class:`StreamIterator` pulls them.  This is what
    keeps the functional trace (chunk/origin-read attribution) bit-identical
    to the element-granular iterator.
    """

    def __init__(
        self,
        pattern: StreamPattern,
        read_element: Optional[ReadElement] = None,
    ) -> None:
        self._pattern = pattern
        self._read_element = read_element
        if pattern.has_indirection and read_element is None:
            raise DescriptorError(
                "indirect patterns require a read_element callback"
            )

    def __iter__(self) -> Iterator[StreamRun]:
        return self._generate(self._pattern)

    def _generate(self, pattern: StreamPattern) -> Iterator[StreamRun]:
        working = [
            _WorkingDescriptor(lvl.descriptor) if lvl.descriptor else None
            for lvl in pattern.levels
        ]
        width = pattern.etype.width
        top = pattern.ndims - 1
        for addresses, ended in self._gen_level(pattern, working, top, 0):
            yield StreamRun(addresses * width, ended)

    def _gen_level(
        self,
        pattern: StreamPattern,
        working: List[Optional[_WorkingDescriptor]],
        level_idx: int,
        displacement: int,
    ) -> Iterator:
        level = pattern.levels[level_idx]
        if level_idx == 0:
            desc = working[0]
            assert desc is not None
            count = desc.size
            if count:  # an empty instance yields no elements at all
                base = displacement + desc.offset
                yield (
                    base + np.arange(count, dtype=np.int64) * desc.stride,
                    0,
                )
            return

        lower = working[level_idx - 1]
        if lower is not None:
            lower.reset()
        app_counts = [0] * len(level.modifiers)
        origin_iters = [
            self._origin_values(mod)
            if isinstance(mod, IndirectModifier)
            else None
            for mod in level.modifiers
        ]
        desc = working[level_idx]

        if desc is None:
            # Lone indirect modifier: the origin stream drives the trip count.
            mod = level.modifiers[0]
            assert isinstance(mod, IndirectModifier)
            values = list(origin_iters[0])
            count = len(values)
            for i, value in enumerate(values):
                StreamIterator._apply_indirect(mod, lower, value)
                yield from self._promote(
                    self._gen_level(pattern, working, level_idx - 1, displacement),
                    level_idx,
                    i == count - 1,
                )
            return

        count = desc.size
        offset, stride = desc.offset, desc.stride
        for i in range(count):
            for m, mod in enumerate(level.modifiers):
                if isinstance(mod, StaticModifier):
                    if app_counts[m] < mod.count:
                        current = lower.get(mod.target)
                        lower.set(mod.target, mod.apply(current, app_counts[m]))
                        app_counts[m] += 1
                else:
                    try:
                        value = next(origin_iters[m])
                    except StopIteration:
                        raise StreamError(
                            "indirect origin stream exhausted before the "
                            "dependent stream completed"
                        ) from None
                    StreamIterator._apply_indirect(mod, lower, value)
            yield from self._promote(
                self._gen_level(
                    pattern, working, level_idx - 1, displacement + offset + i * stride
                ),
                level_idx,
                i == count - 1,
            )

    @staticmethod
    def _promote(inner: Iterator, level_idx: int, last: bool) -> Iterator:
        """Lift end-of-dimension flags across this level's last iteration."""
        for addresses, ended in inner:
            if last and ended == level_idx - 1:
                yield addresses, level_idx
            else:
                yield addresses, ended

    def _origin_values(self, mod: IndirectModifier) -> Iterator[int]:
        """Origin-stream values, pulled (and recorded by ``read_element``)
        one at a time — element-granular on purpose, so the attribution of
        engine-internal origin reads to chunks matches the legacy iterator."""
        origin = mod.origin
        assert isinstance(origin, StreamPattern)
        reader = self._read_element
        assert reader is not None
        for element in StreamIterator(origin, reader):
            yield int(reader(element.address, origin.etype))


class StreamChunk(NamedTuple):
    """A vector-register-sized group of consecutive stream elements.

    ``addresses`` holds at most ``lanes`` byte addresses; lanes beyond
    ``len(addresses)`` are padding (disabled, as by a false predicate).
    ``dims_ended`` is the flag of the chunk's final element.
    """

    addresses: List[int]
    dims_ended: int


class VectorChunker:
    """Groups stream elements into vector-sized chunks.

    A chunk closes when it holds ``lanes`` elements or when a dimension-0
    boundary is reached, implementing the automatic padding of streams to
    the vector length (feature F5): computation never sees elements from
    two different innermost-dimension instances in one register.
    """

    def __init__(self, iterator: Iterator[StreamElement], lanes: int) -> None:
        if lanes < 1:
            raise DescriptorError(f"lanes must be >= 1, got {lanes}")
        self._iter = iter(iterator)
        self._lanes = lanes

    def __iter__(self) -> Iterator[StreamChunk]:
        addresses: List[int] = []
        for element in self._iter:
            addresses.append(element.address)
            if element.dims_ended >= 0 or len(addresses) == self._lanes:
                yield StreamChunk(addresses, element.dims_ended)
                addresses = []
        if addresses:  # pattern ended mid-dimension (defensive; cannot happen)
            yield StreamChunk(addresses, -1)
