"""Convenience constructors for common access patterns (paper Fig. 3.B).

These helpers build :class:`~repro.streams.pattern.StreamPattern` objects
for the pattern families used throughout the paper: linear, rectangular,
scattered, lower-triangular (static modifier) and indirect accesses.  All
offsets/strides are in elements; ``base`` is the element index of the
array's first element (byte address / element width).
"""
from __future__ import annotations

from typing import Optional

from repro.common.types import ElementType
from repro.errors import StreamError
from repro.streams.descriptor import (
    Descriptor,
    IndirectBehavior,
    IndirectModifier,
    Param,
    StaticBehavior,
    StaticModifier,
)
from repro.streams.limits import MAX_DIMENSIONS, MAX_MODIFIERS
from repro.streams.pattern import Direction, Level, MemLevel, StreamPattern


def _check_limits(levels, what: str) -> None:
    """Reject over-limit configurations with a StreamError naming the
    offending builder, before StreamPattern construction."""
    if len(levels) > MAX_DIMENSIONS:
        raise StreamError(
            f"{what}: {len(levels)} dimensions exceed the Streaming "
            f"Engine limit of {MAX_DIMENSIONS} per stream"
        )
    nmods = sum(len(level.modifiers) for level in levels)
    if nmods > MAX_MODIFIERS:
        raise StreamError(
            f"{what}: {nmods} modifiers exceed the Streaming Engine "
            f"limit of {MAX_MODIFIERS} per stream"
        )


def linear(
    base: int,
    size: int,
    stride: int = 1,
    *,
    etype: ElementType = ElementType.F32,
    direction: Direction = Direction.LOAD,
    mem_level: MemLevel = MemLevel.L2,
) -> StreamPattern:
    """1-D pattern ``A[base + i*stride]`` for ``i in [0, size)`` (Fig. 3.B1)."""
    return StreamPattern(
        levels=[Level(Descriptor(base, size, stride))],
        etype=etype,
        direction=direction,
        mem_level=mem_level,
    )


def rectangular(
    base: int,
    rows: int,
    cols: int,
    row_stride: Optional[int] = None,
    col_stride: int = 1,
    *,
    etype: ElementType = ElementType.F32,
    direction: Direction = Direction.LOAD,
    mem_level: MemLevel = MemLevel.L2,
) -> StreamPattern:
    """Row-major 2-D scan of a ``rows x cols`` block (Fig. 3.B2/B3).

    ``row_stride`` defaults to ``cols`` (a dense matrix); pass a larger
    value to scan a sub-block, or scale both strides for scattered scans.
    """
    if row_stride is None:
        row_stride = cols
    return StreamPattern(
        levels=[
            Level(Descriptor(base, cols, col_stride)),
            Level(Descriptor(0, rows, row_stride)),
        ],
        etype=etype,
        direction=direction,
        mem_level=mem_level,
    )


def repeated(
    pattern: StreamPattern,
    times: int,
) -> StreamPattern:
    """Wrap ``pattern`` in an outer zero-stride dimension repeating it."""
    levels = list(pattern.levels) + [Level(Descriptor(0, times, 0))]
    _check_limits(levels, "repeated()")
    return StreamPattern(
        levels=levels,
        etype=pattern.etype,
        direction=pattern.direction,
        mem_level=pattern.mem_level,
    )


def lower_triangular(
    base: int,
    rows: int,
    row_stride: int,
    *,
    first_row_size: int = 1,
    growth: int = 1,
    etype: ElementType = ElementType.F32,
    direction: Direction = Direction.LOAD,
    mem_level: MemLevel = MemLevel.L2,
) -> StreamPattern:
    """Lower-triangular scan: row *i* covers ``first_row_size + i*growth``
    elements (Fig. 3.B4).

    Encoded exactly as in the paper: dimension 0 starts with size
    ``first_row_size - growth`` and a static modifier bound to dimension 1
    adds ``growth`` at the start of every row.
    """
    return StreamPattern(
        levels=[
            Level(Descriptor(base, first_row_size - growth, 1)),
            Level(
                Descriptor(0, rows, row_stride),
                [StaticModifier(Param.SIZE, StaticBehavior.ADD, growth, rows)],
            ),
        ],
        etype=etype,
        direction=direction,
        mem_level=mem_level,
    )


def indirect(
    base: int,
    index_pattern: StreamPattern,
    *,
    inner_size: int = 1,
    inner_stride: int = 1,
    etype: ElementType = ElementType.F32,
    direction: Direction = Direction.LOAD,
    mem_level: MemLevel = MemLevel.L2,
) -> StreamPattern:
    """Indirect pattern ``A[base + idx]`` for each ``idx`` produced by
    ``index_pattern`` (Fig. 3.B5).

    Each origin value opens a run of ``inner_size`` elements starting at
    ``base + idx`` with ``inner_stride`` spacing (``inner_size=1`` gives
    plain gather/scatter).
    """
    levels = [
        Level(Descriptor(base, inner_size, inner_stride)),
        Level(
            None,
            [IndirectModifier(Param.OFFSET, IndirectBehavior.SET_ADD, index_pattern)],
        ),
    ]
    _check_limits(levels, "indirect()")
    return StreamPattern(
        levels=levels,
        etype=etype,
        direction=direction,
        mem_level=mem_level,
    )
