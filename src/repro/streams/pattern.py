"""Full stream patterns: hierarchies of descriptors plus modifiers.

A :class:`StreamPattern` is the complete, hardware-loadable description of
one stream: an ordered list of :class:`Level` objects (dimension 0 first),
the element type, the transfer direction, and the cache level the stream
is configured to access (paper's ``so.cfg.memx``, L2 by default).
"""
from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.common.types import ElementType
from repro.errors import DescriptorError
from repro.streams.descriptor import (
    Descriptor,
    IndirectModifier,
    Modifier,
    StaticModifier,
)
from repro.streams.limits import MAX_DIMENSIONS, MAX_MODIFIERS


class Direction(enum.Enum):
    """Transfer direction of a stream."""

    LOAD = "load"
    STORE = "store"


class MemLevel(enum.Enum):
    """Cache/memory level a stream is configured to access (§IV-A)."""

    L1 = 1
    L2 = 2
    MEM = 3


@dataclass(frozen=True)
class Level:
    """One hierarchy level: an optional descriptor plus bound modifiers.

    Modifiers bound to level *k* affect parameters of level *k-1* (paper
    Fig. 3.A2/A3).  A level may consist of a lone indirect modifier, in
    which case its trip count is the origin stream's length.
    """

    descriptor: Optional[Descriptor]
    modifiers: Sequence[Modifier] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "modifiers", tuple(self.modifiers))
        if self.descriptor is None:
            indirect = [m for m in self.modifiers if isinstance(m, IndirectModifier)]
            if len(indirect) != 1 or len(self.modifiers) != 1:
                raise DescriptorError(
                    "a level without a descriptor must hold exactly one "
                    "indirect modifier"
                )


@dataclass(frozen=True)
class StreamPattern:
    """A complete n-dimensional stream description.

    ``levels[0]`` is the innermost dimension and must carry a descriptor
    (modifiers can only be bound to levels >= 1, since they affect the
    level below).
    """

    levels: Sequence[Level]
    etype: ElementType = ElementType.F32
    direction: Direction = Direction.LOAD
    mem_level: MemLevel = MemLevel.L2

    def __post_init__(self) -> None:
        object.__setattr__(self, "levels", tuple(self.levels))
        if not self.levels:
            raise DescriptorError("a stream pattern needs at least one level")
        if self.levels[0].descriptor is None:
            raise DescriptorError("dimension 0 must carry a descriptor")
        if self.levels[0].modifiers:
            raise DescriptorError(
                "dimension 0 cannot carry modifiers (nothing below to modify)"
            )
        if self.ndims > MAX_DIMENSIONS:
            raise DescriptorError(
                f"pattern has {self.ndims} dimensions; UVE supports at most "
                f"{MAX_DIMENSIONS}"
            )
        if self.nmodifiers > MAX_MODIFIERS:
            raise DescriptorError(
                f"pattern has {self.nmodifiers} modifiers; UVE supports at "
                f"most {MAX_MODIFIERS}"
            )

    @property
    def ndims(self) -> int:
        return len(self.levels)

    @property
    def nmodifiers(self) -> int:
        return sum(len(level.modifiers) for level in self.levels)

    @property
    def is_load(self) -> bool:
        return self.direction is Direction.LOAD

    @property
    def is_store(self) -> bool:
        return self.direction is Direction.STORE

    @property
    def has_indirection(self) -> bool:
        return any(
            isinstance(m, IndirectModifier)
            for level in self.levels
            for m in level.modifiers
        )

    def descriptors(self) -> List[Optional[Descriptor]]:
        """Descriptors per level (``None`` for lone-indirect levels)."""
        return [level.descriptor for level in self.levels]

    def static_element_count(self) -> Optional[int]:
        """Total element count if derivable without iterating.

        Returns ``None`` when the pattern carries modifiers (the count then
        depends on the modification history or on streamed data).
        """
        if self.nmodifiers:
            return None
        total = 1
        for level in self.levels:
            assert level.descriptor is not None
            total *= level.descriptor.size
        return total

    def storage_bytes(self) -> int:
        """Bytes of Stream Table storage this pattern occupies (§VI-C).

        Each dimension/modifier entry packs three or four 64-bit fields
        plus control bits; we account 16 B per descriptor and 16 B per
        modifier, mirroring the paper's 32 B (1-D) to 400 B (8-D + 7
        modifiers, plus iteration state) context-size range.
        """
        dims = sum(1 for level in self.levels if level.descriptor is not None)
        return 16 * dims + 16 * self.nmodifiers + 16  # +16 B iteration state
