"""Stream Scheduler: selects the streams the Stream Processing Modules
iterate each cycle (paper §IV-B *Stream Scheduler Policy*).

The default policy prioritises streams whose FIFO queues are least
occupied — the most-consumed FIFO gets refilled first.  A round-robin
policy is provided for the ablation benchmark.
"""
from __future__ import annotations

from typing import Iterable, List

from repro.engine.table import EngineStream
from repro.errors import ConfigError


class StreamScheduler:
    def __init__(self, policy: str = "fifo-occupancy") -> None:
        if policy not in ("fifo-occupancy", "round-robin"):
            raise ConfigError(f"unknown stream scheduler policy {policy!r}")
        self.policy = policy
        self._rr_next = 0

    def select(
        self,
        streams: Iterable[EngineStream],
        count: int,
        now: float,
        pool_free=None,
    ) -> List[EngineStream]:
        """Pick up to ``count`` streams eligible for address generation.

        With a shared FIFO pool, ``pool_free`` is the remaining pooled
        capacity: streams may exceed their nominal depth (up to 4x) while
        the pool has room."""
        if pool_free is not None:
            # Streams under their nominal depth are always eligible (the
            # fixed-queue behaviour is a floor); borrowing beyond it
            # needs pool headroom.
            eligible = [
                s for s in streams
                if s.wants_generation(now, shared=True)
                and (s.fifo_occupancy() < s.fifo_depth or pool_free > 0)
            ]
        else:
            # Inlined EngineStream.wants_generation (hot path: called for
            # every stream on every active engine cycle).
            eligible = [
                s for s in streams
                if s.is_load
                and not s.terminated
                and now >= s.start_cycle
                and s.gen_next < s.num_chunks
                and s.gen_next - s.commit_head < s.fifo_depth
            ]
        if not eligible:
            return []
        if self.policy == "fifo-occupancy":
            if len(eligible) > 1:  # the hot path is a single ready stream
                eligible.sort(key=lambda s: (s.fifo_occupancy(), s.uid))
            return eligible[:count]
        # Round-robin: rotate the starting point each cycle.
        start = self._rr_next % len(eligible)
        self._rr_next += 1
        ordered = eligible[start:] + eligible[:start]
        return ordered[:count]
