"""Stream Table entries: per-stream timing state inside the Streaming
Engine (paper Fig. 7).

An :class:`EngineStream` tracks the address-generation progress (which
chunk the Stream Processing Modules are iterating, and which cache lines
of it remain to be requested), the load/store FIFO occupancy, and the
speculative and committed iteration pointers that support speculative
execution (paper §IV-A *Miss-Speculation*).
"""
from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.errors import StreamError
from repro.sim.trace import StreamTraceInfo

INFINITY = math.inf


class _ChunkFetch:
    """In-flight fetch state of one chunk (one FIFO entry)."""

    __slots__ = ("lines", "next_line", "ready", "issued_done")

    def __init__(self, lines: List[int]) -> None:
        self.lines = lines
        self.next_line = 0
        self.ready = 0.0  # max completion over issued lines
        self.issued_done = False


class EngineStream:
    """Timing state of one configured stream."""

    def __init__(
        self,
        info: StreamTraceInfo,
        fifo_depth: int,
        line_bytes: int,
        start_cycle: float,
    ) -> None:
        self.info = info
        self.fifo_depth = fifo_depth
        self.line_bytes = line_bytes
        self.start_cycle = start_cycle
        # Cached from info: read on the per-cycle scheduler/sampling hot
        # paths, where the double property hop shows up in profiles.
        self.uid = info.uid
        self.is_load = info.is_load

        self.num_chunks = len(info.chunks)
        #: chunk index the address generator will fetch next (loads) or
        #: whose store addresses it will generate next (stores)
        self.gen_next = 0
        self._current: Optional[_ChunkFetch] = None
        #: ready cycle of each fetched chunk (load FIFO entries)
        self.chunk_ready: Dict[int, float] = {}
        #: speculative consumption pointer (advanced at rename)
        self.spec_head = 0
        #: committed consumption pointer (advanced at commit; frees FIFO)
        self.commit_head = 0
        # Store-FIFO bookkeeping (output streams).
        self.store_reserved = 0
        self.store_drained = 0
        self.terminated = False

    # -- Occupancy / scheduling ------------------------------------------------

    def fifo_occupancy(self) -> int:
        """Entries currently held (fetched or reserved, not yet freed)."""
        if self.is_load:
            return self.gen_next - self.commit_head
        return self.store_reserved - self.store_drained

    def wants_generation(self, now: float, shared: bool = False) -> bool:
        """True when the scheduler may pick this stream this cycle.

        ``shared`` lifts the per-stream bound to 4x the nominal depth
        (the pooled-FIFO future-work design); overall pool capacity is
        enforced by the engine."""
        if self.terminated or now < self.start_cycle:
            return False
        if not self.is_load:
            return False  # store address generation is handled at commit
        if self.gen_next >= self.num_chunks:
            return False
        # Fetch-ahead bounded by FIFO space (entries free after commit).
        bound = 4 * self.fifo_depth if shared else self.fifo_depth
        return self.gen_next - self.commit_head < bound

    # -- Address generation (one line request per call) --------------------------

    def _chunk_lines(self, index: int) -> List[int]:
        """Distinct cache lines of chunk ``index`` (pattern order),
        including engine-internal indirect origin reads."""
        lines: List[int] = []
        last = -1
        for addr in self.info.origin_reads[index] + self.info.chunks[index]:
            line = addr // self.line_bytes
            if line != last and line not in lines:
                lines.append(line)
            last = line
        return lines

    def next_line_request(self) -> Optional[int]:
        """Peek the next cache line to request, or None when the current
        chunk is fully issued."""
        if self._current is None:
            if self.gen_next >= self.num_chunks:
                return None
            self._current = _ChunkFetch(self._chunk_lines(self.gen_next))
        fetch = self._current
        if fetch.next_line >= len(fetch.lines):
            return None
        return fetch.lines[fetch.next_line]

    def line_issued(self, completion: float) -> Optional[int]:
        """Record the completion of the line just requested.  Returns the
        chunk index if this completed the chunk's issue, else None."""
        fetch = self._current
        if fetch is None:
            raise StreamError("line_issued without an active chunk")
        fetch.ready = max(fetch.ready, completion)
        fetch.next_line += 1
        if fetch.next_line >= len(fetch.lines):
            chunk = self.gen_next
            #: +2: engine fill and forward into the register file
            self.chunk_ready[chunk] = fetch.ready + 2
            self.gen_next = chunk + 1
            self._current = None
            return chunk
        return None

    def crosses_dimension(self) -> bool:
        """True when the chunk being generated ends a dimension (the
        address generator pays one extra cycle to switch descriptors)."""
        index = self.gen_next
        flags = self.info.chunk_flags
        return 0 <= index < len(flags) and flags[index] >= 1

    # -- Consumption interface (pipeline-facing) -----------------------------------

    def ready_cycle(self, chunk: int) -> float:
        """Cycle the chunk's data is available in the load FIFO."""
        if chunk < self.commit_head:
            return 0.0  # delivered and committed (element-wise consumers)
        return self.chunk_ready.get(chunk, INFINITY)

    def rename_read(self, chunk: int) -> None:
        self.spec_head = max(self.spec_head, chunk + 1)

    def commit_read(self, chunk: int) -> None:
        self.commit_head = max(self.commit_head, chunk + 1)
        self.chunk_ready.pop(chunk, None)

    def squash_to(self, chunk: int) -> None:
        """Revert the speculative pointer to the commit point (§IV-A):
        buffered data stays valid and is re-consumed without new loads."""
        self.spec_head = max(self.commit_head, chunk)

    # -- Store-FIFO interface ------------------------------------------------------

    def reserve_store(self) -> bool:
        """Reserve one Store FIFO entry at rename; False when full."""
        if self.store_reserved - self.store_drained >= self.fifo_depth:
            return False
        self.store_reserved += 1
        return True

    def drain_store(self) -> None:
        self.store_drained += 1

    def terminate(self) -> None:
        self.terminated = True
        self.chunk_ready.clear()
