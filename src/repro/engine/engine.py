"""The Streaming Engine timing model (paper §IV-B, Fig. 7).

Replays the per-stream chunk sequences recorded by the functional
simulator through the engine's structures: the SCROB serialises stream
configurations (one per cycle, in order); the Stream Scheduler hands up
to ``processing_modules`` streams per cycle to the address generators,
each issuing at most one cache-line request per cycle (plus a one-cycle
penalty when switching descriptor dimensions); requests are bounded by
the Memory Request Queue and translated through the TLB before reaching
the memory hierarchy; responses fill per-stream load FIFOs whose entries
are only released when the consuming instruction *commits* — which is
what lets miss-speculated iterations re-use buffered data (A3).
"""
from __future__ import annotations

import bisect
import math
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.cpu.config import EngineConfig
from repro.engine.scheduler import StreamScheduler
from repro.engine.table import EngineStream
from repro.errors import StreamError
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.trace import StreamTraceInfo
from repro.streams.pattern import MemLevel

INFINITY = math.inf


class EngineStats:
    __slots__ = (
        "configs",
        "line_requests",
        "chunks_filled",
        "chunks_committed",
        "store_lines",
        "dim_switch_stalls",
        "request_queue_stalls",
        "page_faults",
        "occupancy_samples",
        "occupancy_total",
    )

    def __init__(self) -> None:
        self.configs = 0
        self.line_requests = 0
        self.chunks_filled = 0
        self.chunks_committed = 0
        self.store_lines = 0
        self.dim_switch_stalls = 0
        self.request_queue_stalls = 0
        self.page_faults = 0
        self.occupancy_samples = 0
        self.occupancy_total = 0

    @property
    def mean_fifo_occupancy(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return self.occupancy_total / self.occupancy_samples


class StreamingEngine:
    """Timing-side Streaming Engine embedded in the core."""

    def __init__(self, config: EngineConfig, hierarchy: MemoryHierarchy) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.scheduler = StreamScheduler(config.scheduler_policy)
        self.streams: Dict[int, EngineStream] = {}
        #: SCROB: stream configurations retire in order, one per cycle.
        self._scrob_free_at = 0.0
        #: outstanding line-request completion times (Memory Request
        #: Queue), kept sorted ascending so expiry is a prefix deletion
        #: and the backlog bound a bisect instead of full rescans
        self._outstanding: List[float] = []
        #: per-module dimension-switch stall (cycle until which it is busy)
        self._module_busy = [0.0] * config.processing_modules
        #: pending store-line issues: (ready_cycle, line, mem_level)
        self._store_queue: Deque[Tuple[float, int, MemLevel]] = deque()
        self._store_meta: Deque[EngineStream] = deque()
        self.stats = EngineStats()
        self.last_drain_cycle = 0.0
        #: cached per-cycle bookkeeping, refreshed only when stream state
        #: mutates (configure / chunk fill / commit / squash / terminate):
        #: occupancy-sample contribution and the number of streams that
        #: could possibly generate a request.  Both are consumed every
        #: tick, so keeping them incremental turns the quiescent-tick cost
        #: from O(streams) into O(1).
        self._cache_dirty = True
        self._occ_samples = 0
        self._occ_total = 0
        self._gen_candidates = 0
        self._all_modules = list(range(config.processing_modules))
        self._module_busy_until = 0.0
        # Hot-path scalars hoisted out of config/hierarchy indirection.
        self._l1d = hierarchy.l1d
        self._line_bytes = hierarchy.line_bytes
        self._backlog_limit = 4 * config.memory_request_queue
        override = config.mem_level_override
        self._level_override = (
            MemLevel[override.upper()] if override else None
        )

    # -- Configuration (SCROB) ---------------------------------------------------

    def configure(self, info: StreamTraceInfo, now: float) -> float:
        """Register a completed stream configuration; returns the cycle
        the Streaming Engine starts processing it."""
        start = max(now, self._scrob_free_at) + 1.0
        self._scrob_free_at = start
        if len(self.streams) >= self.config.max_streams:
            # Recycle terminated/fully-committed streams.
            # A stream is recyclable once every chunk of its recorded
            # lifetime has been consumed (loads: committed; stores: fully
            # drained).  Comparing against num_chunks — not the running
            # reservation count — keeps freshly-configured streams alive.
            done = [
                uid
                for uid, s in self.streams.items()
                if s.terminated
                or (s.is_load and s.commit_head >= s.num_chunks)
                or (not s.is_load and s.store_drained >= s.num_chunks)
            ]
            for uid in done:
                del self.streams[uid]
            if len(self.streams) >= self.config.max_streams:
                raise StreamError(
                    f"more than {self.config.max_streams} concurrent streams"
                )
        self.streams[info.uid] = EngineStream(
            info,
            fifo_depth=self.config.fifo_depth,
            line_bytes=self.hierarchy.line_bytes,
            start_cycle=start,
        )
        self.stats.configs += 1
        self._cache_dirty = True
        return start

    def _stream(self, uid: int) -> EngineStream:
        try:
            return self.streams[uid]
        except KeyError:
            raise StreamError(f"unknown stream uid {uid}") from None

    # -- Per-cycle operation -----------------------------------------------------------

    def _refresh_cache(self) -> None:
        """Recompute the tick-time bookkeeping after a stream mutation.

        ``_gen_candidates`` is deliberately conservative (it ignores
        ``start_cycle`` and, under a shared FIFO, the pool headroom): a
        counted stream may still be rejected by the scheduler's exact
        eligibility test, but a zero count *proves* the scheduler would
        select nothing, letting tick() skip it entirely."""
        depth = self.config.fifo_depth
        shared = self.config.shared_fifo
        samples = occupancy = candidates = 0
        for stream in self.streams.values():
            if stream.is_load and not stream.terminated:
                samples += 1
                # inlined fifo_occupancy() for load streams
                fifo = stream.gen_next - stream.commit_head
                occupancy += fifo
                if stream.gen_next < stream.num_chunks and (
                    shared or fifo < depth
                ):
                    candidates += 1
        self._occ_samples = samples
        self._occ_total = occupancy
        self._gen_candidates = candidates
        self._cache_dirty = False

    def tick(self, now: float) -> bool:
        """One engine cycle: schedule streams, generate line requests.

        Returns True when any engine state changed (a line request was
        generated, a store line drained, or a request-queue stall was
        recorded); False means the engine is quiescent this cycle and
        the caller may fast-forward over identical cycles."""
        outstanding = self._outstanding
        if outstanding and outstanding[0] <= now:
            del outstanding[: bisect.bisect_right(outstanding, now)]
        # Drain prechecks inlined: most cycles the queue head is gated on
        # L1 MSHR availability, so skip the call (not the semantics).
        sq = self._store_queue
        progress = (
            bool(sq)
            and sq[0][0] <= now
            and self._l1d.can_accept(now)
            and self._drain_stores(now) > 0
        )
        if self._cache_dirty:
            self._refresh_cache()
        if self._gen_candidates:
            requests_before = self.stats.line_requests
            stalls_before = self.stats.request_queue_stalls
            if self._module_busy_until <= now:
                modules = self._all_modules
            else:
                modules = [
                    m for m, busy in enumerate(self._module_busy) if busy <= now
                ]
            if modules:
                pool_free = (
                    self._shared_pool_free() if self.config.shared_fifo else None
                )
                chosen = self.scheduler.select(
                    self.streams.values(), len(modules), now,
                    pool_free=pool_free,
                )
                for module, stream in zip(modules, chosen):
                    self._generate(stream, module, now)
            if (
                self.stats.line_requests != requests_before
                or self.stats.request_queue_stalls != stalls_before
            ):
                progress = True

        stats = self.stats
        if stats.occupancy_samples < (1 << 30):
            stats.occupancy_samples += self._occ_samples
            stats.occupancy_total += self._occ_total
        return progress

    def skip_idle(self, cycles: int) -> None:
        """Back-fill the per-cycle FIFO-occupancy sampling for ``cycles``
        skipped quiescent cycles (event-horizon fast-forward).  The
        caller guarantees no engine state changes across the skipped
        range, so every skipped cycle would have sampled exactly the
        occupancy visible now — ``mean_fifo_occupancy`` stays identical
        to a cycle-by-cycle simulation."""
        if cycles <= 0:
            return
        stats = self.stats
        if self._cache_dirty:
            self._refresh_cache()
        samples = self._occ_samples
        occupancy = self._occ_total
        if not samples or stats.occupancy_samples >= (1 << 30):
            return
        # Mirror tick()'s cap semantics: a cycle samples every stream iff
        # its starting sample count is below the cap.
        headroom = (1 << 30) - stats.occupancy_samples
        sampling_cycles = min(cycles, -(-headroom // samples))
        stats.occupancy_samples += sampling_cycles * samples
        stats.occupancy_total += sampling_cycles * occupancy

    def _generate(self, stream: EngineStream, module: int, now: float) -> None:
        line = stream.next_line_request()
        if line is None:
            return
        stats = self.stats
        hierarchy = self.hierarchy
        addr = line * self._line_bytes
        # The Memory Request Queue stages requests between the address
        # generators and the arbiter (10-byte entries, §VI-C); issued
        # requests are tracked by the cache hierarchy's own MSHRs, so the
        # queue bounds the *unissued* backlog.  The arbiter issues up to
        # engine load_ports requests per cycle, which in this reservation
        # model happens the cycle a request is generated — the queue
        # therefore only fills when generation outpaces the ports, which
        # the per-module one-line-per-cycle limit already prevents.  A
        # safety bound keeps pathological bursts from bypassing it.
        outstanding = self._outstanding
        backlog = len(outstanding) - bisect.bisect_right(outstanding, now + 60)
        if backlog >= self._backlog_limit:
            # Page fault on a stream element: the element is flagged and
            # the exception handled when the consuming instruction
            # commits (§IV-A); the engine itself never traps, which is
            # what allows safe prefetching across page boundaries (A2).
            if not hierarchy.tlb.probe(addr):
                stats.page_faults += 1
            stats.request_queue_stalls += 1
            return
        # TLB translation through the engine's arbiter (A2: streams cross
        # page boundaries safely; faults are flagged, not raised, here).
        tlb = hierarchy.tlb
        fused = getattr(tlb, "stream_translate", None)
        if fused is not None:
            mapped, delay = fused(addr)
        else:  # test doubles that only model probe()/translate()
            mapped = tlb.probe(addr)
            try:
                delay = tlb.translate(addr)
            except Exception:
                delay = tlb.walk_latency
        if not mapped:
            stats.page_faults += 1
        level = self._level_override
        if level is None:
            level = stream.info.mem_level
        completion = hierarchy.stream_read(line, now + 1 + delay, level)
        bisect.insort(outstanding, completion)
        stats.line_requests += 1
        finished_chunk = stream.line_issued(completion)
        if finished_chunk is not None:
            self.stats.chunks_filled += 1
            self._cache_dirty = True
            if stream.crosses_dimension():
                busy = now + 1 + self.config.dim_switch_penalty
                self._module_busy[module] = busy
                if busy > self._module_busy_until:
                    self._module_busy_until = busy
                self.stats.dim_switch_stalls += 1

    def _shared_pool_free(self) -> int:
        """Free entries in the pooled load FIFO (§IV-B future work).

        Every stream keeps its *nominal* ``fifo_depth`` reservation (so
        pooling can never starve a stream below the fixed-queue design —
        which would throttle, or with a single guaranteed entry even
        deadlock, the stream the ROB head waits on).  Borrowing beyond
        nominal depth is allowed only while the total pooled capacity has
        headroom."""
        active = [
            s for s in self.streams.values()
            if s.is_load and not s.terminated and s.num_chunks > 0
            and s.commit_head < s.num_chunks
        ]
        capacity = self.config.fifo_depth * max(len(active), 1)
        used = sum(s.fifo_occupancy() for s in active)
        return capacity - used

    def _level_of(self, stream: EngineStream) -> MemLevel:
        override = self.config.mem_level_override
        if override:
            return MemLevel[override.upper()]
        return stream.info.mem_level

    # -- Pipeline-facing interface -----------------------------------------------------

    def chunk_ready(self, uid: int, chunk: int) -> float:
        return self._stream(uid).ready_cycle(chunk)

    def rename_read(self, uid: int, chunk: int) -> None:
        self._stream(uid).rename_read(chunk)

    def commit_read(self, uid: int, chunk: int) -> None:
        self._stream(uid).commit_read(chunk)
        self.stats.chunks_committed += 1
        self._cache_dirty = True

    def squash(self, uid: int, chunk: int) -> None:
        self._stream(uid).squash_to(chunk)
        self._cache_dirty = True

    def reserve_store(self, uid: int) -> bool:
        return self._stream(uid).reserve_store()

    def commit_write(self, uid: int, chunk: int, now: float) -> None:
        """Consuming store committed: queue its line writes to the L1."""
        stream = self._stream(uid)
        info = stream.info
        lines = []
        last = -1
        for addr in info.chunks[chunk]:
            line = addr // self.hierarchy.line_bytes
            if line != last:
                lines.append(line)
                last = line
        for index, line in enumerate(lines):
            self._store_queue.append((now, line, info.mem_level))
            # The FIFO entry (one chunk) frees when its final line drains.
            self._store_meta.append(stream if index == len(lines) - 1 else None)

    def terminate(self, uid: int) -> None:
        stream = self.streams.get(uid)
        if stream is not None:
            stream.terminate()
            self._cache_dirty = True

    def _drain_stores(self, now: float) -> int:
        """Issue queued stream stores, one per store port per cycle; the
        L1 applies backpressure through MSHR availability.  Returns the
        number of lines drained this cycle."""
        drained = 0
        queue = self._store_queue
        meta = self._store_meta
        l1d = self._l1d
        hierarchy = self.hierarchy
        for _ in range(self.config.store_ports):
            if not queue:
                return drained
            ready, line, level = queue[0]
            if ready > now:
                return drained
            if not l1d.can_accept(now):
                return drained
            queue.popleft()
            stream = meta.popleft()
            done = hierarchy.stream_write(line, now, level)
            if stream is not None:
                stream.drain_store()
            self.stats.store_lines += 1
            if done > self.last_drain_cycle:
                self.last_drain_cycle = done
            drained += 1
        return drained

    @property
    def stores_pending(self) -> bool:
        return bool(self._store_queue)

    # -- Storage accounting (paper §VI-C) ------------------------------------------------

    def storage_overheads(self) -> Dict[str, int]:
        """Bytes of storage the configured engine would occupy in HW."""
        cfg = self.config
        # Stream Table + SCROB: per stream, max_dims descriptors and
        # max_mods modifiers at 16 B each, plus iteration state.
        table = cfg.max_streams * (16 * cfg.max_dims + 16 * cfg.max_mods + 16)
        request_queue = cfg.memory_request_queue * 10
        fifo = cfg.max_streams * cfg.fifo_depth * 66
        return {
            "stream_table_bytes": table,
            "request_queue_bytes": request_queue,
            "fifo_bytes": fifo,
            "total_bytes": table + request_queue + fifo,
        }
