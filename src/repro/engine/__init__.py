"""The Streaming Engine (paper §IV-B): stream table, SCROB, scheduler,
address generation, load/store FIFOs."""
from repro.engine.engine import EngineStats, StreamingEngine
from repro.engine.scheduler import StreamScheduler
from repro.engine.table import EngineStream

__all__ = ["EngineStats", "EngineStream", "StreamScheduler", "StreamingEngine"]
