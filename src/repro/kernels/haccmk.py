"""Benchmark L: HACCmk — the CORAL n-body short-force kernel.

For each outer particle *i*, accumulate the smoothed gravitational force
from all inner particles *j*:

    d = p[j] - p[i];   r2 = |d|^2
    f = m[j] / ((r2 + eps) * sqrt(r2 + eps))
    F[i] += d * f

The UVE build streams the inner particle arrays once per outer particle
through zero-stride outer dimensions, reads the outer particle through
the scalar-stream interface, and keeps the FP-heavy inner loop free of
loads and index arithmetic.
"""
from __future__ import annotations

import numpy as np

from repro.common.types import ElementType
from repro.isa import ProgramBuilder, f, p, u, x
from repro.isa import neon_ops as neon
from repro.isa import scalar_ops as sc
from repro.isa import sve_ops as sve
from repro.isa import uve_ops as uve
from repro.isa.program import Program
from repro.kernels.base import Kernel, Workload, scaled
from repro.streams.pattern import Direction

F32 = ElementType.F32
EPS = 0.1


def haccmk_reference(xs, ys, zs, ms, count):
    fx = np.zeros(count)
    fy = np.zeros(count)
    fz = np.zeros(count)
    for i in range(count):
        dx = xs - xs[i]
        dy = ys - ys[i]
        dz = zs - zs[i]
        r2 = dx * dx + dy * dy + dz * dz + EPS
        fcoef = ms / (r2 * np.sqrt(r2))
        fx[i] = np.sum(dx * fcoef)
        fy[i] = np.sum(dy * fcoef)
        fz[i] = np.sum(dz * fcoef)
    return fx, fy, fz


class HaccmkKernel(Kernel):
    name = "haccmk"
    letter = "L"
    domain = "n-body"
    n_streams = 10
    max_nesting = 2
    n_kernels = 1
    pattern = "2D"

    default_n = 384
    default_count = 24

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_n, scale, minimum=32, multiple=16)
        count = scaled(self.default_count, scale, minimum=4)
        rng = np.random.default_rng(seed)
        xs = rng.standard_normal(n).astype(np.float32)
        ys = rng.standard_normal(n).astype(np.float32)
        zs = rng.standard_normal(n).astype(np.float32)
        ms = rng.uniform(0.5, 1.5, n).astype(np.float32)
        wl = Workload(
            memory=self.fresh_memory(), params={"n": n, "count": count}
        )
        for name, arr in (("x", xs), ("y", ys), ("z", zs), ("m", ms)):
            wl.place(name, arr)
        for name in ("fx", "fy", "fz"):
            wl.place(name, np.zeros(count, dtype=np.float32))
        ex, ey, ez = haccmk_reference(
            xs.astype(np.float64), ys.astype(np.float64),
            zs.astype(np.float64), ms.astype(np.float64), count,
        )
        wl.expected["fx"] = ex.astype(np.float32)
        wl.expected["fy"] = ey.astype(np.float32)
        wl.expected["fz"] = ez.astype(np.float32)
        return wl

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        n, count = wl.params["n"], wl.params["count"]
        b = ProgramBuilder("haccmk-uve")
        # u0-u3: inner arrays, re-swept per outer particle (stride-0 dim).
        for reg, name in zip((u(0), u(1), u(2), u(3)), ("x", "y", "z", "m")):
            b.emit(
                uve.SsSta(reg, Direction.LOAD, wl.addr(name) // 4, n, 1, etype=F32),
                uve.SsApp(reg, 0, count, 0, last=True),
            )
        # u4-u6: outer particle coordinates, one element per outer step.
        for reg, name in zip((u(4), u(5), u(6)), ("x", "y", "z")):
            b.emit(
                uve.SsConfig1D(reg, Direction.LOAD, wl.addr(name) // 4, count, 1, etype=F32)
            )
        # u7-u9: force outputs, one element per outer step.
        for reg, name in zip((u(7), u(8), u(9)), ("fx", "fy", "fz")):
            b.emit(
                uve.SsConfig1D(reg, Direction.STORE, wl.addr(name) // 4, count, 1, etype=F32)
            )
        b.emit(sc.FLi(f(9), EPS))
        b.label("outer")
        b.emit(
            uve.SoScalarRead(f(1), u(4), etype=F32),
            uve.SoScalarRead(f(2), u(5), etype=F32),
            uve.SoScalarRead(f(3), u(6), etype=F32),
            uve.SoDup(u(10), 0.0, etype=F32),  # fx acc
            uve.SoDup(u(11), 0.0, etype=F32),  # fy acc
            uve.SoDup(u(12), 0.0, etype=F32),  # fz acc
        )
        b.label("inner")
        b.emit(
            uve.SoOpScalar("sub", u(13), u(0), f(1), etype=F32),  # dx
            uve.SoOpScalar("sub", u(14), u(1), f(2), etype=F32),  # dy
            uve.SoOpScalar("sub", u(15), u(2), f(3), etype=F32),  # dz
            uve.SoOp("mul", u(16), u(13), u(13), etype=F32),
            uve.SoMac(u(16), u(14), u(14), etype=F32),
            uve.SoMac(u(16), u(15), u(15), etype=F32),
            uve.SoOpScalar("add", u(16), u(16), f(9), etype=F32),  # r2+eps
            uve.SoUnary("sqrt", u(17), u(16), etype=F32),
            uve.SoOp("mul", u(16), u(16), u(17), etype=F32),
            uve.SoOp("div", u(17), u(3), u(16), etype=F32),  # m / (...)
            uve.SoMac(u(10), u(13), u(17), etype=F32),
            uve.SoMac(u(11), u(14), u(17), etype=F32),
            uve.SoMac(u(12), u(15), u(17), etype=F32),
            uve.SoBranchDim(u(0), 0, "inner", complete=False),
            uve.SoRed("add", u(7), u(10), etype=F32),
            uve.SoRed("add", u(8), u(11), etype=F32),
            uve.SoRed("add", u(9), u(12), etype=F32),
            uve.SoBranchEnd(u(0), "outer", negate=True),
        )
        b.emit(sc.Halt())
        return b.build()

    def build_vector(self, wl: Workload, isa: str) -> Program:
        n, count = wl.params["n"], wl.params["count"]
        b = ProgramBuilder(f"haccmk-{isa}")
        if isa == "sve":
            return self._build_sve(b, wl, n, count)
        return self._build_neon(b, wl, n, count)

    def _build_sve(self, b, wl, n, count):
        xx, xy, xz, xm = x(8), x(9), x(10), x(11)
        xfx, xfy, xfz = x(12), x(13), x(14)
        xi, xoff, xn = x(15), x(16), x(17)
        b.emit(
            sc.Li(xx, wl.addr("x")), sc.Li(xy, wl.addr("y")),
            sc.Li(xz, wl.addr("z")), sc.Li(xm, wl.addr("m")),
            sc.Li(xfx, wl.addr("fx")), sc.Li(xfy, wl.addr("fy")),
            sc.Li(xfz, wl.addr("fz")),
            sc.Li(xi, 0), sc.Li(xn, n), sc.FLi(f(9), EPS),
            sve.Dup(u(9), EPS, etype=F32),
        )
        b.label("outer")
        b.emit(
            sc.IntOp("sll", x(18), xi, 2),
            sc.IntOp("add", x(19), xx, x(18)),
            sc.Load(f(1), x(19), 0, etype=F32),
            sc.IntOp("add", x(19), xy, x(18)),
            sc.Load(f(2), x(19), 0, etype=F32),
            sc.IntOp("add", x(19), xz, x(18)),
            sc.Load(f(3), x(19), 0, etype=F32),
            sve.Dup(u(4), f(1), etype=F32),
            sve.Dup(u(5), f(2), etype=F32),
            sve.Dup(u(6), f(3), etype=F32),
            sve.Dup(u(10), 0.0, etype=F32),
            sve.Dup(u(11), 0.0, etype=F32),
            sve.Dup(u(12), 0.0, etype=F32),
            sc.Li(xoff, 0),
            sve.WhileLt(p(1), xoff, xn, etype=F32),
        )
        b.label("inner")
        b.emit(
            sve.Ld1(u(0), p(1), xx, index=xoff, etype=F32),
            sve.Ld1(u(1), p(1), xy, index=xoff, etype=F32),
            sve.Ld1(u(2), p(1), xz, index=xoff, etype=F32),
            sve.Ld1(u(3), p(1), xm, index=xoff, etype=F32),
            sve.VOp("sub", u(0), p(1), u(0), u(4), etype=F32),
            sve.VOp("sub", u(1), p(1), u(1), u(5), etype=F32),
            sve.VOp("sub", u(2), p(1), u(2), u(6), etype=F32),
            sve.VOp("mul", u(7), p(1), u(0), u(0), etype=F32),
            sve.Fmla(u(7), p(1), u(1), u(1), etype=F32),
            sve.Fmla(u(7), p(1), u(2), u(2), etype=F32),
            sve.VOp("add", u(7), p(1), u(7), u(9), etype=F32),
            sve.VUnary("sqrt", u(8), p(1), u(7), etype=F32),
            sve.VOp("mul", u(7), p(1), u(7), u(8), etype=F32),
            sve.VOp("div", u(8), p(1), u(3), u(7), etype=F32),
            sve.Fmla(u(10), p(1), u(0), u(8), etype=F32),
            sve.Fmla(u(11), p(1), u(1), u(8), etype=F32),
            sve.Fmla(u(12), p(1), u(2), u(8), etype=F32),
            sve.IncElems(xoff, etype=F32),
            sve.WhileLt(p(1), xoff, xn, etype=F32),
            sve.BranchPred("first", p(1), "inner", etype=F32),
        )
        b.emit(
            sve.Red("add", f(4), p(0), u(10), etype=F32),
            sve.Red("add", f(5), p(0), u(11), etype=F32),
            sve.Red("add", f(6), p(0), u(12), etype=F32),
            sc.Store(f(4), xfx, 0, etype=F32),
            sc.Store(f(5), xfy, 0, etype=F32),
            sc.Store(f(6), xfz, 0, etype=F32),
            sc.IntOp("add", xfx, xfx, 4),
            sc.IntOp("add", xfy, xfy, 4),
            sc.IntOp("add", xfz, xfz, 4),
            sc.IntOp("add", xi, xi, 1),
            sc.BranchCmp("lt", xi, count, "outer"),
            sc.Halt(),
        )
        return b.build()

    def _build_neon(self, b, wl, n, count):
        xx, xy, xz, xm = x(8), x(9), x(10), x(11)
        xfx, xfy, xfz = x(12), x(13), x(14)
        xi, xoff = x(15), x(16)
        b.emit(
            sc.Li(xfx, wl.addr("fx")), sc.Li(xfy, wl.addr("fy")),
            sc.Li(xfz, wl.addr("fz")),
            sc.Li(xi, 0), sc.FLi(f(9), EPS),
            neon.NVDup(u(9), EPS, etype=F32),
        )
        b.label("outer")
        b.emit(
            sc.Li(xx, wl.addr("x")), sc.Li(xy, wl.addr("y")),
            sc.Li(xz, wl.addr("z")), sc.Li(xm, wl.addr("m")),
            sc.IntOp("sll", x(18), xi, 2),
            sc.IntOp("add", x(19), xx, x(18)),
            sc.Load(f(1), x(19), 0, etype=F32),
            sc.IntOp("add", x(19), xy, x(18)),
            sc.Load(f(2), x(19), 0, etype=F32),
            sc.IntOp("add", x(19), xz, x(18)),
            sc.Load(f(3), x(19), 0, etype=F32),
            neon.NVDup(u(4), f(1), etype=F32),
            neon.NVDup(u(5), f(2), etype=F32),
            neon.NVDup(u(6), f(3), etype=F32),
            neon.NVDup(u(10), 0.0, etype=F32),
            neon.NVDup(u(11), 0.0, etype=F32),
            neon.NVDup(u(12), 0.0, etype=F32),
            sc.Li(xoff, 0),
        )
        b.label("inner")
        b.emit(
            neon.NVLoad(u(0), xx, etype=F32, post_inc=True),
            neon.NVLoad(u(1), xy, etype=F32, post_inc=True),
            neon.NVLoad(u(2), xz, etype=F32, post_inc=True),
            neon.NVLoad(u(3), xm, etype=F32, post_inc=True),
            neon.NVOp("sub", u(0), u(0), u(4), etype=F32),
            neon.NVOp("sub", u(1), u(1), u(5), etype=F32),
            neon.NVOp("sub", u(2), u(2), u(6), etype=F32),
            neon.NVOp("mul", u(7), u(0), u(0), etype=F32),
            neon.NVFma(u(7), u(1), u(1), etype=F32),
            neon.NVFma(u(7), u(2), u(2), etype=F32),
            neon.NVOp("add", u(7), u(7), u(9), etype=F32),
            neon.NVUnary("sqrt", u(8), u(7), etype=F32),
            neon.NVOp("mul", u(7), u(7), u(8), etype=F32),
            neon.NVOp("div", u(8), u(3), u(7), etype=F32),
            neon.NVFma(u(10), u(0), u(8), etype=F32),
            neon.NVFma(u(11), u(1), u(8), etype=F32),
            neon.NVFma(u(12), u(2), u(8), etype=F32),
            sc.IntOp("add", xoff, xoff, 4),
            sc.BranchCmp("lt", xoff, n, "inner"),
        )
        b.emit(
            neon.NVRed("add", f(4), u(10), etype=F32),
            neon.NVRed("add", f(5), u(11), etype=F32),
            neon.NVRed("add", f(6), u(12), etype=F32),
            sc.Store(f(4), xfx, 0, etype=F32),
            sc.Store(f(5), xfy, 0, etype=F32),
            sc.Store(f(6), xfz, 0, etype=F32),
            sc.IntOp("add", xfx, xfx, 4),
            sc.IntOp("add", xfy, xfy, 4),
            sc.IntOp("add", xfz, xfz, 4),
            sc.IntOp("add", xi, xi, 1),
            sc.BranchCmp("lt", xi, count, "outer"),
            sc.Halt(),
        )
        return b.build()
