"""Benchmark J: jacobi-2d — 5-point stencil sweeps (PolyBench):
``B[i][j] = 0.2*(A[i][j] + A[i][j±1] + A[i±1][j])`` over the interior,
then the same from B back into A.

The five shifted 2-D input streams and the interior output stream all
share the same (ragged) row geometry, so their chunks stay aligned with
zero predication — the paper's F3/F5 point.
"""
from __future__ import annotations

import numpy as np

from repro.common.types import ElementType
from repro.isa import ProgramBuilder, f, p, u, x
from repro.isa import neon_ops as neon
from repro.isa import scalar_ops as sc
from repro.isa import sve_ops as sve
from repro.isa import uve_ops as uve
from repro.isa.program import Program
from repro.kernels.base import Kernel, Workload, scaled
from repro.streams.pattern import Direction

F32 = ElementType.F32
FIFTH = 0.2


def jacobi2d_step(a):
    b = a.copy()
    b[1:-1, 1:-1] = 0.2 * (
        a[1:-1, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:] + a[:-2, 1:-1] + a[2:, 1:-1]
    )
    return b


class Jacobi2dKernel(Kernel):
    name = "jacobi-2d"
    letter = "J"
    domain = "stencil"
    n_streams = 12
    max_nesting = 2
    n_kernels = 2
    pattern = "2D"

    default_n = 96

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_n, scale, minimum=8)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n)).astype(np.float32)
        wl = Workload(memory=self.fresh_memory(), params={"n": n})
        wl.place("a", a)
        wl.place("b", a.copy())
        b64 = jacobi2d_step(a.astype(np.float64))
        a64 = jacobi2d_step(b64)
        wl.expected["b"] = b64.astype(np.float32)
        wl.expected["a"] = a64.astype(np.float32)
        return wl

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        n = wl.params["n"]
        rows, cols = n - 2, n - 2
        b = ProgramBuilder("jacobi2d-uve")
        b.emit(sc.FLi(f(0), FIFTH), uve.SoDup(u(6), f(0), etype=F32))

        def stream2d(reg, direction, base_elem):
            b.emit(
                uve.SsSta(reg, direction, base_elem, cols, 1, etype=F32),
                uve.SsApp(reg, 0, rows, n, last=True),
            )

        def sweep(tag, src, dst):
            se, de = src // 4, dst // 4
            centre = se + n + 1
            stream2d(u(0), Direction.LOAD, centre)  # A[i][j]
            stream2d(u(1), Direction.LOAD, centre - 1)  # A[i][j-1]
            stream2d(u(2), Direction.LOAD, centre + 1)  # A[i][j+1]
            stream2d(u(3), Direction.LOAD, centre - n)  # A[i-1][j]
            stream2d(u(4), Direction.LOAD, centre + n)  # A[i+1][j]
            stream2d(u(5), Direction.STORE, de + n + 1)
            b.label(tag)
            b.emit(
                uve.SoOp("add", u(7), u(0), u(1), etype=F32),
                uve.SoOp("add", u(7), u(7), u(2), etype=F32),
                uve.SoOp("add", u(7), u(7), u(3), etype=F32),
                uve.SoOp("add", u(7), u(7), u(4), etype=F32),
                uve.SoOp("mul", u(5), u(7), u(6), etype=F32),
                uve.SoBranchEnd(u(0), tag, negate=True),
            )

        sweep("s1", wl.addr("a"), wl.addr("b"))
        sweep("s2", wl.addr("b"), wl.addr("a"))
        b.emit(sc.Halt())
        return b.build()

    def build_vector(self, wl: Workload, isa: str) -> Program:
        if isa == "sve":
            return self._build_sve(wl)
        return self._build_neon(wl)

    def _build_sve(self, wl: Workload) -> Program:
        n = wl.params["n"]
        b = ProgramBuilder("jacobi2d-sve")
        b.emit(sc.FLi(f(0), FIFTH), sve.Dup(u(0), f(0), etype=F32))

        def sweep(tag, src, dst):
            xc, xd, xi, xoff, xw, xt = x(8), x(9), x(10), x(11), x(12), x(13)
            b.emit(
                sc.Li(xc, src + 4 * (n + 1)),
                sc.Li(xd, dst + 4 * (n + 1)),
                sc.Li(xw, n - 2), sc.Li(xi, 0),
            )
            b.label(f"{tag}_row")
            b.emit(sc.Li(xoff, 0), sve.WhileLt(p(1), xoff, xw, etype=F32))
            b.label(f"{tag}_col")
            b.emit(
                sve.Ld1(u(1), p(1), xc, index=xoff, etype=F32),
                sc.IntOp("sub", xt, xc, 4),
                sve.Ld1(u(2), p(1), xt, index=xoff, etype=F32),
                sc.IntOp("add", xt, xc, 4),
                sve.Ld1(u(3), p(1), xt, index=xoff, etype=F32),
                sc.IntOp("sub", xt, xc, 4 * n),
                sve.Ld1(u(4), p(1), xt, index=xoff, etype=F32),
                sc.IntOp("add", xt, xc, 4 * n),
                sve.Ld1(u(5), p(1), xt, index=xoff, etype=F32),
                sve.VOp("add", u(1), p(1), u(1), u(2), etype=F32),
                sve.VOp("add", u(1), p(1), u(1), u(3), etype=F32),
                sve.VOp("add", u(1), p(1), u(1), u(4), etype=F32),
                sve.VOp("add", u(1), p(1), u(1), u(5), etype=F32),
                sve.VOp("mul", u(1), p(1), u(1), u(0), etype=F32),
                sve.St1(u(1), p(1), xd, index=xoff, etype=F32),
                sve.IncElems(xoff, etype=F32),
                sve.WhileLt(p(1), xoff, xw, etype=F32),
                sve.BranchPred("first", p(1), f"{tag}_col", etype=F32),
            )
            b.emit(
                sc.IntOp("add", xc, xc, 4 * n),
                sc.IntOp("add", xd, xd, 4 * n),
                sc.IntOp("add", xi, xi, 1),
                sc.BranchCmp("lt", xi, n - 2, f"{tag}_row"),
            )

        sweep("s1", wl.addr("a"), wl.addr("b"))
        sweep("s2", wl.addr("b"), wl.addr("a"))
        b.emit(sc.Halt())
        return b.build()

    def _build_neon(self, wl: Workload) -> Program:
        n = wl.params["n"]
        b = ProgramBuilder("jacobi2d-neon")
        b.emit(sc.FLi(f(0), FIFTH), neon.NVDup(u(0), f(0), etype=F32))

        def sweep(tag, src, dst):
            width = n - 2
            main = width - width % 4
            xc, xd, xi, xoff, xt = x(8), x(9), x(10), x(11), x(13)
            b.emit(
                sc.Li(xc, src + 4 * (n + 1)),
                sc.Li(xd, dst + 4 * (n + 1)),
                sc.Li(xi, 0),
            )
            b.label(f"{tag}_row")
            b.emit(sc.Li(xoff, 0), sc.Move(x(14), xc), sc.Move(x(15), xd))
            b.emit(sc.BranchCmp("ge", xoff, main, f"{tag}_tail"))
            b.label(f"{tag}_col")
            b.emit(
                neon.NVLoad(u(1), x(14), 0, etype=F32),
                neon.NVLoad(u(2), x(14), -4, etype=F32),
                neon.NVLoad(u(3), x(14), 4, etype=F32),
                neon.NVLoad(u(4), x(14), -4 * n, etype=F32),
                neon.NVLoad(u(5), x(14), 4 * n, etype=F32),
                neon.NVOp("add", u(1), u(1), u(2), etype=F32),
                neon.NVOp("add", u(1), u(1), u(3), etype=F32),
                neon.NVOp("add", u(1), u(1), u(4), etype=F32),
                neon.NVOp("add", u(1), u(1), u(5), etype=F32),
                neon.NVOp("mul", u(1), u(1), u(0), etype=F32),
                neon.NVStore(u(1), x(15), etype=F32, post_inc=True),
                sc.IntOp("add", x(14), x(14), 16),
                sc.IntOp("add", xoff, xoff, 4),
                sc.BranchCmp("lt", xoff, main, f"{tag}_col"),
            )
            b.label(f"{tag}_tail")
            b.emit(sc.BranchCmp("ge", xoff, width, f"{tag}_next"))
            b.label(f"{tag}_tail_loop")
            b.emit(
                sc.Load(f(1), x(14), 0, etype=F32),
                sc.Load(f(2), x(14), -4, etype=F32),
                sc.Load(f(3), x(14), 4, etype=F32),
                sc.Load(f(4), x(14), -4 * n, etype=F32),
                sc.Load(f(5), x(14), 4 * n, etype=F32),
                sc.FOp("add", f(1), f(1), f(2)),
                sc.FOp("add", f(1), f(1), f(3)),
                sc.FOp("add", f(1), f(1), f(4)),
                sc.FOp("add", f(1), f(1), f(5)),
                sc.FOp("mul", f(1), f(1), f(0)),
                sc.Store(f(1), x(15), 0, etype=F32),
                sc.IntOp("add", x(14), x(14), 4),
                sc.IntOp("add", x(15), x(15), 4),
                sc.IntOp("add", xoff, xoff, 1),
                sc.BranchCmp("lt", xoff, width, f"{tag}_tail_loop"),
            )
            b.label(f"{tag}_next")
            b.emit(
                sc.IntOp("add", xc, xc, 4 * n),
                sc.IntOp("add", xd, xd, 4 * n),
                sc.IntOp("add", xi, xi, 1),
                sc.BranchCmp("lt", xi, n - 2, f"{tag}_row"),
            )

        sweep("s1", wl.addr("a"), wl.addr("b"))
        sweep("s2", wl.addr("b"), wl.addr("a"))
        b.emit(sc.Halt())
        return b.build()

    def build_rvv(self, wl: Workload) -> Program:
        """RVV strip-mined 2-D sweeps: the inner row loop re-runs
        vsetvli per strip; rows advance with scalar arithmetic."""
        from repro.isa import rvv_ops as rvv
        n = wl.params["n"]
        b = ProgramBuilder("jacobi2d-rvv")
        b.emit(sc.FLi(f(0), FIFTH))

        def sweep(tag, src, dst):
            remaining, vl, step = x(3), x(4), x(5)
            xc, xd, xi = x(8), x(9), x(10)
            xrow_c, xrow_d = x(11), x(12)
            b.emit(
                sc.Li(xrow_c, src + 4 * (n + 1)),
                sc.Li(xrow_d, dst + 4 * (n + 1)),
                sc.Li(xi, 0),
            )
            b.label(f"{tag}_row")
            b.emit(
                sc.Li(remaining, n - 2),
                sc.Move(xc, xrow_c),
                sc.Move(xd, xrow_d),
            )
            b.label(f"{tag}_strip")
            b.emit(
                rvv.VSetVli(vl, remaining, etype=F32),
                rvv.VlLoad(u(1), xc, etype=F32),               # centre
                sc.IntOp("sub", x(13), xc, 4),
                rvv.VlLoad(u(2), x(13), etype=F32),            # west
                sc.IntOp("add", x(13), xc, 4),
                rvv.VlLoad(u(3), x(13), etype=F32),            # east
                sc.IntOp("sub", x(13), xc, 4 * n),
                rvv.VlLoad(u(4), x(13), etype=F32),            # north
                sc.IntOp("add", x(13), xc, 4 * n),
                rvv.VlLoad(u(5), x(13), etype=F32),            # south
                rvv.VOpVV("add", u(1), u(1), u(2), etype=F32),
                rvv.VOpVV("add", u(1), u(1), u(3), etype=F32),
                rvv.VOpVV("add", u(1), u(1), u(4), etype=F32),
                rvv.VOpVV("add", u(1), u(1), u(5), etype=F32),
                rvv.VOpVF("mul", u(1), u(1), f(0), etype=F32),
                rvv.VlStore(u(1), xd, etype=F32),
                sc.IntOp("sub", remaining, remaining, vl),
                sc.IntOp("sll", step, vl, 2),
                sc.IntOp("add", xc, xc, step),
                sc.IntOp("add", xd, xd, step),
                sc.BranchCmp("ne", remaining, 0, f"{tag}_strip"),
            )
            b.emit(
                sc.IntOp("add", xrow_c, xrow_c, 4 * n),
                sc.IntOp("add", xrow_d, xrow_d, 4 * n),
                sc.IntOp("add", xi, xi, 1),
                sc.BranchCmp("lt", xi, n - 2, f"{tag}_row"),
            )

        sweep("s1", wl.addr("a"), wl.addr("b"))
        sweep("s2", wl.addr("b"), wl.addr("a"))
        b.emit(sc.Halt())
        return b.build()
