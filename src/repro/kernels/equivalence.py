"""IR-vs-legacy equivalence gate for migrated kernels.

A kernel may switch to the shared loop-nest IR only if, per ISA, the IR
program is **instruction-identical** to the hand-written builder, or —
when the shapes legitimately differ (e.g. STREAM's hoisted constants) —
both programs verify against the NumPy reference on every ISA and their
timing-model cycle counts agree within noise.  ``check_kernel`` runs the
gate; the golden tests in ``tests/kernels/test_ir_equivalence.py`` lock
it in CI.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cpu.config import baseline_machine, uve_machine
from repro.isa.program import Program
from repro.kernels.base import Kernel
from repro.sim.functional import FunctionalSimulator
from repro.sim.simulator import Simulator

#: relative cycle difference treated as timing noise for the oracle path.
CYCLE_TOLERANCE = 0.05


@dataclass(frozen=True)
class Equivalence:
    """The gate's verdict for one kernel x ISA."""

    kernel: str
    isa: str
    verdict: str  # "identical" | "oracle"
    ir_committed: int
    legacy_committed: int
    ir_cycles: float = 0.0
    legacy_cycles: float = 0.0

    @property
    def cycle_delta(self) -> float:
        if not self.legacy_cycles:
            return 0.0
        return abs(self.ir_cycles - self.legacy_cycles) / self.legacy_cycles


def programs_identical(first: Program, second: Program) -> bool:
    """Instruction-for-instruction equality (labels included; names may
    differ)."""
    return (
        first.labels == second.labels
        and len(first) == len(second)
        and all(
            repr(a) == repr(b)
            for a, b in zip(first.instructions, second.instructions)
        )
    )


def _config_for(isa: str, vector_bits: int):
    cfg = uve_machine() if isa == "uve" else baseline_machine()
    return cfg.with_(vector_bits=vector_bits)


def _run_verified(
    kernel: Kernel,
    isa: str,
    lowering: str,
    *,
    seed: int,
    scale: float,
    vector_bits: int,
    timing: bool,
) -> Tuple[int, float]:
    """Build + run one lowering against a fresh workload; verify against
    the NumPy reference; return (committed, cycles)."""
    wl = kernel.workload(seed=seed, scale=scale)
    program = kernel.build(isa, wl, vector_bits, lowering=lowering)
    if timing:
        result = Simulator(
            program, wl.memory, _config_for(isa, vector_bits)
        ).run()
        wl.verify()
        return result.committed, result.cycles
    summary = FunctionalSimulator(program, memory=wl.memory).run()
    wl.verify()
    return summary.committed, 0.0


def check_kernel(
    kernel: Kernel,
    isa: str,
    *,
    seed: int = 0,
    scale: float = 0.25,
    vector_bits: int = 512,
    timing: Optional[bool] = None,
) -> Equivalence:
    """Gate one kernel x ISA: identical programs pass outright; diverging
    shapes must verify on the oracle and stay within cycle noise.

    ``timing=None`` runs the timing model only when needed (the oracle
    path); pass False to skip it (functional verification only) or True
    to force it.
    """
    wl = kernel.workload(seed=seed, scale=scale)
    ir_prog = kernel.build(isa, wl, vector_bits, lowering="ir")
    legacy_prog = kernel.build(isa, wl, vector_bits, lowering="legacy")
    if programs_identical(ir_prog, legacy_prog):
        summary = FunctionalSimulator(ir_prog, memory=wl.memory).run()
        wl.verify()
        return Equivalence(
            kernel.name, isa, "identical", summary.committed, summary.committed
        )
    run_timing = True if timing is None else timing
    ir_committed, ir_cycles = _run_verified(
        kernel, isa, "ir",
        seed=seed, scale=scale, vector_bits=vector_bits, timing=run_timing,
    )
    legacy_committed, legacy_cycles = _run_verified(
        kernel, isa, "legacy",
        seed=seed, scale=scale, vector_bits=vector_bits, timing=run_timing,
    )
    verdict = Equivalence(
        kernel.name, isa, "oracle",
        ir_committed, legacy_committed, ir_cycles, legacy_cycles,
    )
    if run_timing and verdict.cycle_delta > CYCLE_TOLERANCE:
        raise AssertionError(
            f"{kernel.name}/{isa}: IR lowering shifts timing beyond noise "
            f"({verdict.ir_cycles:.0f} vs {verdict.legacy_cycles:.0f} "
            f"cycles, {verdict.cycle_delta:.1%} > {CYCLE_TOLERANCE:.0%})"
        )
    return verdict
