"""Benchmark B: STREAM (McCalpin) — copy, scale, add, triad.

Four disjoint 1-D kernels run back-to-back over three arrays, the
classic memory-bandwidth benchmark; the paper's table reports it with
the highest kernel count of the memory benchmarks.
"""
from __future__ import annotations

import numpy as np

from repro.common.types import ElementType
from repro.ir import FMA_OP, Op, loop1d
from repro.isa import ProgramBuilder, f, p, u, x
from repro.isa import neon_ops as neon
from repro.isa import scalar_ops as sc
from repro.isa import sve_ops as sve
from repro.isa import uve_ops as uve
from repro.isa.program import Program
from repro.kernels.base import Kernel, Workload, scaled
from repro.streams.pattern import Direction

F32 = ElementType.F32
SCALAR = 3.0


def stream_reference(a, b, c, s):
    """The four STREAM kernels in sequence (NumPy reference)."""
    c1 = a.copy()  # copy:  c = a
    b1 = s * c1  # scale: b = s*c
    c2 = a + b1  # add:   c = a + b
    a1 = b1 + s * c2  # triad: a = b + s*c
    return a1, b1, c2


class StreamKernel(Kernel):
    name = "stream"
    letter = "B"
    domain = "memory"
    n_streams = 10
    max_nesting = 1
    n_kernels = 4
    pattern = "1D"

    default_n = 24576  # 3 x 96 KB: beyond the L1, pressures the L2

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_n, scale, minimum=64, multiple=16)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(n).astype(np.float32)
        b = rng.standard_normal(n).astype(np.float32)
        c = rng.standard_normal(n).astype(np.float32)
        wl = Workload(memory=self.fresh_memory(), params={"n": n})
        wl.place("a", a)
        wl.place("b", b)
        wl.place("c", c)
        ea, eb, ec = stream_reference(a, b, c, np.float32(SCALAR))
        wl.expected.update({"a": ea, "b": eb, "c": ec})
        return wl

    def ir_nests(self, wl: Workload):
        """The four sub-kernels as one nest each, lowered back-to-back.

        Not instruction-identical to the hand builders (those hoist the
        scalar constant and share loop registers across sub-kernels);
        the equivalence gate accepts this via the 4-ISA oracle + timing
        check.  Triad reads c as the running value (a = SCALAR*c + b).
        """
        n = wl.params["n"]
        a, bb, c = wl.addr("a"), wl.addr("b"), wl.addr("c")
        return (
            loop1d("copy", [a], c, n),
            loop1d("scale", [c], bb, n, ops=(Op("mul", "imm", SCALAR),)),
            loop1d("add", [a, bb], c, n, ops=(Op("add", "b"),)),
            loop1d("triad", [c, bb], a, n, ops=(Op(FMA_OP, "b", SCALAR),)),
        )

    # -- UVE: each sub-kernel reconfigures its streams -----------------------

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        n = wl.params["n"]
        a, bb, c = (wl.addr(k) // 4 for k in ("a", "b", "c"))
        b = ProgramBuilder("stream-uve")
        b.emit(sc.FLi(f(0), SCALAR), uve.SoDup(u(6), f(0), etype=F32))

        def kernel(tag, ins, out, body):
            for reg, addr in zip((u(0), u(1)), ins):
                b.emit(uve.SsConfig1D(reg, Direction.LOAD, addr, n, 1, etype=F32))
            b.emit(uve.SsConfig1D(u(2), Direction.STORE, out, n, 1, etype=F32))
            b.label(tag)
            body()
            b.emit(uve.SoBranchEnd(u(0), tag, negate=True))

        kernel("copy", [a], c, lambda: b.emit(uve.SoMove(u(2), u(0), etype=F32)))
        kernel(
            "scale", [c], bb,
            lambda: b.emit(uve.SoOp("mul", u(2), u(6), u(0), etype=F32)),
        )
        kernel(
            "add", [a, bb], c,
            lambda: b.emit(uve.SoOp("add", u(2), u(0), u(1), etype=F32)),
        )

        def triad():
            b.emit(
                uve.SoOp("mul", u(4), u(6), u(1), etype=F32),
                uve.SoOp("add", u(2), u(0), u(4), etype=F32),
            )

        kernel("triad", [bb, c], a, triad)
        b.emit(sc.Halt())
        return b.build()

    # -- Baselines -------------------------------------------------------------

    def build_vector(self, wl: Workload, isa: str) -> Program:
        if isa == "sve":
            return self._build_sve(wl)
        return self._build_neon(wl)

    def _build_sve(self, wl: Workload) -> Program:
        n = wl.params["n"]
        a, bb, c = (wl.addr(k) for k in ("a", "b", "c"))
        b = ProgramBuilder("stream-sve")
        bound, idx = x(3), x(4)
        xa, xb, xc = x(8), x(9), x(10)
        b.emit(
            sc.Li(bound, n), sc.Li(xa, a), sc.Li(xb, bb), sc.Li(xc, c),
            sc.FLi(f(0), SCALAR), sve.Dup(u(0), f(0), etype=F32),
        )

        def kernel(tag, loads, body, store_base):
            b.emit(sc.Li(idx, 0), sve.WhileLt(p(1), idx, bound, etype=F32))
            b.label(tag)
            for reg, base in loads:
                b.emit(sve.Ld1(reg, p(1), base, index=idx, etype=F32))
            store_reg = body()
            b.emit(
                sve.St1(store_reg, p(1), store_base, index=idx, etype=F32),
                sve.IncElems(idx, etype=F32),
                sve.WhileLt(p(1), idx, bound, etype=F32),
                sve.BranchPred("first", p(1), tag, etype=F32),
            )

        kernel("copy", [(u(1), xa)], lambda: u(1), xc)
        kernel(
            "scale", [(u(1), xc)],
            lambda: b.emit(sve.VOp("mul", u(2), p(1), u(0), u(1), etype=F32)) or u(2),
            xb,
        )
        kernel(
            "add", [(u(1), xa), (u(2), xb)],
            lambda: b.emit(sve.VOp("add", u(3), p(1), u(1), u(2), etype=F32)) or u(3),
            xc,
        )
        kernel(
            "triad", [(u(1), xb), (u(2), xc)],
            lambda: b.emit(sve.Fmla(u(1), p(1), u(0), u(2), etype=F32)) or u(1),
            xa,
        )
        b.emit(sc.Halt())
        return b.build()

    def _build_neon(self, wl: Workload) -> Program:
        n = wl.params["n"]
        lanes = 4
        main = n - n % lanes
        a, bb, c = (wl.addr(k) for k in ("a", "b", "c"))
        b = ProgramBuilder("stream-neon")
        idx, bound = x(4), x(3)
        b.emit(sc.Li(bound, main), sc.FLi(f(0), SCALAR),
               neon.NVDup(u(0), f(0), etype=F32))

        def kernel(tag, ins, out, body, scalar_body):
            bases = [x(8 + i) for i in range(len(ins))]
            out_base = x(8 + len(ins))
            for base, addr in zip(bases, ins):
                b.emit(sc.Li(base, addr))
            b.emit(sc.Li(out_base, out), sc.Li(idx, 0))
            b.emit(sc.BranchCmp("ge", idx, bound, f"{tag}_tail"))
            b.label(tag)
            for reg, base in zip([u(1), u(2)], bases):
                b.emit(neon.NVLoad(reg, base, etype=F32, post_inc=True))
            store_reg = body()
            b.emit(
                neon.NVStore(store_reg, out_base, etype=F32, post_inc=True),
                sc.IntOp("add", idx, idx, lanes),
                sc.BranchCmp("lt", idx, bound, tag),
            )
            b.label(f"{tag}_tail")
            b.emit(sc.Li(x(5), n), sc.BranchCmp("ge", idx, x(5), f"{tag}_done"))
            b.label(f"{tag}_tail_loop")
            for freg, base in zip([f(1), f(2)], bases):
                b.emit(sc.Load(freg, base, 0, etype=F32))
            store_freg = scalar_body()
            b.emit(sc.Store(store_freg, out_base, 0, etype=F32))
            for base in bases + [out_base]:
                b.emit(sc.IntOp("add", base, base, 4))
            b.emit(sc.IntOp("add", idx, idx, 1),
                   sc.BranchCmp("lt", idx, x(5), f"{tag}_tail_loop"))
            b.label(f"{tag}_done")

        kernel("copy", [a], c, lambda: u(1), lambda: f(1))
        kernel(
            "scale", [c], bb,
            lambda: b.emit(neon.NVOp("mul", u(2), u(0), u(1), etype=F32)) or u(2),
            lambda: b.emit(sc.FOp("mul", f(2), f(1), SCALAR)) or f(2),
        )
        kernel(
            "add", [a, bb], c,
            lambda: b.emit(neon.NVOp("add", u(3), u(1), u(2), etype=F32)) or u(3),
            lambda: b.emit(sc.FOp("add", f(3), f(1), f(2))) or f(3),
        )
        kernel(
            "triad", [bb, c], a,
            lambda: b.emit(neon.NVFma(u(1), u(0), u(2), etype=F32)) or u(1),
            lambda: (
                b.emit(sc.FOp("mul", f(3), f(2), SCALAR),
                       sc.FOp("add", f(1), f(1), f(3)))
                or f(1)
            ),
        )
        b.emit(sc.Halt())
        return b.build()


    def build_rvv(self, wl: Workload) -> Program:
        """RVV strip-mined versions of the four STREAM kernels."""
        from repro.isa import rvv_ops as rvv
        n = wl.params["n"]
        a, bb, c = (wl.addr(k) for k in ("a", "b", "c"))
        b = ProgramBuilder("stream-rvv")
        remaining, vl, step = x(3), x(4), x(5)
        b.emit(sc.FLi(f(0), SCALAR))

        def kernel(tag, ins, out, body):
            bases = [x(8 + i) for i in range(len(ins))]
            out_base = x(8 + len(ins))
            b.emit(sc.Li(remaining, n))
            for base, addr in zip(bases, ins):
                b.emit(sc.Li(base, addr))
            b.emit(sc.Li(out_base, out))
            b.label(tag)
            b.emit(rvv.VSetVli(vl, remaining, etype=F32))
            for reg, base in zip([u(1), u(2)], bases):
                b.emit(rvv.VlLoad(reg, base, etype=F32))
            store_reg = body()
            b.emit(
                rvv.VlStore(store_reg, out_base, etype=F32),
                sc.IntOp("sub", remaining, remaining, vl),
                sc.IntOp("sll", step, vl, 2),
            )
            for base in bases + [out_base]:
                b.emit(sc.IntOp("add", base, base, step))
            b.emit(sc.BranchCmp("ne", remaining, 0, tag))

        kernel("copy", [a], c, lambda: u(1))
        kernel(
            "scale", [c], bb,
            lambda: b.emit(rvv.VOpVF("mul", u(2), u(1), f(0), etype=F32)) or u(2),
        )
        kernel(
            "add", [a, bb], c,
            lambda: b.emit(rvv.VOpVV("add", u(3), u(1), u(2), etype=F32)) or u(3),
        )
        kernel(
            "triad", [bb, c], a,
            lambda: b.emit(rvv.VMaccVF(u(1), f(0), u(2), etype=F32)) or u(1),
        )
        b.emit(sc.Halt())
        return b.build()
