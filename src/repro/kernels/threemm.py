"""Benchmark E: 3mm — three chained matrix multiplications (PolyBench):
``E = A·B``, ``F = C·D``, ``G = E·F``.

Exercises repeated stream reconfiguration: each product reprograms the
same stream registers (u0-u5) once its predecessor has fully drained.
"""
from __future__ import annotations

import numpy as np

from repro.isa import ProgramBuilder
from repro.isa import scalar_ops as sc
from repro.isa.program import Program
from repro.kernels.base import Kernel, Workload, scaled
from repro.kernels.gemm import emit_neon_gemm, emit_sve_gemm, emit_uve_gemm


class ThreeMmKernel(Kernel):
    name = "3mm"
    letter = "E"
    domain = "algebra"
    n_streams = 9
    max_nesting = 3
    n_kernels = 3
    pattern = "4D"

    default_n = 32

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_n, scale, minimum=16, multiple=16)
        rng = np.random.default_rng(seed)
        mats = {
            name: rng.standard_normal((n, n)).astype(np.float32)
            for name in ("a", "b", "c", "d")
        }
        wl = Workload(memory=self.fresh_memory(), params={"n": n})
        for name, mat in mats.items():
            wl.place(name, mat)
        for name in ("e", "f", "g"):
            wl.place(name, np.zeros((n, n), dtype=np.float32))
        a64 = {k: v.astype(np.float64) for k, v in mats.items()}
        e = a64["a"] @ a64["b"]
        fm = a64["c"] @ a64["d"]
        g = e @ fm
        wl.expected["e"] = e.astype(np.float32)
        wl.expected["f"] = fm.astype(np.float32)
        wl.expected["g"] = g.astype(np.float32)
        return wl

    def _sections(self, wl: Workload):
        return [
            ("e", wl.addr("a"), wl.addr("b"), wl.addr("e")),
            ("f", wl.addr("c"), wl.addr("d"), wl.addr("f")),
            ("g", wl.addr("e"), wl.addr("f"), wl.addr("g")),
        ]

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        n = wl.params["n"]
        b = ProgramBuilder("3mm-uve")
        for tag, a, bm, out in self._sections(wl):
            emit_uve_gemm(b, tag, a, bm, out, n, n, n, lanes, beta_one=False)
        b.emit(sc.Halt())
        return b.build()

    def build_vector(self, wl: Workload, isa: str) -> Program:
        n = wl.params["n"]
        b = ProgramBuilder(f"3mm-{isa}")
        emit = emit_sve_gemm if isa == "sve" else emit_neon_gemm
        for tag, a, bm, out in self._sections(wl):
            emit(b, tag, a, bm, out, n, n, n, beta_one=False)
        b.emit(sc.Halt())
        return b.build()
