"""Benchmark D: gemm — C += A·B (BLAS-3, the paper's 4-D pattern case).

The UVE build streams B with a 4-D descriptor (tile row, k, tile column,
outer i with stride 0), streams A element-wise through the scalar-stream
interface, and double-buffers C tiles through load/store streams; the
3-instruction inner loop contains no address arithmetic at all.

Matrix columns are padded to a multiple of the 512-bit vector width
(standard leading-dimension practice), so every ISA sees identical
layouts; the NumPy reference is computed on the padded arrays.
"""
from __future__ import annotations

import numpy as np

from repro.common.types import ElementType
from repro.isa import ProgramBuilder, f, p, u, x
from repro.isa import neon_ops as neon
from repro.isa import scalar_ops as sc
from repro.isa import sve_ops as sve
from repro.isa import uve_ops as uve
from repro.isa.program import Program
from repro.kernels.base import Kernel, Workload, scaled
from repro.streams.pattern import Direction

F32 = ElementType.F32


def emit_uve_gemm(b, tag, a_addr, b_addr, c_addr, n, k, m, lanes, beta_one,
                  unroll=1):
    """Emit one UVE gemm (``C = A·B`` or ``C += A·B``) into builder ``b``.

    Registers u0-u5 are used; ``m`` must be a multiple of ``lanes``.
    ``unroll`` replicates the inner-loop body (Fig. 8.E's experiment);
    ``k`` must be divisible by it.
    """
    if k % unroll:
        raise ValueError(f"unroll factor {unroll} does not divide K={k}")
    tiles = m // lanes
    ae, be, ce = a_addr // 4, b_addr // 4, c_addr // 4
    b.emit(
        # B: 4-D — tile row, k rows, tile column, repeat per output row.
        uve.SsSta(u(0), Direction.LOAD, be, lanes, 1, etype=F32),
        uve.SsApp(u(0), 0, k, m),
        uve.SsApp(u(0), 0, tiles, lanes),
        uve.SsApp(u(0), 0, n, 0, last=True),
        # A: element stream — row i scanned per tile, repeated per tile.
        uve.SsSta(u(3), Direction.LOAD, ae, k, 1, etype=F32),
        uve.SsApp(u(3), 0, tiles, 0),
        uve.SsApp(u(3), 0, n, k, last=True),
        # C out: tile-major scan of the output.
        uve.SsSta(u(2), Direction.STORE, ce, lanes, 1, etype=F32),
        uve.SsApp(u(2), 0, tiles, lanes),
        uve.SsApp(u(2), 0, n, m, last=True),
    )
    if beta_one:
        b.emit(
            uve.SsSta(u(1), Direction.LOAD, ce, lanes, 1, etype=F32),
            uve.SsApp(u(1), 0, tiles, lanes),
            uve.SsApp(u(1), 0, n, m, last=True),
        )
    b.label(f"{tag}_tile")
    if beta_one:
        b.emit(uve.SoMove(u(5), u(1), etype=F32))
    else:
        b.emit(uve.SoDup(u(5), 0.0, etype=F32))
    # Unrolling uses one accumulator per unrolled step, breaking the
    # multiply-accumulate dependence chain (classic sum splitting).
    for step in range(1, unroll):
        b.emit(uve.SoDup(u(5 + step), 0.0, etype=F32))
    b.label(f"{tag}_k")
    for step in range(unroll):
        b.emit(
            uve.SoScalarRead(f(1 + step), u(3), etype=F32),
            uve.SoMacScalar(u(5 + step), u(0), f(1 + step), etype=F32),
        )
    b.emit(uve.SoBranchDim(u(0), 1, f"{tag}_k", complete=False))
    for step in range(1, unroll):
        b.emit(uve.SoOp("add", u(5), u(5), u(5 + step), etype=F32))
    b.emit(
        uve.SoMove(u(2), u(5), etype=F32),
        uve.SoBranchEnd(u(0), f"{tag}_tile", negate=True),
    )


def emit_sve_gemm(b, tag, a_addr, b_addr, c_addr, n, k, m, beta_one):
    """Emit one SVE-like gemm into builder ``b`` (registers x8-x20, u1-u3)."""
    xa, xb, xc = x(8), x(9), x(10)
    xm, xk, xn = x(11), x(12), x(13)
    xi, xj0 = x(14), x(15)
    xarow, xcrow, xak, xbk, xkc = x(16), x(17), x(18), x(19), x(20)
    b.emit(
        sc.Li(xa, a_addr), sc.Li(xb, b_addr), sc.Li(xc, c_addr),
        sc.Li(xm, m), sc.Li(xk, k), sc.Li(xn, n),
        sc.Li(xi, 0), sc.Move(xarow, xa), sc.Move(xcrow, xc),
    )
    b.label(f"{tag}_i")
    b.emit(sc.Li(xj0, 0), sve.WhileLt(p(1), xj0, xm, etype=F32))
    b.label(f"{tag}_jt")
    if beta_one:
        b.emit(sve.Ld1(u(1), p(1), xcrow, index=xj0, etype=F32))
    else:
        b.emit(sve.Dup(u(1), 0.0, etype=F32))
    b.emit(sc.Move(xak, xarow), sc.Move(xbk, xb), sc.Li(xkc, 0))
    b.label(f"{tag}_k")
    b.emit(
        sve.Ld1R(u(2), p(1), xak, etype=F32),
        sc.IntOp("add", xak, xak, 4),
        sve.Ld1(u(3), p(1), xbk, index=xj0, etype=F32),
        sc.IntOp("add", xbk, xbk, 4 * m),
        sve.Fmla(u(1), p(1), u(2), u(3), etype=F32),
        sc.IntOp("add", xkc, xkc, 1),
        sc.BranchCmp("lt", xkc, xk, f"{tag}_k"),
    )
    b.emit(
        sve.St1(u(1), p(1), xcrow, index=xj0, etype=F32),
        sve.IncElems(xj0, etype=F32),
        sve.WhileLt(p(1), xj0, xm, etype=F32),
        sve.BranchPred("first", p(1), f"{tag}_jt", etype=F32),
    )
    b.emit(
        sc.IntOp("add", xarow, xarow, 4 * k),
        sc.IntOp("add", xcrow, xcrow, 4 * m),
        sc.IntOp("add", xi, xi, 1),
        sc.BranchCmp("lt", xi, xn, f"{tag}_i"),
    )


def emit_neon_gemm(b, tag, a_addr, b_addr, c_addr, n, k, m, beta_one):
    """Emit one NEON-like gemm (fixed 128-bit tiles; ``m % 4 == 0``)."""
    xa, xb, xc = x(8), x(9), x(10)
    xm, xk, xn = x(11), x(12), x(13)
    xi, xj0 = x(14), x(15)
    xarow, xcrow, xak, xbk, xkc = x(16), x(17), x(18), x(19), x(20)
    xaddr = x(21)
    b.emit(
        sc.Li(xa, a_addr), sc.Li(xb, b_addr), sc.Li(xc, c_addr),
        sc.Li(xm, m), sc.Li(xk, k), sc.Li(xn, n),
        sc.Li(xi, 0), sc.Move(xarow, xa), sc.Move(xcrow, xc),
    )
    b.label(f"{tag}_i")
    b.emit(sc.Li(xj0, 0))
    b.label(f"{tag}_jt")
    if beta_one:
        b.emit(
            sc.IntOp("sll", x(22), xj0, 2),
            sc.IntOp("add", xaddr, xcrow, x(22)),
            neon.NVLoad(u(1), xaddr, etype=F32),
        )
    else:
        b.emit(neon.NVDup(u(1), 0.0, etype=F32))
    b.emit(sc.Move(xak, xarow), sc.Move(xbk, xb), sc.Li(xkc, 0))
    b.label(f"{tag}_k")
    b.emit(
        sc.Load(f(1), xak, 0, etype=F32),
        neon.NVDup(u(2), f(1), etype=F32),
        sc.IntOp("add", xak, xak, 4),
        sc.IntOp("sll", x(22), xj0, 2),
        sc.IntOp("add", xaddr, xbk, x(22)),
        neon.NVLoad(u(3), xaddr, etype=F32),
        sc.IntOp("add", xbk, xbk, 4 * m),
        neon.NVFma(u(1), u(2), u(3), etype=F32),
        sc.IntOp("add", xkc, xkc, 1),
        sc.BranchCmp("lt", xkc, xk, f"{tag}_k"),
    )
    b.emit(
        sc.IntOp("sll", x(22), xj0, 2),
        sc.IntOp("add", xaddr, xcrow, x(22)),
        neon.NVStore(u(1), xaddr, etype=F32),
        sc.IntOp("add", xj0, xj0, 4),
        sc.BranchCmp("lt", xj0, xm, f"{tag}_jt"),
    )
    b.emit(
        sc.IntOp("add", xarow, xarow, 4 * k),
        sc.IntOp("add", xcrow, xcrow, 4 * m),
        sc.IntOp("add", xi, xi, 1),
        sc.BranchCmp("lt", xi, xn, f"{tag}_i"),
    )


class GemmKernel(Kernel):
    name = "gemm"
    letter = "D"
    domain = "BLAS"
    n_streams = 4
    max_nesting = 3
    n_kernels = 1
    pattern = "4D"

    default_n = 40  # N = K = 40, M padded to 48

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_n, scale, minimum=2)
        k = n
        m = scaled(self.default_n, scale, minimum=16, multiple=16)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, k)).astype(np.float32)
        bm = rng.standard_normal((k, m)).astype(np.float32)
        c = rng.standard_normal((n, m)).astype(np.float32)
        wl = Workload(
            memory=self.fresh_memory(), params={"n": n, "k": k, "m": m}
        )
        wl.place("a", a)
        wl.place("b", bm)
        wl.place("c", c)
        wl.expected["c"] = (c.astype(np.float64)
                            + a.astype(np.float64) @ bm.astype(np.float64)
                            ).astype(np.float32)
        return wl

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        return self.build_uve_unrolled(wl, lanes, unroll=1)

    def build_uve_unrolled(self, wl: Workload, lanes: int, unroll: int) -> Program:
        """UVE gemm with an inner loop unrolled ``unroll`` times
        (Fig. 8.E)."""
        b = ProgramBuilder(f"gemm-uve-u{unroll}")
        pr = wl.params
        emit_uve_gemm(
            b, "g", wl.addr("a"), wl.addr("b"), wl.addr("c"),
            pr["n"], pr["k"], pr["m"], lanes, beta_one=True, unroll=unroll,
        )
        b.emit(sc.Halt())
        return b.build()

    def build_vector(self, wl: Workload, isa: str) -> Program:
        b = ProgramBuilder(f"gemm-{isa}")
        pr = wl.params
        emit = emit_sve_gemm if isa == "sve" else emit_neon_gemm
        emit(
            b, "g", wl.addr("a"), wl.addr("b"), wl.addr("c"),
            pr["n"], pr["k"], pr["m"], beta_one=True,
        )
        b.emit(sc.Halt())
        return b.build()
