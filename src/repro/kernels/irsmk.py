"""Benchmark K: IRSmk — the ASC Sequoia implicit radiation solver
matrix kernel: a 9-point variable-coefficient stencil,
``b[i][j] = sum_k coef_k[i][j] * x[i+di_k][j+dj_k]``.

The heaviest stream-count benchmark: nine coefficient streams, nine
shifted solution streams, and the output — 19 concurrent streams.
(The original is a 27-point 3-D kernel; the 2-D 9-point form preserves
the many-concurrent-streams behaviour at laptop-simulation scale.)
"""
from __future__ import annotations

import numpy as np

from repro.common.types import ElementType
from repro.isa import ProgramBuilder, f, p, u, x
from repro.isa import neon_ops as neon
from repro.isa import scalar_ops as sc
from repro.isa import sve_ops as sve
from repro.isa import uve_ops as uve
from repro.isa.program import Program
from repro.kernels.base import Kernel, Workload, scaled
from repro.streams.pattern import Direction

F32 = ElementType.F32

#: stencil offsets (di, dj) and coefficient-array names.
OFFSETS = [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 0), (0, 1), (1, -1), (1, 0), (1, 1)]
COEF_NAMES = ["c" + "".join(("m" if d < 0 else "p" if d > 0 else "z") for d in off)
              for off in OFFSETS]


def irsmk_reference(coefs, xmat):
    n = xmat.shape[0]
    out = np.zeros_like(xmat)
    for (di, dj), coef in zip(OFFSETS, coefs):
        out[1:-1, 1:-1] += (
            coef[1:-1, 1:-1] * xmat[1 + di : n - 1 + di, 1 + dj : n - 1 + dj]
        )
    return out


class IrsmkKernel(Kernel):
    name = "irsmk"
    letter = "K"
    domain = "stencil"
    n_streams = 19
    max_nesting = 2
    n_kernels = 1
    pattern = "2D"

    default_n = 64

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_n, scale, minimum=8)
        rng = np.random.default_rng(seed)
        wl = Workload(memory=self.fresh_memory(), params={"n": n})
        coefs = []
        for name in COEF_NAMES:
            coef = rng.standard_normal((n, n)).astype(np.float32)
            wl.place(name, coef)
            coefs.append(coef)
        xmat = rng.standard_normal((n, n)).astype(np.float32)
        wl.place("x", xmat)
        wl.place("b", np.zeros((n, n), dtype=np.float32))
        ref = irsmk_reference(
            [c.astype(np.float64) for c in coefs], xmat.astype(np.float64)
        )
        wl.expected["b"] = ref.astype(np.float32)
        return wl

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        n = wl.params["n"]
        rows = cols = n - 2
        b = ProgramBuilder("irsmk-uve")
        xe = wl.addr("x") // 4
        centre = xe + n + 1

        def stream2d(reg, direction, base_elem):
            b.emit(
                uve.SsSta(reg, direction, base_elem, cols, 1, etype=F32),
                uve.SsApp(reg, 0, rows, n, last=True),
            )

        # u0..u8: coefficients; u9..u17: shifted x; u18: output b.
        for idx, name in enumerate(COEF_NAMES):
            stream2d(u(idx), Direction.LOAD, wl.addr(name) // 4 + n + 1)
        for idx, (di, dj) in enumerate(OFFSETS):
            stream2d(u(9 + idx), Direction.LOAD, centre + di * n + dj)
        stream2d(u(18), Direction.STORE, wl.addr("b") // 4 + n + 1)
        b.label("loop")
        b.emit(uve.SoOp("mul", u(19), u(0), u(9), etype=F32))
        for idx in range(1, 9):
            b.emit(uve.SoMac(u(19), u(idx), u(9 + idx), etype=F32))
        b.emit(
            uve.SoMove(u(18), u(19), etype=F32),
            uve.SoBranchEnd(u(0), "loop", negate=True),
        )
        b.emit(sc.Halt())
        return b.build()

    def build_vector(self, wl: Workload, isa: str) -> Program:
        if isa == "sve":
            return self._build_sve(wl)
        return self._build_neon(wl)

    def _addrs(self, wl):
        n = wl.params["n"]
        coef_bases = [wl.addr(name) + 4 * (n + 1) for name in COEF_NAMES]
        x_bases = [
            wl.addr("x") + 4 * ((1 + di) * n + 1 + dj) for (di, dj) in OFFSETS
        ]
        out_base = wl.addr("b") + 4 * (n + 1)
        return coef_bases, x_bases, out_base

    def _build_sve(self, wl: Workload) -> Program:
        n = wl.params["n"]
        coef_bases, x_bases, out_base = self._addrs(wl)
        b = ProgramBuilder("irsmk-sve")
        xi, xoff, xw, xt, xrow = x(8), x(9), x(10), x(11), x(12)
        b.emit(sc.Li(xw, n - 2), sc.Li(xi, 0), sc.Li(xrow, 0))
        b.label("row")
        b.emit(sc.Li(xoff, 0), sve.WhileLt(p(1), xoff, xw, etype=F32))
        b.label("col")
        b.emit(sve.Dup(u(1), 0.0, etype=F32))
        for coef, xb in zip(coef_bases, x_bases):
            b.emit(
                sc.IntOp("add", xt, xrow, coef),
                sve.Ld1(u(2), p(1), xt, index=xoff, etype=F32),
                sc.IntOp("add", xt, xrow, xb),
                sve.Ld1(u(3), p(1), xt, index=xoff, etype=F32),
                sve.Fmla(u(1), p(1), u(2), u(3), etype=F32),
            )
        b.emit(
            sc.IntOp("add", xt, xrow, out_base),
            sve.St1(u(1), p(1), xt, index=xoff, etype=F32),
            sve.IncElems(xoff, etype=F32),
            sve.WhileLt(p(1), xoff, xw, etype=F32),
            sve.BranchPred("first", p(1), "col", etype=F32),
        )
        b.emit(
            sc.IntOp("add", xrow, xrow, 4 * n),
            sc.IntOp("add", xi, xi, 1),
            sc.BranchCmp("lt", xi, n - 2, "row"),
            sc.Halt(),
        )
        return b.build()

    def _build_neon(self, wl: Workload) -> Program:
        n = wl.params["n"]
        coef_bases, x_bases, out_base = self._addrs(wl)
        width = n - 2
        main = width - width % 4
        b = ProgramBuilder("irsmk-neon")
        xi, xoff, xt, xrow = x(8), x(9), x(11), x(12)
        b.emit(sc.Li(xi, 0), sc.Li(xrow, 0))
        b.label("row")
        b.emit(sc.Li(xoff, 0))
        b.emit(sc.BranchCmp("ge", xoff, main, "tail"))
        b.label("col")
        b.emit(neon.NVDup(u(1), 0.0, etype=F32), sc.IntOp("sll", x(13), xoff, 2))
        for coef, xb in zip(coef_bases, x_bases):
            b.emit(
                sc.IntOp("add", xt, xrow, coef),
                sc.IntOp("add", xt, xt, x(13)),
                neon.NVLoad(u(2), xt, etype=F32),
                sc.IntOp("add", xt, xrow, xb),
                sc.IntOp("add", xt, xt, x(13)),
                neon.NVLoad(u(3), xt, etype=F32),
                neon.NVFma(u(1), u(2), u(3), etype=F32),
            )
        b.emit(
            sc.IntOp("add", xt, xrow, out_base),
            sc.IntOp("add", xt, xt, x(13)),
            neon.NVStore(u(1), xt, etype=F32),
            sc.IntOp("add", xoff, xoff, 4),
            sc.BranchCmp("lt", xoff, main, "col"),
        )
        b.label("tail")
        b.emit(sc.BranchCmp("ge", xoff, width, "next"))
        b.label("tail_loop")
        b.emit(sc.FLi(f(1), 0.0), sc.IntOp("sll", x(13), xoff, 2))
        for coef, xb in zip(coef_bases, x_bases):
            b.emit(
                sc.IntOp("add", xt, xrow, coef),
                sc.IntOp("add", xt, xt, x(13)),
                sc.Load(f(2), xt, 0, etype=F32),
                sc.IntOp("add", xt, xrow, xb),
                sc.IntOp("add", xt, xt, x(13)),
                sc.Load(f(3), xt, 0, etype=F32),
                sc.FMac(f(1), f(2), f(3)),
            )
        b.emit(
            sc.IntOp("add", xt, xrow, out_base),
            sc.IntOp("add", xt, xt, x(13)),
            sc.Store(f(1), xt, 0, etype=F32),
            sc.IntOp("add", xoff, xoff, 1),
            sc.BranchCmp("lt", xoff, width, "tail_loop"),
        )
        b.label("next")
        b.emit(
            sc.IntOp("add", xrow, xrow, 4 * n),
            sc.IntOp("add", xi, xi, 1),
            sc.BranchCmp("lt", xi, n - 2, "row"),
            sc.Halt(),
        )
        return b.build()
