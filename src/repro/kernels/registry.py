"""Registry of all evaluation kernels (paper Fig. 8, benchmarks A–S).

Kernels with ``paper=False`` are *extensions*: addressable through
``get_kernel`` and the CLIs but excluded from ``all_kernels()`` by
default so the paper's figures and golden tables keep their A..S set.
The registry also exposes per-kernel ISA support
(:func:`unsupported_isas`), so a missing implementation surfaces as a
:class:`~repro.errors.ConfigError` listing what *is* available instead
of a raw ``NotImplementedError`` deep in a builder.
"""
from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.kernels.base import ALL_ISAS, Kernel

_REGISTRY: Dict[str, Kernel] = {}

#: optional kernel modules that failed to import: module name -> error text.
_IMPORT_ERRORS: Dict[str, str] = {}


def register(kernel_cls) -> None:
    kernel = kernel_cls()
    if kernel.name in _REGISTRY:
        raise ConfigError(f"duplicate kernel {kernel.name!r}")
    _REGISTRY[kernel.name] = kernel


def import_failures() -> Dict[str, str]:
    """Optional kernel modules that failed to import, with the error."""
    return dict(_IMPORT_ERRORS)


def get_kernel(name: str) -> Kernel:
    try:
        return _REGISTRY[name]
    except KeyError:
        message = f"unknown kernel {name!r}; available: {sorted(_REGISTRY)}"
        if _IMPORT_ERRORS:
            failed = "; ".join(
                f"{module}: {error}"
                for module, error in sorted(_IMPORT_ERRORS.items())
            )
            message += f" (modules that failed to import: {failed})"
        raise ConfigError(message) from None


def all_kernels(include_extensions: bool = False) -> List[Kernel]:
    """All kernels in the paper's A..S order.  Extension kernels
    (``paper=False``) are appended only when requested."""
    kernels = sorted(_REGISTRY.values(), key=lambda k: k.letter)
    if include_extensions:
        return kernels
    return [k for k in kernels if k.paper]


def kernel_names(include_extensions: bool = False) -> List[str]:
    return [k.name for k in all_kernels(include_extensions)]


def unsupported_isas(name: str) -> Tuple[str, ...]:
    """The ISAs ``name`` cannot be built for (registry-visible marker;
    ``Kernel.build`` raises ConfigError for these)."""
    kernel = get_kernel(name)
    supported = kernel.supported_isas()
    return tuple(isa for isa in ALL_ISAS if isa not in supported)


def _register_optional(optional) -> None:
    """Import-and-register helper; failures are recorded, not swallowed
    silently, so `get_kernel` can explain why a kernel is missing."""
    import importlib

    for module_name, cls_name in optional:
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            _IMPORT_ERRORS[module_name] = str(exc)
            continue
        register(getattr(module, cls_name))


def _populate() -> None:
    from repro.kernels.memcpy import MemcpyKernel
    from repro.kernels.stream import StreamKernel
    from repro.kernels.saxpy import SaxpyKernel

    for cls in (MemcpyKernel, StreamKernel, SaxpyKernel):
        register(cls)

    # Later benchmark modules register lazily to keep import costs low and
    # to allow partial builds during development.
    _register_optional(
        [
            ("repro.kernels.dot", "DotKernel"),
            ("repro.kernels.gemm", "GemmKernel"),
            ("repro.kernels.threemm", "ThreeMmKernel"),
            ("repro.kernels.mvt", "MvtKernel"),
            ("repro.kernels.gemver", "GemverKernel"),
            ("repro.kernels.trisolv", "TrisolvKernel"),
            ("repro.kernels.jacobi1d", "Jacobi1dKernel"),
            ("repro.kernels.jacobi2d", "Jacobi2dKernel"),
            ("repro.kernels.irsmk", "IrsmkKernel"),
            ("repro.kernels.haccmk", "HaccmkKernel"),
            ("repro.kernels.knn", "KnnKernel"),
            ("repro.kernels.covariance", "CovarianceKernel"),
            ("repro.kernels.mamr", "MamrKernel"),
            ("repro.kernels.mamr", "MamrDiagKernel"),
            ("repro.kernels.mamr", "MamrIndKernel"),
            ("repro.kernels.seidel2d", "Seidel2dKernel"),
            ("repro.kernels.floyd_warshall", "FloydWarshallKernel"),
        ]
    )


_populate()
