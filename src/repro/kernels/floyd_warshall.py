"""Benchmark S: floyd-warshall — all-pairs shortest paths (dynamic
programming); starred: not vectorized by the ARM compiler, so the
baselines run scalar code.

The UVE build reconfigures its streams once per outer iteration *k* (the
paper's prescribed approach for deep loop nests): the distance matrix is
streamed in and out row-major, row *k* is re-read for every row *i*
through a zero-stride outer dimension, and column *k* is consumed
element-wise through the scalar-stream interface.
"""
from __future__ import annotations

import numpy as np

from repro.common.types import ElementType
from repro.isa import ProgramBuilder, f, u, x
from repro.isa import scalar_ops as sc
from repro.isa import uve_ops as uve
from repro.isa.program import Program
from repro.kernels.base import Kernel, Workload, scaled
from repro.streams.pattern import Direction

F32 = ElementType.F32


def floyd_warshall_reference(d):
    d = d.copy()
    n = d.shape[0]
    for k in range(n):
        d = np.minimum(d, d[:, k : k + 1] + d[k : k + 1, :])
    return d


class FloydWarshallKernel(Kernel):
    name = "floyd-warshall"
    letter = "S"
    domain = "dynamic programming"
    n_streams = 4
    max_nesting = 3
    n_kernels = 1
    pattern = "2D (reconfigured per k)"
    sve_vectorized = False

    default_n = 24

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_n, scale, minimum=4)
        rng = np.random.default_rng(seed)
        d = rng.uniform(1.0, 10.0, (n, n)).astype(np.float32)
        np.fill_diagonal(d, 0.0)
        wl = Workload(memory=self.fresh_memory(), params={"n": n})
        wl.place("d", d)
        wl.expected["d"] = floyd_warshall_reference(d.astype(np.float64)).astype(
            np.float32
        )
        return wl

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        n = wl.params["n"]
        de = wl.addr("d") // 4
        b = ProgramBuilder("floyd-warshall-uve")
        xk, xkrow, xkcol = x(8), x(9), x(10)
        b.emit(sc.Li(xk, 0), sc.Li(xkrow, de), sc.Li(xkcol, de))
        b.label("k_loop")
        b.emit(
            # d[i][j] in and out, row-major.
            uve.SsSta(u(0), Direction.LOAD, de, n, 1, etype=F32),
            uve.SsApp(u(0), 0, n, n, last=True),
            uve.SsSta(u(1), Direction.STORE, de, n, 1, etype=F32),
            uve.SsApp(u(1), 0, n, n, last=True),
            # row k, re-read for every i (zero-stride outer dimension).
            uve.SsSta(u(2), Direction.LOAD, xkrow, n, 1, etype=F32),
            uve.SsApp(u(2), 0, n, 0, last=True),
            # column k, one element per i.
            uve.SsConfig1D(u(3), Direction.LOAD, xkcol, n, n, etype=F32),
        )
        b.label("i_loop")
        b.emit(uve.SoScalarRead(f(1), u(3), etype=F32))  # d[i][k]
        b.label("chunk")
        b.emit(
            uve.SoOpScalar("add", u(5), u(2), f(1), etype=F32),  # d[i][k]+d[k][j]
            uve.SoOp("min", u(1), u(0), u(5), etype=F32),
            uve.SoBranchDim(u(0), 0, "chunk", complete=False),
            uve.SoBranchEnd(u(0), "i_loop", negate=True),
        )
        b.emit(
            sc.IntOp("add", xkrow, xkrow, n),  # element offsets (not bytes)
            sc.IntOp("add", xkcol, xkcol, 1),
            sc.IntOp("add", xk, xk, 1),
            sc.BranchCmp("lt", xk, n, "k_loop"),
            sc.Halt(),
        )
        return b.build()

    def build_vector(self, wl: Workload, isa: str) -> Program:
        raise AssertionError("floyd-warshall is not vectorized by the baselines")

    def build_scalar(self, wl: Workload) -> Program:
        n = wl.params["n"]
        da = wl.addr("d")
        b = ProgramBuilder("floyd-warshall-scalar")
        xk, xi, xj = x(8), x(9), x(10)
        xrow, xkrow, xik = x(11), x(12), x(13)
        b.emit(sc.Li(xk, 0), sc.Li(xkrow, da))
        b.label("k_loop")
        b.emit(
            sc.Li(xi, 0),
            sc.Li(xrow, da),
            sc.IntOp("sll", xik, xk, 2),
            sc.IntOp("add", xik, xik, da),  # &d[0][k]
        )
        b.label("i_loop")
        b.emit(
            sc.Load(f(1), xik, 0, etype=F32),  # d[i][k]
            sc.Li(xj, 0),
            sc.Move(x(14), xrow),
            sc.Move(x(15), xkrow),
        )
        b.label("j_loop")
        b.emit(
            sc.Load(f(2), x(15), 0, etype=F32),  # d[k][j]
            sc.Load(f(3), x(14), 0, etype=F32),  # d[i][j]
            sc.FOp("add", f(2), f(2), f(1)),
            sc.FOp("min", f(3), f(3), f(2)),
            sc.Store(f(3), x(14), 0, etype=F32),
            sc.IntOp("add", x(14), x(14), 4),
            sc.IntOp("add", x(15), x(15), 4),
            sc.IntOp("add", xj, xj, 1),
            sc.BranchCmp("lt", xj, n, "j_loop"),
        )
        b.emit(
            sc.IntOp("add", xrow, xrow, 4 * n),
            sc.IntOp("add", xik, xik, 4 * n),
            sc.IntOp("add", xi, xi, 1),
            sc.BranchCmp("lt", xi, n, "i_loop"),
        )
        b.emit(
            sc.IntOp("add", xkrow, xkrow, 4 * n),
            sc.IntOp("add", xk, xk, 1),
            sc.BranchCmp("lt", xk, n, "k_loop"),
            sc.Halt(),
        )
        return b.build()
