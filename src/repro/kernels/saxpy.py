"""Benchmark C: saxpy — the paper's running example (Fig. 1 / Fig. 4)."""
from __future__ import annotations

import numpy as np

from repro.common.types import ElementType
from repro.ir import FMA_OP, Op, loop1d
from repro.isa import f, u
from repro.isa import scalar_ops as sc
from repro.isa import sve_ops as sve
from repro.isa import neon_ops as neon
from repro.isa import uve_ops as uve
from repro.isa.program import Program
from repro.kernels import elementwise as ew
from repro.kernels.base import Kernel, Workload, scaled

F32 = ElementType.F32
A = 2.5


class SaxpyKernel(Kernel):
    name = "saxpy"
    letter = "C"
    domain = "BLAS"
    n_streams = 3
    max_nesting = 1
    n_kernels = 1
    pattern = "1D"

    default_n = 16384  # 3 x 64 KB working set: beyond the L1

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_n, scale, minimum=64, multiple=16)
        rng = np.random.default_rng(seed)
        xs = rng.standard_normal(n).astype(np.float32)
        ys = rng.standard_normal(n).astype(np.float32)
        wl = Workload(memory=self.fresh_memory(), params={"n": n})
        wl.place("x", xs)
        wl.place("y", ys)
        wl.expected["y"] = np.float32(A) * xs + ys
        return wl

    def ir_nests(self, wl: Workload):
        # y = A*x + y: one fused step; the backends' streamlined shapes
        # reproduce the legacy builders instruction for instruction.
        return (
            loop1d(
                "saxpy",
                [wl.addr("x"), wl.addr("y")],
                wl.addr("y"),
                wl.params["n"],
                ops=(Op(FMA_OP, "b", A),),
            ),
        )

    # -- Legacy hand builders (kept as the equivalence-gate reference) -------

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        def setup(b):
            b.emit(sc.FLi(f(0), A), uve.SoDup(u(3), f(0), etype=F32))

        def body(b, ins, out):
            b.emit(
                uve.SoOp("mul", u(4), u(3), ins[0], etype=F32),
                uve.SoOp("add", out, u(4), ins[1], etype=F32),
            )

        return ew.build_uve(
            "saxpy-uve",
            [wl.addr("x"), wl.addr("y")],
            wl.addr("y"),
            wl.params["n"],
            body,
            setup=setup,
        )

    def build_vector(self, wl: Workload, isa: str) -> Program:
        n = wl.params["n"]
        ins = [wl.addr("x"), wl.addr("y")]
        out = wl.addr("y")
        if isa == "sve":
            def setup(b):
                b.emit(sc.FLi(f(0), A), sve.Dup(u(0), f(0), etype=F32))

            def body(b, regs, _out):
                from repro.isa.registers import p
                b.emit(sve.Fmla(regs[1], p(1), regs[0], u(0), etype=F32))
                return regs[1]

            return ew.build_sve("saxpy-sve", ins, out, n, body, setup=setup)

        def setup(b):
            b.emit(sc.FLi(f(0), A), neon.NVDup(u(0), f(0), etype=F32))

        def body(b, regs, _out):
            b.emit(neon.NVFma(regs[1], regs[0], u(0), etype=F32))
            return regs[1]

        def scalar_body(b, regs, _out):
            b.emit(sc.FMac(regs[1], regs[0], f(0)))
            return regs[1]

        return ew.build_neon(
            "saxpy-neon", ins, out, n, body, scalar_body, setup=setup
        )

    def build_rvv(self, wl: Workload) -> Program:
        """Fig. 1.C: vsetvli / vlw.v / vlw.v / vfmacc.vf / vsw.v loop."""
        from repro.isa import rvv_ops as rvv

        def setup(b):
            b.emit(sc.FLi(f(0), A))

        def body(b, regs, _out):
            b.emit(rvv.VMaccVF(regs[1], f(0), regs[0], etype=F32))
            return regs[1]

        return ew.build_rvv(
            "saxpy-rvv", [wl.addr("x"), wl.addr("y")], wl.addr("y"),
            wl.params["n"], body, setup=setup,
        )
