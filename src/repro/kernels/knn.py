"""Benchmark M: knn — nearest-neighbour distance scan (data mining).

Computes the squared Euclidean distance from a query point to every
point of a 3-D point cloud (coordinates in structure-of-arrays layout)
and reduces to the minimum distance — three input streams and a running
vector minimum.
"""
from __future__ import annotations

import numpy as np

from repro.common.types import ElementType
from repro.isa import ProgramBuilder, f, p, u, x
from repro.isa import neon_ops as neon
from repro.isa import scalar_ops as sc
from repro.isa import sve_ops as sve
from repro.isa import uve_ops as uve
from repro.isa.program import Program
from repro.kernels.base import Kernel, Workload, scaled
from repro.streams.pattern import Direction

F32 = ElementType.F32
QUERY = (0.25, -0.5, 0.75)
BIG = 1e30


class KnnKernel(Kernel):
    name = "knn"
    letter = "M"
    domain = "data mining"
    n_streams = 3
    max_nesting = 1
    n_kernels = 1
    pattern = "1D"

    default_n = 8192

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_n, scale, minimum=64, multiple=16)
        rng = np.random.default_rng(seed)
        xs = rng.standard_normal(n).astype(np.float32)
        ys = rng.standard_normal(n).astype(np.float32)
        zs = rng.standard_normal(n).astype(np.float32)
        wl = Workload(memory=self.fresh_memory(), params={"n": n})
        wl.place("x", xs)
        wl.place("y", ys)
        wl.place("z", zs)
        wl.place("best", np.zeros(1, dtype=np.float32))
        qx, qy, qz = QUERY
        dist = (
            (xs.astype(np.float64) - qx) ** 2
            + (ys.astype(np.float64) - qy) ** 2
            + (zs.astype(np.float64) - qz) ** 2
        )
        wl.expected["best"] = np.array([dist.min()], dtype=np.float32)
        return wl

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        n = wl.params["n"]
        b = ProgramBuilder("knn-uve")
        for reg, name in zip((u(0), u(1), u(2)), ("x", "y", "z")):
            b.emit(
                uve.SsConfig1D(reg, Direction.LOAD, wl.addr(name) // 4, n, 1, etype=F32)
            )
        qx, qy, qz = QUERY
        b.emit(
            sc.FLi(f(1), qx), sc.FLi(f(2), qy), sc.FLi(f(3), qz),
            uve.SoDup(u(6), BIG, etype=F32),
            sc.Li(x(8), wl.addr("best")),
        )
        b.label("loop")
        b.emit(
            uve.SoOpScalar("sub", u(3), u(0), f(1), etype=F32),
            uve.SoOpScalar("sub", u(4), u(1), f(2), etype=F32),
            uve.SoOpScalar("sub", u(5), u(2), f(3), etype=F32),
            uve.SoOp("mul", u(7), u(3), u(3), etype=F32),
            uve.SoMac(u(7), u(4), u(4), etype=F32),
            uve.SoMac(u(7), u(5), u(5), etype=F32),
            uve.SoOp("min", u(6), u(6), u(7), etype=F32),
            uve.SoBranchEnd(u(0), "loop", negate=True),
        )
        b.emit(
            uve.SoRedScalar("min", f(4), u(6), etype=F32),
            sc.Store(f(4), x(8), 0, etype=F32),
            sc.Halt(),
        )
        return b.build()

    def build_vector(self, wl: Workload, isa: str) -> Program:
        n = wl.params["n"]
        if isa == "sve":
            return self._build_sve(wl, n)
        return self._build_neon(wl, n)

    def _build_sve(self, wl, n):
        b = ProgramBuilder("knn-sve")
        xx, xy, xz, xoff, xn = x(8), x(9), x(10), x(11), x(12)
        qx, qy, qz = QUERY
        b.emit(
            sc.Li(xx, wl.addr("x")), sc.Li(xy, wl.addr("y")),
            sc.Li(xz, wl.addr("z")), sc.Li(xn, n), sc.Li(xoff, 0),
            sve.Dup(u(4), qx, etype=F32),
            sve.Dup(u(5), qy, etype=F32),
            sve.Dup(u(6), qz, etype=F32),
            sve.Dup(u(7), BIG, etype=F32),
            sve.WhileLt(p(1), xoff, xn, etype=F32),
        )
        b.label("loop")
        b.emit(
            sve.Ld1(u(0), p(1), xx, index=xoff, etype=F32),
            sve.Ld1(u(1), p(1), xy, index=xoff, etype=F32),
            sve.Ld1(u(2), p(1), xz, index=xoff, etype=F32),
            sve.VOp("sub", u(0), p(1), u(0), u(4), etype=F32),
            sve.VOp("sub", u(1), p(1), u(1), u(5), etype=F32),
            sve.VOp("sub", u(2), p(1), u(2), u(6), etype=F32),
            sve.VOp("mul", u(3), p(1), u(0), u(0), etype=F32),
            sve.Fmla(u(3), p(1), u(1), u(1), etype=F32),
            sve.Fmla(u(3), p(1), u(2), u(2), etype=F32),
            sve.VOp("min", u(7), p(1), u(7), u(3), etype=F32),
            sve.IncElems(xoff, etype=F32),
            sve.WhileLt(p(1), xoff, xn, etype=F32),
            sve.BranchPred("first", p(1), "loop", etype=F32),
        )
        b.emit(
            sve.Red("min", f(4), p(0), u(7), etype=F32),
            sc.Li(x(13), wl.addr("best")),
            sc.Store(f(4), x(13), 0, etype=F32),
            sc.Halt(),
        )
        return b.build()

    def build_rvv(self, wl: Workload) -> Program:
        from repro.isa import rvv_ops as rvv
        n = wl.params["n"]
        b = ProgramBuilder("knn-rvv")
        remaining, vl, step = x(3), x(4), x(5)
        xx, xy, xz = x(8), x(9), x(10)
        qx, qy, qz = QUERY
        b.emit(
            sc.Li(remaining, n),
            sc.Li(xx, wl.addr("x")), sc.Li(xy, wl.addr("y")),
            sc.Li(xz, wl.addr("z")),
            sc.FLi(f(1), qx), sc.FLi(f(2), qy), sc.FLi(f(3), qz),
            sc.FLi(f(5), BIG),
        )
        b.label("loop")
        b.emit(
            rvv.VSetVli(vl, remaining, etype=F32),
            rvv.VlLoad(u(0), xx, etype=F32),
            rvv.VlLoad(u(1), xy, etype=F32),
            rvv.VlLoad(u(2), xz, etype=F32),
            rvv.VOpVF("sub", u(0), u(0), f(1), etype=F32),
            rvv.VOpVF("sub", u(1), u(1), f(2), etype=F32),
            rvv.VOpVF("sub", u(2), u(2), f(3), etype=F32),
            rvv.VOpVV("mul", u(3), u(0), u(0), etype=F32),
            rvv.VMaccVV(u(3), u(1), u(1), etype=F32),
            rvv.VMaccVV(u(3), u(2), u(2), etype=F32),
            rvv.VRed("min", f(4), u(3), etype=F32),
            sc.FOp("min", f(5), f(5), f(4)),
            sc.IntOp("sub", remaining, remaining, vl),
            sc.IntOp("sll", step, vl, 2),
            sc.IntOp("add", xx, xx, step),
            sc.IntOp("add", xy, xy, step),
            sc.IntOp("add", xz, xz, step),
            sc.BranchCmp("ne", remaining, 0, "loop"),
        )
        b.emit(
            sc.Li(x(13), wl.addr("best")),
            sc.Store(f(5), x(13), 0, etype=F32),
            sc.Halt(),
        )
        return b.build()

    def _build_neon(self, wl, n):
        b = ProgramBuilder("knn-neon")
        xx, xy, xz, xoff = x(8), x(9), x(10), x(11)
        qx, qy, qz = QUERY
        b.emit(
            sc.Li(xx, wl.addr("x")), sc.Li(xy, wl.addr("y")),
            sc.Li(xz, wl.addr("z")), sc.Li(xoff, 0),
            neon.NVDup(u(4), qx, etype=F32),
            neon.NVDup(u(5), qy, etype=F32),
            neon.NVDup(u(6), qz, etype=F32),
            neon.NVDup(u(7), BIG, etype=F32),
        )
        b.label("loop")
        b.emit(
            neon.NVLoad(u(0), xx, etype=F32, post_inc=True),
            neon.NVLoad(u(1), xy, etype=F32, post_inc=True),
            neon.NVLoad(u(2), xz, etype=F32, post_inc=True),
            neon.NVOp("sub", u(0), u(0), u(4), etype=F32),
            neon.NVOp("sub", u(1), u(1), u(5), etype=F32),
            neon.NVOp("sub", u(2), u(2), u(6), etype=F32),
            neon.NVOp("mul", u(3), u(0), u(0), etype=F32),
            neon.NVFma(u(3), u(1), u(1), etype=F32),
            neon.NVFma(u(3), u(2), u(2), etype=F32),
            neon.NVOp("min", u(7), u(7), u(3), etype=F32),
            sc.IntOp("add", xoff, xoff, 4),
            sc.BranchCmp("lt", xoff, n, "loop"),
        )
        b.emit(
            neon.NVRed("min", f(4), u(7), etype=F32),
            sc.Li(x(13), wl.addr("best")),
            sc.Store(f(4), x(13), 0, etype=F32),
            sc.Halt(),
        )
        return b.build()
