"""Benchmark R: seidel-2d (PolyBench) — an in-place 9-point Gauss-Seidel
sweep with loop-carried dependences; starred (not vectorizable), so the
baselines run scalar code and the UVE build uses the *scalar-stream
processing* interface (§III-B): streams deliver every neighbour value
element-wise, eliminating loads and index arithmetic even though the
computation itself cannot be vectorized.
"""
from __future__ import annotations

import numpy as np

from repro.common.types import ElementType
from repro.isa import ProgramBuilder, f, u, x
from repro.isa import scalar_ops as sc
from repro.isa import uve_ops as uve
from repro.isa.program import Program
from repro.kernels.base import Kernel, Workload, scaled
from repro.streams.pattern import Direction

F32 = ElementType.F32
NINTH = 1.0 / 9.0

#: neighbour offsets streamed (the west neighbour A[i][j-1] is the
#: previous iteration's freshly-computed value, carried in a register).
STREAM_OFFSETS = [(-1, -1), (-1, 0), (-1, 1), (0, 0), (0, 1), (1, -1), (1, 0), (1, 1)]


def seidel2d_reference(a):
    a = a.copy()
    n = a.shape[0]
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            a[i, j] = (
                a[i - 1, j - 1] + a[i - 1, j] + a[i - 1, j + 1]
                + a[i, j - 1] + a[i, j] + a[i, j + 1]
                + a[i + 1, j - 1] + a[i + 1, j] + a[i + 1, j + 1]
            ) / 9.0
    return a


class Seidel2dKernel(Kernel):
    name = "seidel-2d"
    letter = "R"
    domain = "stencil"
    n_streams = 9
    max_nesting = 2
    n_kernels = 1
    pattern = "2D"
    sve_vectorized = False

    default_n = 64

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_n, scale, minimum=8)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n)).astype(np.float32)
        wl = Workload(memory=self.fresh_memory(), params={"n": n})
        wl.place("a", a)
        wl.expected["a"] = seidel2d_reference(a.astype(np.float64)).astype(
            np.float32
        )
        return wl

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        n = wl.params["n"]
        ae = wl.addr("a") // 4
        centre = ae + n + 1
        rows = cols = n - 2
        b = ProgramBuilder("seidel2d-uve")
        # u0..u7: neighbour input streams; u8: output stream.
        for idx, (di, dj) in enumerate(STREAM_OFFSETS):
            b.emit(
                uve.SsSta(u(idx), Direction.LOAD, centre + di * n + dj, cols, 1,
                          etype=F32),
                uve.SsApp(u(idx), 0, rows, n, last=True),
            )
        b.emit(
            uve.SsSta(u(8), Direction.STORE, centre, cols, 1, etype=F32),
            uve.SsApp(u(8), 0, rows, n, last=True),
        )
        xrow = x(8)
        b.emit(sc.Li(xrow, wl.addr("a") + 4 * n))  # &A[i][0]
        b.label("row")
        b.emit(sc.Load(f(1), xrow, 0, etype=F32))  # west boundary A[i][0]
        b.label("elem")
        # f(1) carries A[i][j-1] (the value just computed).
        for idx in range(8):
            b.emit(uve.SoScalarRead(f(2 + idx), u(idx), etype=F32))
        b.emit(
            sc.FOp("add", f(1), f(1), f(2)),
            sc.FOp("add", f(1), f(1), f(3)),
            sc.FOp("add", f(1), f(1), f(4)),
            sc.FOp("add", f(1), f(1), f(5)),
            sc.FOp("add", f(1), f(1), f(6)),
            sc.FOp("add", f(1), f(1), f(7)),
            sc.FOp("add", f(1), f(1), f(8)),
            sc.FOp("add", f(1), f(1), f(9)),
            sc.FOp("mul", f(1), f(1), NINTH),
            uve.SoScalarWrite(u(8), f(1), etype=F32),
            uve.SoBranchDim(u(0), 0, "elem", complete=False),
            sc.IntOp("add", xrow, xrow, 4 * n),
            uve.SoBranchEnd(u(0), "row", negate=True),
        )
        b.emit(sc.Halt())
        return b.build()

    def build_vector(self, wl: Workload, isa: str) -> Program:
        raise AssertionError("seidel-2d is not vectorized by the baselines")

    def build_scalar(self, wl: Workload) -> Program:
        n = wl.params["n"]
        b = ProgramBuilder("seidel2d-scalar")
        xc, xi, xj = x(8), x(9), x(10)
        b.emit(sc.Li(xc, wl.addr("a") + 4 * (n + 1)), sc.Li(xi, 0))
        b.label("row")
        b.emit(sc.Li(xj, 0), sc.Move(x(11), xc))
        b.label("elem")
        b.emit(
            sc.Load(f(1), x(11), -4 * n - 4, etype=F32),
            sc.Load(f(2), x(11), -4 * n, etype=F32),
            sc.Load(f(3), x(11), -4 * n + 4, etype=F32),
            sc.Load(f(4), x(11), -4, etype=F32),
            sc.Load(f(5), x(11), 0, etype=F32),
            sc.Load(f(6), x(11), 4, etype=F32),
            sc.Load(f(7), x(11), 4 * n - 4, etype=F32),
            sc.Load(f(8), x(11), 4 * n, etype=F32),
            sc.Load(f(9), x(11), 4 * n + 4, etype=F32),
            sc.FOp("add", f(1), f(1), f(2)),
            sc.FOp("add", f(1), f(1), f(3)),
            sc.FOp("add", f(1), f(1), f(4)),
            sc.FOp("add", f(1), f(1), f(5)),
            sc.FOp("add", f(1), f(1), f(6)),
            sc.FOp("add", f(1), f(1), f(7)),
            sc.FOp("add", f(1), f(1), f(8)),
            sc.FOp("add", f(1), f(1), f(9)),
            sc.FOp("mul", f(1), f(1), NINTH),
            sc.Store(f(1), x(11), 0, etype=F32),
            sc.IntOp("add", x(11), x(11), 4),
            sc.IntOp("add", xj, xj, 1),
            sc.BranchCmp("lt", xj, n - 2, "elem"),
        )
        b.emit(
            sc.IntOp("add", xc, xc, 4 * n),
            sc.IntOp("add", xi, xi, 1),
            sc.BranchCmp("lt", xi, n - 2, "row"),
            sc.Halt(),
        )
        return b.build()
