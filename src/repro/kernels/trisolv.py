"""Benchmark H: trisolv — forward substitution ``L·x = b`` (PolyBench).

Row-oriented formulation: ``x[i] = (b[i] - dot(L[i][:i], x[:i])) /
L[i][i]``.  The UVE build encodes both triangular operands (the L rows
below the diagonal and the growing prefix of x) as single 2-D streams
with *static size modifiers* (the paper's Fig. 3.B4 mechanism): the row
length grows by one per outer iteration.  Re-reading just-solved x
elements exercises the streaming memory model's in-place support
(§III-A3 / §IV-A core-side coherence).
"""
from __future__ import annotations

import numpy as np

from repro.common.types import ElementType
from repro.isa import ProgramBuilder, f, p, u, x
from repro.isa import scalar_ops as sc
from repro.isa import sve_ops as sve
from repro.isa import uve_ops as uve
from repro.isa.program import Program
from repro.kernels.base import Kernel, Workload, scaled
from repro.streams.descriptor import Param, StaticBehavior
from repro.streams.pattern import Direction

F32 = ElementType.F32


class TrisolvKernel(Kernel):
    name = "trisolv"
    letter = "H"
    domain = "algebra"
    n_streams = 2
    max_nesting = 2
    n_kernels = 1
    pattern = "2D+static-modifier"

    default_n = 96

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_n, scale, minimum=8)
        rng = np.random.default_rng(seed)
        l_mat = rng.standard_normal((n, n)).astype(np.float32)
        # Well-conditioned lower-triangular system.
        l_mat = np.tril(l_mat)
        np.fill_diagonal(l_mat, np.abs(np.diagonal(l_mat)) + n)
        bvec = rng.standard_normal(n).astype(np.float32)
        wl = Workload(memory=self.fresh_memory(), params={"n": n})
        wl.place("l", l_mat)
        wl.place("x", bvec.copy())  # x starts as b; solved in place
        expected = np.linalg.solve(
            l_mat.astype(np.float64), bvec.astype(np.float64)
        )
        wl.expected["x"] = expected.astype(np.float32)
        return wl

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        """Row-oriented forward substitution: for each row *i*,
        ``x[i] = (b[i] - dot(L[i][:i], x[:i])) / L[i][i]``.

        Both the L rows and the re-read prefix of x are lower-triangular
        streams with static ADD size modifiers (Fig. 3.B4), keeping
        dimension 0 contiguous.  Reading back just-solved x elements is
        the in-place streaming case of §IV-A (core-side coherence)."""
        n = wl.params["n"]
        le, xe = wl.addr("l") // 4, wl.addr("x") // 4
        b = ProgramBuilder("trisolv-uve")
        # L rows below the diagonal: row i (from 1) holds i elements.
        b.emit(
            uve.SsSta(u(0), Direction.LOAD, le + n, 0, 1, etype=F32),
            uve.SsApp(u(0), 0, n - 1, n),
            uve.SsAppMod(u(0), Param.SIZE, StaticBehavior.ADD, 1, n - 1, last=True),
            # x prefix: row i re-reads x[0..i) (row stride 0).
            uve.SsSta(u(1), Direction.LOAD, xe, 0, 1, etype=F32),
            uve.SsApp(u(1), 0, n - 1, 0),
            uve.SsAppMod(u(1), Param.SIZE, StaticBehavior.ADD, 1, n - 1, last=True),
        )
        xl, xd = x(8), x(9)
        b.emit(
            sc.Li(xl, wl.addr("l")), sc.Li(xd, wl.addr("x")),
            # x[0] = b[0] / L[0][0]
            sc.Load(f(1), xd, 0, etype=F32),
            sc.Load(f(2), xl, 0, etype=F32),
            sc.FOp("div", f(1), f(1), f(2)),
            sc.Store(f(1), xd, 0, etype=F32),
        )
        b.label("row")
        b.emit(
            sc.IntOp("add", xl, xl, 4 * (n + 1)),
            sc.IntOp("add", xd, xd, 4),
            uve.SoDup(u(5), 0.0, etype=F32),
        )
        b.label("chunk")
        b.emit(
            uve.SoMac(u(5), u(0), u(1), etype=F32),
            uve.SoBranchDim(u(0), 0, "chunk", complete=False),
            uve.SoRedScalar("add", f(3), u(5), etype=F32),
            sc.Load(f(1), xd, 0, etype=F32),
            sc.FOp("sub", f(1), f(1), f(3)),
            sc.Load(f(2), xl, 0, etype=F32),
            sc.FOp("div", f(1), f(1), f(2)),
            sc.Store(f(1), xd, 0, etype=F32),
            uve.SoBranchEnd(u(0), "row", negate=True),
            sc.Halt(),
        )
        return b.build()

    def build_vector(self, wl: Workload, isa: str) -> Program:
        if isa == "sve":
            return self._build_sve(wl)
        return self._build_scalar(wl, "trisolv-neon")

    def _build_sve(self, wl: Workload) -> Program:
        """Row-oriented: predicated dot of L[i][:i] with x[:i] per row."""
        n = wl.params["n"]
        b = ProgramBuilder("trisolv-sve")
        xl, xd, xi = x(8), x(9), x(10)
        xrow, xxv, xoff = x(11), x(12), x(13)
        b.emit(
            sc.Li(xl, wl.addr("l")), sc.Li(xd, wl.addr("x")),
            sc.Li(xi, 0), sc.Li(xrow, wl.addr("l")),
            # x[0] = b[0] / L[0][0]
            sc.Load(f(1), xd, 0, etype=F32),
            sc.Load(f(2), xl, 0, etype=F32),
            sc.FOp("div", f(1), f(1), f(2)),
            sc.Store(f(1), xd, 0, etype=F32),
            sc.Li(xi, 1),
        )
        b.label("row")
        b.emit(
            sc.IntOp("add", xrow, xrow, 4 * n),
            sc.IntOp("add", xl, xl, 4 * (n + 1)),
            sc.IntOp("add", xd, xd, 4),
            sve.Dup(u(1), 0.0, etype=F32),
            sc.Li(xxv, wl.addr("x")),
            sc.Li(xoff, 0),
            sve.WhileLt(p(1), xoff, xi, etype=F32),
        )
        b.label("blk")
        b.emit(
            sve.Ld1(u(2), p(1), xrow, index=xoff, etype=F32),
            sve.Ld1(u(3), p(1), xxv, index=xoff, etype=F32),
            sve.Fmla(u(1), p(1), u(2), u(3), etype=F32),
            sve.IncElems(xoff, etype=F32),
            sve.WhileLt(p(1), xoff, xi, etype=F32),
            sve.BranchPred("first", p(1), "blk", etype=F32),
        )
        b.emit(
            sve.Red("add", f(3), p(0), u(1), etype=F32),
            sc.Load(f(1), xd, 0, etype=F32),
            sc.FOp("sub", f(1), f(1), f(3)),
            sc.Load(f(2), xl, 0, etype=F32),
            sc.FOp("div", f(1), f(1), f(2)),
            sc.Store(f(1), xd, 0, etype=F32),
            sc.IntOp("add", xi, xi, 1),
            sc.BranchCmp("lt", xi, n, "row"),
            sc.Halt(),
        )
        return b.build()

    def _build_scalar(self, wl: Workload, name: str) -> Program:
        n = wl.params["n"]
        b = ProgramBuilder(name)
        xl, xd, xj = x(8), x(9), x(10)
        xcol, xxi, xi = x(11), x(12), x(13)
        b.emit(sc.Li(xl, wl.addr("l")), sc.Li(xd, wl.addr("x")), sc.Li(xj, 0))
        b.label("col")
        b.emit(
            sc.Load(f(1), xd, 0, etype=F32),
            sc.Load(f(2), xl, 0, etype=F32),
            sc.FOp("div", f(1), f(1), f(2)),
            sc.Store(f(1), xd, 0, etype=F32),
            sc.IntOp("add", xcol, xl, 4 * n),
            sc.IntOp("add", xxi, xd, 4),
            sc.IntOp("add", xi, xj, 1),
            sc.BranchCmp("ge", xi, n, "next"),
        )
        b.label("row")
        b.emit(
            sc.Load(f(2), xcol, 0, etype=F32),
            sc.Load(f(3), xxi, 0, etype=F32),
            sc.FOp("mul", f(2), f(2), f(1)),
            sc.FOp("sub", f(3), f(3), f(2)),
            sc.Store(f(3), xxi, 0, etype=F32),
            sc.IntOp("add", xcol, xcol, 4 * n),
            sc.IntOp("add", xxi, xxi, 4),
            sc.IntOp("add", xi, xi, 1),
            sc.BranchCmp("lt", xi, n, "row"),
        )
        b.label("next")
        b.emit(
            sc.IntOp("add", xl, xl, 4 * (n + 1)),
            sc.IntOp("add", xd, xd, 4),
            sc.IntOp("add", xj, xj, 1),
            sc.BranchCmp("lt", xj, n, "col"),
            sc.Halt(),
        )
        return b.build()
