"""Benchmark F: mvt — x1 += A·y1 and x2 += Aᵀ·y2 (PolyBench).

The transposed product exercises strided dimension-0 streams (column
scans) in UVE and gather loads in the SVE baseline; the NEON baseline
falls back to scalar code for the transposed half (fixed-width SIMD has
no gathers), as a compiler would.
"""
from __future__ import annotations

import numpy as np

from repro.common.types import ElementType
from repro.isa import ProgramBuilder, f, p, u, x
from repro.isa import neon_ops as neon
from repro.isa import scalar_ops as sc
from repro.isa import sve_ops as sve
from repro.isa import uve_ops as uve
from repro.isa.program import Program
from repro.kernels.base import Kernel, Workload, scaled
from repro.streams.pattern import Direction

F32 = ElementType.F32


def emit_uve_dots(b, tag, mat, vec, acc_io, rows, cols, row_stride, col_stride,
                  alpha=1.0):
    """Emit a UVE loop computing ``acc_io[i] += alpha*dot(row_i(mat), vec)``.

    ``row_stride``/``col_stride`` select row-major (``cols,1``) or
    transposed (``1,cols``) traversal — the UVE loop body is identical,
    only the descriptor differs (the paper's Fig. 2 point).
    """
    b.emit(
        uve.SsSta(u(0), Direction.LOAD, mat // 4, cols, col_stride, etype=F32),
        uve.SsApp(u(0), 0, rows, row_stride, last=True),
        uve.SsSta(u(1), Direction.LOAD, vec // 4, cols, 1, etype=F32),
        uve.SsApp(u(1), 0, rows, 0, last=True),
        uve.SsConfig1D(u(2), Direction.LOAD, acc_io // 4, rows, 1, etype=F32),
        uve.SsConfig1D(u(3), Direction.STORE, acc_io // 4, rows, 1, etype=F32),
    )
    b.label(f"{tag}_row")
    b.emit(uve.SoDup(u(4), 0.0, etype=F32))
    b.label(f"{tag}_chunk")
    b.emit(
        uve.SoMac(u(4), u(0), u(1), etype=F32),
        uve.SoBranchDim(u(0), 0, f"{tag}_chunk", complete=False),
        uve.SoRedScalar("add", f(1), u(4), etype=F32),
    )
    if alpha != 1.0:
        b.emit(sc.FOp("mul", f(1), f(1), alpha))
    b.emit(
        uve.SoScalarRead(f(2), u(2), etype=F32),
        sc.FOp("add", f(1), f(1), f(2)),
        uve.SoScalarWrite(u(3), f(1), etype=F32),
        uve.SoBranchEnd(u(0), f"{tag}_row", negate=True),
    )


def emit_sve_row_dots(b, tag, mat, vec, acc_io, rows, cols, alpha=1.0):
    """SVE row-major dot products: acc_io[i] += alpha*dot(A[i], vec)."""
    xrow, xvec, xio = x(8), x(9), x(10)
    xcols, xi, xn, xoff = x(11), x(12), x(13), x(14)
    b.emit(
        sc.Li(xrow, mat), sc.Li(xvec, vec), sc.Li(xio, acc_io),
        sc.Li(xcols, cols), sc.Li(xn, rows), sc.Li(xi, 0),
    )
    b.label(f"{tag}_i")
    b.emit(
        sc.Li(xoff, 0),
        sve.WhileLt(p(1), xoff, xcols, etype=F32),
        sve.Dup(u(1), 0.0, etype=F32),
    )
    b.label(f"{tag}_col")
    b.emit(
        sve.Ld1(u(2), p(1), xrow, index=xoff, etype=F32),
        sve.Ld1(u(3), p(1), xvec, index=xoff, etype=F32),
        sve.Fmla(u(1), p(1), u(2), u(3), etype=F32),
        sve.IncElems(xoff, etype=F32),
        sve.WhileLt(p(1), xoff, xcols, etype=F32),
        sve.BranchPred("first", p(1), f"{tag}_col", etype=F32),
    )
    b.emit(
        sve.Red("add", f(1), p(0), u(1), etype=F32),
    )
    if alpha != 1.0:
        b.emit(sc.FOp("mul", f(1), f(1), alpha))
    b.emit(
        sc.Load(f(2), xio, 0, etype=F32),
        sc.FOp("add", f(1), f(1), f(2)),
        sc.Store(f(1), xio, 0, etype=F32),
        sc.IntOp("add", xio, xio, 4),
        sc.IntOp("add", xrow, xrow, 4 * cols),
        sc.IntOp("add", xi, xi, 1),
        sc.BranchCmp("lt", xi, xn, f"{tag}_i"),
    )


def emit_sve_col_dots(b, tag, mat, vec, acc_io, rows, cols, alpha=1.0):
    """SVE transposed dots via gathers:
    ``acc_io[j] += alpha*dot(A[:,j], vec)``."""
    xcol, xvec, xio = x(8), x(9), x(10)
    xrows, xj, xm, xoff = x(11), x(12), x(13), x(14)
    b.emit(
        sc.Li(xcol, mat), sc.Li(xvec, vec), sc.Li(xio, acc_io),
        sc.Li(xrows, rows), sc.Li(xm, cols), sc.Li(xj, 0),
        sve.Index(u(5), 0, cols, etype=F32),  # lane i -> i*cols elements
        sve.CntElems(x(16), etype=F32),
        sc.IntOp("mul", x(16), x(16), 4 * cols),  # bytes per gather block
    )
    b.label(f"{tag}_j")
    b.emit(
        sc.Li(xoff, 0),
        sve.WhileLt(p(1), xoff, xrows, etype=F32),
        sve.Dup(u(1), 0.0, etype=F32),
        sc.Move(x(15), xcol),
    )
    b.label(f"{tag}_blk")
    b.emit(
        sve.Ld1Gather(u(2), p(1), x(15), u(5), etype=F32),
        sve.Ld1(u(3), p(1), xvec, index=xoff, etype=F32),
        sve.Fmla(u(1), p(1), u(2), u(3), etype=F32),
        sc.IntOp("add", x(15), x(15), x(16)),
        sve.IncElems(xoff, etype=F32),
        sve.WhileLt(p(1), xoff, xrows, etype=F32),
        sve.BranchPred("first", p(1), f"{tag}_blk", etype=F32),
    )
    b.emit(
        sve.Red("add", f(1), p(0), u(1), etype=F32),
    )
    if alpha != 1.0:
        b.emit(sc.FOp("mul", f(1), f(1), alpha))
    b.emit(
        sc.Load(f(2), xio, 0, etype=F32),
        sc.FOp("add", f(1), f(1), f(2)),
        sc.Store(f(1), xio, 0, etype=F32),
        sc.IntOp("add", xio, xio, 4),
        sc.IntOp("add", xcol, xcol, 4),
        sc.IntOp("add", xj, xj, 1),
        sc.BranchCmp("lt", xj, xm, f"{tag}_j"),
    )


def emit_scalar_col_dots(b, tag, mat, vec, acc_io, rows, cols, alpha=1.0):
    """Scalar transposed dots (NEON fallback)."""
    xcol, xvec, xio = x(8), x(9), x(10)
    xj, xi, xa = x(12), x(13), x(15)
    b.emit(sc.Li(xcol, mat), sc.Li(xio, acc_io), sc.Li(xj, 0))
    b.label(f"{tag}_j")
    b.emit(
        sc.Li(xi, 0), sc.FLi(f(1), 0.0),
        sc.Move(xa, xcol), sc.Li(xvec, vec),
    )
    b.label(f"{tag}_i")
    b.emit(
        sc.Load(f(2), xa, 0, etype=F32),
        sc.Load(f(3), xvec, 0, etype=F32),
        sc.FMac(f(1), f(2), f(3)),
        sc.IntOp("add", xa, xa, 4 * cols),
        sc.IntOp("add", xvec, xvec, 4),
        sc.IntOp("add", xi, xi, 1),
        sc.BranchCmp("lt", xi, rows, f"{tag}_i"),
    )
    if alpha != 1.0:
        b.emit(sc.FOp("mul", f(1), f(1), alpha))
    b.emit(
        sc.Load(f(2), xio, 0, etype=F32),
        sc.FOp("add", f(1), f(1), f(2)),
        sc.Store(f(1), xio, 0, etype=F32),
        sc.IntOp("add", xio, xio, 4),
        sc.IntOp("add", xcol, xcol, 4),
        sc.IntOp("add", xj, xj, 1),
        sc.BranchCmp("lt", xj, cols, f"{tag}_j"),
    )


def emit_neon_row_dots(b, tag, mat, vec, acc_io, rows, cols, alpha=1.0):
    """NEON row-major dot products (cols must be a multiple of 4)."""
    xrow, xvec, xio = x(8), x(9), x(10)
    xi, xoff = x(12), x(14)
    b.emit(sc.Li(xrow, mat), sc.Li(xio, acc_io), sc.Li(xi, 0))
    b.label(f"{tag}_i")
    b.emit(
        sc.Li(xoff, 0), sc.Li(xvec, vec),
        neon.NVDup(u(1), 0.0, etype=F32),
        sc.Move(x(15), xrow),
    )
    b.label(f"{tag}_col")
    b.emit(
        neon.NVLoad(u(2), x(15), etype=F32, post_inc=True),
        neon.NVLoad(u(3), xvec, etype=F32, post_inc=True),
        neon.NVFma(u(1), u(2), u(3), etype=F32),
        sc.IntOp("add", xoff, xoff, 4),
        sc.BranchCmp("lt", xoff, cols, f"{tag}_col"),
    )
    b.emit(
        neon.NVRed("add", f(1), u(1), etype=F32),
    )
    if alpha != 1.0:
        b.emit(sc.FOp("mul", f(1), f(1), alpha))
    b.emit(
        sc.Load(f(2), xio, 0, etype=F32),
        sc.FOp("add", f(1), f(1), f(2)),
        sc.Store(f(1), xio, 0, etype=F32),
        sc.IntOp("add", xio, xio, 4),
        sc.IntOp("add", xrow, xrow, 4 * cols),
        sc.IntOp("add", xi, xi, 1),
        sc.BranchCmp("lt", xi, rows, f"{tag}_i"),
    )


class MvtKernel(Kernel):
    name = "mvt"
    letter = "F"
    domain = "algebra"
    n_streams = 8
    max_nesting = 2
    n_kernels = 2
    pattern = "2D"

    default_n = 64

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_n, scale, minimum=16, multiple=16)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n)).astype(np.float32)
        x1 = rng.standard_normal(n).astype(np.float32)
        x2 = rng.standard_normal(n).astype(np.float32)
        y1 = rng.standard_normal(n).astype(np.float32)
        y2 = rng.standard_normal(n).astype(np.float32)
        wl = Workload(memory=self.fresh_memory(), params={"n": n})
        for name, arr in (("a", a), ("x1", x1), ("x2", x2), ("y1", y1), ("y2", y2)):
            wl.place(name, arr)
        a64 = a.astype(np.float64)
        wl.expected["x1"] = (x1 + a64 @ y1.astype(np.float64)).astype(np.float32)
        wl.expected["x2"] = (x2 + a64.T @ y2.astype(np.float64)).astype(np.float32)
        return wl

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        n = wl.params["n"]
        b = ProgramBuilder("mvt-uve")
        emit_uve_dots(b, "p1", wl.addr("a"), wl.addr("y1"), wl.addr("x1"),
                      rows=n, cols=n, row_stride=n, col_stride=1)
        emit_uve_col_accum(b, "p2", wl.addr("a"), wl.addr("y2"),
                           wl.addr("x2"), rows=n, cols=n, lanes=lanes)
        b.emit(sc.Halt())
        return b.build()

    def build_vector(self, wl: Workload, isa: str) -> Program:
        n = wl.params["n"]
        b = ProgramBuilder(f"mvt-{isa}")
        if isa == "sve":
            emit_sve_row_dots(b, "p1", wl.addr("a"), wl.addr("y1"), wl.addr("x1"), n, n)
            emit_sve_col_accum(b, "p2", wl.addr("a"), wl.addr("y2"), wl.addr("x2"), n, n)
        else:
            emit_neon_row_dots(b, "p1", wl.addr("a"), wl.addr("y1"), wl.addr("x1"), n, n)
            emit_neon_col_accum(b, "p2", wl.addr("a"), wl.addr("y2"), wl.addr("x2"), n, n)
        b.emit(sc.Halt())
        return b.build()


def emit_uve_col_accum(b, tag, mat, vec, acc_io, rows, cols, lanes, alpha=1.0):
    """``acc_io[tile] += alpha * sum_j mat[j][tile] * vec[j]`` — the
    outer-vectorized (column-accumulate) form of a transposed product:
    A stays row-major (contiguous dimension-0 streams), the transposed
    operand is consumed through the scalar-stream interface.  ``cols``
    must be a multiple of ``lanes``."""
    tiles = cols // lanes
    b.emit(
        # A tiles, swept j-fast then per tile.
        uve.SsSta(u(0), Direction.LOAD, mat // 4, lanes, 1, etype=F32),
        uve.SsApp(u(0), 0, rows, cols),
        uve.SsApp(u(0), 0, tiles, lanes, last=True),
        # vec, one element per j, re-read for every tile.
        uve.SsSta(u(1), Direction.LOAD, vec // 4, rows, 1, etype=F32),
        uve.SsApp(u(1), 0, tiles, 0, last=True),
        # acc_io in tile-sized chunks.
        uve.SsConfig1D(u(2), Direction.LOAD, acc_io // 4, cols, 1, etype=F32),
        uve.SsConfig1D(u(3), Direction.STORE, acc_io // 4, cols, 1, etype=F32),
    )
    b.label(f"{tag}_tile")
    b.emit(uve.SoDup(u(5), 0.0, etype=F32))
    b.label(f"{tag}_j")
    b.emit(
        uve.SoScalarRead(f(1), u(1), etype=F32),
        uve.SoMacScalar(u(5), u(0), f(1), etype=F32),
        uve.SoBranchDim(u(0), 1, f"{tag}_j", complete=False),
    )
    if alpha != 1.0:
        b.emit(uve.SoOpScalar("mul", u(5), u(5), alpha, etype=F32))
    b.emit(
        uve.SoOp("add", u(3), u(5), u(2), etype=F32),
        uve.SoBranchEnd(u(0), f"{tag}_tile", negate=True),
    )


def emit_sve_col_accum(b, tag, mat, vec, acc_io, rows, cols, alpha=1.0):
    """SVE outer-vectorized transposed product (contiguous loads)."""
    xmat, xvec, xio = x(8), x(9), x(10)
    xrows, xj, xm, xi0, xrowp = x(11), x(12), x(13), x(14), x(15)
    b.emit(
        sc.Li(xm, cols), sc.Li(xrows, rows),
        sc.Li(xio, acc_io), sc.Li(xi0, 0),
        sve.WhileLt(p(1), xi0, xm, etype=F32),
        sc.FLi(f(2), alpha), sve.Dup(u(6), f(2), etype=F32),
    )
    b.label(f"{tag}_tile")
    b.emit(
        sve.Dup(u(1), 0.0, etype=F32),
        sc.Li(xmat, mat), sc.Li(xvec, vec), sc.Li(xj, 0),
    )
    b.label(f"{tag}_j")
    b.emit(
        sve.Ld1R(u(2), p(1), xvec, etype=F32),
        sc.IntOp("add", xvec, xvec, 4),
        sve.Ld1(u(3), p(1), xmat, index=xi0, etype=F32),
        sc.IntOp("add", xmat, xmat, 4 * cols),
        sve.Fmla(u(1), p(1), u(2), u(3), etype=F32),
        sc.IntOp("add", xj, xj, 1),
        sc.BranchCmp("lt", xj, xrows, f"{tag}_j"),
    )
    b.emit(
        sve.Ld1(u(4), p(1), xio, index=xi0, etype=F32),
        sve.Fmla(u(4), p(1), u(1), u(6), etype=F32),
        sve.St1(u(4), p(1), xio, index=xi0, etype=F32),
        sve.IncElems(xi0, etype=F32),
        sve.WhileLt(p(1), xi0, xm, etype=F32),
        sve.BranchPred("first", p(1), f"{tag}_tile", etype=F32),
    )


def emit_neon_col_accum(b, tag, mat, vec, acc_io, rows, cols, alpha=1.0):
    """NEON outer-vectorized transposed product (cols % 4 == 0)."""
    xmat, xvec, xio = x(8), x(9), x(10)
    xj, xi0, xaddr = x(12), x(14), x(16)
    b.emit(
        sc.Li(xio, acc_io), sc.Li(xi0, 0),
        sc.FLi(f(2), alpha), neon.NVDup(u(6), f(2), etype=F32),
    )
    b.label(f"{tag}_tile")
    b.emit(
        neon.NVDup(u(1), 0.0, etype=F32),
        sc.IntOp("sll", xaddr, xi0, 2),
        sc.IntOp("add", xmat, xaddr, mat),
        sc.Li(xvec, vec), sc.Li(xj, 0),
    )
    b.label(f"{tag}_j")
    b.emit(
        sc.Load(f(1), xvec, 0, etype=F32),
        neon.NVDup(u(2), f(1), etype=F32),
        sc.IntOp("add", xvec, xvec, 4),
        neon.NVLoad(u(3), xmat, etype=F32),
        sc.IntOp("add", xmat, xmat, 4 * cols),
        neon.NVFma(u(1), u(2), u(3), etype=F32),
        sc.IntOp("add", xj, xj, 1),
        sc.BranchCmp("lt", xj, rows, f"{tag}_j"),
    )
    b.emit(
        sc.IntOp("sll", xaddr, xi0, 2),
        sc.IntOp("add", xaddr, xaddr, acc_io),
        neon.NVLoad(u(4), xaddr, etype=F32),
        neon.NVOp("mul", u(1), u(1), u(6), etype=F32),
        neon.NVOp("add", u(4), u(4), u(1), etype=F32),
        neon.NVStore(u(4), xaddr, etype=F32),
        sc.IntOp("add", xi0, xi0, 4),
        sc.BranchCmp("lt", xi0, cols, f"{tag}_tile"),
    )
