"""Generic builders for 1-D element-wise loops (memcpy/STREAM/saxpy).

These produce the paper's canonical code shapes: UVE configures one
stream per array and runs a branch-terminated loop with no loads, stores,
or index arithmetic (Fig. 1.D); the SVE-like baseline runs the
``whilelt``-predicated loop of Fig. 1.B; the NEON-like baseline runs a
fixed-width loop plus a scalar tail.

The 1-D kernels now lower through the shared loop-nest IR
(``repro.ir`` -> ``repro.lower``) by default; these builders are kept
as the *legacy* path and serve as the reference programs for the
IR-vs-legacy equivalence gate (``repro.kernels.equivalence`` and
``tests/kernels/test_ir_equivalence.py``).
"""
from __future__ import annotations

from typing import Callable, List, Optional

from repro.common.types import ElementType
from repro.isa import ProgramBuilder, f, p, u, x
from repro.isa import neon_ops as neon
from repro.isa import rvv_ops as rvv
from repro.isa import scalar_ops as sc
from repro.isa import sve_ops as sve
from repro.isa import uve_ops as uve
from repro.isa.program import Program
from repro.streams.pattern import Direction, MemLevel

F32 = ElementType.F32

#: body(builder, in_regs, out_reg): emit vector ops computing the result;
#: may return a different register to be stored (e.g. accumulating in
#: place into an input register, as the paper's SVE saxpy does).
VectorBody = Callable[[ProgramBuilder, List, object], Optional[object]]


def build_uve(
    name: str,
    ins: List[int],
    out: int,
    n: int,
    body: VectorBody,
    *,
    setup: Optional[Callable[[ProgramBuilder], None]] = None,
    mem_level: MemLevel = MemLevel.L2,
) -> Program:
    """UVE: one input stream per source array, one output stream."""
    b = ProgramBuilder(name)
    in_regs = [u(i) for i in range(len(ins))]
    out_reg = u(len(ins))
    for reg, addr in zip(in_regs, ins):
        b.emit(
            uve.SsConfig1D(
                reg, Direction.LOAD, addr // 4, n, 1, etype=F32,
                mem_level=mem_level,
            )
        )
    b.emit(
        uve.SsConfig1D(
            out_reg, Direction.STORE, out // 4, n, 1, etype=F32,
            mem_level=mem_level,
        )
    )
    if setup is not None:
        setup(b)
    b.label("loop")
    body(b, in_regs, out_reg)
    b.emit(uve.SoBranchEnd(in_regs[0], "loop", negate=True))
    b.emit(sc.Halt())
    return b.build()


def build_sve(
    name: str,
    ins: List[int],
    out: int,
    n: int,
    body: VectorBody,
    *,
    setup: Optional[Callable[[ProgramBuilder], None]] = None,
) -> Program:
    """SVE-like predicated loop (Fig. 1.B shape)."""
    b = ProgramBuilder(name)
    bound, idx = x(3), x(4)
    bases = [x(8 + i) for i in range(len(ins))]
    out_base = x(8 + len(ins))
    b.emit(sc.Li(bound, n))
    for base, addr in zip(bases, ins):
        b.emit(sc.Li(base, addr))
    b.emit(sc.Li(out_base, out))
    b.emit(sc.Li(idx, 0))
    b.emit(sve.WhileLt(p(1), idx, bound, etype=F32))
    if setup is not None:
        setup(b)
    in_regs = [u(1 + i) for i in range(len(ins))]
    out_reg = u(1 + len(ins))
    b.label("loop")
    for reg, base in zip(in_regs, bases):
        b.emit(sve.Ld1(reg, p(1), base, index=idx, etype=F32))
    store_reg = body(b, in_regs, out_reg) or out_reg
    b.emit(
        sve.St1(store_reg, p(1), out_base, index=idx, etype=F32),
        sve.IncElems(idx, etype=F32),
        sve.WhileLt(p(1), idx, bound, etype=F32),
        sve.BranchPred("first", p(1), "loop", etype=F32),
    )
    b.emit(sc.Halt())
    return b.build()


def build_neon(
    name: str,
    ins: List[int],
    out: int,
    n: int,
    body: VectorBody,
    scalar_body: Callable[[ProgramBuilder, List, object], None],
    *,
    setup: Optional[Callable[[ProgramBuilder], None]] = None,
) -> Program:
    """NEON-like fixed 128-bit loop with post-increment plus scalar tail.

    ``scalar_body(builder, in_fregs, out_freg)`` emits the scalar tail
    computation on f-registers.
    """
    lanes = 4
    b = ProgramBuilder(name)
    main, idx = x(3), x(4)
    bases = [x(8 + i) for i in range(len(ins))]
    out_base = x(8 + len(ins))
    b.emit(sc.Li(main, n - n % lanes))
    for base, addr in zip(bases, ins):
        b.emit(sc.Li(base, addr))
    b.emit(sc.Li(out_base, out))
    b.emit(sc.Li(idx, 0))
    if setup is not None:
        setup(b)
    in_regs = [u(1 + i) for i in range(len(ins))]
    out_reg = u(1 + len(ins))
    b.emit(sc.BranchCmp("ge", idx, main, "tail"))
    b.label("loop")
    for reg, base in zip(in_regs, bases):
        b.emit(neon.NVLoad(reg, base, etype=F32, post_inc=True))
    store_reg = body(b, in_regs, out_reg) or out_reg
    b.emit(
        neon.NVStore(store_reg, out_base, etype=F32, post_inc=True),
        sc.IntOp("add", idx, idx, lanes),
        sc.BranchCmp("lt", idx, main, "loop"),
    )
    b.label("tail")
    b.emit(sc.Li(x(5), n), sc.BranchCmp("ge", idx, x(5), "done"))
    in_fregs = [f(1 + i) for i in range(len(ins))]
    out_freg = f(1 + len(ins))
    b.label("tail_loop")
    for freg, base in zip(in_fregs, bases):
        b.emit(sc.Load(freg, base, 0, etype=F32))
    store_freg = scalar_body(b, in_fregs, out_freg) or out_freg
    b.emit(sc.Store(store_freg, out_base, 0, etype=F32))
    for base in bases + [out_base]:
        b.emit(sc.IntOp("add", base, base, 4))
    b.emit(
        sc.IntOp("add", idx, idx, 1),
        sc.BranchCmp("lt", idx, x(5), "tail_loop"),
    )
    b.label("done")
    b.emit(sc.Halt())
    return b.build()


def build_rvv(
    name: str,
    ins: List[int],
    out: int,
    n: int,
    body: VectorBody,
    *,
    setup: Optional[Callable[[ProgramBuilder], None]] = None,
) -> Program:
    """RVV-like strip-mined loop (Fig. 1.C shape): ``vsetvli`` grants the
    iteration's vector length, loads/stores are unit-stride, and the
    scalar unit bumps every base pointer explicitly."""
    b = ProgramBuilder(name)
    remaining, vl, step = x(3), x(4), x(5)
    bases = [x(8 + i) for i in range(len(ins))]
    out_base = x(8 + len(ins))
    b.emit(sc.Li(remaining, n))
    for base, addr in zip(bases, ins):
        b.emit(sc.Li(base, addr))
    b.emit(sc.Li(out_base, out))
    if setup is not None:
        setup(b)
    in_regs = [u(1 + i) for i in range(len(ins))]
    out_reg = u(1 + len(ins))
    b.label("loop")
    b.emit(rvv.VSetVli(vl, remaining, etype=F32))
    for reg, base in zip(in_regs, bases):
        b.emit(rvv.VlLoad(reg, base, etype=F32))
    store_reg = body(b, in_regs, out_reg) or out_reg
    b.emit(
        rvv.VlStore(store_reg, out_base, etype=F32),
        sc.IntOp("sub", remaining, remaining, vl),
        sc.IntOp("sll", step, vl, 2),
    )
    for base in bases + [out_base]:
        b.emit(sc.IntOp("add", base, base, step))
    b.emit(
        sc.BranchCmp("ne", remaining, 0, "loop"),
        sc.Halt(),
    )
    return b.build()
