"""Benchmark I: jacobi-1d — two 3-point stencil sweeps (PolyBench):
``B[i] = (A[i-1]+A[i]+A[i+1])/3`` then the same from B back into A.

UVE needs no predication or tail handling: three shifted input streams
and one interior output stream per sweep.
"""
from __future__ import annotations

import numpy as np

from repro.common.types import ElementType
from repro.isa import ProgramBuilder, f, p, u, x
from repro.isa import neon_ops as neon
from repro.isa import scalar_ops as sc
from repro.isa import sve_ops as sve
from repro.isa import uve_ops as uve
from repro.isa.program import Program
from repro.kernels.base import Kernel, Workload, scaled
from repro.streams.pattern import Direction

F32 = ElementType.F32
THIRD = 1.0 / 3.0


def jacobi1d_reference(a):
    b = a.copy()
    b[1:-1] = (a[:-2] + a[1:-1] + a[2:]) / np.float32(3.0)
    a2 = b.copy()
    a2[1:-1] = (b[:-2] + b[1:-1] + b[2:]) / np.float32(3.0)
    return a2, b


class Jacobi1dKernel(Kernel):
    name = "jacobi-1d"
    letter = "I"
    domain = "stencil"
    n_streams = 8
    max_nesting = 1
    n_kernels = 2
    pattern = "1D"

    default_n = 16384

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_n, scale, minimum=64, multiple=16)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(n).astype(np.float32)
        wl = Workload(memory=self.fresh_memory(), params={"n": n})
        wl.place("a", a)
        wl.place("b", a.copy())
        ea, eb = jacobi1d_reference(a.astype(np.float64))
        wl.expected["a"] = ea.astype(np.float32)
        wl.expected["b"] = eb.astype(np.float32)
        return wl

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        n = wl.params["n"]
        b = ProgramBuilder("jacobi1d-uve")
        b.emit(sc.FLi(f(0), THIRD), uve.SoDup(u(6), f(0), etype=F32))

        def sweep(tag, src, dst):
            se, de = src // 4, dst // 4
            interior = n - 2
            b.emit(
                uve.SsConfig1D(u(0), Direction.LOAD, se, interior, 1, etype=F32),
                uve.SsConfig1D(u(1), Direction.LOAD, se + 1, interior, 1, etype=F32),
                uve.SsConfig1D(u(2), Direction.LOAD, se + 2, interior, 1, etype=F32),
                uve.SsConfig1D(u(3), Direction.STORE, de + 1, interior, 1, etype=F32),
            )
            b.label(tag)
            b.emit(
                uve.SoOp("add", u(4), u(0), u(1), etype=F32),
                uve.SoOp("add", u(4), u(4), u(2), etype=F32),
                uve.SoOp("mul", u(3), u(4), u(6), etype=F32),
                uve.SoBranchEnd(u(0), tag, negate=True),
            )

        sweep("s1", wl.addr("a"), wl.addr("b"))
        sweep("s2", wl.addr("b"), wl.addr("a"))
        b.emit(sc.Halt())
        return b.build()

    def build_rvv(self, wl: Workload) -> Program:
        from repro.isa import rvv_ops as rvv
        from repro.kernels import elementwise as ew
        n = wl.params["n"]
        b = ProgramBuilder("jacobi1d-rvv")
        b.emit(sc.FLi(f(0), THIRD))

        def sweep(tag, src, dst):
            remaining, vl, step = x(3), x(4), x(5)
            xs0, xs1, xs2, xd = x(8), x(9), x(10), x(11)
            b.emit(
                sc.Li(remaining, n - 2),
                sc.Li(xs0, src), sc.Li(xs1, src + 4), sc.Li(xs2, src + 8),
                sc.Li(xd, dst + 4),
            )
            b.label(tag)
            b.emit(
                rvv.VSetVli(vl, remaining, etype=F32),
                rvv.VlLoad(u(1), xs0, etype=F32),
                rvv.VlLoad(u(2), xs1, etype=F32),
                rvv.VlLoad(u(3), xs2, etype=F32),
                rvv.VOpVV("add", u(1), u(1), u(2), etype=F32),
                rvv.VOpVV("add", u(1), u(1), u(3), etype=F32),
                rvv.VOpVF("mul", u(1), u(1), f(0), etype=F32),
                rvv.VlStore(u(1), xd, etype=F32),
                sc.IntOp("sub", remaining, remaining, vl),
                sc.IntOp("sll", step, vl, 2),
                sc.IntOp("add", xs0, xs0, step),
                sc.IntOp("add", xs1, xs1, step),
                sc.IntOp("add", xs2, xs2, step),
                sc.IntOp("add", xd, xd, step),
                sc.BranchCmp("ne", remaining, 0, tag),
            )

        sweep("r1", wl.addr("a"), wl.addr("b"))
        sweep("r2", wl.addr("b"), wl.addr("a"))
        b.emit(sc.Halt())
        return b.build()

    def build_vector(self, wl: Workload, isa: str) -> Program:
        n = wl.params["n"]
        b = ProgramBuilder(f"jacobi1d-{isa}")
        if isa == "sve":
            b.emit(sc.FLi(f(0), THIRD), sve.Dup(u(0), f(0), etype=F32))

            def sweep(tag, src, dst):
                xsrc, xdst, xn, xoff = x(8), x(9), x(10), x(11)
                b.emit(
                    sc.Li(xsrc, src), sc.Li(xdst, dst + 4),
                    sc.Li(xn, n - 2), sc.Li(xoff, 0),
                    sve.WhileLt(p(1), xoff, xn, etype=F32),
                )
                b.label(tag)
                b.emit(
                    sve.Ld1(u(1), p(1), xsrc, index=xoff, etype=F32),
                    sc.IntOp("add", x(12), xsrc, 4),
                    sve.Ld1(u(2), p(1), x(12), index=xoff, etype=F32),
                    sc.IntOp("add", x(12), xsrc, 8),
                    sve.Ld1(u(3), p(1), x(12), index=xoff, etype=F32),
                    sve.VOp("add", u(1), p(1), u(1), u(2), etype=F32),
                    sve.VOp("add", u(1), p(1), u(1), u(3), etype=F32),
                    sve.VOp("mul", u(1), p(1), u(1), u(0), etype=F32),
                    sve.St1(u(1), p(1), xdst, index=xoff, etype=F32),
                    sve.IncElems(xoff, etype=F32),
                    sve.WhileLt(p(1), xoff, xn, etype=F32),
                    sve.BranchPred("first", p(1), tag, etype=F32),
                )

            sweep("s1", wl.addr("a"), wl.addr("b"))
            sweep("s2", wl.addr("b"), wl.addr("a"))
            b.emit(sc.Halt())
            return b.build()

        # NEON: 128-bit main loop + scalar tail per sweep.
        b.emit(sc.FLi(f(0), THIRD), neon.NVDup(u(0), f(0), etype=F32))

        def sweep(tag, src, dst):
            interior = n - 2
            main = interior - interior % 4
            xsrc, xdst, xoff = x(8), x(9), x(11)
            b.emit(sc.Li(xsrc, src), sc.Li(xdst, dst + 4), sc.Li(xoff, 0))
            b.emit(sc.BranchCmp("ge", xoff, main, f"{tag}_tail"))
            b.label(tag)
            b.emit(
                neon.NVLoad(u(1), xsrc, 0, etype=F32),
                neon.NVLoad(u(2), xsrc, 4, etype=F32),
                neon.NVLoad(u(3), xsrc, 8, etype=F32),
                neon.NVOp("add", u(1), u(1), u(2), etype=F32),
                neon.NVOp("add", u(1), u(1), u(3), etype=F32),
                neon.NVOp("mul", u(1), u(1), u(0), etype=F32),
                neon.NVStore(u(1), xdst, etype=F32, post_inc=True),
                sc.IntOp("add", xsrc, xsrc, 16),
                sc.IntOp("add", xoff, xoff, 4),
                sc.BranchCmp("lt", xoff, main, tag),
            )
            b.label(f"{tag}_tail")
            b.emit(sc.BranchCmp("ge", xoff, interior, f"{tag}_done"))
            b.label(f"{tag}_tail_loop")
            b.emit(
                sc.Load(f(1), xsrc, 0, etype=F32),
                sc.Load(f(2), xsrc, 4, etype=F32),
                sc.Load(f(3), xsrc, 8, etype=F32),
                sc.FOp("add", f(1), f(1), f(2)),
                sc.FOp("add", f(1), f(1), f(3)),
                sc.FOp("mul", f(1), f(1), f(0)),
                sc.Store(f(1), xdst, 0, etype=F32),
                sc.IntOp("add", xsrc, xsrc, 4),
                sc.IntOp("add", xdst, xdst, 4),
                sc.IntOp("add", xoff, xoff, 1),
                sc.BranchCmp("lt", xoff, interior, f"{tag}_tail_loop"),
            )
            b.label(f"{tag}_done")

        sweep("s1", wl.addr("a"), wl.addr("b"))
        sweep("s2", wl.addr("b"), wl.addr("a"))
        b.emit(sc.Halt())
        return b.build()
