"""CLI: run one benchmark kernel on one ISA through the full simulator.

Usage::

    python -m repro.kernels --list
    python -m repro.kernels saxpy --isa uve
    python -m repro.kernels gemm --isa sve --scale 0.5 --listing
    python -m repro.kernels stream --isa neon --lowering legacy
"""
from __future__ import annotations

import argparse
import sys
import time

from repro.cpu.config import baseline_machine, uve_machine
from repro.errors import ConfigError
from repro.kernels import all_kernels, get_kernel, kernel_names
from repro.sim.simulator import Simulator


def list_kernels() -> str:
    """The kernel table, with each kernel's lowering source (the shared
    loop-nest IR vs. hand-written builders) and supported ISAs."""
    rows = [("letter", "name", "domain", "pattern", "lowering", "isas")]
    for kernel in all_kernels(include_extensions=True):
        info = kernel.describe()
        name = info["name"] + ("" if kernel.paper else " (ext)")
        rows.append(
            (
                str(info["letter"]),
                name,
                str(info["domain"]),
                str(info["pattern"]),
                str(info["lowering"]),
                ",".join(info["isas"]),
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    return "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        for row in rows
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.kernels")
    parser.add_argument("kernel", nargs="?",
                        choices=kernel_names(include_extensions=True))
    parser.add_argument("--isa", default="uve",
                        choices=("uve", "sve", "neon", "rvv"))
    parser.add_argument("--lowering", default="ir", choices=("ir", "legacy"),
                        help="program generation path: shared loop-nest IR "
                             "(default) or legacy hand-written builders")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--vector-bits", type=int, default=512)
    parser.add_argument("--listing", action="store_true",
                        help="print the assembled program")
    parser.add_argument("--list", action="store_true",
                        help="list all kernels (with lowering source) "
                             "and exit")
    args = parser.parse_args(argv)

    if args.list:
        print(list_kernels())
        return 0
    if args.kernel is None:
        parser.error("a kernel name is required (or use --list)")

    kernel = get_kernel(args.kernel)
    config = (uve_machine() if args.isa == "uve" else baseline_machine())
    config = config.with_(vector_bits=args.vector_bits)
    wl = kernel.workload(seed=args.seed, scale=args.scale)
    try:
        program = kernel.build(
            args.isa, wl, args.vector_bits, lowering=args.lowering
        )
    except (ConfigError, NotImplementedError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.listing:
        print(program.listing())
        print()

    start = time.time()
    result = Simulator(program, wl.memory, config).run()
    wl.verify()
    wall = time.time() - start

    print(f"benchmark {kernel.letter}: {kernel.name} [{args.isa}] "
          f"(params {wl.params}, lowering {args.lowering})")
    print(f"  verified against NumPy reference")
    print(f"  committed instructions : {result.committed}")
    print(f"  cycles                 : {result.cycles:.0f}")
    print(f"  IPC                    : {result.ipc:.2f}")
    print(f"  rename blocked         : {result.rename_blocks_per_cycle:.1%} "
          f"({result.timing.rename_block_causes})")
    print(f"  DRAM bus utilization   : {result.bus_utilization:.1%}")
    print(f"  branch mispredict rate : {result.timing.mispredict_rate:.2%}")
    engine = result.pipeline.engine
    if engine is not None:
        print(f"  engine line requests   : {engine.stats.line_requests}")
        print(f"  mean FIFO occupancy    : "
              f"{engine.stats.mean_fifo_occupancy:.1f}")
    print(f"  [simulated in {wall:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
