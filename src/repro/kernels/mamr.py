"""Benchmarks O/P/Q: MAMR — maximum across matrix rows (paper Fig. 2).

Three access-pattern variants share *exactly the same* UVE compute code
(the figure's central point):

* **O (mamr)** — full matrix, rectangular 2-D stream;
* **P (mamr-diag)** — lower-triangular matrix, static size modifier;
* **Q (mamr-ind)** — rows selected through a pointer array (indirect
  modifier, "full matrix with pointers to an array").

None of these were vectorized by the ARM SVE compiler (starred in
Fig. 8), so both baselines run scalar code.
"""
from __future__ import annotations

import numpy as np

from repro.common.types import ElementType
from repro.isa import ProgramBuilder, f, u, x
from repro.isa import scalar_ops as sc
from repro.isa import uve_ops as uve
from repro.isa.program import Program
from repro.kernels.base import Kernel, Workload, scaled
from repro.streams.descriptor import IndirectBehavior, Param, StaticBehavior
from repro.streams.pattern import Direction

F32 = ElementType.F32
I32 = ElementType.I32


def emit_uve_mamr_body(b):
    """The Fig. 2.D loop: identical for every pattern variant.

    Expects u0 = input stream (matrix rows), u1 = output stream (one
    element per row)."""
    b.label("next_line")
    b.emit(
        uve.SoMove(u(5), u(0), etype=F32),
        uve.SoBranchDim(u(0), 0, "hmax", complete=True),
    )
    b.label("loop")
    b.emit(
        uve.SoOp("max", u(5), u(5), u(0), etype=F32),
        uve.SoBranchDim(u(0), 0, "loop", complete=False),
    )
    b.label("hmax")
    b.emit(
        uve.SoRed("max", u(1), u(5), etype=F32),
        uve.SoBranchEnd(u(0), "next_line", negate=True),
        sc.Halt(),
    )


class _MamrBase(Kernel):
    domain = "data mining"
    sve_vectorized = False
    max_nesting = 2
    n_kernels = 1

    default_rows = 96

    def _uve_program(self, name, config_emitter) -> Program:
        b = ProgramBuilder(name)
        config_emitter(b)
        emit_uve_mamr_body(b)
        return b.build()


class MamrKernel(_MamrBase):
    name = "mamr"
    letter = "O"
    n_streams = 2
    pattern = "2D"

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_rows, scale, minimum=4)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n)).astype(np.float32)
        wl = Workload(memory=self.fresh_memory(), params={"n": n})
        wl.place("a", a)
        wl.place("c", np.zeros(n, dtype=np.float32))
        wl.expected["c"] = a.max(axis=1)
        return wl

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        n = wl.params["n"]

        def config(b):
            b.emit(
                uve.SsSta(u(0), Direction.LOAD, wl.addr("a") // 4, n, 1, etype=F32),
                uve.SsApp(u(0), 0, n, n, last=True),
                uve.SsConfig1D(u(1), Direction.STORE, wl.addr("c") // 4, n, 1, etype=F32),
            )

        return self._uve_program("mamr-uve", config)

    def build_vector(self, wl: Workload, isa: str) -> Program:
        raise AssertionError("mamr is not vectorized by the baselines")

    def build_scalar(self, wl: Workload) -> Program:
        n = wl.params["n"]
        b = ProgramBuilder("mamr-scalar")
        xa, xc, xi, xj = x(8), x(9), x(10), x(11)
        b.emit(sc.Li(xa, wl.addr("a")), sc.Li(xc, wl.addr("c")), sc.Li(xi, 0))
        b.label("row")
        b.emit(
            sc.Load(f(1), xa, 0, etype=F32),
            sc.IntOp("add", xa, xa, 4),
            sc.Li(xj, 1),
        )
        b.label("elem")
        b.emit(
            sc.Load(f(2), xa, 0, etype=F32),
            sc.FOp("max", f(1), f(1), f(2)),
            sc.IntOp("add", xa, xa, 4),
            sc.IntOp("add", xj, xj, 1),
            sc.BranchCmp("lt", xj, n, "elem"),
        )
        b.emit(
            sc.Store(f(1), xc, 0, etype=F32),
            sc.IntOp("add", xc, xc, 4),
            sc.IntOp("add", xi, xi, 1),
            sc.BranchCmp("lt", xi, n, "row"),
            sc.Halt(),
        )
        return b.build()


class MamrDiagKernel(_MamrBase):
    name = "mamr-diag"
    letter = "P"
    n_streams = 2
    pattern = "2D+static-modifier"

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_rows, scale, minimum=4)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n)).astype(np.float32)
        wl = Workload(memory=self.fresh_memory(), params={"n": n})
        wl.place("a", a)
        wl.place("c", np.zeros(n, dtype=np.float32))
        wl.expected["c"] = np.array(
            [a[i, : i + 1].max() for i in range(n)], dtype=np.float32
        )
        return wl

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        n = wl.params["n"]

        def config(b):
            # Row i covers i+1 elements: initial size 0 plus ADD-1 per row.
            b.emit(
                uve.SsSta(u(0), Direction.LOAD, wl.addr("a") // 4, 0, 1, etype=F32),
                uve.SsApp(u(0), 0, n, n),
                uve.SsAppMod(u(0), Param.SIZE, StaticBehavior.ADD, 1, n, last=True),
                uve.SsConfig1D(u(1), Direction.STORE, wl.addr("c") // 4, n, 1, etype=F32),
            )

        return self._uve_program("mamr-diag-uve", config)

    def build_vector(self, wl: Workload, isa: str) -> Program:
        raise AssertionError("mamr-diag is not vectorized by the baselines")

    def build_scalar(self, wl: Workload) -> Program:
        n = wl.params["n"]
        b = ProgramBuilder("mamr-diag-scalar")
        xa, xc, xi, xj, xrow = x(8), x(9), x(10), x(11), x(12)
        b.emit(sc.Li(xrow, wl.addr("a")), sc.Li(xc, wl.addr("c")), sc.Li(xi, 0))
        b.label("row")
        b.emit(
            sc.Move(xa, xrow),
            sc.Load(f(1), xa, 0, etype=F32),
            sc.IntOp("add", xa, xa, 4),
            sc.Li(xj, 0),
        )
        b.label("elem")
        b.emit(
            sc.BranchCmp("ge", xj, xi, "store"),
            sc.Load(f(2), xa, 0, etype=F32),
            sc.FOp("max", f(1), f(1), f(2)),
            sc.IntOp("add", xa, xa, 4),
            sc.IntOp("add", xj, xj, 1),
            sc.Jump("elem"),
        )
        b.label("store")
        b.emit(
            sc.Store(f(1), xc, 0, etype=F32),
            sc.IntOp("add", xc, xc, 4),
            sc.IntOp("add", xrow, xrow, 4 * n),
            sc.IntOp("add", xi, xi, 1),
            sc.BranchCmp("lt", xi, n, "row"),
            sc.Halt(),
        )
        return b.build()


class MamrIndKernel(_MamrBase):
    name = "mamr-ind"
    letter = "Q"
    n_streams = 3
    pattern = "2D+indirect-modifier"

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_rows, scale, minimum=4)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n)).astype(np.float32)
        # Row pointers: a permutation, stored as element offsets.
        perm = rng.permutation(n).astype(np.int32)
        wl = Workload(memory=self.fresh_memory(), params={"n": n})
        wl.place("a", a)
        wl.place("bidx", perm * np.int32(n))
        wl.place("c", np.zeros(n, dtype=np.float32))
        wl.expected["c"] = a[perm].max(axis=1)
        return wl

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        n = wl.params["n"]

        def config(b):
            b.emit(
                # Origin stream: the row-pointer array (engine-internal
                # once linked into the indirect modifier).
                uve.SsConfig1D(u(3), Direction.LOAD, wl.addr("bidx") // 4, n, 1,
                               etype=I32),
                # Dependent stream: one row per origin value.
                uve.SsSta(u(0), Direction.LOAD, wl.addr("a") // 4, n, 1, etype=F32),
                uve.SsAppInd(u(0), Param.OFFSET, IndirectBehavior.SET_ADD, u(3),
                             last=True),
                uve.SsConfig1D(u(1), Direction.STORE, wl.addr("c") // 4, n, 1,
                               etype=F32),
            )

        return self._uve_program("mamr-ind-uve", config)

    def build_vector(self, wl: Workload, isa: str) -> Program:
        raise AssertionError("mamr-ind is not vectorized by the baselines")

    def build_scalar(self, wl: Workload) -> Program:
        n = wl.params["n"]
        b = ProgramBuilder("mamr-ind-scalar")
        xa, xb, xc, xi, xj, xrow = x(8), x(9), x(10), x(11), x(12), x(13)
        b.emit(
            sc.Li(xa, wl.addr("a")), sc.Li(xb, wl.addr("bidx")),
            sc.Li(xc, wl.addr("c")), sc.Li(xi, 0),
        )
        b.label("row")
        b.emit(
            sc.Load(xrow, xb, 0, etype=I32),
            sc.IntOp("sll", xrow, xrow, 2),
            sc.IntOp("add", xrow, xrow, xa),
            sc.Load(f(1), xrow, 0, etype=F32),
            sc.IntOp("add", xrow, xrow, 4),
            sc.Li(xj, 1),
        )
        b.label("elem")
        b.emit(
            sc.Load(f(2), xrow, 0, etype=F32),
            sc.FOp("max", f(1), f(1), f(2)),
            sc.IntOp("add", xrow, xrow, 4),
            sc.IntOp("add", xj, xj, 1),
            sc.BranchCmp("lt", xj, n, "elem"),
        )
        b.emit(
            sc.Store(f(1), xc, 0, etype=F32),
            sc.IntOp("add", xc, xc, 4),
            sc.IntOp("add", xb, xb, 4),
            sc.IntOp("add", xi, xi, 1),
            sc.BranchCmp("lt", xi, n, "row"),
            sc.Halt(),
        )
        return b.build()
