"""Kernel framework: workloads, per-ISA programs, verification.

Each of the 19 evaluation benchmarks (paper Fig. 8, left table) is a
:class:`Kernel` subclass providing a workload generator, a NumPy
reference, and program builders for the three ISAs.  Benchmarks the ARM
compiler failed to vectorize (marked * in the paper) return *scalar*
programs for both baselines, as in the paper.
"""
from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.isa.program import Program
from repro.memory.backing import Memory

#: ISA identifiers of the paper's main comparison.
ISAS = ("uve", "sve", "neon")

#: all implemented ISAs (RVV is the Fig. 1.C comparator, provided for the
#: extension experiment on the 1-D benchmark family).
ALL_ISAS = ISAS + ("rvv",)


@dataclass
class Workload:
    """One generated problem instance, resident in simulated memory."""

    memory: Memory
    #: name -> (base address, shape, numpy dtype)
    arrays: Dict[str, Tuple[int, Tuple[int, ...], object]] = field(
        default_factory=dict
    )
    #: name -> expected final contents (only for arrays the kernel writes)
    expected: Dict[str, np.ndarray] = field(default_factory=dict)
    params: Dict[str, int] = field(default_factory=dict)

    def addr(self, name: str) -> int:
        return self.arrays[name][0]

    def place(self, name: str, values: np.ndarray) -> int:
        """Allocate and copy an array; returns its base address."""
        addr = self.memory.alloc_array(values)
        self.arrays[name] = (addr, values.shape, values.dtype)
        return addr

    def result(self, name: str) -> np.ndarray:
        addr, shape, dtype = self.arrays[name]
        return self.memory.ndarray(addr, shape, dtype)

    def verify(self, rtol: float = 5e-3, atol: float = 1e-4) -> None:
        # float32 kernels vs float64 references: chained products (3mm)
        # legitimately accumulate relative error of order 1e-3.
        """Compare every expected array against simulated memory."""
        for name, want in self.expected.items():
            got = self.result(name)
            np.testing.assert_allclose(
                got, want, rtol=rtol, atol=atol,
                err_msg=f"array {name!r} mismatches the reference",
            )


class Kernel(ABC):
    """One benchmark: metadata + workload + per-ISA programs."""

    #: short identifier (the registry key) and the paper's letter.
    name: str = ""
    letter: str = ""
    domain: str = ""
    #: Fig. 8 left-table metadata.
    n_streams: int = 0
    max_nesting: int = 1
    n_kernels: int = 1
    pattern: str = "1D"
    #: False for the benchmarks the ARM SVE compiler failed to vectorize.
    sve_vectorized: bool = True
    #: memory size to allocate for workloads.
    memory_bytes: int = 1 << 23

    @abstractmethod
    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        """Generate a problem instance (arrays placed, reference computed)."""

    @abstractmethod
    def build_uve(self, wl: Workload, lanes: int) -> Program:
        """The UVE implementation."""

    @abstractmethod
    def build_vector(self, wl: Workload, isa: str) -> Program:
        """Vectorized baseline (``isa`` is ``sve`` or ``neon``)."""

    def build_scalar(self, wl: Workload) -> Program:
        """Scalar fallback for SVE-unvectorized kernels."""
        raise NotImplementedError(
            f"{self.name} has no scalar implementation"
        )

    def build_rvv(self, wl: Workload) -> Program:
        """RVV-like implementation (extension; 1-D benchmark family)."""
        raise NotImplementedError(
            f"{self.name} has no RVV implementation"
        )

    # -- Dispatch ------------------------------------------------------------

    def build(self, isa: str, wl: Workload, vector_bits: int = 512) -> Program:
        if isa == "uve":
            return self.build_uve(wl, lanes=vector_bits // 32)
        if isa in ("sve", "neon"):
            if not self.sve_vectorized:
                # The paper's compiler could not vectorize this kernel:
                # the baseline core runs scalar code.
                return self.build_scalar(wl)
            return self.build_vector(wl, isa)
        if isa == "rvv":
            return self.build_rvv(wl)
        raise ConfigError(f"unknown ISA {isa!r} (expected one of {ALL_ISAS})")

    def fresh_memory(self) -> Memory:
        return Memory(self.memory_bytes)

    def describe(self) -> Dict[str, object]:
        return {
            "letter": self.letter,
            "name": self.name,
            "domain": self.domain,
            "streams": self.n_streams,
            "nesting": self.max_nesting,
            "kernels": self.n_kernels,
            "pattern": self.pattern,
            "sve_vectorized": self.sve_vectorized,
        }


def scaled(value: int, scale: float, minimum: int = 1, multiple: int = 1) -> int:
    """Scale a problem dimension, keeping it a positive multiple."""
    out = max(minimum, int(round(value * scale)))
    if multiple > 1:
        out = max(multiple, out - out % multiple)
    return out
