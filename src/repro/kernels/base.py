"""Kernel framework: workloads, per-ISA programs, verification.

Each of the 19 evaluation benchmarks (paper Fig. 8, left table) is a
:class:`Kernel` subclass providing a workload generator, a NumPy
reference, and program builders for the three ISAs.  Benchmarks the ARM
compiler failed to vectorize (marked * in the paper) return *scalar*
programs for both baselines, as in the paper.
"""
from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.isa.program import Program
from repro.memory.backing import Memory

#: ISA identifiers of the paper's main comparison.
ISAS = ("uve", "sve", "neon")

#: all implemented ISAs (RVV is the Fig. 1.C comparator, provided for the
#: extension experiment on the 1-D benchmark family).
ALL_ISAS = ISAS + ("rvv",)

#: program-generation paths: the shared loop-nest IR (:mod:`repro.lower`)
#: or the hand-written per-ISA builders.
LOWERINGS = ("ir", "legacy")


@dataclass
class Workload:
    """One generated problem instance, resident in simulated memory."""

    memory: Memory
    #: name -> (base address, shape, numpy dtype)
    arrays: Dict[str, Tuple[int, Tuple[int, ...], object]] = field(
        default_factory=dict
    )
    #: name -> expected final contents (only for arrays the kernel writes)
    expected: Dict[str, np.ndarray] = field(default_factory=dict)
    params: Dict[str, int] = field(default_factory=dict)

    def addr(self, name: str) -> int:
        return self.arrays[name][0]

    def place(self, name: str, values: np.ndarray) -> int:
        """Allocate and copy an array; returns its base address."""
        addr = self.memory.alloc_array(values)
        self.arrays[name] = (addr, values.shape, values.dtype)
        return addr

    def result(self, name: str) -> np.ndarray:
        addr, shape, dtype = self.arrays[name]
        return self.memory.ndarray(addr, shape, dtype)

    def verify(self, rtol: float = 5e-3, atol: float = 1e-4) -> None:
        # float32 kernels vs float64 references: chained products (3mm)
        # legitimately accumulate relative error of order 1e-3.
        """Compare every expected array against simulated memory."""
        for name, want in self.expected.items():
            got = self.result(name)
            np.testing.assert_allclose(
                got, want, rtol=rtol, atol=atol,
                err_msg=f"array {name!r} mismatches the reference",
            )


class Kernel(ABC):
    """One benchmark: metadata + workload + per-ISA programs."""

    #: short identifier (the registry key) and the paper's letter.
    name: str = ""
    letter: str = ""
    domain: str = ""
    #: Fig. 8 left-table metadata.
    n_streams: int = 0
    max_nesting: int = 1
    n_kernels: int = 1
    pattern: str = "1D"
    #: False for the benchmarks the ARM SVE compiler failed to vectorize.
    sve_vectorized: bool = True
    #: False for extension kernels outside the paper's A..S evaluation set
    #: (they are registry-addressable but excluded from the figures).
    paper: bool = True
    #: memory size to allocate for workloads.
    memory_bytes: int = 1 << 23

    @abstractmethod
    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        """Generate a problem instance (arrays placed, reference computed)."""

    # -- IR lowering ---------------------------------------------------------

    def ir_nests(self, wl: Workload):
        """The kernel as loop-nest IR: a tuple of :class:`repro.ir.Nest`
        placed over ``wl``'s arrays, or ``None`` when the kernel has not
        been migrated (hand builders only)."""
        return None

    def lowering_source(self) -> str:
        """``"ir"`` when the kernel lowers through the shared loop-nest
        IR, ``"hand"`` when only the hand-written builders exist."""
        return "ir" if type(self).ir_nests is not Kernel.ir_nests else "hand"

    def supported_isas(self) -> Tuple[str, ...]:
        """The ISAs this kernel can be built for.  RVV support requires
        either a hand ``build_rvv`` override or an IR migration (the RVV
        backend lowers the streamlined 1-D family)."""
        has_rvv = (
            type(self).build_rvv is not Kernel.build_rvv
            or type(self).ir_nests is not Kernel.ir_nests
        )
        return ALL_ISAS if has_rvv else ISAS

    @abstractmethod
    def build_uve(self, wl: Workload, lanes: int) -> Program:
        """The UVE implementation."""

    @abstractmethod
    def build_vector(self, wl: Workload, isa: str) -> Program:
        """Vectorized baseline (``isa`` is ``sve`` or ``neon``)."""

    def build_scalar(self, wl: Workload) -> Program:
        """Scalar fallback for SVE-unvectorized kernels."""
        raise NotImplementedError(
            f"{self.name} has no scalar implementation"
        )

    def build_rvv(self, wl: Workload) -> Program:
        """RVV-like implementation (extension; 1-D benchmark family)."""
        raise NotImplementedError(
            f"{self.name} has no RVV implementation"
        )

    # -- Dispatch ------------------------------------------------------------

    def build(
        self,
        isa: str,
        wl: Workload,
        vector_bits: int = 512,
        lowering: str = "ir",
    ) -> Program:
        if isa not in ALL_ISAS:
            raise ConfigError(
                f"unknown ISA {isa!r} (expected one of {ALL_ISAS})"
            )
        if lowering not in LOWERINGS:
            raise ConfigError(
                f"unknown lowering {lowering!r} (expected one of {LOWERINGS})"
            )
        if isa == "rvv" and "rvv" not in self.supported_isas():
            raise ConfigError(
                f"kernel {self.name!r} does not implement ISA 'rvv' "
                f"(supported: {', '.join(self.supported_isas())})"
            )
        if lowering == "ir":
            nests = self.ir_nests(wl)
            if nests is not None:
                from repro.errors import LoweringError
                from repro.lower import lower_nests

                # SVE-unvectorized kernels run scalar baseline code; none
                # are IR-migrated yet, but keep the paper semantics if one
                # ever is.
                if isa in ("sve", "neon") and not self.sve_vectorized:
                    return self.build_scalar(wl)
                try:
                    return lower_nests(nests, isa, f"{self.name}-{isa}")
                except LoweringError as exc:
                    raise ConfigError(
                        f"kernel {self.name!r} cannot be lowered to "
                        f"{isa!r} through the IR: {exc}"
                    ) from exc
        if isa == "uve":
            return self.build_uve(wl, lanes=vector_bits // 32)
        if isa in ("sve", "neon"):
            if not self.sve_vectorized:
                # The paper's compiler could not vectorize this kernel:
                # the baseline core runs scalar code.
                return self.build_scalar(wl)
            return self.build_vector(wl, isa)
        return self.build_rvv(wl)

    def fresh_memory(self) -> Memory:
        return Memory(self.memory_bytes)

    def describe(self) -> Dict[str, object]:
        return {
            "letter": self.letter,
            "name": self.name,
            "domain": self.domain,
            "streams": self.n_streams,
            "nesting": self.max_nesting,
            "kernels": self.n_kernels,
            "pattern": self.pattern,
            "sve_vectorized": self.sve_vectorized,
            "lowering": self.lowering_source(),
            "isas": list(self.supported_isas()),
        }


def scaled(value: int, scale: float, minimum: int = 1, multiple: int = 1) -> int:
    """Scale a problem dimension, keeping it a positive multiple."""
    out = max(minimum, int(round(value * scale)))
    if multiple > 1:
        out = max(multiple, out - out % multiple)
    return out
