"""Benchmark G: gemver (PolyBench) — rank-2 update plus two
matrix-vector products and a vector add; the paper's highest stream
count (17 streams across four sub-kernels).

    A = A + u1·v1ᵀ + u2·v2ᵀ
    x = x + beta · Aᵀ·y
    x = x + z
    w = w + alpha · A·x
"""
from __future__ import annotations

import numpy as np

from repro.common.types import ElementType
from repro.isa import ProgramBuilder, f, p, u, x
from repro.isa import neon_ops as neon
from repro.isa import scalar_ops as sc
from repro.isa import sve_ops as sve
from repro.isa import uve_ops as uve
from repro.isa.program import Program
from repro.kernels.base import Kernel, Workload, scaled
from repro.kernels.mvt import (
    emit_neon_col_accum,
    emit_neon_row_dots,
    emit_sve_col_accum,
    emit_sve_row_dots,
    emit_uve_col_accum,
    emit_uve_dots,
)
from repro.streams.pattern import Direction

F32 = ElementType.F32
ALPHA = 1.5
BETA = 1.2


def _emit_uve_rank2(b, tag, a_addr, u1, v1, u2, v2, n):
    """A[i][j] += u1[i]*v1[j] + u2[i]*v2[j] — six streams, Fig. 1.D style."""
    ae = a_addr // 4
    b.emit(
        uve.SsSta(u(0), Direction.LOAD, ae, n, 1, etype=F32),
        uve.SsApp(u(0), 0, n, n, last=True),
        uve.SsSta(u(1), Direction.LOAD, v1 // 4, n, 1, etype=F32),
        uve.SsApp(u(1), 0, n, 0, last=True),
        uve.SsSta(u(2), Direction.LOAD, v2 // 4, n, 1, etype=F32),
        uve.SsApp(u(2), 0, n, 0, last=True),
        uve.SsSta(u(3), Direction.STORE, ae, n, 1, etype=F32),
        uve.SsApp(u(3), 0, n, n, last=True),
        uve.SsConfig1D(u(6), Direction.LOAD, u1 // 4, n, 1, etype=F32),
        uve.SsConfig1D(u(7), Direction.LOAD, u2 // 4, n, 1, etype=F32),
    )
    b.label(f"{tag}_row")
    b.emit(
        uve.SoScalarRead(f(1), u(6), etype=F32),
        uve.SoScalarRead(f(2), u(7), etype=F32),
    )
    b.label(f"{tag}_chunk")
    b.emit(
        uve.SoOpScalar("mul", u(5), u(1), f(1), etype=F32),
        uve.SoMacScalar(u(5), u(2), f(2), etype=F32),
        uve.SoOp("add", u(3), u(5), u(0), etype=F32),
        uve.SoBranchDim(u(0), 0, f"{tag}_chunk", complete=False),
        uve.SoBranchEnd(u(0), f"{tag}_row", negate=True),
    )


def _emit_uve_vadd(b, tag, out, in1, in2, n):
    """out[i] = in1[i] + in2[i]."""
    b.emit(
        uve.SsConfig1D(u(0), Direction.LOAD, in1 // 4, n, 1, etype=F32),
        uve.SsConfig1D(u(1), Direction.LOAD, in2 // 4, n, 1, etype=F32),
        uve.SsConfig1D(u(2), Direction.STORE, out // 4, n, 1, etype=F32),
    )
    b.label(f"{tag}_loop")
    b.emit(
        uve.SoOp("add", u(2), u(0), u(1), etype=F32),
        uve.SoBranchEnd(u(0), f"{tag}_loop", negate=True),
    )


def _emit_sve_rank2(b, tag, a_addr, u1, v1, u2, v2, n):
    xarow, xv1, xv2, xu1, xu2 = x(8), x(9), x(10), x(11), x(12)
    xn, xi, xoff = x(13), x(14), x(15)
    b.emit(
        sc.Li(xarow, a_addr), sc.Li(xu1, u1), sc.Li(xu2, u2),
        sc.Li(xn, n), sc.Li(xi, 0),
    )
    b.label(f"{tag}_i")
    b.emit(
        sc.Load(f(1), xu1, 0, etype=F32),
        sc.Load(f(2), xu2, 0, etype=F32),
        sve.Dup(u(4), f(1), etype=F32),
        sve.Dup(u(5), f(2), etype=F32),
        sc.Li(xoff, 0),
        sc.Li(xv1, v1), sc.Li(xv2, v2),
        sve.WhileLt(p(1), xoff, xn, etype=F32),
    )
    b.label(f"{tag}_j")
    b.emit(
        sve.Ld1(u(1), p(1), xarow, index=xoff, etype=F32),
        sve.Ld1(u(2), p(1), xv1, index=xoff, etype=F32),
        sve.Ld1(u(3), p(1), xv2, index=xoff, etype=F32),
        sve.Fmla(u(1), p(1), u(4), u(2), etype=F32),
        sve.Fmla(u(1), p(1), u(5), u(3), etype=F32),
        sve.St1(u(1), p(1), xarow, index=xoff, etype=F32),
        sve.IncElems(xoff, etype=F32),
        sve.WhileLt(p(1), xoff, xn, etype=F32),
        sve.BranchPred("first", p(1), f"{tag}_j", etype=F32),
    )
    b.emit(
        sc.IntOp("add", xarow, xarow, 4 * n),
        sc.IntOp("add", xu1, xu1, 4),
        sc.IntOp("add", xu2, xu2, 4),
        sc.IntOp("add", xi, xi, 1),
        sc.BranchCmp("lt", xi, xn, f"{tag}_i"),
    )


def _emit_sve_vadd(b, tag, out, in1, in2, n):
    xo, x1r, x2r, xn, xoff = x(8), x(9), x(10), x(11), x(12)
    b.emit(
        sc.Li(xo, out), sc.Li(x1r, in1), sc.Li(x2r, in2),
        sc.Li(xn, n), sc.Li(xoff, 0),
        sve.WhileLt(p(1), xoff, xn, etype=F32),
    )
    b.label(f"{tag}_loop")
    b.emit(
        sve.Ld1(u(1), p(1), x1r, index=xoff, etype=F32),
        sve.Ld1(u(2), p(1), x2r, index=xoff, etype=F32),
        sve.VOp("add", u(1), p(1), u(1), u(2), etype=F32),
        sve.St1(u(1), p(1), xo, index=xoff, etype=F32),
        sve.IncElems(xoff, etype=F32),
        sve.WhileLt(p(1), xoff, xn, etype=F32),
        sve.BranchPred("first", p(1), f"{tag}_loop", etype=F32),
    )


def _emit_neon_rank2(b, tag, a_addr, u1, v1, u2, v2, n):
    xarow, xv1, xv2, xu1, xu2 = x(8), x(9), x(10), x(11), x(12)
    xi, xoff, xaddr = x(14), x(15), x(16)
    b.emit(sc.Li(xarow, a_addr), sc.Li(xu1, u1), sc.Li(xu2, u2), sc.Li(xi, 0))
    b.label(f"{tag}_i")
    b.emit(
        sc.Load(f(1), xu1, 0, etype=F32),
        sc.Load(f(2), xu2, 0, etype=F32),
        neon.NVDup(u(4), f(1), etype=F32),
        neon.NVDup(u(5), f(2), etype=F32),
        sc.Li(xoff, 0),
        sc.Li(xv1, v1), sc.Li(xv2, v2),
        sc.Move(xaddr, xarow),
    )
    b.label(f"{tag}_j")
    b.emit(
        neon.NVLoad(u(1), xaddr, etype=F32),
        neon.NVLoad(u(2), xv1, etype=F32, post_inc=True),
        neon.NVLoad(u(3), xv2, etype=F32, post_inc=True),
        neon.NVFma(u(1), u(4), u(2), etype=F32),
        neon.NVFma(u(1), u(5), u(3), etype=F32),
        neon.NVStore(u(1), xaddr, etype=F32, post_inc=True),
        sc.IntOp("add", xoff, xoff, 4),
        sc.BranchCmp("lt", xoff, n, f"{tag}_j"),
    )
    b.emit(
        sc.IntOp("add", xarow, xarow, 4 * n),
        sc.IntOp("add", xu1, xu1, 4),
        sc.IntOp("add", xu2, xu2, 4),
        sc.IntOp("add", xi, xi, 1),
        sc.BranchCmp("lt", xi, n, f"{tag}_i"),
    )


def _emit_neon_vadd(b, tag, out, in1, in2, n):
    xo, x1r, x2r, xoff = x(8), x(9), x(10), x(12)
    b.emit(sc.Li(xo, out), sc.Li(x1r, in1), sc.Li(x2r, in2), sc.Li(xoff, 0))
    b.label(f"{tag}_loop")
    b.emit(
        neon.NVLoad(u(1), x1r, etype=F32, post_inc=True),
        neon.NVLoad(u(2), x2r, etype=F32, post_inc=True),
        neon.NVOp("add", u(1), u(1), u(2), etype=F32),
        neon.NVStore(u(1), xo, etype=F32, post_inc=True),
        sc.IntOp("add", xoff, xoff, 4),
        sc.BranchCmp("lt", xoff, n, f"{tag}_loop"),
    )


class GemverKernel(Kernel):
    name = "gemver"
    letter = "G"
    domain = "algebra"
    n_streams = 17
    max_nesting = 2
    n_kernels = 4
    pattern = "2D"

    default_n = 64

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_n, scale, minimum=16, multiple=16)
        rng = np.random.default_rng(seed)
        arrays = {
            "a": rng.standard_normal((n, n)).astype(np.float32),
            "u1": rng.standard_normal(n).astype(np.float32),
            "v1": rng.standard_normal(n).astype(np.float32),
            "u2": rng.standard_normal(n).astype(np.float32),
            "v2": rng.standard_normal(n).astype(np.float32),
            "x": rng.standard_normal(n).astype(np.float32),
            "y": rng.standard_normal(n).astype(np.float32),
            "z": rng.standard_normal(n).astype(np.float32),
            "w": rng.standard_normal(n).astype(np.float32),
        }
        wl = Workload(memory=self.fresh_memory(), params={"n": n})
        for name, arr in arrays.items():
            wl.place(name, arr)
        g = {k: v.astype(np.float64) for k, v in arrays.items()}
        a2 = g["a"] + np.outer(g["u1"], g["v1"]) + np.outer(g["u2"], g["v2"])
        xv = g["x"] + BETA * (a2.T @ g["y"])
        xv = xv + g["z"]
        wv = g["w"] + ALPHA * (a2 @ xv)
        wl.expected["a"] = a2.astype(np.float32)
        wl.expected["x"] = xv.astype(np.float32)
        wl.expected["w"] = wv.astype(np.float32)
        return wl

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        n = wl.params["n"]
        b = ProgramBuilder("gemver-uve")
        _emit_uve_rank2(b, "r2", wl.addr("a"), wl.addr("u1"), wl.addr("v1"),
                        wl.addr("u2"), wl.addr("v2"), n)
        emit_uve_col_accum(b, "aty", wl.addr("a"), wl.addr("y"),
                           wl.addr("x"), rows=n, cols=n, lanes=lanes,
                           alpha=BETA)
        _emit_uve_vadd(b, "xz", wl.addr("x"), wl.addr("x"), wl.addr("z"), n)
        emit_uve_dots(b, "ax", wl.addr("a"), wl.addr("x"), wl.addr("w"),
                      rows=n, cols=n, row_stride=n, col_stride=1, alpha=ALPHA)
        b.emit(sc.Halt())
        return b.build()

    def build_vector(self, wl: Workload, isa: str) -> Program:
        n = wl.params["n"]
        b = ProgramBuilder(f"gemver-{isa}")
        addr = wl.addr
        if isa == "sve":
            _emit_sve_rank2(b, "r2", addr("a"), addr("u1"), addr("v1"),
                            addr("u2"), addr("v2"), n)
            emit_sve_col_accum(b, "aty", addr("a"), addr("y"), addr("x"),
                               n, n, alpha=BETA)
            _emit_sve_vadd(b, "xz", addr("x"), addr("x"), addr("z"), n)
            emit_sve_row_dots(b, "ax", addr("a"), addr("x"), addr("w"),
                              n, n, alpha=ALPHA)
        else:
            _emit_neon_rank2(b, "r2", addr("a"), addr("u1"), addr("v1"),
                             addr("u2"), addr("v2"), n)
            emit_neon_col_accum(b, "aty", addr("a"), addr("y"), addr("x"),
                                n, n, alpha=BETA)
            _emit_neon_vadd(b, "xz", addr("x"), addr("x"), addr("z"), n)
            emit_neon_row_dots(b, "ax", addr("a"), addr("x"), addr("w"),
                               n, n, alpha=ALPHA)
        b.emit(sc.Halt())
        return b.build()
