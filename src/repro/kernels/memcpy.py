"""Benchmark A: memcpy — pure 1-D streaming copy (memory domain)."""
from __future__ import annotations

import numpy as np

from repro.ir import loop1d
from repro.isa import scalar_ops as sc
from repro.isa import uve_ops as uve
from repro.isa.program import Program
from repro.kernels import elementwise as ew
from repro.kernels.base import Kernel, Workload, scaled


class MemcpyKernel(Kernel):
    name = "memcpy"
    letter = "A"
    domain = "memory"
    n_streams = 2
    max_nesting = 1
    n_kernels = 1
    pattern = "1D"

    #: default element count: 2 x 256 KB, exceeding the L2 (DRAM-streaming,
    #: as in the paper's memory benchmarks).
    default_n = 65536

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_n, scale, minimum=64, multiple=16)
        rng = np.random.default_rng(seed)
        src = rng.standard_normal(n).astype(np.float32)
        dst = np.zeros(n, dtype=np.float32)
        wl = Workload(memory=self.fresh_memory(), params={"n": n})
        wl.place("src", src)
        wl.place("dst", dst)
        wl.expected["dst"] = src.copy()
        return wl

    def ir_nests(self, wl: Workload):
        return (
            loop1d(
                "memcpy", [wl.addr("src")], wl.addr("dst"), wl.params["n"]
            ),
        )

    # -- Legacy hand builders (kept as the equivalence-gate reference) -------

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        def body(b, ins, out):
            b.emit(uve.SoMove(out, ins[0], etype=ew.F32))

        return ew.build_uve(
            "memcpy-uve",
            [wl.addr("src")],
            wl.addr("dst"),
            wl.params["n"],
            body,
        )

    def build_vector(self, wl: Workload, isa: str) -> Program:
        from repro.isa import neon_ops as neon
        from repro.isa import sve_ops as sve

        n = wl.params["n"]
        if isa == "sve":
            def body(b, ins, out):
                return ins[0]  # store the loaded register directly

            return ew.build_sve(
                "memcpy-sve", [wl.addr("src")], wl.addr("dst"), n, body
            )

        def body(b, ins, out):
            return ins[0]

        def scalar_body(b, ins, out):
            return ins[0]

        return ew.build_neon(
            "memcpy-neon", [wl.addr("src")], wl.addr("dst"), n, body, scalar_body
        )

    def build_rvv(self, wl):
        def body(b, ins, out):
            return ins[0]

        return ew.build_rvv(
            "memcpy-rvv", [wl.addr("src")], wl.addr("dst"),
            wl.params["n"], body,
        )
