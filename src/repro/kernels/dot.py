"""Extension benchmark T: dot product — the IR-native reduction kernel.

Unlike the paper's A..S set this kernel has no hand-written builders:
every ISA's program comes from the shared loop-nest IR
(:mod:`repro.lower`), exercising the reduction path end to end — UVE's
``so.mac`` + final scalar reduce, SVE's predicated ``fmla`` + ``fadd``
tree, NEON's vector accumulate + scalar tail, and RVV's per-strip
``vfred`` fold.  ``paper=False`` keeps it out of the Fig. 8 figures and
golden tables.
"""
from __future__ import annotations

import numpy as np

from repro.ir import loop1d
from repro.isa.program import Program
from repro.kernels.base import Kernel, Workload, scaled


class DotKernel(Kernel):
    name = "dot"
    letter = "T"
    domain = "BLAS"
    n_streams = 3
    max_nesting = 1
    n_kernels = 1
    pattern = "1D"
    paper = False

    default_n = 16384  # matches saxpy's working set

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        n = scaled(self.default_n, scale, minimum=64, multiple=16)
        rng = np.random.default_rng(seed)
        xs = rng.standard_normal(n).astype(np.float32)
        # Correlate y with x so the reduction is dominated by sum(x^2):
        # the result stays O(n) positive and the float32-vs-float64
        # verification tolerance is not eaten by cancellation.
        ys = (xs + 0.5 * rng.standard_normal(n)).astype(np.float32)
        wl = Workload(memory=self.fresh_memory(), params={"n": n})
        wl.place("x", xs)
        wl.place("y", ys)
        wl.place("out", np.zeros(1, dtype=np.float32))
        wl.expected["out"] = np.array(
            [np.dot(xs.astype(np.float64), ys.astype(np.float64))],
            dtype=np.float32,
        )
        return wl

    def ir_nests(self, wl: Workload):
        return (
            loop1d(
                "dot",
                [wl.addr("x"), wl.addr("y")],
                wl.addr("out"),
                wl.params["n"],
                reduce="add",
                use_mac=True,
            ),
        )

    # There are no hand builders: the abstract hooks lower the IR, so
    # ``lowering="legacy"`` and ``"ir"`` produce the same programs.

    def _lower(self, isa: str, wl: Workload) -> Program:
        from repro.lower import lower_nests

        return lower_nests(self.ir_nests(wl), isa, f"{self.name}-{isa}")

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        return self._lower("uve", wl)

    def build_vector(self, wl: Workload, isa: str) -> Program:
        return self._lower(isa, wl)

    def build_rvv(self, wl: Workload) -> Program:
        return self._lower("rvv", wl)
