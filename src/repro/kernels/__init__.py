"""The 19 evaluation kernels (paper §V, Fig. 8)."""
from repro.kernels.base import ISAS, Kernel, Workload
from repro.kernels.registry import all_kernels, get_kernel, kernel_names

__all__ = [
    "ISAS",
    "Kernel",
    "Workload",
    "all_kernels",
    "get_kernel",
    "kernel_names",
]
