"""The 19 evaluation kernels (paper §V, Fig. 8) plus extensions."""
from repro.kernels.base import ALL_ISAS, ISAS, LOWERINGS, Kernel, Workload
from repro.kernels.registry import (
    all_kernels,
    get_kernel,
    kernel_names,
    unsupported_isas,
)

__all__ = [
    "ALL_ISAS",
    "ISAS",
    "LOWERINGS",
    "Kernel",
    "Workload",
    "all_kernels",
    "get_kernel",
    "kernel_names",
    "unsupported_isas",
]
