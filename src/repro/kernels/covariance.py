"""Benchmark N: covariance (PolyBench, data mining) — starred: the ARM
compiler failed to vectorize it, so the baselines run scalar code.

Three phases: column means, mean-centering, and the covariance matrix
``cov = centeredᵀ·centered / (npts-1)``.  We compute the full symmetric
matrix in all implementations (the paper's triangular-output variant
uses a static modifier; the triangular mechanism is exercised by
trisolv and mamr-diag).
"""
from __future__ import annotations

import numpy as np

from repro.common.types import ElementType
from repro.isa import ProgramBuilder, f, u, x
from repro.isa import scalar_ops as sc
from repro.isa import uve_ops as uve
from repro.isa.program import Program
from repro.kernels.base import Kernel, Workload, scaled
from repro.streams.pattern import Direction

F32 = ElementType.F32


class CovarianceKernel(Kernel):
    name = "covariance"
    letter = "N"
    domain = "data mining"
    n_streams = 8
    max_nesting = 3
    n_kernels = 3
    pattern = "4D+static-modifier"
    sve_vectorized = False

    default_m = 16  # features (multiple of the vector length in elements)
    default_npts = 32  # samples

    def workload(self, seed: int = 0, scale: float = 1.0) -> Workload:
        m = scaled(self.default_m, scale, minimum=16, multiple=16)
        npts = scaled(self.default_npts, scale, minimum=4)
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((npts, m)).astype(np.float32)
        wl = Workload(memory=self.fresh_memory(), params={"m": m, "npts": npts})
        wl.place("data", data)
        wl.place("mean", np.zeros(m, dtype=np.float32))
        wl.place("cov", np.zeros((m, m), dtype=np.float32))
        d = data.astype(np.float64)
        mean = d.mean(axis=0)
        centered = d - mean
        cov = centered.T @ centered / (npts - 1)
        wl.expected["mean"] = mean.astype(np.float32)
        wl.expected["data"] = centered.astype(np.float32)
        wl.expected["cov"] = cov.astype(np.float32)
        return wl

    def build_uve(self, wl: Workload, lanes: int) -> Program:
        m, npts = wl.params["m"], wl.params["npts"]
        tiles = m // lanes
        de, me, ce = (wl.addr(k) // 4 for k in ("data", "mean", "cov"))
        b = ProgramBuilder("covariance-uve")

        # Phase 1: column means, tile by tile.
        b.emit(
            uve.SsSta(u(0), Direction.LOAD, de, lanes, 1, etype=F32),
            uve.SsApp(u(0), 0, npts, m),
            uve.SsApp(u(0), 0, tiles, lanes, last=True),
            uve.SsConfig1D(u(1), Direction.STORE, me, m, 1, etype=F32),
        )
        b.label("mean_tile")
        b.emit(uve.SoDup(u(5), 0.0, etype=F32))
        b.label("mean_row")
        b.emit(
            uve.SoOp("add", u(5), u(5), u(0), etype=F32),
            uve.SoBranchDim(u(0), 1, "mean_row", complete=False),
            uve.SoOpScalar("mul", u(1), u(5), 1.0 / npts, etype=F32),
            uve.SoBranchEnd(u(0), "mean_tile", negate=True),
        )

        # Phase 2: mean-centering (row streams; mean re-read per row).
        b.emit(
            uve.SsSta(u(0), Direction.LOAD, de, m, 1, etype=F32),
            uve.SsApp(u(0), 0, npts, m, last=True),
            uve.SsSta(u(1), Direction.LOAD, me, m, 1, etype=F32),
            uve.SsApp(u(1), 0, npts, 0, last=True),
            uve.SsSta(u(2), Direction.STORE, de, m, 1, etype=F32),
            uve.SsApp(u(2), 0, npts, m, last=True),
        )
        b.label("center")
        b.emit(
            uve.SoOp("sub", u(2), u(0), u(1), etype=F32),
            uve.SoBranchEnd(u(0), "center", negate=True),
        )

        # Phase 3: cov = centeredᵀ·centered / (npts-1) — gemm-shaped with
        # a column-scan scalar stream for the transposed operand.
        b.emit(
            # B-like stream: data tiles, swept per (j1, tile, i).
            uve.SsSta(u(0), Direction.LOAD, de, lanes, 1, etype=F32),
            uve.SsApp(u(0), 0, npts, m),
            uve.SsApp(u(0), 0, tiles, lanes),
            uve.SsApp(u(0), 0, m, 0, last=True),
            # A-like stream: column j1 of data, repeated per tile.
            uve.SsSta(u(3), Direction.LOAD, de, npts, m, etype=F32),
            uve.SsApp(u(3), 0, tiles, 0),
            uve.SsApp(u(3), 0, m, 1, last=True),
            # Output tiles of cov.
            uve.SsSta(u(2), Direction.STORE, ce, lanes, 1, etype=F32),
            uve.SsApp(u(2), 0, tiles, lanes),
            uve.SsApp(u(2), 0, m, m, last=True),
        )
        b.label("cov_tile")
        b.emit(uve.SoDup(u(5), 0.0, etype=F32))
        b.label("cov_k")
        b.emit(
            uve.SoScalarRead(f(1), u(3), etype=F32),
            uve.SoMacScalar(u(5), u(0), f(1), etype=F32),
            uve.SoBranchDim(u(0), 1, "cov_k", complete=False),
            uve.SoOpScalar("mul", u(2), u(5), 1.0 / (npts - 1), etype=F32),
            uve.SoBranchEnd(u(0), "cov_tile", negate=True),
        )
        b.emit(sc.Halt())
        return b.build()

    def build_vector(self, wl: Workload, isa: str) -> Program:
        raise AssertionError("covariance is not vectorized by the baselines")

    def build_scalar(self, wl: Workload) -> Program:
        m, npts = wl.params["m"], wl.params["npts"]
        da, ma, ca = wl.addr("data"), wl.addr("mean"), wl.addr("cov")
        b = ProgramBuilder("covariance-scalar")
        xj, xi, xt = x(8), x(9), x(10)
        # Phase 1: means.
        b.emit(sc.Li(xj, 0))
        b.label("mean_j")
        b.emit(
            sc.FLi(f(1), 0.0),
            sc.IntOp("sll", xt, xj, 2),
            sc.IntOp("add", xt, xt, da),
            sc.Li(xi, 0),
        )
        b.label("mean_i")
        b.emit(
            sc.Load(f(2), xt, 0, etype=F32),
            sc.FOp("add", f(1), f(1), f(2)),
            sc.IntOp("add", xt, xt, 4 * m),
            sc.IntOp("add", xi, xi, 1),
            sc.BranchCmp("lt", xi, npts, "mean_i"),
        )
        b.emit(
            sc.FOp("mul", f(1), f(1), 1.0 / npts),
            sc.IntOp("sll", xt, xj, 2),
            sc.IntOp("add", xt, xt, ma),
            sc.Store(f(1), xt, 0, etype=F32),
            sc.IntOp("add", xj, xj, 1),
            sc.BranchCmp("lt", xj, m, "mean_j"),
        )
        # Phase 2: centering.
        xd, xm = x(11), x(12)
        b.emit(sc.Li(xi, 0), sc.Li(xd, da))
        b.label("center_i")
        b.emit(sc.Li(xj, 0), sc.Li(xm, ma))
        b.label("center_j")
        b.emit(
            sc.Load(f(1), xd, 0, etype=F32),
            sc.Load(f(2), xm, 0, etype=F32),
            sc.FOp("sub", f(1), f(1), f(2)),
            sc.Store(f(1), xd, 0, etype=F32),
            sc.IntOp("add", xd, xd, 4),
            sc.IntOp("add", xm, xm, 4),
            sc.IntOp("add", xj, xj, 1),
            sc.BranchCmp("lt", xj, m, "center_j"),
        )
        b.emit(sc.IntOp("add", xi, xi, 1), sc.BranchCmp("lt", xi, npts, "center_i"))
        # Phase 3: covariance (full matrix).
        xj1, xj2, xc = x(13), x(14), x(15)
        xp, xq = x(16), x(17)
        b.emit(sc.Li(xj1, 0), sc.Li(xc, ca))
        b.label("cov_j1")
        b.emit(sc.Li(xj2, 0))
        b.label("cov_j2")
        b.emit(
            sc.FLi(f(1), 0.0),
            sc.IntOp("sll", xp, xj1, 2), sc.IntOp("add", xp, xp, da),
            sc.IntOp("sll", xq, xj2, 2), sc.IntOp("add", xq, xq, da),
            sc.Li(xi, 0),
        )
        b.label("cov_i")
        b.emit(
            sc.Load(f(2), xp, 0, etype=F32),
            sc.Load(f(3), xq, 0, etype=F32),
            sc.FMac(f(1), f(2), f(3)),
            sc.IntOp("add", xp, xp, 4 * m),
            sc.IntOp("add", xq, xq, 4 * m),
            sc.IntOp("add", xi, xi, 1),
            sc.BranchCmp("lt", xi, npts, "cov_i"),
        )
        b.emit(
            sc.FOp("mul", f(1), f(1), 1.0 / (npts - 1)),
            sc.Store(f(1), xc, 0, etype=F32),
            sc.IntOp("add", xc, xc, 4),
            sc.IntOp("add", xj2, xj2, 1),
            sc.BranchCmp("lt", xj2, m, "cov_j2"),
        )
        b.emit(sc.IntOp("add", xj1, xj1, 1), sc.BranchCmp("lt", xj1, m, "cov_j1"))
        b.emit(sc.Halt())
        return b.build()
