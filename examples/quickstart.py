"""Quickstart: assemble and run the paper's saxpy kernel (Fig. 4).

Writes UVE assembly text, assembles it, runs it functionally and through
the cycle-level timing model, and verifies the result against NumPy.

    python examples/quickstart.py
"""
import numpy as np

from repro.cpu.config import uve_machine
from repro.isa.assembler import assemble
from repro.memory.backing import Memory
from repro.sim.simulator import Simulator

N = 4096
A = 2.5

SAXPY = """
; y = a*x + y   (paper Fig. 4)
    ss.ld.w     u0, {x}, {n}, 1     ; input stream:  x[0..n)
    ss.ld.w     u1, {y}, {n}, 1     ; input stream:  y[0..n)
    ss.st.w     u2, {y}, {n}, 1     ; output stream: y[0..n)
    fli         f0, {a}
    so.v.dup.fw u3, f0              ; broadcast a to all lanes
loop:
    so.a.mul.fp u4, u3, u0          ; consume a chunk of x
    so.a.add.fp u2, u4, u1          ; consume y, produce to output y
    so.b.nend   u0, loop            ; loop until stream x ends
    halt
"""


def main() -> None:
    rng = np.random.default_rng(42)
    xs = rng.standard_normal(N).astype(np.float32)
    ys = rng.standard_normal(N).astype(np.float32)

    memory = Memory(1 << 22)
    x_addr = memory.alloc_array(xs)
    y_addr = memory.alloc_array(ys)

    source = SAXPY.format(x=x_addr // 4, y=y_addr // 4, n=N, a=A)
    program = assemble(source, name="saxpy")
    print("Assembled program:")
    print(program.listing())
    print()

    result = Simulator(program, memory, uve_machine()).run()

    got = memory.ndarray(y_addr, (N,), np.float32)
    np.testing.assert_allclose(got, np.float32(A) * xs + ys, rtol=1e-6)
    print(f"result verified against NumPy for n={N}")
    print(f"committed instructions : {result.committed}")
    print(f"cycles                 : {result.cycles:.0f}")
    print(f"IPC                    : {result.ipc:.2f}")
    print(f"loop body              : 3 instructions per {512 // 32} elements")
    engine = result.pipeline.engine
    print(f"stream line requests   : {engine.stats.line_requests}")
    print(f"mean load-FIFO occupancy: {engine.stats.mean_fifo_occupancy:.1f} "
          f"of {engine.config.fifo_depth}")


if __name__ == "__main__":
    main()
