"""Pattern gallery: the paper's Fig. 2 — one UVE code, three patterns.

Builds the row-maximum kernel exactly as in Fig. 2.D and runs it over
(A) a full matrix, (B) a lower-triangular matrix, and (C) a matrix
accessed through row pointers — the compute loop never changes, only the
stream descriptors do.

    python examples/pattern_gallery.py
"""
import numpy as np

from repro.common.types import ElementType
from repro.isa import ProgramBuilder, u
from repro.isa import scalar_ops as sc
from repro.isa import uve_ops as uve
from repro.memory.backing import Memory
from repro.sim.functional import FunctionalSimulator
from repro.streams import StreamIterator, lower_triangular, rectangular
from repro.streams.descriptor import IndirectBehavior, Param, StaticBehavior
from repro.streams.pattern import Direction

N = 8
F32 = ElementType.F32
I32 = ElementType.I32


def fig2_compute(b: ProgramBuilder) -> None:
    """The Fig. 2.D loop — identical for every access pattern."""
    b.label("next_line")
    b.emit(
        uve.SoMove(u(5), u(0), etype=F32),
        uve.SoBranchDim(u(0), 0, "hmax", complete=True),
    )
    b.label("loop")
    b.emit(
        uve.SoOp("max", u(5), u(5), u(0), etype=F32),
        uve.SoBranchDim(u(0), 0, "loop", complete=False),
    )
    b.label("hmax")
    b.emit(
        uve.SoRed("max", u(1), u(5), etype=F32),
        uve.SoBranchEnd(u(0), "next_line", negate=True),
        sc.Halt(),
    )


def run(config_emitter, mem, out_addr, rows):
    b = ProgramBuilder("fig2")
    config_emitter(b)
    fig2_compute(b)
    FunctionalSimulator(b.build(), memory=mem).run()
    return mem.ndarray(out_addr, (rows,), np.float32)


def main() -> None:
    rng = np.random.default_rng(7)
    a = rng.standard_normal((N, N)).astype(np.float32)

    # -- Descriptor play: print the address sequences of Fig. 3 patterns.
    print("Fig. 3.B2 rectangular rows (element indices):")
    pattern = rectangular(base=0, rows=3, cols=4)
    print(" ", [addr // 4 for addr in StreamIterator(pattern).addresses()])
    print("Fig. 3.B4 lower triangular:")
    pattern = lower_triangular(base=0, rows=4, row_stride=4)
    print(" ", [addr // 4 for addr in StreamIterator(pattern).addresses()])
    print()

    # -- (A) full matrix --------------------------------------------------
    mem = Memory(1 << 20)
    a_addr = mem.alloc_array(a)
    c_addr = mem.alloc_array(np.zeros(N, dtype=np.float32))

    def full(b):
        b.emit(
            uve.SsSta(u(0), Direction.LOAD, a_addr // 4, N, 1, etype=F32),
            uve.SsApp(u(0), 0, N, N, last=True),
            uve.SsConfig1D(u(1), Direction.STORE, c_addr // 4, N, 1, etype=F32),
        )

    got = run(full, mem, c_addr, N)
    np.testing.assert_allclose(got, a.max(axis=1))
    print("(A) full matrix row maxima     :", np.round(got[:5], 3), "...")

    # -- (B) lower triangular (static size modifier) -----------------------
    mem = Memory(1 << 20)
    a_addr = mem.alloc_array(a)
    c_addr = mem.alloc_array(np.zeros(N, dtype=np.float32))

    def triangular(b):
        b.emit(
            uve.SsSta(u(0), Direction.LOAD, a_addr // 4, 0, 1, etype=F32),
            uve.SsApp(u(0), 0, N, N),
            uve.SsAppMod(u(0), Param.SIZE, StaticBehavior.ADD, 1, N, last=True),
            uve.SsConfig1D(u(1), Direction.STORE, c_addr // 4, N, 1, etype=F32),
        )

    got = run(triangular, mem, c_addr, N)
    expect = np.array([a[i, : i + 1].max() for i in range(N)], dtype=np.float32)
    np.testing.assert_allclose(got, expect)
    print("(B) triangular row maxima      :", np.round(got[:5], 3), "...")

    # -- (C) indirect rows (indirect modifier) ------------------------------
    mem = Memory(1 << 20)
    a_addr = mem.alloc_array(a)
    perm = rng.permutation(N).astype(np.int32)
    b_addr = mem.alloc_array(perm * np.int32(N))  # row pointers (elements)
    c_addr = mem.alloc_array(np.zeros(N, dtype=np.float32))

    def indirect(b):
        b.emit(
            uve.SsConfig1D(u(3), Direction.LOAD, b_addr // 4, N, 1, etype=I32),
            uve.SsSta(u(0), Direction.LOAD, a_addr // 4, N, 1, etype=F32),
            uve.SsAppInd(u(0), Param.OFFSET, IndirectBehavior.SET_ADD, u(3),
                         last=True),
            uve.SsConfig1D(u(1), Direction.STORE, c_addr // 4, N, 1, etype=F32),
        )

    got = run(indirect, mem, c_addr, N)
    np.testing.assert_allclose(got, a[perm].max(axis=1))
    print("(C) row-pointer indirect maxima:", np.round(got[:5], 3), "...")
    print("\nsame compute code, three access patterns — the Fig. 2 point.")


if __name__ == "__main__":
    main()
