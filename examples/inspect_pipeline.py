"""Inspecting execution: functional traces and pipeline timelines.

Shows the debugging tools a performance engineer would use: a dynamic
trace of the first loop iterations (who consumed which stream chunk),
the per-stream summary, and a cycle-accurate rename/issue/commit
timeline through the out-of-order pipeline.

    python examples/inspect_pipeline.py
"""
import numpy as np

from repro.isa import f
from repro.isa.assembler import assemble
from repro.memory.backing import Memory
from repro.sim.debug import functional_trace, pipeline_timeline, stream_report
from repro.sim.functional import FunctionalSimulator

N = 256

SOURCE = """
; dot-product flavoured loop: acc += x[i]*y[i], then horizontal add
    ss.ld.w     u0, {x}, {n}, 1
    ss.ld.w     u1, {y}, {n}, 1
    so.v.dup.fw u5, f0
loop:
    so.a.mac.fp u5, u0, u1
    so.b.nend   u0, loop
    so.r.add.sc f1, u5
    halt
"""


def main() -> None:
    rng = np.random.default_rng(11)
    xs = rng.standard_normal(N).astype(np.float32)
    ys = rng.standard_normal(N).astype(np.float32)

    mem = Memory(1 << 20)
    xa, ya = mem.alloc_array(xs), mem.alloc_array(ys)
    source = SOURCE.format(x=xa // 4, y=ya // 4, n=N)

    print("== dynamic trace (first 14 instructions) ==")
    program = assemble(source, "dot")
    print(functional_trace(program, Memory_copy(mem), limit=14))
    print()

    print("== stream summary ==")
    sim = FunctionalSimulator(assemble(source, "dot"), memory=Memory_copy(mem))
    summary = sim.run()
    dot = sim.state.read_f(f(1))
    print(stream_report(summary))
    print(f"dot product = {dot:.4f} (numpy: {float(xs @ ys):.4f})")
    print()

    print("== pipeline timeline (first 16 ops) ==")
    print(pipeline_timeline(assemble(source, "dot"), Memory_copy(mem), count=16))


def Memory_copy(mem: Memory) -> Memory:
    clone = Memory(mem.size)
    clone.data[:] = mem.data
    clone._brk = mem._brk
    return clone


if __name__ == "__main__":
    main()
