"""From loop nest to streams automatically: the mini affine compiler.

The paper defers the UVE compiler to future work but describes its job
(§III-A2): recognise affine combinations of loop induction variables and
configure streams from them.  `repro.streams.compiler` implements that
front-end analysis; this example compiles a small matrix-vector product
straight from its loop-nest description, lowers the patterns to ss.*
configuration instructions, and runs the result.

    python examples/affine_compiler.py
"""
import numpy as np

from repro.common.types import ElementType
from repro.cpu.config import uve_machine
from repro.isa import ProgramBuilder, f, u
from repro.isa import scalar_ops as sc
from repro.isa import uve_ops as uve
from repro.memory.backing import Memory
from repro.sim.simulator import Simulator
from repro.streams import StreamIterator
from repro.streams.compiler import (
    AffineAccess,
    LoopNest,
    TriangularBound,
    compile_access,
    config_instructions,
)
from repro.streams.pattern import Direction

N = 64
F32 = ElementType.F32


def main() -> None:
    rng = np.random.default_rng(5)
    a = rng.standard_normal((N, N)).astype(np.float32)
    xv = rng.standard_normal(N).astype(np.float32)

    mem = Memory(1 << 22)
    a_addr = mem.alloc_array(a)
    x_addr = mem.alloc_array(xv)
    y_addr = mem.alloc_array(np.zeros(N, dtype=np.float32))

    # The source loop nest:   for i:  for j:  y[i] += A[i][j] * x[j]
    # A and x live in the (i, j) nest; the y store happens once per i,
    # so a compiler places it at the i level.
    nest = LoopNest(["i", "j"], bounds={"i": N, "j": N})
    outer = LoopNest(["i"], bounds={"i": N})
    patterns = {
        "A": compile_access(nest, AffineAccess("A", a_addr // 4,
                                               {"i": N, "j": 1})),
        "x": compile_access(nest, AffineAccess("x", x_addr // 4,
                                               {"j": 1})),  # re-read per i
        "y": compile_access(outer, AffineAccess("y", y_addr // 4, {"i": 1},
                                                direction=Direction.STORE)),
    }

    print("compiled patterns:")
    for name, pattern in patterns.items():
        dims = [
            (lv.descriptor.offset, lv.descriptor.size, lv.descriptor.stride)
            for lv in pattern.levels
        ]
        print(f"  {name}: {dims}")
    print()

    # Lower to configuration instructions and build the kernel by hand
    # (a real compiler would also emit the loop body).
    b = ProgramBuilder("compiled-mv")
    b.emit(*config_instructions(u(0), patterns["A"]))
    b.emit(*config_instructions(u(1), patterns["x"]))
    # y is produced one element per row through the scalar interface.
    b.emit(*config_instructions(u(2), patterns["y"]))
    b.label("row")
    b.emit(uve.SoDup(u(5), 0.0, etype=F32))
    b.label("chunk")
    b.emit(
        uve.SoMac(u(5), u(0), u(1), etype=F32),
        uve.SoBranchDim(u(0), 0, "chunk", complete=False),
        uve.SoRedScalar("add", f(1), u(5), etype=F32),
        uve.SoScalarWrite(u(2), f(1), etype=F32),
        uve.SoBranchEnd(u(0), "row", negate=True),
        sc.Halt(),
    )
    program = b.build()
    print("configuration preamble:")
    for inst in program.instructions[:7]:
        print("   ", inst)
    print()

    result = Simulator(program, mem, uve_machine()).run()
    got = mem.ndarray(y_addr, (N,), np.float32)
    np.testing.assert_allclose(got, a @ xv, rtol=1e-4)
    print(f"y = A·x verified for N={N}; {result.committed} instructions, "
          f"{result.cycles:.0f} cycles (IPC {result.ipc:.2f})")

    # Bonus: a triangular nest compiles to a static size modifier.
    tri = LoopNest(["i", "j"], {"i": 8, "j": TriangularBound("i", 1, 1)})
    pattern = compile_access(tri, AffineAccess("L", 0, {"i": 8, "j": 1}))
    addrs = [addr // 4 for addr in StreamIterator(pattern).addresses()]
    print(f"\ntriangular nest compiles to {pattern.nmodifiers} modifier; "
          f"first rows: {addrs[:6]} ...")


if __name__ == "__main__":
    main()
