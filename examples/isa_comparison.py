"""ISA comparison: one kernel, three instruction sets, full timing.

Runs the jacobi-2d stencil on the UVE machine and on the baseline core
with the SVE-like and NEON-like ISAs, then prints a miniature version of
the paper's Fig. 8 row for this benchmark.

    python examples/isa_comparison.py [kernel-name]
"""
import sys

from repro.cpu.config import baseline_machine, uve_machine
from repro.kernels import get_kernel, kernel_names
from repro.sim.simulator import Simulator


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "jacobi-2d"
    kernel = get_kernel(name)
    print(f"benchmark {kernel.letter}: {kernel.name} ({kernel.domain}), "
          f"pattern {kernel.pattern}")
    if not kernel.sve_vectorized:
        print("  (starred benchmark: the baselines run scalar code)")
    print(f"  available kernels: {', '.join(kernel_names())}\n")

    results = {}
    for isa in ("uve", "sve", "neon"):
        config = uve_machine() if isa == "uve" else baseline_machine()
        wl = kernel.workload(seed=0)
        program = kernel.build(isa, wl, config.vector_bits)
        result = Simulator(program, wl.memory, config).run()
        wl.verify()
        results[isa] = result
        print(f"{isa:5s}: {result.committed:>9d} instructions  "
              f"{result.cycles:>10.0f} cycles  IPC {result.ipc:4.2f}  "
              f"bus {result.bus_utilization:5.1%}  "
              f"rename-blocked {result.rename_blocks_per_cycle:5.1%}")

    u, s, n = results["uve"], results["sve"], results["neon"]
    print()
    print(f"speed-up vs SVE : {s.cycles / u.cycles:5.2f}x   "
          f"(paper average on vectorized benchmarks: 2.4x)")
    print(f"speed-up vs NEON: {n.cycles / u.cycles:5.2f}x")
    print(f"instruction reduction vs SVE : {1 - u.committed / s.committed:6.1%}"
          f"  (paper average: 60.9%)")
    print(f"instruction reduction vs NEON: {1 - u.committed / n.committed:6.1%}"
          f"  (paper average: 93.2%)")


if __name__ == "__main__":
    main()
