"""Building a custom streaming kernel with the programmatic API.

Implements a banded matrix-vector product ``y[i] = sum_k band[i][k] *
x[i+k-1]`` (tridiagonal) that is not one of the paper's benchmarks, to
show how a downstream user targets UVE: three shifted input streams for
x, one 2-D stream for the bands, an output stream, and a vectorized loop
with zero index arithmetic.  Then sweeps the Streaming Engine FIFO depth
to show the Fig. 10-style sensitivity on a custom kernel.

    python examples/custom_stream_kernel.py
"""
import numpy as np

from repro.common.types import ElementType
from repro.cpu.config import EngineConfig, uve_machine
from repro.isa import ProgramBuilder, u
from repro.isa import scalar_ops as sc
from repro.isa import uve_ops as uve
from repro.memory.backing import Memory
from repro.sim.simulator import Simulator
from repro.streams.pattern import Direction

F32 = ElementType.F32
N = 8192


def build(bands_addr, x_addr, y_addr, n):
    """y[i] = lo[i]*x[i-1] + mid[i]*x[i] + hi[i]*x[i+1] over the interior."""
    interior = n - 2
    b = ProgramBuilder("tridiag-mv")
    be, xe, ye = bands_addr // 4, x_addr // 4, y_addr // 4
    # Bands stored as three contiguous arrays lo|mid|hi of length n.
    for reg, band in ((u(0), 0), (u(1), 1), (u(2), 2)):
        b.emit(uve.SsConfig1D(reg, Direction.LOAD, be + band * n + 1,
                              interior, 1, etype=F32))
    for reg, shift in ((u(3), 0), (u(4), 1), (u(5), 2)):
        b.emit(uve.SsConfig1D(reg, Direction.LOAD, xe + shift,
                              interior, 1, etype=F32))
    b.emit(uve.SsConfig1D(u(6), Direction.STORE, ye + 1, interior, 1,
                          etype=F32))
    b.label("loop")
    b.emit(
        uve.SoOp("mul", u(7), u(0), u(3), etype=F32),
        uve.SoMac(u(7), u(1), u(4), etype=F32),
        uve.SoMac(u(7), u(2), u(5), etype=F32),
        uve.SoMove(u(6), u(7), etype=F32),
        uve.SoBranchEnd(u(0), "loop", negate=True),
        )
    b.emit(sc.Halt())
    return b.build()


def main() -> None:
    rng = np.random.default_rng(3)
    bands = rng.standard_normal((3, N)).astype(np.float32)
    xs = rng.standard_normal(N).astype(np.float32)

    expected = np.zeros(N, dtype=np.float32)
    expected[1:-1] = (
        bands[0, 1:-1] * xs[:-2]
        + bands[1, 1:-1] * xs[1:-1]
        + bands[2, 1:-1] * xs[2:]
    )

    print("tridiagonal matrix-vector product, n =", N)
    print(f"{'FIFO depth':>10s} {'cycles':>10s} {'IPC':>6s} "
          f"{'mean FIFO occupancy':>20s}")
    for depth in (2, 4, 8, 12):
        mem = Memory(1 << 22)
        b_addr = mem.alloc_array(bands)
        x_addr = mem.alloc_array(xs)
        y_addr = mem.alloc_array(np.zeros(N, dtype=np.float32))
        config = uve_machine().with_(engine=EngineConfig(fifo_depth=depth))
        program = build(b_addr, x_addr, y_addr, N)
        result = Simulator(program, mem, config).run()
        got = mem.ndarray(y_addr, (N,), np.float32)
        np.testing.assert_allclose(got[1:-1], expected[1:-1], rtol=1e-5)
        engine = result.pipeline.engine
        print(f"{depth:>10d} {result.cycles:>10.0f} {result.ipc:>6.2f} "
              f"{engine.stats.mean_fifo_occupancy:>20.1f}")
    print("\nresult verified against NumPy at every depth")


if __name__ == "__main__":
    main()
