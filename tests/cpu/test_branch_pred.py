"""Unit tests for the gshare branch predictor."""
from repro.cpu.branch_pred import GsharePredictor


class TestGshare:
    def test_learns_always_taken(self):
        bp = GsharePredictor()
        for _ in range(100):
            bp.record_outcome(0x40, True)
        assert bp.predict(0x40)

    def test_learns_never_taken(self):
        bp = GsharePredictor()
        wrong = sum(bp.record_outcome(0x40, False) for _ in range(100))
        assert wrong <= 3  # warms up quickly
        assert not bp.predict(0x40)

    def test_learns_alternating_via_history(self):
        bp = GsharePredictor()
        outcomes = [True, False] * 200
        wrong = sum(bp.record_outcome(0x80, t) for t in outcomes)
        # With global history the alternating pattern becomes predictable.
        assert wrong / len(outcomes) < 0.2

    def test_loop_exit_mispredicts_once_per_loop(self):
        bp = GsharePredictor()
        wrong = 0
        for _ in range(20):  # 20 loops of 50 iterations
            for i in range(50):
                wrong += bp.record_outcome(0x10, i < 49)
        assert wrong < 20 * 4  # about one mispredict per loop exit

    def test_accuracy_property(self):
        bp = GsharePredictor()
        for _ in range(10):
            bp.record_outcome(0, True)
        assert 0.0 <= bp.accuracy <= 1.0
        assert bp.predictions == 10

    def test_distinct_pcs_learn_opposite_biases(self):
        bp = GsharePredictor()
        wrong = 0
        for _ in range(300):
            wrong += bp.record_outcome(0x100, True)
            wrong += bp.record_outcome(0x104, False)
        # With history+PC hashing the interleaved pattern is learnable.
        assert wrong / 600 < 0.1
