"""Timing-model integration tests on the saxpy kernel: the paper's
headline effects (speedup, code reduction, rename pressure) must appear.
"""
import numpy as np
import pytest

from repro.cpu.config import MachineConfig, baseline_machine, uve_machine
from repro.memory.backing import Memory
from repro.sim.simulator import Simulator
from tests.sim.test_functional_saxpy import (
    build_neon_saxpy,
    build_sve_saxpy,
    build_uve_saxpy,
    make_workload,
)


# Working sets must exceed the L1 (as the paper's workloads do); with all
# three arrays L1-resident the baseline's 4-cycle L1 hits beat the stream
# path's L2 round-trip, a regime the paper does not evaluate (cf. Fig. 11).
def run_saxpy(build, config, n=16384):
    xs, ys, a = make_workload(n)
    mem = Memory(1 << 22)
    x_addr = mem.alloc_array(xs)
    y_addr = mem.alloc_array(ys)
    program = build(x_addr, y_addr, n, a)
    result = Simulator(program, mem, config).run()
    out = mem.ndarray(y_addr, (n,), np.float32)
    np.testing.assert_allclose(out, a * xs + ys, rtol=1e-6)
    return result


@pytest.fixture(scope="module")
def results():
    return {
        "uve": run_saxpy(build_uve_saxpy, uve_machine()),
        "sve": run_saxpy(build_sve_saxpy, baseline_machine()),
        "neon": run_saxpy(build_neon_saxpy, baseline_machine()),
    }


class TestTimingSanity:
    def test_cycles_positive_and_finite(self, results):
        for r in results.values():
            assert 0 < r.cycles < 10_000_000

    def test_ipc_within_machine_width(self, results):
        for r in results.values():
            assert 0 < r.ipc <= 8.0

    def test_uve_faster_than_sve(self, results):
        assert results["sve"].cycles > results["uve"].cycles

    def test_sve_faster_than_neon(self, results):
        assert results["neon"].cycles > results["sve"].cycles

    def test_uve_commits_fewest_instructions(self, results):
        assert results["uve"].committed < results["sve"].committed
        assert results["sve"].committed < results["neon"].committed

    def test_uve_blocks_come_from_streaming_structures(self, results):
        # When UVE rename stalls on saxpy it is backpressure from the
        # streaming structures (store FIFO) or the shared vector PRF —
        # never from the load/store queues the baseline pressures.
        causes = results["uve"].timing.rename_block_causes
        assert set(causes) <= {"store_fifo", "vec_regs", "rob", "iq"}
        sve_causes = results["sve"].timing.rename_block_causes
        assert "store_fifo" not in sve_causes

    def test_l2_resident_workload_barely_touches_dram(self, results):
        # The working set was warmed into the L2; only edge evictions may
        # reach DRAM (the paper's "L2-bound" benchmarks behave the same).
        total = 3 * 16384 * 4
        for r in results.values():
            assert r.hierarchy.dram.total_bytes < 0.1 * total

    def test_l2_bound_kernel_has_insignificant_bus_utilization(self, results):
        # The working set was warmed into the L2, so DRAM utilization is
        # insignificant for every ISA (the paper's L2-bound observation).
        for r in results.values():
            assert r.bus_utilization < 0.05


class TestEngineBehaviour:
    def test_engine_fetched_all_chunks(self, results):
        engine = results["uve"].pipeline.engine
        assert engine is not None
        assert engine.stats.chunks_committed > 0
        assert engine.stats.line_requests > 0

    def test_store_drain_completed(self, results):
        engine = results["uve"].pipeline.engine
        assert not engine.stores_pending

    def test_baseline_has_no_engine(self, results):
        assert results["sve"].pipeline.engine is None


class TestConfigSweeps:
    def test_fifo_depth_two_is_slower(self):
        cfg8 = uve_machine()
        cfg2 = MachineConfig(
            streaming=True, engine=cfg8.engine.__class__(fifo_depth=2)
        )
        fast = run_saxpy(build_uve_saxpy, cfg8)
        slow = run_saxpy(build_uve_saxpy, cfg2)
        assert slow.cycles >= fast.cycles

    def test_uve_insensitive_to_vec_regs(self):
        # Fig. 9's UVE-side claim: performance is flat in the number of
        # physical vector registers (the SVE-side gain is checked by the
        # fig9 harness on the paper's kernel subset).
        def with_vec_regs(cfg, n):
            core = cfg.core.__class__(vec_phys_regs=n)
            return cfg.with_(core=core)

        uve48 = run_saxpy(build_uve_saxpy, with_vec_regs(uve_machine(), 48))
        uve96 = run_saxpy(build_uve_saxpy, with_vec_regs(uve_machine(), 96))
        assert abs(uve48.cycles - uve96.cycles) / uve48.cycles < 0.10
