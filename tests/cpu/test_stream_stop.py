"""Regression tests for ``ss.stop`` stream termination.

``ss.stop`` must terminate only the stream its register *currently*
aliases in architectural (commit) order.  The historical bug terminated
the stream most recently configured on the register — so stopping an
abandoned stream and immediately reconfiguring the same ``u`` register
killed the *new* stream, silently truncating its transfers.
"""
import numpy as np

from repro.cpu.config import uve_machine
from repro.isa import ProgramBuilder, u
from repro.isa import scalar_ops as sc
from repro.isa import uve_ops as uve
from repro.memory.backing import Memory
from repro.sim.simulator import Simulator
from repro.streams.pattern import Direction


def test_stop_then_reconfigure_same_register():
    """Two back-to-back streams on the same ``u`` register: the stop of
    the first must not touch the second."""
    n = 64
    mem = Memory(1 << 20)
    src = mem.alloc_array(np.arange(n, dtype=np.float32))
    dst = mem.alloc_array(np.zeros(n, dtype=np.float32))

    b = ProgramBuilder("stop-alias")
    # First pair (uids 0, 1): abandoned after a single chunk.
    b.emit(
        uve.SsConfig1D(u(0), Direction.LOAD, src // 4, n, 1),
        uve.SsConfig1D(u(1), Direction.STORE, dst // 4, n, 1),
        uve.SoMove(u(1), u(0)),
        uve.SsCtl("stop", u(0)),
        uve.SsCtl("stop", u(1)),
    )
    # Second pair (uids 2, 3) on the SAME registers: full copy.
    b.emit(
        uve.SsConfig1D(u(0), Direction.LOAD, src // 4, n, 1),
        uve.SsConfig1D(u(1), Direction.STORE, dst // 4, n, 1),
    )
    b.label("loop")
    b.emit(
        uve.SoMove(u(1), u(0)),
        uve.SoBranchEnd(u(0), "loop", negate=True),
        sc.Halt(),
    )

    result = Simulator(b.build(), mem, uve_machine()).run()

    # Functional: the second stream pair copied the whole array.
    out = mem.data[dst:dst + 4 * n].view(np.float32)
    assert np.array_equal(out, np.arange(n, dtype=np.float32))

    # Timing: the stops terminated exactly the first pair of streams.
    streams = result.pipeline.engine.streams
    assert streams[0].terminated and streams[1].terminated
    assert not streams[2].terminated and not streams[3].terminated
    # ... and the replacement streams ran to architectural completion.
    assert streams[2].commit_head == streams[2].num_chunks
    assert streams[3].store_drained == streams[3].num_chunks
