"""Unit-level tests of the out-of-order pipeline on tiny synthetic
programs with known timing characteristics."""
import numpy as np
import pytest

from repro.common.types import ElementType

from repro.cpu.config import MachineConfig, baseline_machine
from repro.isa import ProgramBuilder, f, u, x
from repro.isa import scalar_ops as sc
from repro.isa import uve_ops as uve
from repro.memory.backing import Memory
from repro.sim.simulator import Simulator
from repro.streams.pattern import Direction


def run(program, memory=None, config=None):
    memory = memory or Memory(1 << 20)
    return Simulator(program, memory, config or baseline_machine()).run()


def loop_program(body_builder, iters=200, name="loop"):
    b = ProgramBuilder(name)
    b.emit(sc.Li(x(1), 0), sc.Li(x(2), iters))
    b.label("loop")
    body_builder(b)
    b.emit(
        sc.IntOp("add", x(1), x(1), 1),
        sc.BranchCmp("lt", x(1), x(2), "loop"),
    )
    b.emit(sc.Halt())
    return b.build()


class TestThroughput:
    def test_committed_matches_trace(self):
        program = loop_program(lambda b: None, iters=100)
        r = run(program)
        assert r.committed == r.summary.committed
        assert r.committed == 3 + 100 * 2  # prologue+halt + 2/iter

    def test_independent_int_ops_reach_alu_throughput(self):
        # 2 ALU ops + branch per iteration; 2 int ALUs, taken-branch-bounded
        # fetch: about 1.5-2 cycles/iteration.
        def body(b):
            b.emit(sc.IntOp("add", x(5), x(5), 1))

        r = run(loop_program(body, iters=500))
        assert r.cycles < 3.0 * 500

    def test_dependent_fp_chain_is_latency_bound(self):
        # A serial FP chain: each fadd depends on the previous one
        # (latency 2) -> at least 2 cycles per op.
        def body(b):
            b.emit(sc.FOp("add", f(1), f(1), 1.0))

        r = run(loop_program(body, iters=300))
        assert r.cycles >= 2.0 * 300

    def test_int_div_slower_than_add(self):
        def div_body(b):
            b.emit(sc.IntOp("div", x(5), x(5), 3))

        def add_body(b):
            b.emit(sc.IntOp("add", x(5), x(5), 3))

        slow = run(loop_program(div_body, iters=200))
        fast = run(loop_program(add_body, iters=200))
        assert slow.cycles > 2 * fast.cycles


class TestMemoryTiming:
    def test_l1_hit_loads(self):
        mem = Memory(1 << 20)
        addr = mem.alloc_array(np.zeros(16, dtype=np.int64))
        b = ProgramBuilder("loads")
        b.emit(sc.Li(x(6), addr), sc.Li(x(1), 0), sc.Li(x(2), 200))
        b.label("loop")
        b.emit(
            sc.Load(x(5), x(6), 0),
            sc.IntOp("add", x(1), x(1), 1),
            sc.BranchCmp("lt", x(1), x(2), "loop"),
            sc.Halt(),
        )
        # Build loop correctly: branch back then halt at fallthrough.
        r = run(b.build(), mem)
        # Independent L1-hit loads pipeline: well under the raw 4-cycle
        # latency per load.
        assert r.cycles < 3.0 * 200

    def test_dependent_pointer_chase_pays_full_latency(self):
        mem = Memory(1 << 20)
        # Build a self-referential pointer chain (each slot points to the
        # next, spaced by a cache line so every hop is a distinct line).
        n = 64
        addrs = [mem.alloc(64) for _ in range(n + 1)]
        for i in range(n):
            mem.write_scalar(addrs[i], addrs[i + 1], ElementType.I64)
        b = ProgramBuilder("chase")
        b.emit(sc.Li(x(5), addrs[0]), sc.Li(x(1), 0), sc.Li(x(2), n))
        b.label("loop")
        b.emit(
            sc.Load(x(5), x(5), 0),
            sc.IntOp("add", x(1), x(1), 1),
            sc.BranchCmp("lt", x(1), x(2), "loop"),
            sc.Halt(),
        )
        r = run(b.build(), mem)
        # Every load depends on the previous: >= L1 hit latency each.
        assert r.cycles >= 4.0 * n

    def test_store_queue_backpressure_counted(self):
        config = baseline_machine().with_(
            core=baseline_machine().core.__class__(sq_entries=2)
        )
        mem = Memory(1 << 20)
        base = mem.alloc(1 << 16)

        b = ProgramBuilder("stores")
        b.emit(sc.Li(x(6), base), sc.Li(x(1), 0), sc.Li(x(2), 300))
        b.label("loop")
        b.emit(
            sc.Store(x(1), x(6), 0),
            sc.IntOp("add", x(6), x(6), 64),
            sc.IntOp("add", x(1), x(1), 1),
            sc.BranchCmp("lt", x(1), x(2), "loop"),
            sc.Halt(),
        )
        r = run(b.build(), mem, config)
        assert r.timing.rename_block_causes.get("sq", 0) > 0


class TestBranches:
    def test_predictable_loop_branch_rarely_mispredicts(self):
        r = run(loop_program(lambda b: None, iters=500))
        assert r.timing.mispredict_rate < 0.05

    def test_random_branches_mispredict_and_cost(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, 400).astype(np.int64)
        mem = Memory(1 << 20)
        addr = mem.alloc_array(data)
        b = ProgramBuilder("random-branches")
        b.emit(sc.Li(x(6), addr), sc.Li(x(1), 0), sc.Li(x(2), 400))
        b.label("loop")
        b.emit(
            sc.Load(x(5), x(6), 0),
            sc.BranchCmp("eq", x(5), 0, "skip"),
            sc.IntOp("add", x(7), x(7), 1),
        )
        b.label("skip")
        b.emit(
            sc.IntOp("add", x(6), x(6), 8),
            sc.IntOp("add", x(1), x(1), 1),
            sc.BranchCmp("lt", x(1), x(2), "loop"),
            sc.Halt(),
        )
        r = run(b.build(), mem)
        assert r.timing.branches > 0
        assert r.timing.mispredict_rate > 0.1
        assert r.timing.fetch_stall_cycles > 400  # bubbles from mispredicts


class TestStructuralLimits:
    def test_rob_limits_inflight(self):
        small = baseline_machine()
        small = small.with_(core=small.core.__class__(rob_entries=8))

        def body(b):
            b.emit(sc.FOp("add", f(2), f(1), 1.0))  # independent, slow-ish

        r = run(loop_program(body, iters=300), config=small)
        assert r.timing.rename_block_causes.get("rob", 0) > 0

    def test_fp_regs_limit(self):
        small = baseline_machine()
        small = small.with_(core=small.core.__class__(fp_phys_regs=34))

        def body(b):
            b.emit(sc.FOp("add", f(2), f(1), 1.0))

        r = run(loop_program(body, iters=300), config=small)
        assert r.timing.rename_block_causes.get("fp_regs", 0) > 0

    def test_streaming_disabled_machine_rejects_stream_traces(self):
        from repro.errors import ConfigError
        b = ProgramBuilder("s")
        b.emit(
            uve.SsConfig1D(u(0), Direction.LOAD, 16, 4, 1),
            sc.Halt(),
        )
        mem = Memory(1 << 20)
        with pytest.raises(ConfigError):
            Simulator(b.build(), mem, baseline_machine()).run()
