"""Corner-case tests for pipeline structures not covered elsewhere."""
import pytest

from repro.cpu.config import baseline_machine
from repro.isa import ProgramBuilder, f, x
from repro.isa import scalar_ops as sc
from repro.memory.backing import Memory
from repro.sim.simulator import Simulator


def run(program, config=None):
    return Simulator(program, Memory(1 << 20),
                     config or baseline_machine()).run()


class TestWindowLimits:
    def _independent_fp_loop(self, iters=200):
        b = ProgramBuilder("fp")
        b.emit(sc.Li(x(1), 0), sc.Li(x(2), iters))
        b.label("loop")
        b.emit(
            sc.FOp("div", f(2), f(1), 1.5),  # long-latency, independent
            sc.IntOp("add", x(1), x(1), 1),
            sc.BranchCmp("lt", x(1), x(2), "loop"),
            sc.Halt(),
        )
        return b.build()

    def _dependent_backlog_loop(self, iters=200):
        # A serial div chain whose dependents pile up waiting to issue.
        b = ProgramBuilder("backlog")
        b.emit(sc.Li(x(1), 0), sc.Li(x(2), iters), sc.FLi(f(1), 1.5))
        b.label("loop")
        b.emit(
            sc.FOp("div", f(1), f(1), 1.0001),  # serial chain
            sc.FOp("add", f(3), f(1), 1.0),     # waits on the chain
            sc.FOp("add", f(4), f(1), 2.0),
            sc.IntOp("add", x(1), x(1), 1),
            sc.BranchCmp("lt", x(1), x(2), "loop"),
            sc.Halt(),
        )
        return b.build()

    def test_tiny_iq_blocks_rename(self):
        cfg = baseline_machine()
        cfg = cfg.with_(core=cfg.core.__class__(iq_entries=4))
        r = run(self._dependent_backlog_loop(), cfg)
        assert r.timing.rename_block_causes.get("iq", 0) > 0

    def test_tiny_scheduler_blocks_rename(self):
        cfg = baseline_machine()
        cfg = cfg.with_(core=cfg.core.__class__(scheduler_entries=2))
        r = run(self._independent_fp_loop(), cfg)
        assert r.timing.rename_block_causes.get("scheduler", 0) > 0

    def test_lq_limit(self):
        mem = Memory(1 << 20)
        base = mem.alloc(1 << 16)
        b = ProgramBuilder("loads")
        b.emit(sc.Li(x(6), base), sc.Li(x(1), 0))
        b.label("loop")
        b.emit(
            sc.Load(f(1), x(6), 0),
            sc.IntOp("add", x(6), x(6), 64),
            sc.IntOp("add", x(1), x(1), 1),
            sc.BranchCmp("lt", x(1), 300, "loop"),
            sc.Halt(),
        )
        cfg = baseline_machine()
        cfg = cfg.with_(core=cfg.core.__class__(lq_entries=2))
        r = Simulator(b.build(), mem, cfg).run()
        assert r.timing.rename_block_causes.get("lq", 0) > 0

    def test_wider_commit_helps_int_loop(self):
        narrow = baseline_machine()
        narrow = narrow.with_(core=narrow.core.__class__(commit_width=1))
        wide = baseline_machine()
        prog = self._independent_fp_loop()
        assert run(prog, narrow).cycles > run(prog, wide).cycles


class TestFrontEnd:
    def test_deeper_frontend_costs_more_on_mispredicts(self):
        import numpy as np
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, 300).astype(np.int64)
        mem = Memory(1 << 20)
        addr = mem.alloc_array(data)

        def program():
            b = ProgramBuilder("br")
            b.emit(sc.Li(x(6), addr), sc.Li(x(1), 0))
            b.label("loop")
            b.emit(
                sc.Load(x(5), x(6), 0),
                sc.BranchCmp("eq", x(5), 0, "skip"),
                sc.IntOp("add", x(7), x(7), 1),
            )
            b.label("skip")
            b.emit(
                sc.IntOp("add", x(6), x(6), 8),
                sc.IntOp("add", x(1), x(1), 1),
                sc.BranchCmp("lt", x(1), 300, "loop"),
                sc.Halt(),
            )
            return b.build()

        shallow = baseline_machine()
        shallow = shallow.with_(core=shallow.core.__class__(frontend_depth=2))
        deep = baseline_machine()
        deep = deep.with_(core=deep.core.__class__(frontend_depth=30))
        fast = Simulator(program(), mem, shallow).run()
        mem2 = Memory(1 << 20)
        mem2.data[:] = mem.data
        mem2._brk = mem._brk
        slow = Simulator(program(), mem2, deep).run()
        assert slow.cycles > fast.cycles
