"""Event-horizon fast-forward equivalence tests.

The cycle-skipping fast path in :meth:`Pipeline.run` must be invisible:
every counter in :class:`PipelineStats` and every engine statistic
(including the per-cycle sampled ``mean_fifo_occupancy``) has to be
bit-identical with fast-forward on and off, on streaming, load/store-
bound and branchy-scalar workloads alike.
"""
import pytest

from repro.common.types import ElementType
from repro.cpu.config import baseline_machine, uve_machine
from repro.engine.engine import StreamingEngine
from repro.isa import ProgramBuilder, f, x
from repro.isa import scalar_ops as sc
from repro.kernels import get_kernel
from repro.memory.backing import Memory
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.simulator import Simulator
from repro.sim.trace import StreamTraceInfo
from repro.streams.pattern import Direction, MemLevel


def _run(program, memory, config):
    """Run and capture everything the equivalence gate compares."""
    result = Simulator(program, memory, config).run()
    engine = result.pipeline.engine
    occupancy = (
        engine.stats.mean_fifo_occupancy if engine is not None else None
    )
    return result.timing.as_dict(), occupancy, result.pipeline.ff_skipped_cycles


def _kernel_run(kernel_name, isa, fast_forward, scale=0.2):
    kernel = get_kernel(kernel_name)
    wl = kernel.workload(seed=0, scale=scale)
    base = uve_machine() if isa == "uve" else baseline_machine()
    config = base.with_(fast_forward=fast_forward)
    program = kernel.build(isa, wl, config.vector_bits)
    return _run(program, wl.memory, config)


def _branchy_program(iters=300):
    """Scalar loop with a data-dependent branch every iteration."""
    b = ProgramBuilder("branchy")
    b.emit(sc.Li(x(1), 0), sc.Li(x(2), iters), sc.Li(x(3), 0))
    b.label("loop")
    b.emit(
        sc.IntOp("and", x(4), x(1), 3),
        sc.BranchCmp("ne", x(4), 0, "skip"),
        sc.IntOp("add", x(3), x(3), 7),
    )
    b.label("skip")
    b.emit(
        sc.FOp("add", f(1), f(1), 1.0),
        sc.IntOp("add", x(1), x(1), 1),
        sc.BranchCmp("lt", x(1), x(2), "loop"),
    )
    b.emit(sc.Halt())
    return b.build()


class TestStatsEquivalence:
    @pytest.mark.parametrize(
        "kernel_name,isa",
        [
            ("stream", "uve"),  # streaming-engine bound
            ("memcpy", "sve"),  # load/store bound, no engine
        ],
    )
    def test_kernel_stats_identical(self, kernel_name, isa):
        off = _kernel_run(kernel_name, isa, fast_forward=False)
        on = _kernel_run(kernel_name, isa, fast_forward=True)
        assert on[0] == off[0]  # PipelineStats.as_dict()
        assert on[1] == off[1]  # mean_fifo_occupancy
        assert off[2] == 0  # off path must never skip
        assert on[2] > 0  # the fast path actually engaged

    def test_branchy_scalar_stats_identical(self):
        program = _branchy_program()
        off = _run(
            program, Memory(1 << 20),
            baseline_machine().with_(fast_forward=False),
        )
        on = _run(
            program, Memory(1 << 20),
            baseline_machine().with_(fast_forward=True),
        )
        assert on[0] == off[0]
        assert off[2] == 0


class TestEngineSkipIdle:
    def test_skip_idle_matches_ticked_occupancy_sampling(self):
        """N quiescent ticks and one skip_idle(N) must accumulate the
        exact same FIFO-occupancy samples."""
        config = uve_machine()
        hierarchy = MemoryHierarchy(config)
        engine = StreamingEngine(config.engine, hierarchy)
        info = StreamTraceInfo(
            uid=0,
            reg=0,
            direction=Direction.LOAD,
            etype=ElementType.F32,
            mem_level=MemLevel.L2,
            ndims=1,
            storage_bytes=4,
        )
        line = hierarchy.line_bytes
        for chunk in range(config.engine.fifo_depth + 4):
            info.chunks.append([chunk * line])
            info.origin_reads.append([])
            info.chunk_flags.append(0)
        engine.configure(info, 0.0)

        # Tick until the FIFO fills and the engine goes quiescent.
        now = 1.0
        while engine.tick(now):
            now += 1.0
        stream = engine.streams[0]
        assert stream.gen_next - stream.commit_head == config.engine.fifo_depth

        stats = engine.stats
        base = (stats.occupancy_samples, stats.occupancy_total)
        cycles = 50
        for i in range(1, cycles + 1):
            assert not engine.tick(now + i)
        ticked = (
            stats.occupancy_samples - base[0],
            stats.occupancy_total - base[1],
        )
        assert ticked[0] == cycles  # one load stream sampled per cycle

        # Rewind and take the fast path instead.
        stats.occupancy_samples, stats.occupancy_total = base
        engine.skip_idle(cycles)
        skipped = (
            stats.occupancy_samples - base[0],
            stats.occupancy_total - base[1],
        )
        assert skipped == ticked
