"""Unit tests for the pooled (shared) load-FIFO option (§IV-B future
work, implemented as ``EngineConfig.shared_fifo``)."""
from repro.cpu.config import EngineConfig
from repro.engine.engine import StreamingEngine

from tests.engine.test_engine import FakeHierarchy, make_info


def make_engine(latency=10, **cfg):
    hierarchy = FakeHierarchy(latency=latency)
    return StreamingEngine(EngineConfig(**cfg), hierarchy), hierarchy


class TestSharedFifo:
    def test_busy_stream_borrows_idle_streams_capacity(self):
        """The pool lets a busy stream run ahead past its nominal depth
        while a lightly-used stream leaves capacity unused."""
        engine, hier = make_engine(
            shared_fifo=True, fifo_depth=2, processing_modules=1
        )
        engine.configure(make_info(uid=0, reg=0, n_chunks=1), 0)  # idle-ish
        engine.configure(make_info(uid=1, reg=1, n_chunks=16), 0)  # busy
        for cycle in range(40):
            engine.tick(cycle)
        # Stream 1 fetched beyond its fixed-depth bound of 2.
        assert engine.streams[1].gen_next > 2

    def test_per_stream_cap_at_four_times_depth(self):
        engine, hier = make_engine(
            shared_fifo=True, fifo_depth=2, processing_modules=1
        )
        engine.configure(make_info(n_chunks=32), 0)
        for cycle in range(100):
            engine.tick(cycle)
        assert len(hier.reads) <= 8  # 4 x depth

    def test_pool_capacity_scales_with_active_streams(self):
        engine, _ = make_engine(shared_fifo=True, fifo_depth=4)
        engine.configure(make_info(uid=0, reg=0, n_chunks=8), 0)
        engine.configure(make_info(uid=1, reg=1, n_chunks=8), 0)
        assert engine._shared_pool_free() == 8  # 4 x 2 active streams

    def test_pool_accounts_for_occupancy(self):
        engine, _ = make_engine(shared_fifo=True, fifo_depth=4,
                                processing_modules=2)
        engine.configure(make_info(n_chunks=8), 0)
        for cycle in range(6):
            engine.tick(cycle)
        used = engine.streams[0].fifo_occupancy()
        assert engine._shared_pool_free() == 4 - used

    def test_guaranteed_entry_prevents_starvation(self):
        """A stream under its nominal depth stays eligible even when the
        pool is exhausted by another stream (starvation avoidance)."""
        engine, hier = make_engine(
            shared_fifo=True, fifo_depth=2, processing_modules=1,
            latency=1000,
        )
        engine.configure(make_info(uid=0, reg=0, n_chunks=32), 0)
        for cycle in range(20):
            engine.tick(cycle)
        # Stream 0 hogged the pool; a new stream must still make progress.
        engine.configure(make_info(uid=1, reg=1, n_chunks=4), 20)
        for cycle in range(21, 60):
            engine.tick(cycle)
        assert engine.streams[1].gen_next >= 1

    def test_fixed_mode_unchanged(self):
        fixed, hier_fixed = make_engine(shared_fifo=False, fifo_depth=2,
                                        processing_modules=1)
        fixed.configure(make_info(n_chunks=8), 0)
        for cycle in range(30):
            fixed.tick(cycle)
        assert len(hier_fixed.reads) == 2
