"""Unit tests for the Streaming Engine timing model."""
import math

import pytest

from repro.common.types import ElementType
from repro.cpu.config import EngineConfig
from repro.engine.engine import StreamingEngine
from repro.engine.scheduler import StreamScheduler
from repro.engine.table import EngineStream
from repro.errors import ConfigError, StreamError
from repro.sim.trace import StreamTraceInfo
from repro.streams.pattern import Direction, MemLevel


class FakeTlb:
    walk_latency = 20

    def translate(self, addr):
        return 0

    def probe(self, addr):
        return True

    def stream_translate(self, addr):
        return True, 0


class FakeHierarchy:
    """Fixed-latency memory with access logging."""

    line_bytes = 64

    def __init__(self, latency=10):
        self.latency = latency
        self.reads = []
        self.writes = []
        self.tlb = FakeTlb()

        class _L1:
            @staticmethod
            def can_accept(now):
                return True

        self.l1d = _L1()

    def stream_read(self, line, now, level):
        self.reads.append((line, now, level))
        return now + self.latency

    def stream_write(self, line, now, level):
        self.writes.append((line, now))
        return now + 1


def make_info(uid=0, reg=0, n_chunks=4, lines_per_chunk=1,
              direction=Direction.LOAD, flags=None):
    info = StreamTraceInfo(
        uid=uid, reg=reg, direction=direction, etype=ElementType.F32,
        mem_level=MemLevel.L2, ndims=2, storage_bytes=48,
    )
    for c in range(n_chunks):
        base = c * lines_per_chunk * 64
        info.chunks.append(
            [base + i * 64 for i in range(lines_per_chunk)]
        )
        info.origin_reads.append([])
        info.chunk_flags.append(flags[c] if flags else 0)
    info.chunk_flags[-1] = info.ndims - 1
    return info


def make_engine(latency=10, **cfg):
    hierarchy = FakeHierarchy(latency)
    engine = StreamingEngine(EngineConfig(**cfg), hierarchy)
    return engine, hierarchy


class TestConfiguration:
    def test_scrob_serializes_configs(self):
        engine, _ = make_engine()
        t0 = engine.configure(make_info(uid=0), now=5)
        t1 = engine.configure(make_info(uid=1, reg=1), now=5)
        assert t1 == t0 + 1  # one configuration per cycle, in order

    def test_stream_limit_enforced(self):
        engine, _ = make_engine(max_streams=2)
        engine.configure(make_info(uid=0, reg=0), 0)
        engine.configure(make_info(uid=1, reg=1), 0)
        with pytest.raises(StreamError):
            engine.configure(make_info(uid=2, reg=2), 0)

    def test_finished_streams_recycled(self):
        engine, _ = make_engine(max_streams=1)
        engine.configure(make_info(uid=0, n_chunks=1), 0)
        for cycle in range(30):
            engine.tick(cycle)
        engine.commit_read(0, 0)
        engine.configure(make_info(uid=1, reg=1), 40)  # recycles uid 0
        assert 1 in engine.streams


class TestFetchAhead:
    def test_fetches_up_to_fifo_depth(self):
        engine, hier = make_engine(fifo_depth=2, processing_modules=1)
        engine.configure(make_info(n_chunks=8), 0)
        for cycle in range(50):
            engine.tick(cycle)
        # Only 2 chunks (= 2 lines) may be in flight before any commit.
        assert len(hier.reads) == 2

    def test_commit_frees_fifo_and_resumes(self):
        engine, hier = make_engine(fifo_depth=2, processing_modules=1)
        engine.configure(make_info(n_chunks=8), 0)
        for cycle in range(20):
            engine.tick(cycle)
        engine.commit_read(0, 0)
        for cycle in range(20, 40):
            engine.tick(cycle)
        assert len(hier.reads) == 3

    def test_chunk_ready_latency(self):
        engine, hier = make_engine(latency=10)
        engine.configure(make_info(), 0)
        for cycle in range(5):
            engine.tick(cycle)
        ready = engine.chunk_ready(0, 0)
        line, issued_at, _ = hier.reads[0]
        assert ready == issued_at + 10 + 2  # latency + fill/forward

    def test_unfetched_chunk_is_infinite(self):
        engine, _ = make_engine(fifo_depth=2)
        engine.configure(make_info(n_chunks=8), 0)
        engine.tick(0)
        assert math.isinf(engine.chunk_ready(0, 7))

    def test_multi_line_chunks_issue_one_line_per_cycle(self):
        engine, hier = make_engine(processing_modules=1)
        engine.configure(make_info(n_chunks=1, lines_per_chunk=3), 0)
        for cycle in range(10):
            engine.tick(cycle)
        issue_times = [t for (_, t, __) in hier.reads]
        assert len(issue_times) == 3
        assert issue_times[1] > issue_times[0]

    def test_request_queue_bounds_pathological_backlog(self):
        # The queue stages requests for the arbiter; in-flight misses are
        # tracked by cache MSHRs, so only a pathological backlog (far-
        # future completions piling up beyond 4x the queue) stalls
        # generation.
        engine, hier = make_engine(
            latency=100_000, memory_request_queue=1, processing_modules=2,
            fifo_depth=16,
        )
        engine.configure(make_info(n_chunks=16), 0)
        for cycle in range(30):
            engine.tick(cycle)
        assert len(hier.reads) == 4  # 4 x memory_request_queue
        assert engine.stats.request_queue_stalls > 0

    def test_mem_level_override(self):
        engine, hier = make_engine(mem_level_override="mem")
        engine.configure(make_info(), 0)
        for cycle in range(5):
            engine.tick(cycle)
        assert hier.reads[0][2] is MemLevel.MEM


class TestSpeculationSupport:
    def test_squash_reverts_to_commit_point(self):
        engine, _ = make_engine()
        engine.configure(make_info(), 0)
        engine.rename_read(0, 0)
        engine.rename_read(0, 1)
        stream = engine.streams[0]
        assert stream.spec_head == 2
        engine.squash(0, 0)
        assert stream.spec_head == 0  # reverted to commit point

    def test_squashed_data_stays_buffered(self):
        # A3: miss-speculatively consumed chunks remain valid — ready time
        # is unchanged after a squash, no re-fetch happens.
        engine, hier = make_engine()
        engine.configure(make_info(), 0)
        for cycle in range(10):
            engine.tick(cycle)
        before = engine.chunk_ready(0, 0)
        reads_before = len(hier.reads)
        engine.rename_read(0, 0)
        engine.squash(0, 0)
        for cycle in range(10, 15):
            engine.tick(cycle)
        assert engine.chunk_ready(0, 0) == before
        assert len(hier.reads) == reads_before + 0  # no duplicate loads


class TestStores:
    def make_store(self, engine, n_chunks=4):
        info = make_info(direction=Direction.STORE, n_chunks=n_chunks)
        engine.configure(info, 0)
        return info

    def test_reserve_until_full(self):
        engine, _ = make_engine(fifo_depth=2)
        self.make_store(engine)
        assert engine.reserve_store(0)
        assert engine.reserve_store(0)
        assert not engine.reserve_store(0)

    def test_commit_write_drains_and_frees(self):
        engine, hier = make_engine(fifo_depth=1)
        self.make_store(engine)
        assert engine.reserve_store(0)
        engine.commit_write(0, 0, now=5)
        assert engine.stores_pending
        engine.tick(6)
        assert not engine.stores_pending
        assert hier.writes == [(0, 6)]
        assert engine.reserve_store(0)  # entry freed after drain

    def test_drain_rate_one_line_per_port(self):
        engine, hier = make_engine(fifo_depth=8, store_ports=1)
        self.make_store(engine)
        for c in range(3):
            engine.reserve_store(0)
            engine.commit_write(0, c, now=0)
        for cycle in range(1, 4):
            engine.tick(cycle)
        assert len(hier.writes) == 3
        assert [t for (_, t) in hier.writes] == [1, 2, 3]


class TestScheduler:
    def _stream(self, uid, occupancy, num=10):
        info = make_info(uid=uid, reg=uid, n_chunks=num)
        s = EngineStream(info, fifo_depth=8, line_bytes=64, start_cycle=0)
        s.gen_next = occupancy
        return s

    def test_fifo_occupancy_priority(self):
        sched = StreamScheduler("fifo-occupancy")
        streams = [self._stream(0, 5), self._stream(1, 1), self._stream(2, 3)]
        chosen = sched.select(streams, 2, now=0)
        assert [s.info.uid for s in chosen] == [1, 2]

    def test_round_robin_rotates(self):
        sched = StreamScheduler("round-robin")
        streams = [self._stream(0, 1), self._stream(1, 1)]
        first = sched.select(streams, 1, now=0)[0].info.uid
        second = sched.select(streams, 1, now=1)[0].info.uid
        assert {first, second} == {0, 1}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            StreamScheduler("lifo")

    def test_full_fifo_not_selected(self):
        sched = StreamScheduler()
        full = self._stream(0, 8)
        assert sched.select([full], 2, now=0) == []


class TestDimensionSwitch:
    def test_dim_switch_costs_extra_cycle(self):
        engine, hier = make_engine(processing_modules=1, dim_switch_penalty=1)
        info = make_info(n_chunks=4, flags=[1, 0, 1, 1])
        engine.configure(info, 0)
        for cycle in range(20):
            engine.tick(cycle)
        assert engine.stats.dim_switch_stalls >= 1


class TestOverheadAccounting:
    def test_default_storage_matches_paper_scale(self):
        engine, _ = make_engine()
        ov = engine.storage_overheads()
        # Paper: ~14 KB of table storage and ~17 KB of FIFOs.
        assert 6_000 <= ov["stream_table_bytes"] <= 16_000
        assert 15_000 <= ov["fifo_bytes"] <= 20_000

    def test_reduced_config_is_about_one_tenth_l1(self):
        engine, _ = make_engine(max_streams=8, max_dims=4, max_mods=3)
        ov = engine.storage_overheads()
        assert ov["total_bytes"] <= 0.12 * 65536


class TestPageFaults:
    def test_unmapped_page_is_flagged_not_raised(self):
        """A2/§IV-A: the engine flags faulting elements for commit-time
        handling and keeps streaming."""
        engine, hier = make_engine()
        hier.tlb.probe = lambda addr: False  # every page unmapped
        hier.tlb.stream_translate = lambda addr: (False, 0)
        engine.configure(make_info(n_chunks=2), 0)
        for cycle in range(20):
            engine.tick(cycle)
        assert engine.stats.page_faults >= 2
        assert engine.stats.chunks_filled == 2  # streaming continued
