"""Unit tests for EngineStream (stream-table entry) internals."""
import math

import pytest

from repro.engine.table import EngineStream
from repro.errors import StreamError

from tests.engine.test_engine import make_info


def make_stream(info=None, depth=8, start=0.0):
    info = info or make_info()
    return EngineStream(info, fifo_depth=depth, line_bytes=64,
                        start_cycle=start)


class TestLineGeneration:
    def test_lines_deduplicated_within_chunk(self):
        info = make_info(n_chunks=1)
        # A chunk whose addresses share lines: 0,4,8 are line 0; 64 line 1.
        info.chunks[0] = [0, 4, 8, 64, 68]
        stream = make_stream(info)
        lines = []
        while True:
            line = stream.next_line_request()
            if line is None:
                break
            lines.append(line)
            stream.line_issued(100.0)
        assert lines == [0, 1]

    def test_origin_reads_prepended(self):
        info = make_info(n_chunks=1)
        info.chunks[0] = [0]
        info.origin_reads[0] = [4096]  # indirect index fetch, line 64
        stream = make_stream(info)
        assert stream.next_line_request() == 64
        stream.line_issued(10.0)
        assert stream.next_line_request() == 0

    def test_chunk_ready_includes_fill_forward(self):
        stream = make_stream()
        stream.next_line_request()
        finished = stream.line_issued(50.0)
        assert finished == 0
        assert stream.ready_cycle(0) == 52.0  # +2 fill/forward

    def test_ready_of_unfetched_chunk_is_infinite(self):
        stream = make_stream()
        assert math.isinf(stream.ready_cycle(3))

    def test_line_issued_without_request_rejected(self):
        stream = make_stream()
        with pytest.raises(StreamError):
            stream.line_issued(1.0)


class TestPointers:
    def test_commit_frees_and_marks_delivered(self):
        stream = make_stream()
        stream.next_line_request()
        stream.line_issued(10.0)
        stream.commit_read(0)
        assert stream.commit_head == 1
        # Committed chunks read as available (element-wise consumers).
        assert stream.ready_cycle(0) == 0.0

    def test_start_cycle_gates_generation(self):
        stream = make_stream(start=100.0)
        assert not stream.wants_generation(now=50.0)
        assert stream.wants_generation(now=100.0)

    def test_terminated_stream_inert(self):
        stream = make_stream()
        stream.terminate()
        assert not stream.wants_generation(0.0)

    def test_exhausted_generation(self):
        info = make_info(n_chunks=1)
        stream = make_stream(info)
        stream.next_line_request()
        stream.line_issued(1.0)
        assert stream.next_line_request() is None
        assert not stream.wants_generation(10.0)


class TestStoreBookkeeping:
    def test_occupancy_of_store_stream(self):
        from repro.streams.pattern import Direction
        info = make_info(direction=Direction.STORE)
        stream = make_stream(info, depth=2)
        assert stream.fifo_occupancy() == 0
        assert stream.reserve_store()
        assert stream.fifo_occupancy() == 1
        assert stream.reserve_store()
        assert not stream.reserve_store()
        stream.drain_store()
        assert stream.reserve_store()
