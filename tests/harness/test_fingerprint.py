"""Tests for canonical config/run fingerprints."""
from dataclasses import replace

import pytest

from repro.cpu.config import (
    DEFAULT_LATENCIES,
    baseline_machine,
    uve_machine,
)
from repro.harness.fingerprint import (
    canonicalize,
    config_fingerprint,
    fingerprint,
    run_fingerprint,
)
from repro.harness.runner import RunSpec


class TestConfigFingerprint:
    def test_equal_configs_equal_fingerprints(self):
        assert config_fingerprint(uve_machine()) == \
            config_fingerprint(uve_machine())

    def test_semantically_equal_dict_orderings_match(self):
        # repr() would differ for these two; the fingerprint must not.
        shuffled = dict(reversed(list(DEFAULT_LATENCIES.items())))
        a = uve_machine()
        b = uve_machine(latencies=shuffled)
        assert repr(a) != repr(b)
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_nested_field_change_misses(self):
        base = uve_machine()
        varied = base.with_(engine=replace(base.engine, fifo_depth=2))
        assert config_fingerprint(base) != config_fingerprint(varied)

    def test_deeply_nested_field_change_misses(self):
        base = uve_machine()
        varied = base.with_(core=replace(base.core, vec_phys_regs=96))
        assert config_fingerprint(base) != config_fingerprint(varied)

    def test_streaming_flag_distinguishes_machines(self):
        assert config_fingerprint(uve_machine()) != \
            config_fingerprint(baseline_machine())

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            fingerprint({"x": object()})

    def test_canonical_enum_keys_are_strings(self):
        canon = canonicalize(uve_machine())
        assert all(isinstance(k, str) for k in canon["latencies"])


class TestRunFingerprint:
    def test_every_component_matters(self):
        cfg = uve_machine()
        base = run_fingerprint("saxpy", "uve", cfg, 1.0, 0)
        assert run_fingerprint("gemm", "uve", cfg, 1.0, 0) != base
        assert run_fingerprint("saxpy", "uve", cfg, 0.5, 0) != base
        assert run_fingerprint("saxpy", "uve", cfg, 1.0, 7) != base
        assert run_fingerprint("saxpy", "uve", cfg, 1.0, 0, unroll=2) != base
        assert run_fingerprint("saxpy", "uve", cfg, 1.0, 0, salt="v2") != base

    def test_runspec_key_resolves_default_config(self):
        # An explicit default config and config=None are the same run.
        explicit = RunSpec("saxpy", "uve", uve_machine())
        implicit = RunSpec("saxpy", "uve")
        assert explicit.key(1.0, 0) == implicit.key(1.0, 0)
