"""Unit tests for the experiment harness (runner, report, registry)."""
import pytest

from repro.harness import EXPERIMENTS, Runner, run_experiment
from repro.harness.report import ExperimentResult, geomean


class TestReport:
    def test_render_aligns_columns(self):
        result = ExperimentResult(
            "exp", "A title", ["name", "value"],
            [("short", 1.0), ("a-much-longer-name", 22.5)],
            notes=["a note"],
        )
        text = result.render()
        lines = text.splitlines()
        assert lines[0] == "== exp: A title =="
        assert "a note" in lines[-1]
        header, sep, row1, row2 = lines[1:5]
        assert len(header) == len(row1) == len(row2)
        assert "22.500" in row2  # floats render with 3 decimals

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([0.0, 4.0]) == pytest.approx(4.0)  # zeros dropped


class TestRunner:
    def test_caches_identical_runs(self):
        runner = Runner(scale=0.1)
        first = runner.run("saxpy", "uve")
        second = runner.run("saxpy", "uve")
        assert first is second  # cache hit returns the same record

    def test_distinct_configs_not_conflated(self):
        from dataclasses import replace
        runner = Runner(scale=0.1)
        base = runner.config_for("uve")
        varied = base.with_(engine=replace(base.engine, fifo_depth=2))
        a = runner.run("saxpy", "uve", base)
        b = runner.run("saxpy", "uve", varied)
        assert a is not b

    def test_record_fields_populated(self):
        runner = Runner(scale=0.1)
        record = runner.run("saxpy", "sve")
        assert record.kernel == "saxpy"
        assert record.letter == "C"
        assert record.committed > 0
        assert record.cycles > 0
        assert 0 < record.ipc <= 8
        assert record.fifo_occupancy == 0.0  # no engine on the baseline

    def test_uve_record_has_engine_stats(self):
        runner = Runner(scale=0.1)
        record = runner.run("saxpy", "uve")
        assert record.fifo_occupancy > 0

    def test_lowering_selects_program_path(self):
        """Both lowerings run and are cached under distinct keys; for a
        migrated kernel the programs are instruction-identical, so the
        results agree."""
        ir = Runner(scale=0.1, lowering="ir").run("saxpy", "uve")
        legacy = Runner(scale=0.1, lowering="legacy").run("saxpy", "uve")
        assert ir is not legacy
        assert ir.committed == legacy.committed
        assert ir.cycles == legacy.cycles

    def test_rejects_unknown_lowering(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="lowering"):
            Runner(scale=0.1, lowering="asm")


class TestRegistry:
    def test_all_figures_registered(self):
        expected = {
            "table1", "fig8-table", "fig8a", "fig8b", "fig8c", "fig8d",
            "fig8e", "fig9", "fig10", "fig11", "overheads",
            "ext-rvv", "ext-vl", "ext-shared-fifo",
        }
        assert expected == set(EXPERIMENTS)

    def test_cheap_experiments_run(self):
        for name in ("table1", "fig8-table", "overheads"):
            result = run_experiment(name, Runner(scale=0.1))
            assert result.rows
            assert result.render()

    def test_fig8e_runs_at_tiny_scale(self):
        # Unroll factors must divide K, which the workload guarantees at
        # any scale (K is a multiple of 8 at the default size).
        result = run_experiment("fig8e", Runner(scale=1.0))
        speedups = [float(str(row[2]).rstrip("x")) for row in result.rows]
        assert speedups[0] == 1.0
        assert max(speedups) >= 1.0
