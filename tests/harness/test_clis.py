"""Tests for the command-line entry points."""
import json

import pytest

from repro.harness.__main__ import main as harness_main
from repro.kernels.__main__ import main as kernels_main


class TestHarnessCli:
    def test_selected_experiment_runs(self, capsys):
        assert harness_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "CPU model configuration" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            harness_main(["fig99"])

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "results.json"
        assert harness_main(["table1", "overheads", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["scale"] == 1.0
        names = [e["experiment"] for e in payload["experiments"]]
        assert names == ["table1", "overheads"]
        assert payload["experiments"][0]["rows"]


class TestKernelsCli:
    def test_runs_and_reports(self, capsys):
        assert kernels_main(["saxpy", "--isa", "uve", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "verified against NumPy" in out
        assert "committed instructions" in out

    def test_listing_flag(self, capsys):
        assert kernels_main(
            ["saxpy", "--isa", "uve", "--scale", "0.1", "--listing"]
        ) == 0
        out = capsys.readouterr().out
        assert "so.a.mul.fp" in out

    def test_baseline_isa(self, capsys):
        assert kernels_main(["saxpy", "--isa", "sve", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "[sve]" in out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            kernels_main(["made-up-kernel"])
