"""Integration tests for the sensitivity/extension experiments at tiny
scale (shape checks; full-scale numbers live in EXPERIMENTS.md)."""
import pytest

from repro.harness import Runner, run_experiment


@pytest.fixture(scope="module")
def runner():
    return Runner(scale=0.1, seed=0)


class TestFig9:
    def test_uve_is_flat_in_vector_registers(self, runner):
        result = run_experiment("fig9", runner)
        for row in result.rows:
            name, isa, *speeds = row
            values = [float(s.rstrip("x")) for s in speeds]
            if isa == "uve":
                assert max(values) - min(values) < 0.15, row

    def test_normalization_column_is_one(self, runner):
        result = run_experiment("fig9", runner)
        for row in result.rows:
            assert float(row[2].rstrip("x")) == 1.0


class TestFig10:
    def test_shallow_fifos_hurt(self, runner):
        result = run_experiment("fig10", runner)
        for row in result.rows:
            name, *speeds = row
            values = [float(s.rstrip("x")) for s in speeds]
            # depth 2 is clearly slower than depth 8 (normalized 1.0)
            assert values[0] < 0.95, row
            # performance is monotone non-decreasing in depth
            assert values == sorted(values) or values[-1] >= values[1], row


class TestFig11:
    def test_dram_streaming_is_worst_for_l2_resident(self, runner):
        result = run_experiment("fig11", runner)
        by_name = {row[0]: row for row in result.rows}
        for name in ("gemm", "jacobi-2d", "mamr"):
            dram = float(by_name[name][3].rstrip("x"))
            l2 = float(by_name[name][2].rstrip("x"))
            assert dram < l2, by_name[name]


class TestExtensions:
    def test_rvv_between_uve_and_neon(self, runner):
        result = run_experiment("ext-rvv", runner)
        for row in result.rows:
            vs_rvv = float(row[2].rstrip("x"))
            vs_neon = float(row[3].rstrip("x"))
            assert vs_rvv >= 0.9  # UVE never meaningfully loses to RVV
            assert vs_neon >= vs_rvv - 0.2

    def test_shared_fifo_never_hurts_much(self, runner):
        result = run_experiment("ext-shared-fifo", runner)
        for row in result.rows:
            assert float(row[3].rstrip("x")) > 0.9, row
