"""Round-trip tests for the queue's JSON spec codec."""
import json

import pytest

from repro.cpu.config import baseline_machine, uve_machine
from repro.errors import ConfigError
from repro.harness.runner import RunSpec
from repro.harness.speccodec import (
    decode,
    encode,
    spec_from_json,
    spec_to_json,
)
from repro.isa.microop import OpClass


SPECS = [
    RunSpec("saxpy", "uve"),
    RunSpec("memcpy", "sve", baseline_machine()),
    RunSpec("gemm", "uve", uve_machine(vector_bits=128), unroll=2),
    RunSpec("stream", "neon", lowering="legacy"),
    RunSpec(
        "dot", "uve",
        uve_machine().with_(
            engine=uve_machine().engine.__class__(fifo_depth=4),
        ),
    ),
]


class TestRoundTrip:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: f"{s.kernel}-{s.isa}")
    def test_spec_equality(self, spec):
        assert spec_from_json(spec_to_json(spec)) == spec

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: f"{s.kernel}-{s.isa}")
    def test_fingerprint_preserved(self, spec):
        """The decoded spec must produce the identical cache key — the
        whole point of shipping specs through the queue."""
        decoded = spec_from_json(spec_to_json(spec))
        assert decoded.key(0.5, 7) == spec.key(0.5, 7)

    def test_payload_is_plain_json(self):
        payload = spec_to_json(SPECS[2])
        parsed = json.loads(payload)  # no pickle, human-inspectable
        assert parsed["__dc__"] == "RunSpec"
        assert parsed["kernel"] == "gemm"

    def test_latency_table_roundtrips(self):
        """Dict[OpClass, int] — non-string keys — survives the codec."""
        cfg = uve_machine()
        decoded = decode(json.loads(json.dumps(encode(cfg))))
        assert decoded.latencies == cfg.latencies
        assert all(isinstance(k, OpClass) for k in decoded.latencies)


class TestFailsLoudly:
    def test_unknown_dataclass_tag(self):
        with pytest.raises(ConfigError, match="unknown dataclass"):
            decode({"__dc__": "Nonexistent"})

    def test_unknown_enum_tag(self):
        with pytest.raises(ConfigError, match="unknown enum"):
            decode({"__enum__": ["Nonexistent", "X"]})

    def test_non_spec_payload_rejected(self):
        with pytest.raises(ConfigError, match="expected RunSpec"):
            spec_from_json(json.dumps({"just": "a dict"}))

    def test_unencodable_value_rejected(self):
        with pytest.raises(ConfigError, match="cannot encode"):
            encode(object())
