"""Tests for the results-validation module."""
import json

import pytest

from repro.harness.checks import CheckReport, validate_results


@pytest.fixture()
def good_payload():
    return {
        "scale": 1.0,
        "seed": 0,
        "experiments": [
            {
                "experiment": "fig8b",
                "title": "",
                "headers": [],
                "rows": [
                    ["A", "memcpy", "1.50x", "1.60x", ""],
                    ["O", "mamr", "11.00x", "11.00x", "*"],
                    ["R", "seidel-2d", "1.05x", "1.05x", "*"],
                    ["", "geomean (vectorized vs SVE)", "1.55x", "6.0x", ""],
                ],
                "notes": [],
            },
            {
                "experiment": "fig9",
                "title": "",
                "headers": [],
                "rows": [
                    ["gemm", "uve", "1.00x", "1.00x", "1.01x"],
                    ["gemm", "sve", "1.00x", "1.14x", "1.33x"],
                ],
                "notes": [],
            },
        ],
    }


def write(tmp_path, payload):
    path = tmp_path / "r.json"
    path.write_text(json.dumps(payload))
    return str(path)


class TestValidateResults:
    def test_good_campaign_passes(self, tmp_path, good_payload):
        report = validate_results(write(tmp_path, good_payload))
        assert report.ok
        assert report.passed

    def test_uve_losing_fails(self, tmp_path, good_payload):
        good_payload["experiments"][0]["rows"][0][2] = "0.80x"
        report = validate_results(write(tmp_path, good_payload))
        assert not report.ok
        assert any("memcpy" in f for f in report.failed)

    def test_uve_pr_sensitivity_fails(self, tmp_path, good_payload):
        good_payload["experiments"][1]["rows"][0] = [
            "gemm", "uve", "1.00x", "1.20x", "1.40x",
        ]
        report = validate_results(write(tmp_path, good_payload))
        assert not report.ok

    def test_missing_experiments_are_skipped(self, tmp_path):
        report = validate_results(
            write(tmp_path, {"scale": 1, "seed": 0, "experiments": []})
        )
        assert report.ok  # nothing to check, nothing failed

    def test_render(self):
        report = CheckReport()
        report.check(True, "fine")
        report.check(False, "broken")
        text = report.render()
        assert "1 checks passed, 1 failed" in text
        assert "FAIL: broken" in text


class TestCanonicalResults:
    def test_repository_results_json_validates(self):
        """The committed canonical campaign satisfies every shape check."""
        import pathlib
        path = pathlib.Path(__file__).resolve().parents[2] / "results.json"
        if not path.exists():
            pytest.skip("canonical results.json not present")
        report = validate_results(str(path))
        assert report.ok, report.render()
        assert len(report.passed) > 50
