"""Tests for the persistent on-disk result cache."""
import dataclasses
import json

from repro.harness.diskcache import ResultCache, code_version_salt
from repro.harness.runner import RunRecord


def record(**overrides) -> RunRecord:
    fields = dict(
        kernel="saxpy", letter="C", isa="uve", committed=100, cycles=50.0,
        ipc=2.0, rename_blocks_per_cycle=0.1, bus_utilization=0.5,
        dram_bytes=4096, mispredict_rate=0.01, fifo_occupancy=3.0,
        l1_miss_rate=0.2, l2_miss_rate=0.3,
    )
    fields.update(overrides)
    return RunRecord(**fields)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        cache.store("key-1", record())
        assert cache.load("key-1") == record()
        assert cache.hits == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        assert cache.load("never-stored") is None
        assert cache.misses == 1

    def test_corrupted_entry_is_a_miss_and_recoverable(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        cache.store("key-1", record())
        path = cache._path("key-1")
        path.write_text("{ not json")
        assert cache.load("key-1") is None
        cache.store("key-1", record(cycles=99.0))  # overwrite heals it
        assert cache.load("key-1").cycles == 99.0

    def test_schema_incompatible_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        cache.store("key-1", record())
        path = cache._path("key-1")
        payload = json.loads(path.read_text())
        payload["record"]["no_such_field"] = 1
        path.write_text(json.dumps(payload))
        assert cache.load("key-1") is None

    def test_salt_separates_code_versions(self, tmp_path):
        old = ResultCache(tmp_path, salt="v1")
        new = ResultCache(tmp_path, salt="v2")
        old.store("key-1", record())
        assert new.load("key-1") is None
        assert old.load("key-1") is not None

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        for i in range(5):
            cache.store(f"key-{i}", record())
        assert not list(tmp_path.rglob("*.tmp"))

    def test_unwritable_root_degrades_silently(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        cache = ResultCache(blocked / "cache", salt="s")
        cache.store("key-1", record())  # must not raise
        assert cache.load("key-1") is None

    def test_default_salt_is_stable(self):
        assert code_version_salt() == code_version_salt()
        assert len(code_version_salt()) == 64


class TestRunnerDiskIntegration:
    def test_runner_reads_through_and_populates(self, tmp_path):
        from repro.harness.runner import Runner

        cache = ResultCache(tmp_path, salt="s")
        first = Runner(scale=0.1, disk_cache=cache)
        rec = first.run("saxpy", "uve")
        # A fresh Runner with an empty memory cache loads from disk
        # instead of simulating.
        second = Runner(scale=0.1, disk_cache=cache)
        monkey_called = []
        second._simulate = lambda *a, **k: monkey_called.append(a)
        assert second.run("saxpy", "uve") == rec
        assert not monkey_called
