"""Tests for the persistent on-disk result cache."""
import dataclasses
import json
import os

import pytest

from repro.harness.diskcache import ResultCache, code_version_salt, parse_size
from repro.harness.runner import RunRecord


def record(**overrides) -> RunRecord:
    fields = dict(
        kernel="saxpy", letter="C", isa="uve", committed=100, cycles=50.0,
        ipc=2.0, rename_blocks_per_cycle=0.1, bus_utilization=0.5,
        dram_bytes=4096, mispredict_rate=0.01, fifo_occupancy=3.0,
        l1_miss_rate=0.2, l2_miss_rate=0.3,
    )
    fields.update(overrides)
    return RunRecord(**fields)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        cache.store("key-1", record())
        assert cache.load("key-1") == record()
        assert cache.hits == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        assert cache.load("never-stored") is None
        assert cache.misses == 1

    def test_corrupted_entry_is_a_miss_and_recoverable(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        cache.store("key-1", record())
        path = cache._path("key-1")
        path.write_text("{ not json")
        assert cache.load("key-1") is None
        cache.store("key-1", record(cycles=99.0))  # overwrite heals it
        assert cache.load("key-1").cycles == 99.0

    def test_schema_incompatible_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        cache.store("key-1", record())
        path = cache._path("key-1")
        payload = json.loads(path.read_text())
        payload["record"]["no_such_field"] = 1
        path.write_text(json.dumps(payload))
        assert cache.load("key-1") is None

    def test_salt_separates_code_versions(self, tmp_path):
        old = ResultCache(tmp_path, salt="v1")
        new = ResultCache(tmp_path, salt="v2")
        old.store("key-1", record())
        assert new.load("key-1") is None
        assert old.load("key-1") is not None

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        for i in range(5):
            cache.store(f"key-{i}", record())
        assert not list(tmp_path.rglob("*.tmp"))

    def test_unwritable_root_degrades_silently(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        cache = ResultCache(blocked / "cache", salt="s")
        cache.store("key-1", record())  # must not raise
        assert cache.load("key-1") is None

    def test_default_salt_is_stable(self):
        assert code_version_salt() == code_version_salt()
        assert len(code_version_salt()) == 64


class TestPrune:
    """Size-bounded GC: LRU-by-mtime eviction for long sweep campaigns."""

    def _age(self, cache, key, mtime):
        os.utime(cache._path(key), (mtime, mtime))

    def test_under_limit_is_a_noop(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        cache.store("k1", record())
        stats = cache.prune(max_bytes=10 ** 9)
        assert (stats.scanned, stats.removed) == (1, 0)
        assert cache.load("k1") is not None

    def test_evicts_oldest_first_until_fit(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        for i in range(5):
            cache.store(f"k{i}", record())
            self._age(cache, f"k{i}", 1000.0 + i)
        entry_size = cache._path("k0").stat().st_size
        stats = cache.prune(max_bytes=2 * entry_size)
        assert stats.removed == 3
        assert stats.bytes_after <= 2 * entry_size
        # The two most recently used entries survive.
        assert cache.load("k0") is None
        assert cache.load("k1") is None
        assert cache.load("k2") is None
        assert cache.load("k3") is not None
        assert cache.load("k4") is not None

    def test_hit_counts_as_recent_use(self, tmp_path):
        """load() touches mtime, so a hot entry survives eviction even
        if it was written first."""
        cache = ResultCache(tmp_path, salt="s")
        for i in range(3):
            cache.store(f"k{i}", record())
            self._age(cache, f"k{i}", 1000.0 + i)
        assert cache.load("k0") is not None  # touch: now most recent
        entry_size = cache._path("k0").stat().st_size
        cache.prune(max_bytes=entry_size)
        assert cache.load("k0") is not None
        assert cache.load("k2") is None

    def test_prune_to_zero_clears_and_campaign_recovers(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        for i in range(4):
            cache.store(f"k{i}", record())
        stats = cache.prune(max_bytes=0)
        assert stats.removed == 4
        assert cache.size_bytes() == 0
        # Empty shard dirs were cleaned up too.
        assert not [p for p in tmp_path.iterdir() if p.is_dir()]
        cache.store("k0", record())  # store after prune still works
        assert cache.load("k0") is not None

    def test_prune_spans_salts(self, tmp_path):
        """Stale-salt entries (old code versions) share the root and are
        GC'd by the same pass — they are the best eviction candidates."""
        old = ResultCache(tmp_path, salt="v1")
        new = ResultCache(tmp_path, salt="v2")
        old.store("k", record())
        self._age(old, "k", 1000.0)
        new.store("k", record())
        entry_size = new._path("k").stat().st_size
        new.prune(max_bytes=entry_size)
        assert old.load("k") is None
        assert new.load("k") is not None

    def test_parse_size(self):
        assert parse_size("1024") == 1024
        assert parse_size("2K") == 2048
        assert parse_size("1.5M") == int(1.5 * 1024 ** 2)
        assert parse_size("2G") == 2 * 1024 ** 3
        with pytest.raises(ValueError):
            parse_size("banana")
        with pytest.raises(ValueError):
            parse_size("-1M")


class TestRunnerDiskIntegration:
    def test_runner_reads_through_and_populates(self, tmp_path):
        from repro.harness.runner import Runner

        cache = ResultCache(tmp_path, salt="s")
        first = Runner(scale=0.1, disk_cache=cache)
        rec = first.run("saxpy", "uve")
        # A fresh Runner with an empty memory cache loads from disk
        # instead of simulating.
        second = Runner(scale=0.1, disk_cache=cache)
        monkey_called = []
        second._simulate = lambda *a, **k: monkey_called.append(a)
        assert second.run("saxpy", "uve") == rec
        assert not monkey_called
