"""Experiment-service tests: submission dedup, worker loops, idempotent
replay, lease recovery, and the streaming client — all in-process (the
real multi-process drill lives in tests/integration/test_serve_crash.py)."""
import pytest

from repro.errors import ConfigError
from repro.harness.jobqueue import JobQueue
from repro.harness.runner import RunSpec
from repro.harness.serve import ExperimentService, worker_loop

SCALE = 0.05


@pytest.fixture
def service(tmp_path):
    return ExperimentService(
        tmp_path / "campaign", scale=SCALE, seed=0, lease_seconds=30.0,
    )


SPECS = [
    RunSpec("saxpy", "uve"),
    RunSpec("memcpy", "uve"),
    RunSpec("saxpy", "sve"),
]


class TestSubmission:
    def test_duplicate_submissions_deduped_by_fingerprint(self, service):
        first = service.submit(SPECS[0])
        assert first.status == "queued"
        again = service.submit(SPECS[0])
        assert again.status == "duplicate"
        assert again.key == first.key
        # Semantically equal spec built through a different path dedupes
        # too — the fingerprint is canonical, not repr-based.
        from repro.cpu.config import uve_machine
        rebuilt = RunSpec("saxpy", "uve", uve_machine())
        assert service.submit(rebuilt).status == "duplicate"
        assert service.queue.counts()["total"] == 1

    def test_finished_artifact_is_immediate_hit(self, service):
        service.submit(SPECS[0])
        worker_loop(service.root, shard_id="w0")
        # New client, same campaign dir, identical request: cache hit,
        # nothing enqueued.
        fresh = ExperimentService(service.root, scale=SCALE, seed=0)
        assert fresh.submit(SPECS[0]).status == "hit"

    def test_manifest_guards_campaign_params(self, service, tmp_path):
        with pytest.raises(ConfigError, match="different parameters"):
            ExperimentService(service.root, scale=0.5, seed=0)
        with pytest.raises(ConfigError, match="cannot change"):
            ExperimentService(service.root, scale=0.5, seed=0, resume=True)


class TestWorkerLoop:
    def test_drains_queue_and_streams_results(self, service):
        submits = service.submit_many(SPECS)
        completed = worker_loop(service.root, shard_id="w0")
        assert completed == len(SPECS)
        results = list(service.stream_results([s.key for s in submits],
                                              timeout_s=10.0))
        assert [r.status for r in results] == ["ran"] * 3
        assert all(r.record is not None and r.record.cycles > 0
                   for r in results)

    def test_results_match_direct_runner(self, service):
        from repro.harness.runner import Runner

        submits = service.submit_many(SPECS)
        worker_loop(service.root, shard_id="w0")
        runner = Runner(scale=SCALE, seed=0)
        for spec, submit in zip(SPECS, submits):
            direct = runner.run_spec(spec)
            via_service = service.result_for(submit.key).record
            assert via_service == direct

    def test_max_jobs_stops_half_way(self, service):
        service.submit_many(SPECS)
        assert worker_loop(service.root, shard_id="w0", max_jobs=2) == 2
        counts = service.queue.counts()
        assert (counts["done"], counts["pending"]) == (2, 1)

    def test_failing_job_goes_dead_and_surfaces(self, tmp_path):
        service = ExperimentService(
            tmp_path / "c", scale=SCALE, seed=0, max_attempts=2,
        )
        # An unknown-kernel spec fails inside the worker every attempt.
        bad = RunSpec("saxpy", "uve")
        key = service.key_for(bad)
        service.queue.submit(key, '{"__dc__": "RunSpec", "kernel": '
                             '"no-such-kernel", "isa": "uve", "config": '
                             'null, "unroll": 0, "lowering": null}')
        worker_loop(service.root, shard_id="w0")
        result = service.result_for(key)
        assert result.status == "dead"
        assert "no-such-kernel" in result.error
        assert result.attempts == 2


class TestIdempotentReplay:
    def test_re_leased_job_with_artifact_does_not_resimulate(self, service):
        """A worker that stored the artifact but died before completing:
        the next owner finds the artifact and completes instantly."""
        submit = service.submit(SPECS[0])
        job = service.queue.lease("w-dead")
        # w-dead simulated and stored the artifact, then was killed
        # before queue.complete.
        from repro.harness.runner import Runner
        record = Runner(scale=SCALE, seed=0).run_spec(SPECS[0])
        service.cache.store(submit.key, record)
        service.queue.release_stale_leases()

        calls = []
        import repro.harness.runner as runner_mod
        orig = runner_mod.Runner._simulate

        def counting(self, *a, **k):
            calls.append(a)
            return orig(self, *a, **k)

        runner_mod.Runner._simulate = counting
        try:
            worker_loop(service.root, shard_id="w1")
        finally:
            runner_mod.Runner._simulate = orig
        assert not calls, "re-leased job resimulated despite artifact"
        assert service.result_for(submit.key).record == record
        assert service.result_for(submit.key).requeues == 1

    def test_lease_recovery_reruns_lost_job_exactly_once(self, tmp_path):
        """Worker killed before storing anything: lease expires, job is
        re-leased exactly once, final state has one done row."""
        clock = {"now": 1000.0}
        service = ExperimentService(
            tmp_path / "c", scale=SCALE, seed=0, lease_seconds=5.0,
            clock=lambda: clock["now"],
        )
        submit = service.submit(SPECS[0])
        assert service.queue.lease("w-dead") is not None
        clock["now"] += 6.0  # lease expires with no artifact stored
        # worker_loop uses the real clock; drive the queue directly with
        # the fake one, then run a real worker on the recovered job.
        assert service.queue.requeue_expired() == 1
        worker_loop(service.root, shard_id="w1")
        job = service.queue.get(submit.key)
        assert (job.status, job.requeues, job.attempts) == ("done", 1, 2)


class TestStreaming:
    def test_stream_timeout_surfaces_stall(self, service):
        submit = service.submit(SPECS[0])  # no worker ever runs
        with pytest.raises(TimeoutError, match="stalled"):
            list(service.stream_results([submit.key], poll_s=0.01,
                                        timeout_s=0.1))

    def test_structured_events_cover_lifecycle(self, service):
        submits = service.submit_many(SPECS[:2])
        worker_loop(service.root, shard_id="w0")
        events = service.queue.events()
        kinds = {e["event"] for e in events}
        assert {"submitted", "leased", "completed"} <= kinds
        keys = {e["key"] for e in events if e["event"] == "completed"}
        assert keys == {s.key for s in submits}
