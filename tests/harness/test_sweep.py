"""Sweep tests: spec validation, deterministic expansion, Pareto math,
and the acceptance contract — service rows byte-identical to the serial
reference, resume 100% cache hits."""
import json

import pytest

from repro.cpu.config import uve_machine
from repro.errors import ConfigError
from repro.harness.sweep import (
    SweepSpec,
    pareto_front,
    resource_proxy,
    run_sweep_serial,
    run_sweep_service,
)

MINI = {
    "name": "t",
    "kernels": ["saxpy", "memcpy"],
    "isas": ["uve"],
    "axes": {
        "vector_bits": [128, 512],
        "engine.fifo_depth": [4, 8],
    },
}
SCALE = 0.05


class TestSpec:
    def test_expansion_is_deterministic_and_ordered(self):
        spec = SweepSpec.from_dict(MINI)
        points = spec.expand()
        assert len(points) == spec.point_count() == 8
        assert [p.index for p in points] == list(range(8))
        # kernels outermost, then axes in spec order.
        assert [p.kernel for p in points[:4]] == ["saxpy"] * 4
        assert points[0].axes == {"vector_bits": 128,
                                  "engine.fifo_depth": 4}
        assert points[1].axes == {"vector_bits": 128,
                                  "engine.fifo_depth": 8}
        assert points[0].spec.config.vector_bits == 128
        assert points[1].spec.config.engine.fifo_depth == 8
        # Two expansions agree exactly (stable fingerprints).
        again = SweepSpec.from_dict(MINI).expand()
        assert [p.spec.key(SCALE, 0) for p in points] == \
            [p.spec.key(SCALE, 0) for p in again]

    def test_unknown_axis_path_rejected(self):
        bad = dict(MINI, axes={"engine.no_such_field": [1]})
        with pytest.raises(ConfigError, match="no_such_field"):
            SweepSpec.from_dict(bad).expand()

    def test_unknown_kernel_rejected_before_any_run(self):
        bad = dict(MINI, kernels=["no-such-kernel"])
        with pytest.raises(Exception, match="no-such-kernel"):
            SweepSpec.from_dict(bad).expand()

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown sweep spec"):
            SweepSpec.from_dict(dict(MINI, typo=1))

    def test_streaming_axis_inconsistency_rejected(self):
        bad = dict(MINI, axes={"streaming": [False]})
        with pytest.raises(ConfigError, match="inconsistent"):
            SweepSpec.from_dict(bad).expand()


class TestParetoMath:
    def test_resource_proxy_orders_sensibly(self):
        base = uve_machine()
        assert resource_proxy(base.with_(vector_bits=128)) < \
            resource_proxy(base)
        bigger_fifo = base.with_(
            engine=base.engine.__class__(fifo_depth=16)
        )
        assert resource_proxy(bigger_fifo) > resource_proxy(base)

    def test_pareto_front_marks_dominated(self):
        def row(cycles, proxy, tag):
            return {"isa": "uve", "axes": {"t": tag}, "cycles": cycles,
                    "resource_proxy": proxy}

        entries = pareto_front([
            row(100.0, 1.0, "cheap-fast"),
            row(100.0, 2.0, "expensive-same"),   # dominated
            row(50.0, 2.0, "expensive-faster"),  # on front
            row(200.0, 3.0, "bad"),              # dominated
        ])
        by_tag = {e["axes"]["t"]: e["on_front"] for e in entries}
        assert by_tag == {"cheap-fast": True, "expensive-same": False,
                          "expensive-faster": True, "bad": False}

    def test_geomean_groups_across_kernels(self):
        rows = [
            {"isa": "uve", "axes": {"v": 1}, "cycles": 100.0,
             "resource_proxy": 1.0},
            {"isa": "uve", "axes": {"v": 1}, "cycles": 400.0,
             "resource_proxy": 1.0},
        ]
        entries = pareto_front(rows)
        assert len(entries) == 1
        assert entries[0]["geomean_cycles"] == pytest.approx(200.0)


class TestAcceptance:
    """The sharded campaign must be indistinguishable from the serial
    reference in its result rows, and resumable with full cache hits."""

    @pytest.fixture(scope="class")
    def serial_payload(self):
        return run_sweep_serial(SweepSpec.from_dict(MINI), scale=SCALE)

    def test_service_rows_byte_identical_to_serial(self, tmp_path,
                                                   serial_payload):
        payload = run_sweep_service(
            SweepSpec.from_dict(MINI), tmp_path / "c", workers=2,
            scale=SCALE, timeout_s=120.0,
        )
        assert json.dumps(payload["rows"]) == \
            json.dumps(serial_payload["rows"])
        assert payload["pareto"] == serial_payload["pareto"]
        assert payload["jobs"]["ran"] == 8
        assert payload["jobs"]["queue"]["dead"] == 0

    def test_resume_half_finished_campaign_bit_identical(
            self, tmp_path, serial_payload):
        """Stop a campaign after half its jobs, then --resume: the final
        payload rows match a fresh serial run exactly, and the finished
        half is pure cache hits."""
        from repro.harness.serve import ExperimentService, worker_loop

        spec = SweepSpec.from_dict(MINI)
        root = tmp_path / "c"
        service = ExperimentService(root, scale=SCALE, seed=0)
        service.submit_many([p.spec for p in spec.expand()])
        assert worker_loop(root, shard_id="w0", max_jobs=4) == 4

        resumed = run_sweep_service(
            spec, root, workers=1, scale=SCALE, resume=True,
            timeout_s=120.0,
        )
        assert json.dumps(resumed["rows"]) == \
            json.dumps(serial_payload["rows"])
        assert resumed["jobs"]["cache_hits"] == 4
        assert resumed["jobs"]["ran"] == 4

        # Third invocation: everything is in the artifact store.
        final = run_sweep_service(
            spec, root, workers=1, scale=SCALE, resume=True,
            timeout_s=120.0,
        )
        assert json.dumps(final["rows"]) == \
            json.dumps(serial_payload["rows"])
        assert final["jobs"]["cache_hit_rate"] == 1.0
        assert final["jobs"]["ran"] == 0

    def test_serial_pool_matches_serial(self, serial_payload):
        pooled = run_sweep_serial(
            SweepSpec.from_dict(MINI), scale=SCALE, jobs=2,
        )
        assert json.dumps(pooled["rows"]) == \
            json.dumps(serial_payload["rows"])
