"""Tests for the parallel, cache-persistent campaign executor.

A cheap two-experiment campaign at tiny scale keeps these fast while
still covering spec collection, pool execution, determinism, and the
disk-cache life cycle.
"""
import pytest

from repro.harness import EXPERIMENTS
from repro.harness.diskcache import ResultCache
from repro.harness.executor import CampaignExecutor, CampaignInterrupted

CAMPAIGN = ["fig8e", "ext-shared-fifo"]
SCALE = 0.1


def run_campaign(jobs, cache=None):
    executor = CampaignExecutor(scale=SCALE, seed=0, jobs=jobs, cache=cache)
    results = executor.run_campaign(CAMPAIGN)
    return executor, [r.to_dict() for r in results]


@pytest.fixture(scope="module")
def serial():
    return run_campaign(jobs=1)


class TestDeterminism:
    def test_parallel_matches_serial(self, serial):
        """--jobs 4 must produce byte-identical experiment dicts."""
        _, expected = serial
        _, got = run_campaign(jobs=4)
        assert got == expected

    def test_matches_direct_run_experiment(self, serial):
        from repro.harness import Runner, run_experiment

        _, expected = serial
        runner = Runner(scale=SCALE, seed=0)
        direct = [run_experiment(n, runner).to_dict() for n in CAMPAIGN]
        assert direct == expected


class TestSpecDeclarations:
    def test_every_experiment_declares_specs(self):
        executor = CampaignExecutor(scale=SCALE, jobs=1)
        specs = executor.collect_specs(list(EXPERIMENTS))
        # 19 kernels x 3 ISAs for fig8a-d alone; sweeps add more.
        assert len(specs) > 80

    def test_prefetch_covers_the_builds(self, serial):
        """After prefetch, building the tables must simulate nothing —
        i.e. the declared specs are complete for these experiments."""
        executor, _ = serial
        executor.runner._simulate = lambda *a, **k: pytest.fail(
            "build required an undeclared simulation"
        )
        for name in CAMPAIGN:
            assert EXPERIMENTS[name].build(executor.runner).rows

    def test_specs_are_deduplicated(self):
        executor = CampaignExecutor(scale=SCALE, jobs=1)
        # fig8a and fig8b share all their runs.
        only_a = executor.collect_specs(["fig8a"])
        both = executor.collect_specs(["fig8a", "fig8b"])
        assert set(only_a) == set(both)


class TestDiskCacheLifecycle:
    def test_second_campaign_simulates_nothing(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        first, payload = run_campaign(jobs=1, cache=cache)
        counts = first.cache_summary()
        assert counts["miss"] == counts["total"] > 0

        rerun, payload2 = run_campaign(jobs=4, cache=ResultCache(
            tmp_path, salt="s"))
        counts = rerun.cache_summary()
        assert counts["miss"] == 0
        assert counts["hit-disk"] == counts["total"]
        assert payload2 == payload

    def test_corrupted_entry_resimulates_only_that_run(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        first, payload = run_campaign(jobs=1, cache=cache)
        victim = next(tmp_path.rglob("*.json"))
        victim.write_text("corrupted! {{{")

        rerun, payload2 = run_campaign(jobs=1, cache=ResultCache(
            tmp_path, salt="s"))
        counts = rerun.cache_summary()
        assert counts["miss"] == 1
        assert counts["hit-disk"] == counts["total"] - 1
        assert payload2 == payload

    def test_salt_change_invalidates_everything(self, tmp_path):
        cache = ResultCache(tmp_path, salt="v1")
        run_campaign(jobs=1, cache=cache)
        rerun, _ = run_campaign(jobs=1, cache=ResultCache(
            tmp_path, salt="v2"))
        assert rerun.cache_summary()["hit-disk"] == 0


class TestObservability:
    def test_events_and_slowest_table(self, tmp_path):
        lines = []
        executor = CampaignExecutor(
            scale=SCALE, jobs=1, progress=lines.append
        )
        executor.run_campaign(["fig8e"])
        assert executor.events
        assert all(e.status == "miss" for e in executor.events)
        assert all(e.wall_s > 0 for e in executor.events)
        assert lines and all("worker" in line for line in lines)
        table = executor.slowest_table()
        assert table.rows
        walls = [float(r[1]) for r in table.rows]
        assert walls == sorted(walls, reverse=True)

    def test_trace_written(self, tmp_path):
        import json

        executor = CampaignExecutor(scale=SCALE, jobs=1)
        executor.run_campaign(["fig8e"])
        trace = tmp_path / "trace.json"
        executor.write_trace(str(trace))
        payload = json.loads(trace.read_text())
        assert payload["scale"] == SCALE
        assert len(payload["events"]) == len(executor.events)
        assert {"kernel", "status", "wall_s", "worker", "queue_depth"} \
            <= set(payload["events"][0])


class TestInterrupt:
    """Ctrl-C mid-campaign must surface as CampaignInterrupted with the
    completed work preserved, not as a bare KeyboardInterrupt."""

    def test_serial_interrupt_preserves_completed_runs(
            self, monkeypatch, tmp_path):
        import repro.harness.executor as executor_mod

        cache = ResultCache(tmp_path, salt="s")
        executor = CampaignExecutor(scale=SCALE, jobs=1, cache=cache)
        real = executor_mod._execute_spec
        calls = []

        def interrupt_after_two(spec, *args, **kwargs):
            if len(calls) == 2:
                raise KeyboardInterrupt
            calls.append(spec)
            return real(spec, *args, **kwargs)

        monkeypatch.setattr(executor_mod, "_execute_spec",
                            interrupt_after_two)
        with pytest.raises(CampaignInterrupted) as info:
            executor.run_campaign(["fig8e"])
        assert info.value.completed == 2
        assert info.value.cancelled > 0
        # The two finished runs are already persisted.
        done = [e for e in executor.events if e.status == "miss"]
        assert len(done) == 2
        assert all(cache.load(e.key) is not None for e in done)

    def test_pool_interrupt_cancels_pending_futures(self, monkeypatch):
        import repro.harness.executor as executor_mod

        executor = CampaignExecutor(scale=SCALE, jobs=2)

        def interrupt(futures):
            raise KeyboardInterrupt

        monkeypatch.setattr(executor_mod, "as_completed", interrupt)
        with pytest.raises(CampaignInterrupted) as info:
            executor.run_campaign(["fig8e"])
        assert info.value.completed == 0
        assert info.value.cancelled > 0

    def test_cli_exits_130_and_flushes_partial_json(
            self, monkeypatch, tmp_path, capsys):
        from repro.harness import __main__ as cli

        def interrupted_campaign(self, names, on_result=None):
            raise CampaignInterrupted(completed=3, cancelled=5)

        monkeypatch.setattr(CampaignExecutor, "run_campaign",
                            interrupted_campaign)
        out = tmp_path / "partial.json"
        code = cli.main(["fig8e", "--scale", str(SCALE), "--no-cache",
                         "--json", str(out)])
        assert code == 130
        import json
        payload = json.loads(out.read_text())
        assert payload["interrupted"] == {"completed_runs": 3,
                                          "cancelled_runs": 5}
