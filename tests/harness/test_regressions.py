"""Regression tests for the harness bugfixes: the fragile ``repr(cfg)``
cache key, silent isa/config mismatches, ``--check`` swallowing campaign
arguments, crash-lossy ``--json`` export, and ``validate_results``
crashing on truncated campaigns."""
import json

import pytest

from repro.cpu.config import DEFAULT_LATENCIES, baseline_machine, uve_machine
from repro.errors import ConfigError
from repro.harness import EXPERIMENTS, Experiment, Runner
from repro.harness.__main__ import main as harness_main
from repro.harness.checks import validate_results


class TestRunnerCacheKey:
    def test_semantically_equal_configs_hit(self):
        """Two equal configs with different dict insertion order used to
        miss under the repr() key; the fingerprint key must hit."""
        runner = Runner(scale=0.1)
        shuffled = dict(reversed(list(DEFAULT_LATENCIES.items())))
        a = runner.run("saxpy", "uve", uve_machine())
        b = runner.run("saxpy", "uve", uve_machine(latencies=shuffled))
        assert a is b

    def test_explicit_default_config_hits_implicit(self):
        runner = Runner(scale=0.1)
        a = runner.run("saxpy", "uve", uve_machine())
        b = runner.run("saxpy", "uve")
        assert a is b


class TestIsaConfigConsistency:
    def test_uve_on_baseline_config_rejected(self):
        runner = Runner(scale=0.1)
        with pytest.raises(ConfigError, match="streaming"):
            runner.run("saxpy", "uve", baseline_machine())

    def test_baseline_isa_on_streaming_config_rejected(self):
        runner = Runner(scale=0.1)
        with pytest.raises(ConfigError, match="baseline"):
            runner.run("saxpy", "sve", uve_machine())


class TestChecksDegradeGracefully:
    def payload(self, experiment, rows):
        return {
            "scale": 1.0,
            "seed": 0,
            "experiments": [
                {"experiment": experiment, "title": "", "headers": [],
                 "rows": rows, "notes": []},
            ],
        }

    def run(self, tmp_path, payload):
        path = tmp_path / "r.json"
        path.write_text(json.dumps(payload))
        return validate_results(str(path))

    def test_fig8a_missing_average_row_fails_not_crashes(self, tmp_path):
        rows = [["A", "memcpy", 10, 20, 30, "50.0%", "66.7%"]]
        report = self.run(tmp_path, self.payload("fig8a", rows))
        assert not report.ok
        assert any("missing 'average' row" in f for f in report.failed)

    def test_fig8d_missing_benchmark_fails_not_crashes(self, tmp_path):
        rows = [["A", "memcpy", 0.9, 0.5, 0.4]]
        report = self.run(tmp_path, self.payload("fig8d", rows))
        assert not report.ok
        assert any("missing 'stream' row" in f for f in report.failed)

    def test_overheads_missing_reduced_row_fails_not_crashes(self, tmp_path):
        rows = [["evaluated", 1, 2, 3, 4, "0.5"]]
        report = self.run(tmp_path, self.payload("overheads", rows))
        assert not report.ok
        assert any("overheads: missing row 1" in f for f in report.failed)

    def test_empty_fig8e_fails_not_crashes(self, tmp_path):
        report = self.run(tmp_path, self.payload("fig8e", []))
        assert not report.ok

    def test_fig9_without_sve_rows_fails_not_crashes(self, tmp_path):
        rows = [["gemm", "uve", "1.00x", "1.00x", "1.01x"]]
        report = self.run(tmp_path, self.payload("fig9", rows))
        assert not report.ok


class TestCheckArgumentHandling:
    def good_results(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text(json.dumps(
            {"scale": 1.0, "seed": 0, "experiments": []}
        ))
        return str(path)

    def test_check_alone_still_works(self, tmp_path, capsys):
        assert harness_main(["--check", self.good_results(tmp_path)]) == 0

    @pytest.mark.parametrize("extra", [
        ["fig8b"],
        ["--json", "out.json"],
        ["--scale", "0.5"],
        ["--seed", "3"],
        ["--jobs", "2"],
        ["--no-cache"],
        ["--trace", "t.json"],
    ])
    def test_check_rejects_campaign_arguments(self, tmp_path, extra, capsys):
        with pytest.raises(SystemExit) as exc:
            harness_main(["--check", self.good_results(tmp_path)] + extra)
        assert exc.value.code == 2
        assert "--check" in capsys.readouterr().err


class TestIncrementalJson:
    def test_crash_preserves_completed_experiments(
        self, tmp_path, monkeypatch, capsys
    ):
        def explode(runner):
            raise RuntimeError("experiment crashed")

        monkeypatch.setitem(
            EXPERIMENTS, "boom", Experiment(build=explode)
        )
        out = tmp_path / "out.json"
        with pytest.raises(RuntimeError):
            harness_main(
                ["table1", "boom", "--json", str(out), "--no-cache"]
            )
        payload = json.loads(out.read_text())
        assert [e["experiment"] for e in payload["experiments"]] == ["table1"]
        assert payload["experiments"][0]["rows"]

    def test_no_temp_files_left(self, tmp_path, capsys):
        out = tmp_path / "out.json"
        assert harness_main(
            ["table1", "overheads", "--json", str(out), "--no-cache"]
        ) == 0
        names = [e["experiment"]
                 for e in json.loads(out.read_text())["experiments"]]
        assert names == ["table1", "overheads"]
        assert not list(tmp_path.glob("*.tmp"))
