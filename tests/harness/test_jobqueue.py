"""Lease-queue semantics under a fake clock: leases, heartbeats, expiry
requeue, retry backoff, dedup, and the structured event log."""
import pytest

from repro.harness.jobqueue import Job, JobQueue, QueueError


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def queue(tmp_path, clock):
    q = JobQueue(
        tmp_path / "queue.sqlite", lease_seconds=10.0, max_attempts=3,
        backoff_base_s=2.0, clock=clock,
    )
    yield q
    q.close()


class TestSubmission:
    def test_submit_and_lease_fifo(self, queue):
        assert queue.submit("k1", "p1")
        assert queue.submit("k2", "p2")
        job = queue.lease("w0")
        assert (job.key, job.payload, job.status) == ("k1", "p1", "leased")
        assert queue.lease("w1").key == "k2"
        assert queue.lease("w2") is None

    def test_duplicate_submission_deduped(self, queue):
        assert queue.submit("k1", "p1")
        assert not queue.submit("k1", "p1")
        assert queue.counts()["total"] == 1

    def test_duplicate_of_done_job_still_deduped(self, queue):
        queue.submit("k1", "p1")
        queue.lease("w0")
        queue.complete("k1", "w0")
        assert not queue.submit("k1", "p1")
        assert queue.get("k1").status == "done"


class TestLeaseLifecycle:
    def test_complete_requires_lease_holder(self, queue):
        queue.submit("k1", "p1")
        queue.lease("w0")
        with pytest.raises(QueueError):
            queue.complete("k1", "intruder")
        queue.complete("k1", "w0")
        assert queue.drained()

    def test_heartbeat_extends_lease(self, queue, clock):
        queue.submit("k1", "p1")
        queue.lease("w0")
        clock.advance(8.0)
        queue.heartbeat("k1", "w0")
        clock.advance(8.0)  # 16s total; lease alive thanks to heartbeat
        assert queue.requeue_expired() == 0
        assert queue.get("k1").status == "leased"

    def test_killed_worker_job_releases_exactly_once(self, queue, clock):
        """The crash-recovery contract: a dead worker's lease expires,
        the job returns to pending exactly once, and the next worker
        runs it — nothing lost, nothing duplicated."""
        queue.submit("k1", "p1")
        queue.lease("w0")  # w0 is then SIGKILLed: no heartbeat, no complete
        clock.advance(11.0)
        assert queue.requeue_expired() == 1
        assert queue.requeue_expired() == 0  # exactly once
        job = queue.lease("w1")
        assert (job.key, job.requeues, job.attempts) == ("k1", 1, 2)
        queue.complete("k1", "w1")
        assert queue.get("k1").status == "done"
        assert queue.get("k1").requeues == 1

    def test_zombie_worker_cannot_double_complete(self, queue, clock):
        """w0 loses its lease mid-run; when it comes back, heartbeat and
        complete both refuse rather than racing the new owner."""
        queue.submit("k1", "p1")
        queue.lease("w0")
        clock.advance(11.0)
        queue.requeue_expired()
        queue.lease("w1")
        with pytest.raises(QueueError):
            queue.heartbeat("k1", "w0")
        with pytest.raises(QueueError):
            queue.complete("k1", "w0")
        queue.complete("k1", "w1")

    def test_release_stale_leases_is_forced(self, queue, clock):
        queue.submit("k1", "p1")
        queue.lease("w0")
        assert queue.requeue_expired() == 0  # not yet expired...
        assert queue.release_stale_leases() == 1  # ...but --resume forces
        assert queue.get("k1").status == "pending"


class TestRetries:
    def test_failure_retries_with_backoff(self, queue, clock):
        queue.submit("k1", "p1")
        queue.lease("w0")
        assert queue.fail("k1", "w0", "boom") == "pending"
        assert queue.lease("w0") is None  # backoff holds it back
        clock.advance(2.1)
        assert queue.lease("w0").attempts == 2

    def test_exhausted_attempts_mark_dead(self, queue, clock):
        queue.submit("k1", "p1")
        for attempt in range(3):
            clock.advance(60.0)  # clear any backoff
            job = queue.lease("w0")
            assert job is not None, f"attempt {attempt} could not lease"
            status = queue.fail("k1", "w0", f"boom {attempt}")
        assert status == "dead"
        assert queue.drained()
        assert queue.get("k1").error == "boom 2"

    def test_backoff_grows_exponentially(self, queue, clock):
        queue.submit("k1", "p1")
        queue.lease("w0")
        queue.fail("k1", "w0", "1")  # backoff 2s
        clock.advance(2.1)
        queue.lease("w0")
        queue.fail("k1", "w0", "2")  # backoff 4s
        clock.advance(2.1)
        assert queue.lease("w0") is None
        clock.advance(2.0)
        assert queue.lease("w0") is not None


class TestInspection:
    def test_counts_and_drained(self, queue):
        for i in range(3):
            queue.submit(f"k{i}", "p")
        queue.lease("w0")
        counts = queue.counts()
        assert (counts["pending"], counts["leased"]) == (2, 1)
        assert not queue.drained()

    def test_statuses_bulk(self, queue):
        for i in range(5):
            queue.submit(f"k{i}", "p")
        queue.lease("w0")
        statuses = queue.statuses([f"k{i}" for i in range(5)] + ["ghost"])
        assert statuses["k0"] == "leased"
        assert statuses["k4"] == "pending"
        assert "ghost" not in statuses

    def test_event_log_records_lifecycle(self, queue, clock):
        queue.submit("k1", "p1")
        queue.lease("w0")
        clock.advance(11.0)
        queue.requeue_expired()
        queue.lease("w1")
        queue.complete("k1", "w1")
        kinds = [e["event"] for e in queue.events()]
        assert kinds == ["submitted", "leased", "requeued", "leased",
                         "completed"]
        requeued = queue.events()[2]
        assert requeued["lost_worker"] == "w0"

    def test_queue_survives_reopen(self, tmp_path, clock):
        """Persistence: a new process (fresh JobQueue on the same file)
        sees the full queue state."""
        q1 = JobQueue(tmp_path / "q.sqlite", clock=clock)
        q1.submit("k1", "p1")
        q1.close()
        q2 = JobQueue(tmp_path / "q.sqlite", clock=clock)
        assert q2.counts()["pending"] == 1
        assert isinstance(q2.lease("w0"), Job)
        q2.close()
