"""Golden tests for the IR migration (the equivalence gate).

memcpy and saxpy must lower to programs *instruction-identical* to the
legacy hand-written builders on every ISA and vector width.  STREAM's
legacy builder hoists constants and shares registers across its four
sub-kernels, so its IR programs legitimately differ in shape; it passes
through the oracle side of the gate instead (both lowerings verify
against NumPy and their timing agrees within noise).  dot is IR-native
(its "legacy" path delegates to the IR), so identity is trivial — the
gate still exercises its verification.
"""
import pytest

from repro.kernels import ALL_ISAS, get_kernel
from repro.kernels.equivalence import (
    CYCLE_TOLERANCE,
    check_kernel,
    programs_identical,
)

VECTOR_BITS = (128, 256, 512)
SCALE = 0.17


def gate(name, isa, vector_bits, timing=None):
    return check_kernel(
        get_kernel(name), isa,
        scale=SCALE, vector_bits=vector_bits, timing=timing,
    )


@pytest.mark.parametrize("vector_bits", VECTOR_BITS)
@pytest.mark.parametrize("isa", ALL_ISAS)
class TestInstructionIdentical:
    def test_memcpy(self, isa, vector_bits):
        verdict = gate("memcpy", isa, vector_bits)
        assert verdict.verdict == "identical"

    def test_saxpy(self, isa, vector_bits):
        verdict = gate("saxpy", isa, vector_bits)
        assert verdict.verdict == "identical"

    def test_dot(self, isa, vector_bits):
        verdict = gate("dot", isa, vector_bits)
        assert verdict.verdict == "identical"


@pytest.mark.parametrize("isa", ALL_ISAS)
class TestStreamOracle:
    def test_stream_verifies_within_cycle_noise(self, isa):
        # Functional verification at all widths is covered by the slow
        # marker below; the timing-model cycle check runs at 512 bits.
        verdict = gate("stream", isa, 512)
        assert verdict.verdict == "oracle"
        assert verdict.cycle_delta <= CYCLE_TOLERANCE

    @pytest.mark.parametrize("vector_bits", (128, 256))
    def test_stream_verifies_functionally(self, isa, vector_bits):
        verdict = gate("stream", isa, vector_bits, timing=False)
        assert verdict.verdict == "oracle"


class TestProgramsIdentical:
    def test_detects_divergence(self):
        kernel = get_kernel("stream")
        wl = kernel.workload(seed=0, scale=SCALE)
        ir_prog = kernel.build("uve", wl, lowering="ir")
        legacy_prog = kernel.build("uve", wl, lowering="legacy")
        assert not programs_identical(ir_prog, legacy_prog)
        assert programs_identical(ir_prog, ir_prog)
