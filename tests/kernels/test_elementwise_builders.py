"""Unit tests for the generic element-wise loop builders (all four ISAs
produce numerically identical results for a custom operation)."""
import numpy as np
import pytest

from repro.common.types import ElementType
from repro.isa import f, u
from repro.isa import neon_ops as neon
from repro.isa import rvv_ops as rvv
from repro.isa import scalar_ops as sc
from repro.isa import sve_ops as sve
from repro.isa import uve_ops as uve
from repro.isa.registers import p
from repro.kernels import elementwise as ew
from repro.memory.backing import Memory
from repro.sim.functional import FunctionalSimulator

F32 = ElementType.F32


def workload(n=100, seed=7):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal(n).astype(np.float32)
    b = rng.standard_normal(n).astype(np.float32)
    mem = Memory(1 << 20)
    return mem, mem.alloc_array(a), mem.alloc_array(b), a, b


def run(program, mem):
    FunctionalSimulator(program, memory=mem).run()


class TestGenericMax:
    """out[i] = max(a[i], b[i]) built through every generic builder."""

    def expected(self, a, b):
        return np.maximum(a, b)

    def check(self, mem, out_addr, a, b):
        np.testing.assert_allclose(
            mem.ndarray(out_addr, (len(a),), np.float32), self.expected(a, b)
        )

    def test_uve(self):
        mem, aa, ba, a, b = workload()
        out = mem.alloc_array(np.zeros_like(a))

        def body(bld, ins, outr):
            bld.emit(uve.SoOp("max", outr, ins[0], ins[1], etype=F32))

        run(ew.build_uve("m", [aa, ba], out, len(a), body), mem)
        self.check(mem, out, a, b)

    def test_sve(self):
        mem, aa, ba, a, b = workload()
        out = mem.alloc_array(np.zeros_like(a))

        def body(bld, ins, outr):
            bld.emit(sve.VOp("max", outr, p(1), ins[0], ins[1], etype=F32))

        run(ew.build_sve("m", [aa, ba], out, len(a), body), mem)
        self.check(mem, out, a, b)

    def test_neon(self):
        mem, aa, ba, a, b = workload()
        out = mem.alloc_array(np.zeros_like(a))

        def body(bld, ins, outr):
            bld.emit(neon.NVOp("max", outr, ins[0], ins[1], etype=F32))

        def scalar_body(bld, ins, outr):
            bld.emit(sc.FOp("max", outr, ins[0], ins[1]))

        run(ew.build_neon("m", [aa, ba], out, len(a), body, scalar_body), mem)
        self.check(mem, out, a, b)

    def test_rvv(self):
        mem, aa, ba, a, b = workload()
        out = mem.alloc_array(np.zeros_like(a))

        def body(bld, ins, outr):
            bld.emit(rvv.VOpVV("max", outr, ins[0], ins[1], etype=F32))

        run(ew.build_rvv("m", [aa, ba], out, len(a), body), mem)
        self.check(mem, out, a, b)


class TestStoreRegisterOverride:
    def test_body_can_redirect_the_store(self):
        mem, aa, ba, a, b = workload()
        out = mem.alloc_array(np.zeros_like(a))

        def body(bld, ins, outr):
            return ins[0]  # store the first input unchanged

        run(ew.build_uve("c", [aa, ba], out, len(a),
                         lambda bld, ins, outr: bld.emit(
                             uve.SoMove(outr, ins[0], etype=F32))), mem)
        np.testing.assert_allclose(mem.ndarray(out, (len(a),), np.float32), a)


class TestSetupHook:
    def test_setup_runs_before_loop(self):
        mem, aa, ba, a, b = workload()
        out = mem.alloc_array(np.zeros_like(a))

        def setup(bld):
            bld.emit(sc.FLi(f(0), 10.0), uve.SoDup(u(7), f(0), etype=F32))

        def body(bld, ins, outr):
            bld.emit(uve.SoOp("mul", outr, ins[0], u(7), etype=F32))

        run(ew.build_uve("s", [aa], out, len(a), body, setup=setup), mem)
        np.testing.assert_allclose(
            mem.ndarray(out, (len(a),), np.float32), 10.0 * a, rtol=1e-6
        )


class TestOddSizes:
    @pytest.mark.parametrize("n", [1, 3, 15, 16, 17, 33])
    def test_every_builder_handles_ragged_tails(self, n):
        mem, aa, ba, a, b = workload(n=max(n, 1))
        for build, extra in (
            (lambda: ew.build_uve(
                "t", [aa, ba], mem.alloc_array(np.zeros_like(a)), n,
                lambda bld, ins, o: bld.emit(
                    uve.SoOp("add", o, ins[0], ins[1], etype=F32))), None),
            (lambda: ew.build_rvv(
                "t", [aa, ba], mem.alloc_array(np.zeros_like(a)), n,
                lambda bld, ins, o: bld.emit(
                    rvv.VOpVV("add", o, ins[0], ins[1], etype=F32))), None),
        ):
            program = build()
            run(program, mem)
