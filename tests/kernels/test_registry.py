"""Kernel registry behaviour, including import-failure surfacing."""
import pytest

from repro.errors import ConfigError
from repro.kernels import registry


def test_core_kernels_registered():
    for name in ("memcpy", "stream", "saxpy"):
        assert registry.get_kernel(name).name == name


def test_all_kernels_sorted_by_letter():
    letters = [k.letter for k in registry.all_kernels()]
    assert letters == sorted(letters)


def test_unknown_kernel_lists_available():
    with pytest.raises(ConfigError, match="available:"):
        registry.get_kernel("no-such-kernel")


def test_import_failures_returns_a_copy():
    failures = registry.import_failures()
    failures["fake"] = "tampered"
    assert "fake" not in registry.import_failures()


def test_optional_import_failure_is_recorded_and_surfaced():
    registry._register_optional(
        [("repro.kernels.does_not_exist", "NopeKernel")]
    )
    try:
        failures = registry.import_failures()
        assert "repro.kernels.does_not_exist" in failures
        assert "does_not_exist" in failures["repro.kernels.does_not_exist"]
        # get_kernel's error now explains *why* the kernel is missing.
        with pytest.raises(ConfigError, match="failed to import"):
            registry.get_kernel("nope")
        with pytest.raises(ConfigError, match="does_not_exist"):
            registry.get_kernel("nope")
    finally:
        registry._IMPORT_ERRORS.pop("repro.kernels.does_not_exist", None)


def test_no_optional_module_fails_in_this_build():
    # The full evaluation suite ships with the repo; a failure here means
    # a kernel module broke at import time (syntax error, missing dep).
    assert registry.import_failures() == {}


def test_extensions_excluded_by_default():
    """dot is an extension (not in the paper's A..S set): the default
    kernel list — which the figures and GOLDEN tables iterate — must not
    include it, while the opt-in flag must."""
    default_names = registry.kernel_names()
    assert "dot" not in default_names
    extended = registry.kernel_names(include_extensions=True)
    assert "dot" in extended
    assert set(default_names) < set(extended)
    assert all(k.paper for k in registry.all_kernels())


def test_extension_kernels_still_resolvable_by_name():
    assert registry.get_kernel("dot").name == "dot"


def test_unsupported_isas_markers():
    assert registry.unsupported_isas("gemm") == ("rvv",)
    assert registry.unsupported_isas("saxpy") == ()
    assert registry.unsupported_isas("dot") == ()


def test_lowering_source_in_describe():
    assert registry.get_kernel("saxpy").describe()["lowering"] == "ir"
    assert registry.get_kernel("gemm").describe()["lowering"] == "hand"
