"""Kernel registry behaviour, including import-failure surfacing."""
import pytest

from repro.errors import ConfigError
from repro.kernels import registry


def test_core_kernels_registered():
    for name in ("memcpy", "stream", "saxpy"):
        assert registry.get_kernel(name).name == name


def test_all_kernels_sorted_by_letter():
    letters = [k.letter for k in registry.all_kernels()]
    assert letters == sorted(letters)


def test_unknown_kernel_lists_available():
    with pytest.raises(ConfigError, match="available:"):
        registry.get_kernel("no-such-kernel")


def test_import_failures_returns_a_copy():
    failures = registry.import_failures()
    failures["fake"] = "tampered"
    assert "fake" not in registry.import_failures()


def test_optional_import_failure_is_recorded_and_surfaced():
    registry._register_optional(
        [("repro.kernels.does_not_exist", "NopeKernel")]
    )
    try:
        failures = registry.import_failures()
        assert "repro.kernels.does_not_exist" in failures
        assert "does_not_exist" in failures["repro.kernels.does_not_exist"]
        # get_kernel's error now explains *why* the kernel is missing.
        with pytest.raises(ConfigError, match="failed to import"):
            registry.get_kernel("nope")
        with pytest.raises(ConfigError, match="does_not_exist"):
            registry.get_kernel("nope")
    finally:
        registry._IMPORT_ERRORS.pop("repro.kernels.does_not_exist", None)


def test_no_optional_module_fails_in_this_build():
    # The full evaluation suite ships with the repo; a failure here means
    # a kernel module broke at import time (syntax error, missing dep).
    assert registry.import_failures() == {}
