"""Unit tests for the pattern builder helpers (Fig. 3 recipes)."""
import pytest

from repro.common.types import ElementType
from repro.errors import DescriptorError, StreamError
from repro.streams import (
    Direction,
    MemLevel,
    StreamIterator,
    indirect,
    linear,
    lower_triangular,
    rectangular,
    repeated,
)


def elems(pattern, reader=None):
    return [a // pattern.etype.width
            for a in StreamIterator(pattern, reader).addresses()]


class TestLinearBuilder:
    def test_direction_and_level_propagate(self):
        pattern = linear(0, 4, direction=Direction.STORE,
                         mem_level=MemLevel.MEM)
        assert pattern.is_store
        assert pattern.mem_level is MemLevel.MEM

    def test_etype_scales_addresses(self):
        pattern = linear(10, 2, etype=ElementType.F64)
        assert StreamIterator(pattern).addresses() == [80, 88]

    def test_ndims(self):
        assert linear(0, 4).ndims == 1


class TestRectangularBuilder:
    def test_default_row_stride_is_cols(self):
        assert elems(rectangular(0, 2, 3)) == [0, 1, 2, 3, 4, 5]

    def test_col_stride(self):
        assert elems(rectangular(0, 2, 2, col_stride=3, row_stride=10)) == [
            0, 3, 10, 13,
        ]

    def test_count(self):
        assert rectangular(0, 5, 7).static_element_count() == 35


class TestRepeatedBuilder:
    def test_repeats_whole_pattern(self):
        base = rectangular(0, 2, 2)
        assert elems(repeated(base, 3)) == [0, 1, 2, 3] * 3

    def test_preserves_metadata(self):
        base = linear(0, 4, direction=Direction.STORE,
                      mem_level=MemLevel.L1, etype=ElementType.F64)
        wrapped = repeated(base, 2)
        assert wrapped.direction is Direction.STORE
        assert wrapped.mem_level is MemLevel.L1
        assert wrapped.etype is ElementType.F64

    def test_respects_dimension_limit(self):
        pattern = linear(0, 2)
        for _ in range(7):
            pattern = repeated(pattern, 2)
        # Builders now reject over-limit patterns up front (StreamError
        # from streams.limits enforcement) before StreamPattern
        # construction would raise DescriptorError.
        with pytest.raises(StreamError):
            repeated(pattern, 2)  # would be the ninth dimension


class TestTriangularBuilder:
    def test_upper_bound_rows(self):
        pattern = lower_triangular(0, rows=5, row_stride=8)
        got = elems(pattern)
        expect = [r * 8 + c for r in range(5) for c in range(r + 1)]
        assert got == expect

    def test_element_count_is_triangle_number(self):
        pattern = lower_triangular(0, rows=6, row_stride=6)
        assert len(elems(pattern)) == 6 * 7 // 2

    def test_modifier_accounting(self):
        pattern = lower_triangular(0, rows=4, row_stride=4)
        assert pattern.nmodifiers == 1
        assert pattern.static_element_count() is None  # needs iteration


class TestIndirectBuilder:
    def _reader(self, table):
        import numpy as np
        data = np.asarray(table, dtype=np.int32)

        def read(addr, etype):
            return int(data[addr // 4])

        return read

    def test_gather_semantics(self):
        idx = [2, 0, 1]
        pattern = indirect(
            base=100, index_pattern=linear(0, 3, etype=ElementType.I32)
        )
        assert elems(pattern, self._reader(idx)) == [102, 100, 101]

    def test_inner_runs(self):
        idx = [10, 0]
        pattern = indirect(
            base=0, index_pattern=linear(0, 2, etype=ElementType.I32),
            inner_size=2, inner_stride=1,
        )
        assert elems(pattern, self._reader(idx)) == [10, 11, 0, 1]

    def test_has_indirection_flag(self):
        pattern = indirect(
            base=0, index_pattern=linear(0, 2, etype=ElementType.I32)
        )
        assert pattern.has_indirection
        assert not linear(0, 2).has_indirection
