"""Unit tests for descriptors and modifiers."""
import pytest

from repro.errors import DescriptorError
from repro.streams import (
    Descriptor,
    IndirectModifier,
    Param,
    StaticModifier,
    linear,
)
from repro.streams.descriptor import IndirectBehavior, StaticBehavior


class TestDescriptor:
    def test_fields(self):
        d = Descriptor(offset=100, size=8, stride=2)
        assert (d.offset, d.size, d.stride) == (100, 8, 2)

    def test_zero_size_allowed(self):
        assert Descriptor(0, 0, 1).size == 0

    def test_negative_size_rejected(self):
        with pytest.raises(DescriptorError):
            Descriptor(0, -1, 1)

    def test_negative_stride_allowed(self):
        # Reverse scans are legal access patterns.
        assert Descriptor(10, 4, -1).stride == -1

    def test_frozen(self):
        d = Descriptor(0, 1, 1)
        with pytest.raises(AttributeError):
            d.size = 5


class TestStaticModifier:
    def test_add_applies_displacement(self):
        m = StaticModifier(Param.SIZE, StaticBehavior.ADD, 3, count=2)
        assert m.apply(10, applications=0) == 13

    def test_sub_applies_displacement(self):
        m = StaticModifier(Param.OFFSET, StaticBehavior.SUB, 4, count=5)
        assert m.apply(10, applications=1) == 6

    def test_exhausted_count_is_identity(self):
        m = StaticModifier(Param.SIZE, StaticBehavior.ADD, 3, count=2)
        assert m.apply(10, applications=2) == 10

    def test_negative_count_rejected(self):
        with pytest.raises(DescriptorError):
            StaticModifier(Param.SIZE, StaticBehavior.ADD, 1, count=-1)


class TestIndirectModifier:
    def _mod(self, behavior):
        return IndirectModifier(Param.OFFSET, behavior, linear(0, 4))

    def test_set_add(self):
        assert self._mod(IndirectBehavior.SET_ADD).apply(100, 7) == 107

    def test_set_sub(self):
        assert self._mod(IndirectBehavior.SET_SUB).apply(100, 7) == 93

    def test_set_value(self):
        assert self._mod(IndirectBehavior.SET_VALUE).apply(100, 7) == 7

    def test_not_cumulative(self):
        # set-add always recomputes from the configured value.
        m = self._mod(IndirectBehavior.SET_ADD)
        assert m.apply(100, 7) == 107
        assert m.apply(100, 7) == 107
