"""Streaming Engine resource limits (paper §III-A.2).

Each architectural bound — 8 dimensions, 7 modifiers, 32 hardware
streams — is enforced at configuration time on both paths that build
stream patterns: the Python builder API and the instruction-level
configuration protocol inside the functional simulator.
"""
import pytest

from repro.errors import StreamError
from repro.isa.assembler import assemble
from repro.memory.backing import Memory
from repro.sim.functional import FunctionalSimulator, hardware_stream_count
from repro.streams import builders
from repro.streams.descriptor import (
    Descriptor,
    Param,
    StaticBehavior,
    StaticModifier,
)
from repro.streams.limits import MAX_DIMENSIONS, MAX_MODIFIERS, MAX_STREAMS
from repro.streams.pattern import Level, StreamPattern


def _run(source: str) -> FunctionalSimulator:
    sim = FunctionalSimulator(assemble(source), memory=Memory(size=1 << 20))
    sim.run()
    return sim


def _nested(levels: int) -> StreamPattern:
    pattern = builders.linear(0, 4)
    for _ in range(levels - 1):
        pattern = builders.repeated(pattern, 2)
    return pattern


def _with_mods(nmods: int) -> StreamPattern:
    mods = [
        StaticModifier(Param.OFFSET, StaticBehavior.ADD, 1, 2)
        for _ in range(nmods)
    ]
    return StreamPattern(
        levels=[Level(Descriptor(0, 4, 1)), Level(Descriptor(0, 2, 4), mods)]
    )


class TestBuilderLimits:
    def test_max_dimensions_reachable(self):
        assert _nested(MAX_DIMENSIONS).ndims == MAX_DIMENSIONS

    def test_repeated_rejects_ninth_dimension(self):
        with pytest.raises(StreamError, match="dimensions exceed"):
            builders.repeated(_nested(MAX_DIMENSIONS), 2)

    def test_max_modifiers_reachable(self):
        assert builders.repeated(_with_mods(MAX_MODIFIERS), 2) is not None

    def test_pattern_rejects_eighth_modifier(self):
        from repro.errors import DescriptorError

        with pytest.raises(DescriptorError, match=f"at most {MAX_MODIFIERS}"):
            _with_mods(MAX_MODIFIERS + 1)

    def test_check_limits_rejects_eighth_modifier(self):
        # The builder-level guard fires before StreamPattern construction.
        mods = [
            StaticModifier(Param.OFFSET, StaticBehavior.ADD, 1, 2)
            for _ in range(MAX_MODIFIERS + 1)
        ]
        levels = [Level(Descriptor(0, 4, 1)), Level(Descriptor(0, 2, 4), mods)]
        with pytest.raises(StreamError, match="modifiers exceed"):
            builders._check_limits(levels, "test")

    def test_indirect_checks_limits(self):
        # indirect() itself builds two levels; its origin pattern counts
        # toward hardware streams, not toward this pattern's dimensions.
        pattern = builders.indirect(0, builders.linear(4096, 16))
        assert pattern.ndims == 2
        assert hardware_stream_count(pattern) == 2
        doubled = builders.indirect(0, pattern)
        assert hardware_stream_count(doubled) == 3


class TestFunctionalConfigLimits:
    def _dims_program(self, ndims: int) -> str:
        lines = ["ss.ld.sta.w u0, 0, 4, 1"]
        lines += ["ss.app u0, 0, 2, 8"] * (ndims - 2)
        lines += ["ss.end u0, 0, 2, 64", "halt"]
        return "\n".join(lines)

    def test_eight_dimensions_accepted(self):
        _run(self._dims_program(MAX_DIMENSIONS))

    def test_ninth_dimension_rejected(self):
        with pytest.raises(StreamError, match=f"at most {MAX_DIMENSIONS}"):
            _run(self._dims_program(MAX_DIMENSIONS + 1))

    def _mods_program(self, nmods: int) -> str:
        lines = [
            "ss.ld.sta.w u0, 0, 4, 1",
            "ss.app u0, 0, 4, 4",
        ]
        lines += ["ss.app.mod u0, offset, add, 1, 2"] * (nmods - 1)
        lines += ["ss.end.mod u0, offset, add, 1, 2", "halt"]
        return "\n".join(lines)

    def test_seven_modifiers_accepted(self):
        _run(self._mods_program(MAX_MODIFIERS))

    def test_eighth_modifier_rejected(self):
        with pytest.raises(StreamError, match=f"at most {MAX_MODIFIERS}"):
            _run(self._mods_program(MAX_MODIFIERS + 1))

    def test_all_architectural_streams_usable(self):
        lines = [
            f"ss.ld.w u{i}, {i * 64}, 4, 1" for i in range(MAX_STREAMS)
        ] + ["halt"]
        _run("\n".join(lines))

    def test_indirect_origin_counts_toward_stream_budget(self):
        # 31 plain streams + an indirect stream (2 hardware slots:
        # itself plus its resident origin) exceed the 32-slot engine.
        lines = [
            f"ss.ld.w u{i}, {i * 64}, 4, 1" for i in range(MAX_STREAMS - 1)
        ]
        lines += [
            "ss.ld.w     u31, 4096, 4, 1",
            "ss.ld.sta.w u31, 0, 4, 1",
            "ss.end.ind  u31, offset, set-add, u31",
            "halt",
        ]
        with pytest.raises(StreamError, match=f"has {MAX_STREAMS}"):
            _run("\n".join(lines))

    def test_reconfiguring_a_register_frees_its_stream(self):
        lines = [
            f"ss.ld.w u{i}, {i * 64}, 4, 1" for i in range(MAX_STREAMS)
        ]
        lines += ["ss.ld.w u0, 8192, 4, 1", "halt"]  # replaces, not adds
        _run("\n".join(lines))
