"""Tests for the affine loop-nest -> stream-descriptor compiler."""
import numpy as np
import pytest

from repro.common.types import ElementType
from repro.errors import DescriptorError
from repro.isa import u
from repro.isa import uve_ops as uve
from repro.streams import StreamIterator
from repro.streams.compiler import (
    AffineAccess,
    LoopNest,
    TriangularBound,
    compile_access,
    compile_nest,
    config_instructions,
)
from repro.streams.pattern import Direction, MemLevel


def reference_addresses(nest, access):
    """Directly evaluate the loop nest (oracle for the compiler)."""

    def rec(vars_left, env):
        if not vars_left:
            addr = access.base + access.offset
            addr += sum(access.terms.get(v, 0) * env[v] for v in env)
            return [addr]
        variable, rest = vars_left[0], vars_left[1:]
        bound = nest.bounds[variable]
        if isinstance(bound, TriangularBound):
            limit = bound.coeff * env[bound.outer] + bound.constant
        else:
            limit = bound
        out = []
        for value in range(limit):
            env2 = dict(env)
            env2[variable] = value
            out.extend(rec(rest, env2))
        return out

    return rec(list(nest.variables), {})


def compiled_addresses(nest, access):
    pattern = compile_access(nest, access)
    width = access.etype.width
    return [a // width for a in StreamIterator(pattern).addresses()]


class TestAffineCompilation:
    def test_linear(self):
        nest = LoopNest(["i"], {"i": 10})
        access = AffineAccess("A", base=100, terms={"i": 1})
        assert compiled_addresses(nest, access) == list(range(100, 110))

    def test_row_major_matrix(self):
        nest = LoopNest(["i", "j"], {"i": 4, "j": 8})
        access = AffineAccess("A", base=0, terms={"i": 8, "j": 1})
        assert compiled_addresses(nest, access) == reference_addresses(nest, access)

    def test_transposed_access(self):
        nest = LoopNest(["i", "j"], {"i": 4, "j": 8})
        access = AffineAccess("A", base=0, terms={"i": 1, "j": 4})
        assert compiled_addresses(nest, access) == reference_addresses(nest, access)

    def test_invariant_loop_becomes_zero_stride(self):
        # B[j] under loops (i, j): re-read per i.
        nest = LoopNest(["i", "j"], {"i": 3, "j": 4})
        access = AffineAccess("B", base=50, terms={"j": 1})
        got = compiled_addresses(nest, access)
        assert got == reference_addresses(nest, access)
        assert got == list(range(50, 54)) * 3

    def test_three_level_nest_with_offset(self):
        nest = LoopNest(["i", "j", "k"], {"i": 3, "j": 2, "k": 5})
        access = AffineAccess("A", base=7, terms={"i": 100, "j": 10, "k": 2},
                              offset=1)
        assert compiled_addresses(nest, access) == reference_addresses(nest, access)

    def test_triangular_bound(self):
        # for i in range(6): for j in range(i+1): A[i*8+j]
        nest = LoopNest(["i", "j"], {"i": 6, "j": TriangularBound("i", 1, 1)})
        access = AffineAccess("A", base=0, terms={"i": 8, "j": 1})
        assert compiled_addresses(nest, access) == reference_addresses(nest, access)

    def test_triangular_with_constant(self):
        # for i in range(5): for j in range(i+2): ...
        nest = LoopNest(["i", "j"], {"i": 5, "j": TriangularBound("i", 1, 2)})
        access = AffineAccess("A", base=0, terms={"i": 16, "j": 1})
        assert compiled_addresses(nest, access) == reference_addresses(nest, access)

    def test_metadata_propagates(self):
        nest = LoopNest(["i"], {"i": 4})
        access = AffineAccess(
            "A", base=0, terms={"i": 1}, etype=ElementType.F64,
            direction=Direction.STORE, mem_level=MemLevel.L1,
        )
        pattern = compile_access(nest, access)
        assert pattern.etype is ElementType.F64
        assert pattern.is_store
        assert pattern.mem_level is MemLevel.L1

    def test_compile_nest_handles_multiple_accesses(self):
        nest = LoopNest(["i", "j"], {"i": 4, "j": 8})
        patterns = compile_nest(nest, [
            AffineAccess("A", base=0, terms={"i": 8, "j": 1}),
            AffineAccess("x", base=200, terms={"j": 1}),
            AffineAccess("y", base=300, terms={"i": 1}),
        ])
        assert set(patterns) == {"A", "x", "y"}
        # y[i] under the j loop: each y element delivered 8 times? No —
        # j is the inner loop, so y[i] is re-read per j iteration.
        ys = [a // 4 for a in StreamIterator(patterns["y"]).addresses()]
        assert ys == [300 + i for i in range(4) for _ in range(8)]


class TestCompilationErrors:
    def test_unknown_loop_in_access(self):
        nest = LoopNest(["i"], {"i": 4})
        with pytest.raises(DescriptorError, match="unknown loops"):
            compile_access(nest, AffineAccess("A", 0, {"k": 1}))

    def test_missing_bound(self):
        with pytest.raises(DescriptorError, match="without bounds"):
            LoopNest(["i", "j"], {"i": 4})

    def test_triangular_must_reference_outer(self):
        with pytest.raises(DescriptorError, match="outer"):
            LoopNest(["i", "j"], {"i": TriangularBound("j"), "j": 4})

    def test_triangular_must_be_adjacent(self):
        nest = LoopNest(
            ["i", "j", "k"],
            {"i": 4, "j": 3, "k": TriangularBound("i", 1, 1)},
        )
        with pytest.raises(DescriptorError, match="immediately enclosing"):
            compile_access(nest, AffineAccess("A", 0, {"k": 1}))

    def test_negative_initial_size(self):
        nest = LoopNest(["i", "j"], {"i": 4, "j": TriangularBound("i", 2, 1)})
        with pytest.raises(DescriptorError, match="below zero"):
            compile_access(nest, AffineAccess("A", 0, {"j": 1}))


class TestLowering:
    def test_1d_lowers_to_single_instruction(self):
        nest = LoopNest(["i"], {"i": 16})
        pattern = compile_access(nest, AffineAccess("A", 0, {"i": 1}))
        insts = config_instructions(u(0), pattern)
        assert len(insts) == 1
        assert isinstance(insts[0], uve.SsConfig1D)

    def test_2d_lowers_to_sta_end(self):
        nest = LoopNest(["i", "j"], {"i": 4, "j": 8})
        pattern = compile_access(nest, AffineAccess("A", 0, {"i": 8, "j": 1}))
        insts = config_instructions(u(0), pattern)
        assert [type(i).__name__ for i in insts] == ["SsSta", "SsApp"]
        assert insts[-1].last

    def test_triangular_lowers_with_modifier_last(self):
        nest = LoopNest(["i", "j"], {"i": 6, "j": TriangularBound("i", 1, 1)})
        pattern = compile_access(nest, AffineAccess("A", 0, {"i": 8, "j": 1}))
        insts = config_instructions(u(0), pattern)
        assert [type(i).__name__ for i in insts] == [
            "SsSta", "SsApp", "SsAppMod",
        ]
        assert insts[-1].last and not insts[1].last

    def test_lowered_instructions_execute(self):
        """End-to-end: compile, lower, execute, compare with NumPy."""
        from repro.memory.backing import Memory
        from repro.sim.functional import MachineState
        from repro.isa import ProgramBuilder
        from repro.isa import scalar_ops as sc
        from repro.sim.functional import FunctionalSimulator

        rows, cols = 6, 32
        rng = np.random.default_rng(0)
        a = rng.standard_normal((rows, cols)).astype(np.float32)
        mem = Memory(1 << 20)
        a_addr = mem.alloc_array(a)
        out_addr = mem.alloc_array(np.zeros(rows * cols, dtype=np.float32))

        nest = LoopNest(["i", "j"], {"i": rows, "j": cols})
        load = compile_access(
            nest, AffineAccess("A", a_addr // 4, {"i": cols, "j": 1})
        )
        store = compile_access(
            nest, AffineAccess("O", out_addr // 4, {"i": cols, "j": 1},
                               direction=Direction.STORE)
        )
        b = ProgramBuilder("compiled-copy")
        b.emit(*config_instructions(u(0), load))
        b.emit(*config_instructions(u(1), store))
        b.label("loop")
        b.emit(
            uve.SoMove(u(1), u(0)),
            uve.SoBranchEnd(u(0), "loop", negate=True),
            sc.Halt(),
        )
        FunctionalSimulator(b.build(), memory=mem).run()
        np.testing.assert_array_equal(
            mem.ndarray(out_addr, (rows, cols), np.float32), a
        )
